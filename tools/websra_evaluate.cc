// websra_evaluate: scores a reconstructed session file against the
// simulator's ground truth with the paper's real-accuracy metric.

#include <iostream>
#include <map>

#include "tool_util.h"
#include "wum/common/table.h"
#include "wum/eval/accuracy.h"
#include "wum/session/session_io.h"
#include "wum/topology/graph_io.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_evaluate --graph FILE --truth FILE --sessions FILE\n"
    "  [--relation substring|subsequence] [--no-validity]\n"
    "\n"
    "Computes the paper's real accuracy: the fraction of ground-truth\n"
    "sessions occurring contiguously inside an (eligible) reconstructed\n"
    "session of the same user. --no-validity drops the §5.1 requirement\n"
    "that a capturing session satisfies the topology+timestamp rules.\n";

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown(
      {"graph", "truth", "sessions", "relation", "no-validity"}));
  WUM_ASSIGN_OR_RETURN(std::string graph_path, flags.GetRequired("graph"));
  WUM_ASSIGN_OR_RETURN(std::string truth_path, flags.GetRequired("truth"));
  WUM_ASSIGN_OR_RETURN(std::string sessions_path,
                       flags.GetRequired("sessions"));
  WUM_ASSIGN_OR_RETURN(wum::WebGraph graph, wum::ReadGraphFile(graph_path));
  WUM_ASSIGN_OR_RETURN(std::vector<wum::UserSession> truth,
                       wum::ReadSessionsFile(truth_path));
  WUM_ASSIGN_OR_RETURN(std::vector<wum::UserSession> reconstructed,
                       wum::ReadSessionsFile(sessions_path));

  const std::string relation_name = flags.GetString("relation", "substring");
  wum::CaptureRelation relation;
  if (relation_name == "substring") {
    relation = wum::CaptureRelation::kSubstring;
  } else if (relation_name == "subsequence") {
    relation = wum::CaptureRelation::kSubsequence;
  } else {
    return wum::Status::InvalidArgument("unknown relation '" + relation_name +
                                        "'");
  }
  const bool require_valid = !flags.Has("no-validity");
  const wum::TimeThresholds thresholds;

  // Eligible reconstructed sequences per user key.
  std::map<std::string, std::vector<std::vector<wum::PageId>>> by_user;
  std::size_t eligible = 0;
  for (const wum::UserSession& entry : reconstructed) {
    const bool valid =
        !require_valid ||
        (wum::SatisfiesTopologyRule(entry.session, graph) &&
         wum::SatisfiesTimestampRule(entry.session,
                                     thresholds.max_page_stay));
    if (valid) {
      by_user[entry.user_key].push_back(entry.session.PageSequence());
      ++eligible;
    }
  }

  // Ground truth grouped per user, for the reconstruction-side count.
  std::map<std::string, std::vector<std::vector<wum::PageId>>> truth_by_user;
  for (const wum::UserSession& real : truth) {
    truth_by_user[real.user_key].push_back(real.session.PageSequence());
  }

  std::size_t captured = 0;
  for (const wum::UserSession& real : truth) {
    auto it = by_user.find(real.user_key);
    if (it != by_user.end() &&
        wum::IsCaptured(real.session.PageSequence(), it->second, relation)) {
      ++captured;
    }
  }
  std::size_t correct = 0;
  for (const auto& [user, candidates] : by_user) {
    auto it = truth_by_user.find(user);
    if (it == truth_by_user.end()) continue;
    for (const auto& candidate : candidates) {
      for (const auto& real : it->second) {
        const bool hit = relation == wum::CaptureRelation::kSubstring
                             ? wum::ContainsAsSubstring(candidate, real)
                             : wum::ContainsAsSubsequence(candidate, real);
        if (hit) {
          ++correct;
          break;
        }
      }
    }
  }

  wum::Table table({"metric", "value"});
  table.AddRow({"ground-truth sessions", std::to_string(truth.size())});
  table.AddRow({"reconstructed sessions",
                std::to_string(reconstructed.size())});
  table.AddRow({"eligible (valid) sessions", std::to_string(eligible)});
  table.AddRow({"correct reconstructions", std::to_string(correct)});
  table.AddRow({"real sessions captured", std::to_string(captured)});
  const double denominator = static_cast<double>(truth.size());
  const double accuracy =
      truth.empty() ? 0.0 : static_cast<double>(correct) / denominator;
  const double recall =
      truth.empty() ? 0.0 : static_cast<double>(captured) / denominator;
  table.AddRow({"real accuracy (paper metric)",
                wum::FormatDouble(accuracy * 100.0, 2) + "%"});
  table.AddRow({"recall", wum::FormatDouble(recall * 100.0, 2) + "%"});
  table.Render(&std::cout);
  return wum::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"no-validity"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
