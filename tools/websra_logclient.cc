// websra_logclient: a minimal producer/admin client for websra_serve,
// used by the tests and the CI smoke leg. Data mode streams a log file
// to the server's data port (optionally identified via the HELLO
// handshake); admin mode sends one command to the admin port and prints
// the reply.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "tool_util.h"
#include "wum/net/socket.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_logclient --port N [--host ADDR=127.0.0.1]\n"
    "  data mode:  --log FILE [--client-id ID] [--chunk-bytes N=65536]\n"
    "              [--throttle-ms N=0]\n"
    "  admin mode: --admin COMMAND\n"
    "  common:     [--connect-retries N=50]\n"
    "\n"
    "Data mode connects to a websra_serve data port and streams FILE,\n"
    "always from byte zero. With --client-id it first sends\n"
    "`HELLO <id>` and prints the server's `OK <skip-bytes>` reply; the\n"
    "server discards the bytes its last checkpoint already covers, so\n"
    "the client never skips locally (skipping on both sides would lose\n"
    "data). --chunk-bytes sizes each write; --throttle-ms sleeps between\n"
    "writes to simulate a slow producer.\n"
    "\n"
    "Admin mode sends COMMAND (PING, STATS, CHECKPOINT, QUIESCE) to the\n"
    "admin port, prints the one-line reply, and exits 0 iff the reply is\n"
    "an OK or a JSON snapshot.\n"
    "\n"
    "--connect-retries waits for a server still starting up: the connect\n"
    "is retried every 100ms up to N times.\n";

/// Connects with retries so scripts can race the client against a
/// server that is still binding its port.
wum::Result<wum::net::Fd> ConnectWithRetries(const std::string& host,
                                             std::uint16_t port,
                                             std::uint64_t retries) {
  wum::Result<wum::net::Fd> connected =
      wum::Status::Internal("unreachable");
  for (std::uint64_t attempt = 0;; ++attempt) {
    connected = wum::net::ConnectTcp(host, port);
    if (connected.ok() || attempt >= retries) return connected;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

/// Reads one '\n'-terminated reply line (blocking socket).
wum::Result<std::string> ReadReplyLine(const wum::net::Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const wum::net::ReadResult read,
                         wum::net::ReadSome(socket, &byte, 1));
    if (read.eof) {
      return wum::Status::IoError("server closed the connection mid-reply" +
                                  (line.empty() ? "" : ": " + line));
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
    if (line.size() > 1u << 20) {
      return wum::Status::ParseError("reply line exceeds 1MiB");
    }
  }
}

wum::Status RunAdmin(const wum::net::Fd& socket, const std::string& command) {
  WUM_RETURN_NOT_OK(wum::net::WriteAll(socket, command + "\n"));
  WUM_ASSIGN_OR_RETURN(const std::string reply, ReadReplyLine(socket));
  std::cout << reply << "\n";
  const bool ok = reply.rfind("OK", 0) == 0 || reply.rfind("{", 0) == 0;
  if (!ok) {
    return wum::Status::FailedPrecondition("server replied: " + reply);
  }
  return wum::Status::OK();
}

wum::Status RunData(const wum::net::Fd& socket, const wum_tools::Flags& flags,
                    const std::string& log_path) {
  if (flags.Has("client-id")) {
    WUM_ASSIGN_OR_RETURN(std::string client_id,
                         flags.GetRequired("client-id"));
    WUM_RETURN_NOT_OK(wum::net::WriteAll(socket, "HELLO " + client_id + "\n"));
    WUM_ASSIGN_OR_RETURN(const std::string reply, ReadReplyLine(socket));
    if (reply.rfind("OK", 0) != 0) {
      return wum::Status::FailedPrecondition("handshake refused: " + reply);
    }
    // The reply's skip-bytes count is informational: the server does
    // the discarding, so we still send the whole file from byte zero.
    std::cout << "handshake: " << reply << "\n";
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t chunk_bytes,
                       flags.GetUint("chunk-bytes", 64u << 10));
  if (chunk_bytes == 0) {
    return wum::Status::InvalidArgument("--chunk-bytes must be >= 1");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t throttle_ms,
                       flags.GetUint("throttle-ms", 0));
  std::ifstream log(log_path, std::ios::binary);
  if (!log) {
    return wum::Status::NotFound("cannot open " + log_path);
  }
  std::vector<char> buffer(static_cast<std::size_t>(chunk_bytes));
  std::uint64_t sent = 0;
  while (log) {
    log.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = log.gcount();
    if (got <= 0) break;
    WUM_RETURN_NOT_OK(wum::net::WriteAll(
        socket,
        std::string_view(buffer.data(), static_cast<std::size_t>(got))));
    sent += static_cast<std::uint64_t>(got);
    if (throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
    }
  }
  if (log.bad()) {
    return wum::Status::IoError("read failed: " + log_path);
  }
  std::cout << "sent " << sent << " bytes from " << log_path << "\n";
  return wum::Status::OK();
}

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown({"host", "port", "log", "client-id",
                                      "chunk-bytes", "throttle-ms", "admin",
                                      "connect-retries"}));
  if (!wum::net::NetworkingAvailable()) {
    return wum::Status::Unimplemented(
        "websra_logclient requires a POSIX platform");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t port_value, flags.GetUint("port", 0));
  if (port_value == 0 || port_value > 65535) {
    return wum::Status::InvalidArgument("--port must be in [1, 65535]");
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const bool admin = flags.Has("admin");
  const bool data = flags.Has("log");
  if (admin == data) {
    return wum::Status::InvalidArgument(
        "exactly one of --log (data mode) or --admin (admin mode) required");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t retries,
                       flags.GetUint("connect-retries", 50));
  WUM_ASSIGN_OR_RETURN(
      wum::net::Fd socket,
      ConnectWithRetries(host, static_cast<std::uint16_t>(port_value),
                         retries));
  if (admin) {
    WUM_ASSIGN_OR_RETURN(std::string command, flags.GetRequired("admin"));
    return RunAdmin(socket, command);
  }
  WUM_ASSIGN_OR_RETURN(std::string log_path, flags.GetRequired("log"));
  return RunData(socket, flags, log_path);
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags = wum_tools::Flags::Parse(argc, argv, {});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
