// websra_logclient: a minimal producer/admin client for websra_serve,
// used by the tests and the CI smoke leg. Data mode streams a log file
// to the server's data port (optionally identified via the HELLO
// handshake); admin mode sends one command to the admin port and prints
// the reply.

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tool_util.h"
#include "wum/net/chaos.h"
#include "wum/net/socket.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_logclient --port N [--host ADDR=127.0.0.1]\n"
    "  data mode:  --log FILE [--client-id ID] [--chunk-bytes N=65536]\n"
    "              [--throttle-ms N=0]\n"
    "  chaos:      [--chaos-seed N=1] [--chaos-trickle]\n"
    "              [--chaos-stall-prob P] [--chaos-stall-ms N=5]\n"
    "              [--chaos-short-write-prob P] [--chaos-corrupt-prob P]\n"
    "              [--chaos-reset-prob P] [--chaos-half-open-ms N=0]\n"
    "  admin mode: --admin COMMAND\n"
    "  common:     [--connect-retries N=50]\n"
    "\n"
    "Data mode connects to a websra_serve data port and streams FILE,\n"
    "always from byte zero. With --client-id it first sends\n"
    "`HELLO <id>` and prints the server's `OK <skip-bytes>` reply; the\n"
    "server discards the bytes its last checkpoint already covers, so\n"
    "the client never skips locally (skipping on both sides would lose\n"
    "data). --chunk-bytes sizes each write; --throttle-ms sleeps between\n"
    "writes to simulate a slow producer.\n"
    "\n"
    "Admin mode sends COMMAND (PING, STATS, CHECKPOINT, QUIESCE) to the\n"
    "admin port, prints the one-line reply, and exits 0 iff the reply is\n"
    "an OK or a JSON snapshot.\n"
    "\n"
    "--connect-retries waits for a server still starting up: the connect\n"
    "is retried every 100ms up to N times.\n"
    "\n"
    "The --chaos-* flags misbehave on the wire per a seeded schedule\n"
    "(wum::net::ChaosSocket): stalls, one-byte trickle, short writes,\n"
    "flipped bytes, mid-stream RST. An injected reset is the expected\n"
    "outcome, reported on stdout with exit 0 — the assertion lives on\n"
    "the server side. --chaos-half-open-ms holds the connection open\n"
    "and silent for N ms after the stream is sent, so the server's\n"
    "idle deadline can be observed reaping it.\n";

/// Connects with retries so scripts can race the client against a
/// server that is still binding its port.
wum::Result<wum::net::Fd> ConnectWithRetries(const std::string& host,
                                             std::uint16_t port,
                                             std::uint64_t retries) {
  wum::Result<wum::net::Fd> connected =
      wum::Status::Internal("unreachable");
  for (std::uint64_t attempt = 0;; ++attempt) {
    connected = wum::net::ConnectTcp(host, port);
    if (connected.ok() || attempt >= retries) return connected;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

/// Reads one '\n'-terminated reply line (blocking socket).
wum::Result<std::string> ReadReplyLine(const wum::net::Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const wum::net::ReadResult read,
                         wum::net::ReadSome(socket, &byte, 1));
    if (read.eof) {
      return wum::Status::IoError("server closed the connection mid-reply" +
                                  (line.empty() ? "" : ": " + line));
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
    if (line.size() > 1u << 20) {
      return wum::Status::ParseError("reply line exceeds 1MiB");
    }
  }
}

wum::Status RunAdmin(const wum::net::Fd& socket, const std::string& command) {
  WUM_RETURN_NOT_OK(wum::net::WriteAll(socket, command + "\n"));
  WUM_ASSIGN_OR_RETURN(const std::string reply, ReadReplyLine(socket));
  std::cout << reply << "\n";
  const bool ok = reply.rfind("OK", 0) == 0 || reply.rfind("{", 0) == 0;
  if (!ok) {
    return wum::Status::FailedPrecondition("server replied: " + reply);
  }
  return wum::Status::OK();
}

/// Parsed --chaos-* flags; `enabled` says whether to wrap the socket at
/// all (pure --chaos-seed with no fault class stays a plain socket).
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t half_open_ms = 0;
  wum::net::ChaosOptions options;
};

wum::Result<ChaosConfig> ParseChaos(const wum_tools::Flags& flags) {
  ChaosConfig config;
  WUM_ASSIGN_OR_RETURN(config.options.seed, flags.GetUint("chaos-seed", 1));
  WUM_ASSIGN_OR_RETURN(config.options.stall_probability,
                       flags.GetDouble("chaos-stall-prob", 0.0));
  WUM_ASSIGN_OR_RETURN(config.options.stall_ms,
                       flags.GetUint("chaos-stall-ms", 5));
  config.options.trickle = flags.Has("chaos-trickle");
  WUM_ASSIGN_OR_RETURN(config.options.short_write_probability,
                       flags.GetDouble("chaos-short-write-prob", 0.0));
  WUM_ASSIGN_OR_RETURN(config.options.corrupt_probability,
                       flags.GetDouble("chaos-corrupt-prob", 0.0));
  WUM_ASSIGN_OR_RETURN(config.options.reset_probability,
                       flags.GetDouble("chaos-reset-prob", 0.0));
  WUM_ASSIGN_OR_RETURN(config.half_open_ms,
                       flags.GetUint("chaos-half-open-ms", 0));
  config.enabled = config.options.trickle ||
                   config.options.stall_probability > 0.0 ||
                   config.options.short_write_probability > 0.0 ||
                   config.options.corrupt_probability > 0.0 ||
                   config.options.reset_probability > 0.0;
  return config;
}

wum::Status RunData(wum::net::Fd socket, const wum_tools::Flags& flags,
                    const std::string& log_path) {
  if (flags.Has("client-id")) {
    WUM_ASSIGN_OR_RETURN(std::string client_id,
                         flags.GetRequired("client-id"));
    WUM_RETURN_NOT_OK(wum::net::WriteAll(socket, "HELLO " + client_id + "\n"));
    WUM_ASSIGN_OR_RETURN(const std::string reply, ReadReplyLine(socket));
    if (reply.rfind("OK", 0) != 0) {
      return wum::Status::FailedPrecondition("handshake refused: " + reply);
    }
    // The reply's skip-bytes count is informational: the server does
    // the discarding, so we still send the whole file from byte zero.
    std::cout << "handshake: " << reply << "\n";
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t chunk_bytes,
                       flags.GetUint("chunk-bytes", 64u << 10));
  if (chunk_bytes == 0) {
    return wum::Status::InvalidArgument("--chunk-bytes must be >= 1");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t throttle_ms,
                       flags.GetUint("throttle-ms", 0));
  WUM_ASSIGN_OR_RETURN(const ChaosConfig chaos, ParseChaos(flags));
  std::ifstream log(log_path, std::ios::binary);
  if (!log) {
    return wum::Status::NotFound("cannot open " + log_path);
  }
  // The chaos wrapper owns the descriptor once engaged; `raw` tracks
  // whichever Fd is live so the half-open hold below works either way.
  std::optional<wum::net::ChaosSocket> chaotic;
  const wum::net::Fd* raw = &socket;
  if (chaos.enabled) {
    chaotic.emplace(std::move(socket), chaos.options);
    raw = &chaotic->fd();
  }
  std::vector<char> buffer(static_cast<std::size_t>(chunk_bytes));
  std::uint64_t sent = 0;
  bool reset_injected = false;
  while (log) {
    log.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = log.gcount();
    if (got <= 0) break;
    const std::string_view chunk(buffer.data(),
                                 static_cast<std::size_t>(got));
    const wum::Status write =
        chaotic.has_value() ? chaotic->Send(chunk)
                            : wum::net::WriteAll(*raw, chunk);
    if (!write.ok()) {
      if (chaotic.has_value() && chaotic->stats().resets > 0 &&
          write.IsConnectionReset()) {
        // The schedule killed the connection on purpose; the assertion
        // (server still healthy, partial dead-lettered) lives server-side.
        reset_injected = true;
        break;
      }
      return write;
    }
    sent += static_cast<std::uint64_t>(got);
    if (throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
    }
  }
  if (log.bad()) {
    return wum::Status::IoError("read failed: " + log_path);
  }
  if (chaotic.has_value()) {
    const wum::net::ChaosStats& stats = chaotic->stats();
    std::cout << "chaos: writes=" << stats.writes << " stalls=" << stats.stalls
              << " short_writes=" << stats.short_writes
              << " corruptions=" << stats.corruptions
              << " resets=" << stats.resets << "\n";
  }
  if (reset_injected) {
    std::cout << "chaos: injected reset after " << sent << " bytes of "
              << log_path << "\n";
    return wum::Status::OK();
  }
  std::cout << "sent " << sent << " bytes from " << log_path << "\n";
  if (chaos.half_open_ms > 0 && raw->valid()) {
    std::cout << "holding half-open for " << chaos.half_open_ms << "ms\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(chaos.half_open_ms));
  }
  return wum::Status::OK();
}

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown(
      {"host", "port", "log", "client-id", "chunk-bytes", "throttle-ms",
       "admin", "connect-retries", "chaos-seed", "chaos-trickle",
       "chaos-stall-prob", "chaos-stall-ms", "chaos-short-write-prob",
       "chaos-corrupt-prob", "chaos-reset-prob", "chaos-half-open-ms"}));
  if (!wum::net::NetworkingAvailable()) {
    return wum::Status::Unimplemented(
        "websra_logclient requires a POSIX platform");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t port_value, flags.GetUint("port", 0));
  if (port_value == 0 || port_value > 65535) {
    return wum::Status::InvalidArgument("--port must be in [1, 65535]");
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const bool admin = flags.Has("admin");
  const bool data = flags.Has("log");
  if (admin == data) {
    return wum::Status::InvalidArgument(
        "exactly one of --log (data mode) or --admin (admin mode) required");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t retries,
                       flags.GetUint("connect-retries", 50));
  WUM_ASSIGN_OR_RETURN(
      wum::net::Fd socket,
      ConnectWithRetries(host, static_cast<std::uint16_t>(port_value),
                         retries));
  if (admin) {
    WUM_ASSIGN_OR_RETURN(std::string command, flags.GetRequired("admin"));
    return RunAdmin(socket, command);
  }
  WUM_ASSIGN_OR_RETURN(std::string log_path, flags.GetRequired("log"));
  return RunData(std::move(socket), flags, log_path);
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"chaos-trickle"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
