// websra_sessionize: the data-processing phase of the paper as a command
// line tool — parse a CLF/Combined access log, clean it, identify users,
// and reconstruct sessions with a chosen heuristic.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>

#include "tool_runtime.h"
#include "tool_util.h"
#include "wum/clf/clf_parser.h"
#include "wum/stream/dead_letter.h"
#include "wum/clf/log_filter.h"
#include "wum/clf/user_partitioner.h"
#include "wum/common/table.h"
#include "wum/ingest/byte_source.h"
#include "wum/ingest/driver.h"
#include "wum/mine/path_miner.h"
#include "wum/obs/metrics.h"
#include "wum/session/instrumented_sessionizer.h"
#include "wum/session/referrer_heuristic.h"
#include "wum/session/session_io.h"
#include "wum/stream/engine.h"
#include "wum/stream/heuristic_registry.h"
#include "wum/topology/graph_io.h"

namespace {

/// Heuristic names come from the registry, so the usage string cannot
/// drift from what actually dispatches ("referrer" is the documented
/// batch-only special case outside the registry).
std::string Usage() {
  return "usage: websra_sessionize --graph FILE --log FILE --out FILE\n"
         "  [--heuristic " +
         wum::HeuristicRegistry::Default().NamesForUsage() +
         "|referrer]\n"
         "  [--identity ip|ip-ua] [--delta MINUTES=30] [--rho MINUTES=10]\n"
         "  [--keep-robots] [--streaming] [--threads N=4] [--http-port N]\n"
         "  [--max-parse-errors N=0] [--metrics-out FILE]\n"
         "  [--metrics-every SEC [--metrics-series FILE]] [--trace-out FILE]\n"
         "  [--log-level debug|info|warn|error|off]\n"
         "  [--format text|binary] [--checkpoint-dir DIR]\n"
         "  [--checkpoint-every-records N=100000] [--resume]\n"
         "  [--mine-topk K [--mine-lengths L=3] [--mine-window N=0]]\n"
         "\n"
         "Reads an access log, applies the standard cleaning chain (GET\n"
         "only, successful status, no embedded resources, no crawlers\n"
         "unless --keep-robots), groups requests per user, reconstructs\n"
         "sessions and writes them as a websra session file. The referrer\n"
         "heuristic needs a Combined-format log.\n"
         "\n"
         "--streaming replays the cleaned log through the sharded\n"
         "StreamEngine (--threads worker shards, hash-partitioned by user\n"
         "identity) instead of the batch reconstruction path, and prints\n"
         "the engine's throughput stats to stderr. Output sessions are\n"
         "identical up to per-user emission order; the referrer heuristic\n"
         "is batch-only.\n"
         "\n"
         "--max-parse-errors tolerates up to N malformed log lines: each\n"
         "one is quarantined to a dead-letter channel (counted in the\n"
         "end-of-run table) instead of aborting the run. The default 0\n"
         "fails fast on the first malformed line.\n"
         "\n"
         "--metrics-out enables the wum::obs observability layer: parser,\n"
         "engine and sessionizer metrics are written to FILE (CSV when it\n"
         "ends in .csv, JSON otherwise) and summarized on stdout.\n"
         "\n"
         "--http-port N serves GET /metrics (Prometheus text), /healthz\n"
         "and /statusz on 127.0.0.1:N (0 = kernel-assigned) for the\n"
         "duration of the run, so a long replay can be scraped or watched\n"
         "with websra_top. Implies metrics. See docs/observability.md.\n"
         "\n"
         "--metrics-every also enables metrics and additionally appends a\n"
         "registry snapshot every SEC seconds to --metrics-series (default\n"
         "metrics.series.jsonl, one JSON object per line) so long or\n"
         "crashed runs leave a time series. --trace-out records every\n"
         "pipeline stage (parse, partition, enqueue, drain, sessionize,\n"
         "emit, retry, dead_letter, checkpoint) as spans and writes a\n"
         "Chrome trace-event JSON file: load it at https://ui.perfetto.dev\n"
         "or chrome://tracing. --log-level (default warn) controls the\n"
         "structured key=value diagnostics on stderr.\n"
         "\n"
         "--format selects the session file serialization (text is the\n"
         "line-oriented default; binary is the compact CRC-framed format).\n"
         "Readers auto-detect, so downstream tools accept either.\n"
         "\n"
         "--mine-topk K (streaming only) mines the top-k frequent\n"
         "link-topology-valid paths of lengths 2..--mine-lengths from the\n"
         "live session stream in bounded memory and prints them as JSON on\n"
         "stdout at the end of the run; --mine-window N halves all counts\n"
         "every N mined paths. Miner state rides the checkpoint. See\n"
         "docs/mining.md.\n"
         "\n"
         "--checkpoint-dir enables durable checkpointing (streaming only):\n"
         "sessions append to a journal in DIR and the engine snapshots its\n"
         "state there every --checkpoint-every-records input records. After\n"
         "a crash, rerun the identical command with --resume to continue\n"
         "from the last committed checkpoint; the finished output is\n"
         "identical to an uninterrupted run. See docs/checkpointing.md.\n";
}

using wum_tools::CheckpointConfig;

/// Streaming path: the cleaned records flow through the sharded engine;
/// sessions are collected (serialized by the engine) and sorted by user
/// key so the output file is deterministic regardless of shard timing.
///
/// With checkpointing, sessions append to a durable binary journal in
/// the checkpoint directory instead of memory; each engine checkpoint
/// records the journal's flushed length as its sink state, and a resume
/// truncates the journal back to that committed length before
/// continuing — sessions emitted after the last checkpoint of a killed
/// run are re-emitted by the replay, never duplicated.
wum::Status RunStreaming(const std::vector<wum::LogRecord>& cleaned,
                         const wum::WebGraph& graph,
                         const std::string& heuristic_name,
                         wum::UserIdentity identity,
                         wum::TimeThresholds thresholds, std::size_t threads,
                         wum::obs::MetricRegistry* metrics,
                         wum::obs::TraceRecorder* trace,
                         const std::optional<CheckpointConfig>& checkpoint,
                         const std::optional<wum::mine::MinerOptions>& mining,
                         std::vector<wum::UserSession>* output) {
  if (heuristic_name == "referrer") {
    return wum::Status::InvalidArgument(
        "--streaming does not support the referrer heuristic; use the "
        "batch path");
  }
  wum::EngineOptions options;
  options.set_num_shards(threads)
      .set_identity(identity)
      .set_thresholds(thresholds)
      .set_num_pages(graph.num_pages())
      .set_metrics(metrics)
      .set_trace(trace)
      .use_graph(&graph)
      .use_heuristic(heuristic_name);
  if (mining.has_value()) {
    options.set_mining(*mining);
  }

  std::string journal_path;
  std::ofstream journal;
  if (checkpoint.has_value()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint->dir, ec);
    if (ec) {
      return wum::Status::IoError("cannot create " + checkpoint->dir + ": " +
                                  ec.message());
    }
    journal_path = checkpoint->dir + "/journal.sessions-bin";
  }
  wum::CallbackSessionSink sink(
      [output, &journal, &journal_path, &checkpoint](
          const std::string& user_key, wum::Session session) {
        if (checkpoint.has_value()) {
          wum::Status status = wum::AppendSessionBinary(
              wum::UserSession{user_key, std::move(session)}, &journal);
          if (!status.ok()) {
            return wum::Status::IoError("journal " + journal_path + ": " +
                                        status.message());
          }
          return wum::Status::OK();
        }
        output->push_back(wum::UserSession{user_key, std::move(session)});
        return wum::Status::OK();
      });

  // The engine restores before the journal opens, because the committed
  // journal length lives in the checkpoint's sink state.
  wum::Result<std::unique_ptr<wum::StreamEngine>> created =
      wum::Status::Internal("unreachable");
  if (checkpoint.has_value() && checkpoint->resume) {
    wum::EngineOptions resume_options = options;
    resume_options.resume_from(checkpoint->dir);
    created = wum::StreamEngine::Create(resume_options, &sink);
    if (!created.ok() && created.status().IsNotFound()) {
      std::cerr << "--resume: " << created.status().message()
                << "; starting fresh\n";
      created = wum::StreamEngine::Create(options, &sink);
    }
  } else {
    created = wum::StreamEngine::Create(options, &sink);
  }
  WUM_RETURN_NOT_OK(created.status());
  std::unique_ptr<wum::StreamEngine> engine = std::move(*created);

  if (checkpoint.has_value()) {
    if (engine->resumed()) {
      WUM_ASSIGN_OR_RETURN(std::uint64_t committed,
                           wum::ParseUint64(engine->resumed_sink_state()));
      std::error_code ec;
      std::filesystem::resize_file(journal_path, committed, ec);
      if (ec) {
        return wum::Status::IoError("cannot truncate " + journal_path +
                                    " to its committed length: " +
                                    ec.message());
      }
      journal.open(journal_path, std::ios::binary | std::ios::app);
      if (!journal) {
        return wum::Status::IoError("cannot reopen " + journal_path);
      }
      std::cerr << "resumed from checkpoint: skipping "
                << engine->resumed_sink_state()
                << " committed journal bytes\n";
    } else {
      journal.open(journal_path, std::ios::binary | std::ios::trunc);
      if (!journal) {
        return wum::Status::IoError("cannot open " + journal_path);
      }
      journal << wum::SessionsBinaryHeaderLine() << '\n';
    }
  }
  const auto journal_state = [&]() -> wum::Result<std::string> {
    journal.flush();
    if (!journal) {
      return wum::Status::IoError("journal write failed: " + journal_path);
    }
    return std::to_string(static_cast<std::uint64_t>(journal.tellp()));
  };

  // Batched replay through the shared IngestDriver — the same batching
  // and checkpoint-cadence loop websra_serve runs, so checkpoints land
  // at exactly the same record offsets regardless of front end (resume
  // offsets must not depend on batching).
  wum::ingest::IngestOptions ingest_options;
  if (checkpoint.has_value()) {
    ingest_options.checkpoint_dir = checkpoint->dir;
    ingest_options.checkpoint_every_records = checkpoint->every_records;
    ingest_options.sink_state = journal_state;
  }
  WUM_ASSIGN_OR_RETURN(
      wum::ingest::IngestDriver driver,
      wum::ingest::IngestDriver::Create(engine.get(),
                                        std::move(ingest_options)));
  std::vector<wum::LogRecordRef> refs;
  refs.reserve(cleaned.size());
  for (const wum::LogRecord& record : cleaned) {
    refs.push_back(wum::ViewOf(record));
  }
  WUM_RETURN_NOT_OK(driver.OfferRefs(refs));
  WUM_RETURN_NOT_OK(engine->Finish());
  if (engine->mining() != nullptr) {
    std::cout << engine->mining()->PatternsJson() << "\n";
  }
  if (checkpoint.has_value()) {
    journal.flush();
    journal.close();
    if (!journal) {
      return wum::Status::IoError("journal write failed: " + journal_path);
    }
    WUM_ASSIGN_OR_RETURN(*output, wum::ReadSessionsFile(journal_path));
  }
  std::cerr << "engine[" << engine->num_shards()
            << " shards]: " << wum::EngineStatsToString(engine->TotalStats())
            << "\n";
  const std::vector<wum::EngineStats> per_shard = engine->ShardStats();
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    std::cerr << "  shard " << i << ": "
              << wum::EngineStatsToString(per_shard[i]) << "\n";
  }
  std::stable_sort(output->begin(), output->end(),
                   [](const wum::UserSession& a, const wum::UserSession& b) {
                     return a.user_key < b.user_key;
                   });
  return wum::Status::OK();
}

/// End-of-run accounting table: every log line is either parsed or
/// dead-lettered, and every parsed record either survives cleaning into
/// the session file or was filtered.
void PrintRunSummary(const wum::ClfParser::Stats& parse_stats,
                     const wum::DeadLetterQueue& dead_letters,
                     std::size_t cleaned_records, std::size_t sessions) {
  wum::Table table({"stage", "count"});
  table.AddRow({"log lines seen", std::to_string(parse_stats.lines_seen)});
  table.AddRow({"records parsed", std::to_string(parse_stats.records_parsed)});
  table.AddRow({"malformed lines dead-lettered",
                std::to_string(dead_letters.total_offered())});
  table.AddRow({"records after cleaning", std::to_string(cleaned_records)});
  table.AddRow({"sessions written", std::to_string(sessions)});
  table.Render(&std::cout);
}

wum::Status Run(const wum_tools::Flags& flags) {
  const wum_tools::RuntimeFeatures features{.durability = true,
                                            .always_metrics = false,
                                            .scrape_server = true};
  WUM_RETURN_NOT_OK(flags.CheckKnown(wum_tools::ToolRuntime::WithFlags(
      {"graph", "log", "out", "heuristic", "identity", "delta", "rho",
       "keep-robots", "streaming", "threads", "max-parse-errors", "format",
       "mine-topk", "mine-lengths", "mine-window"},
      features)));
  WUM_ASSIGN_OR_RETURN(std::string graph_path, flags.GetRequired("graph"));
  WUM_ASSIGN_OR_RETURN(std::string log_path, flags.GetRequired("log"));
  WUM_ASSIGN_OR_RETURN(std::string out_path, flags.GetRequired("out"));
  WUM_ASSIGN_OR_RETURN(wum::WebGraph graph, wum::ReadGraphFile(graph_path));

  wum::TimeThresholds thresholds;
  WUM_ASSIGN_OR_RETURN(std::uint64_t delta_minutes, flags.GetUint("delta", 30));
  WUM_ASSIGN_OR_RETURN(std::uint64_t rho_minutes, flags.GetUint("rho", 10));
  thresholds.max_session_duration =
      wum::Minutes(static_cast<std::int64_t>(delta_minutes));
  thresholds.max_page_stay = wum::Minutes(static_cast<std::int64_t>(rho_minutes));

  const std::string identity_name = flags.GetString("identity", "ip");
  wum::UserIdentity identity;
  if (identity_name == "ip") {
    identity = wum::UserIdentity::kClientIp;
  } else if (identity_name == "ip-ua") {
    identity = wum::UserIdentity::kClientIpAndUserAgent;
  } else {
    return wum::Status::InvalidArgument("unknown identity '" + identity_name +
                                        "'");
  }

  const std::string format_name = flags.GetString("format", "text");
  wum::SessionFormat format;
  if (format_name == "text") {
    format = wum::SessionFormat::kText;
  } else if (format_name == "binary") {
    format = wum::SessionFormat::kBinary;
  } else {
    return wum::Status::InvalidArgument("unknown format '" + format_name +
                                        "'");
  }

  // The shared tool runtime: observability (one registry behind the
  // parser, the engine and the sessionizer; trace recorder; reporter;
  // log level) plus the parsed durability flags.
  WUM_ASSIGN_OR_RETURN(wum_tools::ToolRuntime runtime,
                       wum_tools::ToolRuntime::Start(flags, features));
  const std::optional<CheckpointConfig>& checkpoint = runtime.checkpoint();
  if (checkpoint.has_value() && !flags.Has("streaming")) {
    return wum::Status::InvalidArgument(
        "--checkpoint-dir requires --streaming");
  }
  wum::obs::MetricRegistry* metrics = runtime.metrics();
  runtime.SetBuildLabel(
      "config", "heuristic=" + flags.GetString("heuristic", "smart-sra") +
                    " identity=" + identity_name +
                    (flags.Has("streaming") ? " streaming" : " batch"));
  WUM_ASSIGN_OR_RETURN(std::optional<wum::mine::MinerOptions> mining,
                       wum_tools::GetMiningFlags(flags));
  if (mining.has_value() && !flags.Has("streaming")) {
    return wum::Status::InvalidArgument("--mine-topk requires --streaming");
  }

  // Parse. Malformed lines are quarantined to the dead-letter channel;
  // more than --max-parse-errors of them aborts the run (default 0:
  // fail fast on the first one).
  WUM_ASSIGN_OR_RETURN(std::uint64_t max_parse_errors,
                       flags.GetUint("max-parse-errors", 0));
  WUM_ASSIGN_OR_RETURN(wum::ingest::FileSource log_source,
                       wum::ingest::FileSource::Open(log_path));
  wum::ClfParser parser(metrics);
  parser.set_tracer(runtime.tracer());
  wum::DeadLetterQueue dead_letters;
  parser.set_reject_handler([&dead_letters](std::uint64_t line_number,
                                            std::string_view raw_line,
                                            const wum::Status& reason) {
    wum::DeadLetter letter;
    letter.stage = wum::DeadLetter::Stage::kParse;
    letter.reason = reason;
    letter.detail =
        "line " + std::to_string(line_number) + ": " + std::string(raw_line);
    dead_letters.Offer(std::move(letter));
  });
  // Zero-copy ingest through the shared ByteSource surface:
  // line-aligned chunks straight out of the (usually memory-mapped)
  // log, batch-parsed into views — the same source contract the TCP
  // server's per-connection buffers implement. The records are owned
  // because the cleaning chain and robot observer scan them long after
  // the chunk buffer moves on.
  std::vector<wum::LogRecord> records;
  std::vector<wum::LogRecordRef> parsed_refs;
  while (true) {
    WUM_ASSIGN_OR_RETURN(std::optional<std::string_view> chunk,
                         log_source.Next());
    if (!chunk.has_value()) break;
    parsed_refs.clear();
    WUM_RETURN_NOT_OK(parser.ParseChunk(*chunk, &parsed_refs));
    records.reserve(records.size() + parsed_refs.size());
    for (const wum::LogRecordRef& ref : parsed_refs) {
      records.push_back(ref.Materialize());
    }
  }
  if (parser.stats().lines_rejected > max_parse_errors) {
    std::string message =
        std::to_string(parser.stats().lines_rejected) +
        " malformed lines exceed --max-parse-errors=" +
        std::to_string(max_parse_errors);
    for (const std::string& sample : parser.stats().sample_errors) {
      message += "\n  " + sample;
    }
    return wum::Status::ParseError(message);
  }
  std::cout << "parsed " << parser.stats().records_parsed << " records, "
            << parser.stats().lines_rejected << " malformed lines\n";

  // Clean.
  wum::FilterChain chain = wum::FilterChain::Standard();
  if (!flags.Has("keep-robots")) {
    auto robots = std::make_unique<wum::RobotFilter>();
    robots->ObserveForRobots(records);
    chain.Add(std::move(robots));
  }
  std::vector<wum::LogRecord> cleaned = chain.Apply(records);
  std::cout << "cleaning kept " << cleaned.size() << " page views\n";

  const std::string heuristic_name =
      flags.GetString("heuristic", "smart-sra");
  std::vector<wum::UserSession> output;

  // Streaming path: sharded StreamEngine instead of batch reconstruction.
  if (flags.Has("streaming")) {
    WUM_ASSIGN_OR_RETURN(std::uint64_t threads, flags.GetUint("threads", 4));
    if (threads == 0) {
      return wum::Status::InvalidArgument("--threads must be >= 1");
    }
    WUM_RETURN_NOT_OK(RunStreaming(cleaned, graph, heuristic_name, identity,
                                   thresholds,
                                   static_cast<std::size_t>(threads), metrics,
                                   runtime.trace(), checkpoint, mining,
                                   &output));
    WUM_RETURN_NOT_OK(wum::WriteSessionsFile(output, out_path, format));
    std::cout << "wrote " << output.size() << " sessions (" << heuristic_name
              << ", streaming) to " << out_path << "\n";
    PrintRunSummary(parser.stats(), dead_letters, cleaned.size(),
                    output.size());
    return runtime.Finish(flags);
  }
  if (flags.Has("threads")) {
    return wum::Status::InvalidArgument("--threads requires --streaming");
  }

  // Identify users.
  WUM_ASSIGN_OR_RETURN(wum::PartitionResult partition,
                       wum::PartitionByUser(cleaned, graph.num_pages(),
                                            identity));
  std::cout << "identified " << partition.streams.size() << " users ("
            << partition.skipped_non_page_urls << " non-page URLs skipped)\n";

  // Reconstruct.
  if (heuristic_name == "referrer") {
    // Rebuild per-user referred streams from the cleaned records.
    std::map<std::string, std::vector<wum::ReferredRequest>> streams;
    for (const wum::LogRecord& record : cleaned) {
      wum::Result<std::uint32_t> page = wum::PageFromUrl(record.url);
      if (!page.ok()) continue;
      wum::Result<std::uint32_t> referrer =
          wum::PageFromReferrer(record.referrer);
      streams[wum::UserKeyFor(record.client_ip, record.user_agent, identity)]
          .push_back(wum::ReferredRequest{
              static_cast<wum::PageId>(*page),
              referrer.ok() ? static_cast<wum::PageId>(*referrer)
                            : wum::kInvalidPage,
              record.timestamp});
    }
    wum::ReferrerSessionizer::Options options;
    options.thresholds = thresholds;
    wum::ReferrerSessionizer heuristic(&graph, options);
    for (auto& [key, stream] : streams) {
      std::stable_sort(stream.begin(), stream.end(),
                       [](const wum::ReferredRequest& a,
                          const wum::ReferredRequest& b) {
                         return a.timestamp < b.timestamp;
                       });
      WUM_ASSIGN_OR_RETURN(std::vector<wum::Session> sessions,
                           heuristic.Reconstruct(stream));
      for (wum::Session& session : sessions) {
        output.push_back(wum::UserSession{key, std::move(session)});
      }
    }
  } else {
    wum::HeuristicContext context;
    context.graph = &graph;
    context.thresholds = thresholds;
    WUM_ASSIGN_OR_RETURN(std::unique_ptr<wum::Sessionizer> inner,
                         wum::HeuristicRegistry::Default().CreateBatch(
                             heuristic_name, context));
    wum::InstrumentedSessionizer heuristic(std::move(inner), metrics);
    for (const wum::UserStream& user : partition.streams) {
      WUM_ASSIGN_OR_RETURN(std::vector<wum::Session> sessions,
                           heuristic.Reconstruct(user.requests));
      for (wum::Session& session : sessions) {
        output.push_back(wum::UserSession{user.user_key, std::move(session)});
      }
    }
  }
  WUM_RETURN_NOT_OK(wum::WriteSessionsFile(output, out_path, format));
  std::cout << "wrote " << output.size() << " sessions (" << heuristic_name
            << ") to " << out_path << "\n";
  PrintRunSummary(parser.stats(), dead_letters, cleaned.size(), output.size());
  return runtime.Finish(flags);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage = Usage();
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv,
                              {"keep-robots", "streaming", "resume"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), usage.c_str());
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, usage.c_str());
  return 0;
}
