// websra_sessionize: the data-processing phase of the paper as a command
// line tool — parse a CLF/Combined access log, clean it, identify users,
// and reconstruct sessions with a chosen heuristic.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>

#include "tool_util.h"
#include "wum/clf/clf_parser.h"
#include "wum/clf/log_filter.h"
#include "wum/clf/user_partitioner.h"
#include "wum/session/navigation_heuristic.h"
#include "wum/session/referrer_heuristic.h"
#include "wum/session/session_io.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/stream/engine.h"
#include "wum/topology/graph_io.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_sessionize --graph FILE --log FILE --out FILE\n"
    "  [--heuristic duration|pagestay|navigation|smart-sra|referrer]\n"
    "  [--identity ip|ip-ua] [--delta MINUTES=30] [--rho MINUTES=10]\n"
    "  [--keep-robots] [--streaming] [--threads N=4]\n"
    "\n"
    "Reads an access log, applies the standard cleaning chain (GET only,\n"
    "successful status, no embedded resources, no crawlers unless\n"
    "--keep-robots), groups requests per user, reconstructs sessions and\n"
    "writes them as a websra session file. The referrer heuristic needs\n"
    "a Combined-format log.\n"
    "\n"
    "--streaming replays the cleaned log through the sharded StreamEngine\n"
    "(--threads worker shards, hash-partitioned by user identity) instead\n"
    "of the batch reconstruction path, and prints the engine's throughput\n"
    "stats to stderr. Output sessions are identical up to per-user\n"
    "emission order; the referrer heuristic is batch-only.\n";

/// Streaming path: the cleaned records flow through the sharded engine;
/// sessions are collected (serialized by the engine) and sorted by user
/// key so the output file is deterministic regardless of shard timing.
wum::Status RunStreaming(const std::vector<wum::LogRecord>& cleaned,
                         const wum::WebGraph& graph,
                         const std::string& heuristic_name,
                         wum::UserIdentity identity,
                         wum::TimeThresholds thresholds, std::size_t threads,
                         std::vector<wum::UserSession>* output) {
  wum::EngineOptions options;
  options.set_num_shards(threads)
      .set_identity(identity)
      .set_thresholds(thresholds)
      .set_num_pages(graph.num_pages());
  if (heuristic_name == "duration") {
    options.use_duration();
  } else if (heuristic_name == "pagestay") {
    options.use_page_stay();
  } else if (heuristic_name == "navigation") {
    options.use_navigation(&graph);
  } else if (heuristic_name == "smart-sra") {
    options.use_smart_sra(&graph);
  } else if (heuristic_name == "referrer") {
    return wum::Status::InvalidArgument(
        "--streaming does not support the referrer heuristic; use the "
        "batch path");
  } else {
    return wum::Status::InvalidArgument("unknown heuristic '" +
                                        heuristic_name + "'");
  }
  wum::CallbackSessionSink sink(
      [output](const std::string& user_key, wum::Session session) {
        output->push_back(wum::UserSession{user_key, std::move(session)});
        return wum::Status::OK();
      });
  WUM_ASSIGN_OR_RETURN(std::unique_ptr<wum::StreamEngine> engine,
                       wum::StreamEngine::Create(options, &sink));
  for (const wum::LogRecord& record : cleaned) {
    WUM_RETURN_NOT_OK(engine->Offer(record));
  }
  WUM_RETURN_NOT_OK(engine->Finish());
  std::cerr << "engine[" << engine->num_shards()
            << " shards]: " << wum::EngineStatsToString(engine->TotalStats())
            << "\n";
  const std::vector<wum::EngineStats> per_shard = engine->ShardStats();
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    std::cerr << "  shard " << i << ": "
              << wum::EngineStatsToString(per_shard[i]) << "\n";
  }
  std::stable_sort(output->begin(), output->end(),
                   [](const wum::UserSession& a, const wum::UserSession& b) {
                     return a.user_key < b.user_key;
                   });
  return wum::Status::OK();
}

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown({"graph", "log", "out", "heuristic",
                                      "identity", "delta", "rho",
                                      "keep-robots", "streaming",
                                      "threads"}));
  WUM_ASSIGN_OR_RETURN(std::string graph_path, flags.GetRequired("graph"));
  WUM_ASSIGN_OR_RETURN(std::string log_path, flags.GetRequired("log"));
  WUM_ASSIGN_OR_RETURN(std::string out_path, flags.GetRequired("out"));
  WUM_ASSIGN_OR_RETURN(wum::WebGraph graph, wum::ReadGraphFile(graph_path));

  wum::TimeThresholds thresholds;
  WUM_ASSIGN_OR_RETURN(std::uint64_t delta_minutes, flags.GetUint("delta", 30));
  WUM_ASSIGN_OR_RETURN(std::uint64_t rho_minutes, flags.GetUint("rho", 10));
  thresholds.max_session_duration =
      wum::Minutes(static_cast<std::int64_t>(delta_minutes));
  thresholds.max_page_stay = wum::Minutes(static_cast<std::int64_t>(rho_minutes));

  const std::string identity_name = flags.GetString("identity", "ip");
  wum::UserIdentity identity;
  if (identity_name == "ip") {
    identity = wum::UserIdentity::kClientIp;
  } else if (identity_name == "ip-ua") {
    identity = wum::UserIdentity::kClientIpAndUserAgent;
  } else {
    return wum::Status::InvalidArgument("unknown identity '" + identity_name +
                                        "'");
  }

  // Parse.
  std::ifstream log_file(log_path);
  if (!log_file) return wum::Status::IoError("cannot open " + log_path);
  wum::ClfParser parser;
  std::vector<wum::LogRecord> records;
  WUM_RETURN_NOT_OK(parser.ParseStream(&log_file, &records));
  std::cout << "parsed " << parser.stats().records_parsed << " records, "
            << parser.stats().lines_rejected << " malformed lines\n";

  // Clean.
  wum::FilterChain chain = wum::FilterChain::Standard();
  if (!flags.Has("keep-robots")) {
    auto robots = std::make_unique<wum::RobotFilter>();
    robots->ObserveForRobots(records);
    chain.Add(std::move(robots));
  }
  std::vector<wum::LogRecord> cleaned = chain.Apply(records);
  std::cout << "cleaning kept " << cleaned.size() << " page views\n";

  const std::string heuristic_name =
      flags.GetString("heuristic", "smart-sra");
  std::vector<wum::UserSession> output;

  // Streaming path: sharded StreamEngine instead of batch reconstruction.
  if (flags.Has("streaming")) {
    WUM_ASSIGN_OR_RETURN(std::uint64_t threads, flags.GetUint("threads", 4));
    if (threads == 0) {
      return wum::Status::InvalidArgument("--threads must be >= 1");
    }
    WUM_RETURN_NOT_OK(RunStreaming(cleaned, graph, heuristic_name, identity,
                                   thresholds,
                                   static_cast<std::size_t>(threads),
                                   &output));
    WUM_RETURN_NOT_OK(wum::WriteSessionsFile(output, out_path));
    std::cout << "wrote " << output.size() << " sessions (" << heuristic_name
              << ", streaming) to " << out_path << "\n";
    return wum::Status::OK();
  }
  if (flags.Has("threads")) {
    return wum::Status::InvalidArgument("--threads requires --streaming");
  }

  // Identify users.
  WUM_ASSIGN_OR_RETURN(wum::PartitionResult partition,
                       wum::PartitionByUser(cleaned, graph.num_pages(),
                                            identity));
  std::cout << "identified " << partition.streams.size() << " users ("
            << partition.skipped_non_page_urls << " non-page URLs skipped)\n";

  // Reconstruct.
  if (heuristic_name == "referrer") {
    // Rebuild per-user referred streams from the cleaned records.
    std::map<std::string, std::vector<wum::ReferredRequest>> streams;
    for (const wum::LogRecord& record : cleaned) {
      wum::Result<std::uint32_t> page = wum::PageFromUrl(record.url);
      if (!page.ok()) continue;
      wum::Result<std::uint32_t> referrer =
          wum::PageFromReferrer(record.referrer);
      streams[wum::UserKeyFor(record.client_ip, record.user_agent, identity)]
          .push_back(wum::ReferredRequest{
              static_cast<wum::PageId>(*page),
              referrer.ok() ? static_cast<wum::PageId>(*referrer)
                            : wum::kInvalidPage,
              record.timestamp});
    }
    wum::ReferrerSessionizer::Options options;
    options.thresholds = thresholds;
    wum::ReferrerSessionizer heuristic(&graph, options);
    for (auto& [key, stream] : streams) {
      std::stable_sort(stream.begin(), stream.end(),
                       [](const wum::ReferredRequest& a,
                          const wum::ReferredRequest& b) {
                         return a.timestamp < b.timestamp;
                       });
      WUM_ASSIGN_OR_RETURN(std::vector<wum::Session> sessions,
                           heuristic.Reconstruct(stream));
      for (wum::Session& session : sessions) {
        output.push_back(wum::UserSession{key, std::move(session)});
      }
    }
  } else {
    std::unique_ptr<wum::Sessionizer> heuristic;
    if (heuristic_name == "duration") {
      heuristic = std::make_unique<wum::SessionDurationSessionizer>(
          thresholds.max_session_duration);
    } else if (heuristic_name == "pagestay") {
      heuristic =
          std::make_unique<wum::PageStaySessionizer>(thresholds.max_page_stay);
    } else if (heuristic_name == "navigation") {
      heuristic = std::make_unique<wum::NavigationSessionizer>(&graph);
    } else if (heuristic_name == "smart-sra") {
      wum::SmartSra::Options options;
      options.thresholds = thresholds;
      heuristic = std::make_unique<wum::SmartSra>(&graph, options);
    } else {
      return wum::Status::InvalidArgument("unknown heuristic '" +
                                          heuristic_name + "'");
    }
    for (const wum::UserStream& user : partition.streams) {
      WUM_ASSIGN_OR_RETURN(std::vector<wum::Session> sessions,
                           heuristic->Reconstruct(user.requests));
      for (wum::Session& session : sessions) {
        output.push_back(wum::UserSession{user.user_key, std::move(session)});
      }
    }
  }
  WUM_RETURN_NOT_OK(wum::WriteSessionsFile(output, out_path));
  std::cout << "wrote " << output.size() << " sessions (" << heuristic_name
            << ") to " << out_path << "\n";
  return wum::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"keep-robots", "streaming"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
