// websra_serve: the reactive pipeline as a long-running daemon — a TCP
// front end over the same sharded StreamEngine + IngestDriver stack the
// file CLI uses. Many concurrent producers stream CLF lines at the data
// port; sessions accumulate in the engine (one shared user population)
// and are written to --out when the server quiesces. See
// docs/serving.md for the protocol and the restart runbook.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "tool_runtime.h"
#include "tool_util.h"
#include "wum/clf/log_filter.h"
#include "wum/common/string_util.h"
#include "wum/net/server.h"
#include "wum/session/session_io.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/stream/heuristic_registry.h"
#include "wum/topology/graph_io.h"

namespace {

std::string Usage() {
  return "usage: websra_serve --graph FILE --out FILE\n"
         "  [--host ADDR=127.0.0.1] [--port N=0] [--admin-port N=0]\n"
         "  [--port-file FILE] [--admin-port-file FILE]\n"
         "  [--http-port N [--http-port-file FILE]]\n"
         "  [--healthz-max-checkpoint-age-ms N=0]\n"
         "  [--heuristic " +
         wum::HeuristicRegistry::Default().NamesForUsage() +
         "]\n"
         "  [--identity ip|ip-ua] [--delta MINUTES=30] [--rho MINUTES=10]\n"
         "  [--threads N=4] [--queue-capacity N=1024]\n"
         "  [--offer-policy block|shed] [--no-clean]\n"
         "  [--max-connections N=256] [--batch-records N=2048]\n"
         "  [--idle-timeout-ms N=0] [--handshake-timeout-ms N=0]\n"
         "  [--read-timeout-ms N=0] [--write-timeout-ms N=10000]\n"
         "  [--client-quota-bps N=0] [--client-quota-burst N=0]\n"
         "  [--client-buffer-bytes N=0] [--ingest-budget-bytes N=0]\n"
         "  [--format text|binary] [--metrics-out FILE]\n"
         "  [--metrics-every SEC [--metrics-series FILE]] [--trace-out FILE]\n"
         "  [--log-level debug|info|warn|error|off]\n"
         "  [--checkpoint-dir DIR] [--checkpoint-every-records N=100000]\n"
         "  [--resume]\n"
         "  [--mine-topk K [--mine-lengths L=3] [--mine-window N=0]]\n"
         "\n"
         "Accepts line-framed CLF streams from any number of concurrent TCP\n"
         "producers on --port and feeds them all into one sharded\n"
         "StreamEngine. Producers may open with `HELLO <client-id>` to get\n"
         "durable replay offsets (see docs/serving.md); connections without\n"
         "the handshake are served anonymously. Ports default to 0\n"
         "(kernel-assigned); --port-file/--admin-port-file write the bound\n"
         "ports for scripts to discover.\n"
         "\n"
         "The admin port answers one command per line: STATS (JSON metrics\n"
         "snapshot), STATS JSON (the /statusz health document),\n"
         "CHECKPOINT (durable snapshot now), QUIESCE (drain, finish the\n"
         "engine, write --out, exit), PING, and — when mining is on —\n"
         "PATTERNS [k] [len] (top-k frequent paths as JSON).\n"
         "\n"
         "--http-port N opens an HTTP observability port on the same\n"
         "poll loop (0 = kernel-assigned): GET /metrics (Prometheus\n"
         "text), /healthz (200 ok / 503 + reasons: dead shard,\n"
         "dead-letter overflow, or — with\n"
         "--healthz-max-checkpoint-age-ms — a checkpoint older than N\n"
         "ms), /statusz (JSON). Scrape it with Prometheus or watch it\n"
         "live with `websra_top --http-port N`; see\n"
         "docs/observability.md.\n"
         "\n"
         "--mine-topk K turns on reactive top-k frequent-path mining over\n"
         "the live session stream (see docs/mining.md): link-topology-\n"
         "valid paths of lengths 2..--mine-lengths are counted in bounded\n"
         "memory (SpaceSaving), --mine-window N halves all counts every N\n"
         "mined paths so the ranking tracks recent traffic, and the miner\n"
         "state rides the checkpoint so --resume reconverges exactly.\n"
         "\n"
         "Records are cleaned inside the engine (GET only, successful\n"
         "status, no embedded resources) unless --no-clean; the robot\n"
         "filter needs the whole log and is batch-only. --offer-policy\n"
         "block (default) applies TCP backpressure to producers when a\n"
         "shard queue fills; shed drops sub-batches and accounts every\n"
         "dropped record to its producer in the dead-letter channel\n"
         "(conservation: emitted + dead-lettered == accepted).\n"
         "\n"
         "Hostile-network hardening (all off by default; 0 disables):\n"
         "--idle-timeout-ms / --handshake-timeout-ms / --read-timeout-ms\n"
         "expire connections that go silent, never finish HELLO, or dribble\n"
         "an incomplete line too long (the peer gets `ERR <reason>`);\n"
         "--write-timeout-ms bounds every reply write. --client-quota-bps\n"
         "(+--client-quota-burst) rate-limits each producer with per-\n"
         "connection TCP pushback; --client-buffer-bytes caps one\n"
         "producer's buffered bytes; --ingest-budget-bytes caps buffered\n"
         "bytes across all producers — over-budget connections are refused\n"
         "with `BUSY <reason>` at accept. See docs/robustness.md for the\n"
         "degradation matrix.\n"
         "\n"
         "--checkpoint-dir makes ingestion durable: the engine snapshots\n"
         "every --checkpoint-every-records records (or on admin\n"
         "CHECKPOINT), sessions journal to DIR, and per-client replay\n"
         "offsets ride in the manifest. After a crash, restart with\n"
         "--resume and have each client re-send its log from byte zero:\n"
         "the server discards what the checkpoint already covers, so the\n"
         "finished output is identical to an uninterrupted run.\n";
}

using wum_tools::CheckpointConfig;

/// Signal handling: SIGINT/SIGTERM write one byte to the server's
/// self-pipe, which the poll loop turns into a graceful quiesce.
std::atomic<int> g_stop_fd{-1};

void HandleStopSignal(int) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
#endif
}

wum::Status WritePortFile(const std::string& path, std::uint16_t port) {
  std::ofstream out(path, std::ios::trunc);
  out << port << "\n";
  out.flush();
  if (!out) {
    return wum::Status::IoError("cannot write port file " + path);
  }
  return wum::Status::OK();
}

wum::Result<std::uint16_t> GetPort(const wum_tools::Flags& flags,
                                   const char* name) {
  WUM_ASSIGN_OR_RETURN(std::uint64_t value, flags.GetUint(name, 0));
  if (value > 65535) {
    return wum::Status::InvalidArgument(std::string("--") + name +
                                        " must be <= 65535");
  }
  return static_cast<std::uint16_t>(value);
}

wum::Status Run(const wum_tools::Flags& flags) {
  const wum_tools::RuntimeFeatures features{.durability = true,
                                            .always_metrics = true};
  WUM_RETURN_NOT_OK(flags.CheckKnown(wum_tools::ToolRuntime::WithFlags(
      {"graph", "out", "host", "port", "admin-port", "port-file",
       "admin-port-file", "http-port", "http-port-file",
       "healthz-max-checkpoint-age-ms", "heuristic", "identity", "delta",
       "rho", "threads",
       "queue-capacity", "offer-policy", "no-clean", "max-connections",
       "batch-records", "format", "idle-timeout-ms", "handshake-timeout-ms",
       "read-timeout-ms", "write-timeout-ms", "client-quota-bps",
       "client-quota-burst", "client-buffer-bytes", "ingest-budget-bytes",
       "mine-topk", "mine-lengths", "mine-window"},
      features)));
  WUM_ASSIGN_OR_RETURN(std::string graph_path, flags.GetRequired("graph"));
  WUM_ASSIGN_OR_RETURN(std::string out_path, flags.GetRequired("out"));
  WUM_ASSIGN_OR_RETURN(wum::WebGraph graph, wum::ReadGraphFile(graph_path));

  wum::TimeThresholds thresholds;
  WUM_ASSIGN_OR_RETURN(std::uint64_t delta_minutes, flags.GetUint("delta", 30));
  WUM_ASSIGN_OR_RETURN(std::uint64_t rho_minutes, flags.GetUint("rho", 10));
  thresholds.max_session_duration =
      wum::Minutes(static_cast<std::int64_t>(delta_minutes));
  thresholds.max_page_stay =
      wum::Minutes(static_cast<std::int64_t>(rho_minutes));

  const std::string identity_name = flags.GetString("identity", "ip");
  wum::UserIdentity identity;
  if (identity_name == "ip") {
    identity = wum::UserIdentity::kClientIp;
  } else if (identity_name == "ip-ua") {
    identity = wum::UserIdentity::kClientIpAndUserAgent;
  } else {
    return wum::Status::InvalidArgument("unknown identity '" + identity_name +
                                        "'");
  }

  const std::string format_name = flags.GetString("format", "text");
  wum::SessionFormat format;
  if (format_name == "text") {
    format = wum::SessionFormat::kText;
  } else if (format_name == "binary") {
    format = wum::SessionFormat::kBinary;
  } else {
    return wum::Status::InvalidArgument("unknown format '" + format_name +
                                        "'");
  }

  const std::string policy_name = flags.GetString("offer-policy", "block");
  wum::OfferPolicy offer_policy;
  if (policy_name == "block") {
    offer_policy = wum::OfferPolicy::kBlock;
  } else if (policy_name == "shed") {
    offer_policy = wum::OfferPolicy::kShed;
  } else {
    return wum::Status::InvalidArgument("unknown offer policy '" +
                                        policy_name + "'");
  }

  WUM_ASSIGN_OR_RETURN(wum_tools::ToolRuntime runtime,
                       wum_tools::ToolRuntime::Start(flags, features));
  const std::optional<CheckpointConfig>& checkpoint = runtime.checkpoint();

  WUM_ASSIGN_OR_RETURN(std::uint64_t threads, flags.GetUint("threads", 4));
  if (threads == 0) {
    return wum::Status::InvalidArgument("--threads must be >= 1");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t queue_capacity,
                       flags.GetUint("queue-capacity", 1024));

  // Every malformed line and every shed record lands here, tagged with
  // the producer it came from — the daemon never silently loses input.
  wum::DeadLetterQueue dead_letters;

  wum::EngineOptions options;
  options.set_num_shards(static_cast<std::size_t>(threads))
      .set_queue_capacity(static_cast<std::size_t>(queue_capacity))
      .set_identity(identity)
      .set_thresholds(thresholds)
      .set_num_pages(graph.num_pages())
      .set_offer_policy(offer_policy)
      .set_dead_letters(&dead_letters)
      .set_metrics(runtime.metrics())
      .set_trace(runtime.trace())
      .use_graph(&graph)
      .use_heuristic(flags.GetString("heuristic", "smart-sra"));
  WUM_ASSIGN_OR_RETURN(std::optional<wum::mine::MinerOptions> mining,
                       wum_tools::GetMiningFlags(flags));
  if (mining.has_value()) {
    options.set_mining(*mining);
  }
  if (!flags.Has("no-clean")) {
    // The standard cleaning chain runs inside the engine, per record.
    // The robot filter needs a whole-log first pass, so the daemon
    // cannot apply it; compare against `websra_sessionize --streaming
    // --keep-robots` for parity.
    options.add_filter([] { return std::make_unique<wum::MethodFilter>(); });
    options.add_filter([] { return std::make_unique<wum::StatusFilter>(); });
    options.add_filter(
        [] { return std::make_unique<wum::ExtensionFilter>(); });
  }

  // Sessions go to a durable journal when checkpointing (its flushed
  // length rides in every manifest), to memory otherwise.
  std::string journal_path;
  std::ofstream journal;
  std::vector<wum::UserSession> sessions;
  if (checkpoint.has_value()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint->dir, ec);
    if (ec) {
      return wum::Status::IoError("cannot create " + checkpoint->dir + ": " +
                                  ec.message());
    }
    journal_path = checkpoint->dir + "/journal.sessions-bin";
  }
  wum::CallbackSessionSink sink(
      [&sessions, &journal, &journal_path, &checkpoint](
          const std::string& user_key, wum::Session session) {
        if (checkpoint.has_value()) {
          wum::Status status = wum::AppendSessionBinary(
              wum::UserSession{user_key, std::move(session)}, &journal);
          if (!status.ok()) {
            return wum::Status::IoError("journal " + journal_path + ": " +
                                        status.message());
          }
          return wum::Status::OK();
        }
        sessions.push_back(wum::UserSession{user_key, std::move(session)});
        return wum::Status::OK();
      });

  // Resume replays nothing from disk: the engine only restores shard
  // state and the record count, and the replay arrives over TCP when
  // clients re-send (the server discards bytes the checkpoint already
  // covers). Hence resume_with_external_replay.
  wum::Result<std::unique_ptr<wum::StreamEngine>> created =
      wum::Status::Internal("unreachable");
  if (checkpoint.has_value() && checkpoint->resume) {
    wum::EngineOptions resume_options = options;
    resume_options.resume_from(checkpoint->dir).resume_with_external_replay();
    created = wum::StreamEngine::Create(resume_options, &sink);
    if (!created.ok() && created.status().IsNotFound()) {
      std::cerr << "--resume: " << created.status().message()
                << "; starting fresh\n";
      created = wum::StreamEngine::Create(options, &sink);
    }
  } else {
    created = wum::StreamEngine::Create(options, &sink);
  }
  WUM_RETURN_NOT_OK(created.status());
  std::unique_ptr<wum::StreamEngine> engine = std::move(*created);

  // Journal bring-up mirrors websra_sessionize, except the sink state
  // also carries the per-client replay offsets.
  wum::net::ClientOffsets resumed_offsets;
  if (checkpoint.has_value()) {
    if (engine->resumed()) {
      std::string journal_state;
      WUM_RETURN_NOT_OK(wum::net::DecodeServeSinkState(
          engine->resumed_sink_state(), &journal_state, &resumed_offsets));
      WUM_ASSIGN_OR_RETURN(std::uint64_t committed,
                           wum::ParseUint64(journal_state));
      std::error_code ec;
      std::filesystem::resize_file(journal_path, committed, ec);
      if (ec) {
        return wum::Status::IoError("cannot truncate " + journal_path +
                                    " to its committed length: " +
                                    ec.message());
      }
      journal.open(journal_path, std::ios::binary | std::ios::app);
      if (!journal) {
        return wum::Status::IoError("cannot reopen " + journal_path);
      }
      std::cerr << "resumed from checkpoint: " << engine->resumed_records_seen()
                << " records covered, " << resumed_offsets.size()
                << " client offsets, " << committed
                << " committed journal bytes\n";
    } else {
      journal.open(journal_path, std::ios::binary | std::ios::trunc);
      if (!journal) {
        return wum::Status::IoError("cannot open " + journal_path);
      }
      journal << wum::SessionsBinaryHeaderLine() << '\n';
    }
  }

  std::size_t sessions_written = 0;
  wum::net::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  WUM_ASSIGN_OR_RETURN(server_options.port, GetPort(flags, "port"));
  WUM_ASSIGN_OR_RETURN(server_options.admin_port, GetPort(flags, "admin-port"));
  WUM_ASSIGN_OR_RETURN(std::uint64_t max_connections,
                       flags.GetUint("max-connections", 256));
  server_options.max_connections =
      static_cast<std::size_t>(max_connections);
  WUM_ASSIGN_OR_RETURN(std::uint64_t batch_records,
                       flags.GetUint("batch-records", 2048));
  if (batch_records == 0) {
    return wum::Status::InvalidArgument("--batch-records must be >= 1");
  }
  server_options.ingest.batch_records =
      static_cast<std::size_t>(batch_records);
  WUM_ASSIGN_OR_RETURN(server_options.deadlines.idle_timeout_ms,
                       flags.GetUint("idle-timeout-ms", 0));
  WUM_ASSIGN_OR_RETURN(server_options.deadlines.handshake_timeout_ms,
                       flags.GetUint("handshake-timeout-ms", 0));
  WUM_ASSIGN_OR_RETURN(server_options.deadlines.read_timeout_ms,
                       flags.GetUint("read-timeout-ms", 0));
  WUM_ASSIGN_OR_RETURN(server_options.deadlines.write_timeout_ms,
                       flags.GetUint("write-timeout-ms", 10000));
  WUM_ASSIGN_OR_RETURN(server_options.client_quota.bytes_per_sec,
                       flags.GetUint("client-quota-bps", 0));
  WUM_ASSIGN_OR_RETURN(server_options.client_quota.burst_bytes,
                       flags.GetUint("client-quota-burst", 0));
  WUM_ASSIGN_OR_RETURN(server_options.client_quota.max_buffered_bytes,
                       flags.GetUint("client-buffer-bytes", 0));
  WUM_ASSIGN_OR_RETURN(server_options.ingest_budget_bytes,
                       flags.GetUint("ingest-budget-bytes", 0));
  if (flags.Has("http-port")) {
    WUM_ASSIGN_OR_RETURN(std::uint16_t http_port, GetPort(flags, "http-port"));
    server_options.http_port = http_port;
  } else if (flags.Has("http-port-file")) {
    return wum::Status::InvalidArgument(
        "--http-port-file requires --http-port");
  }
  WUM_ASSIGN_OR_RETURN(server_options.healthz_max_checkpoint_age_ms,
                       flags.GetUint("healthz-max-checkpoint-age-ms", 0));
  if (server_options.healthz_max_checkpoint_age_ms != 0 &&
      !checkpoint.has_value()) {
    return wum::Status::InvalidArgument(
        "--healthz-max-checkpoint-age-ms requires --checkpoint-dir");
  }
  if (checkpoint.has_value()) {
    server_options.ingest.checkpoint_dir = checkpoint->dir;
    server_options.ingest.checkpoint_every_records = checkpoint->every_records;
    server_options.journal_state = [&]() -> wum::Result<std::string> {
      journal.flush();
      if (!journal) {
        return wum::Status::IoError("journal write failed: " + journal_path);
      }
      return std::to_string(static_cast<std::uint64_t>(journal.tellp()));
    };
  }
  server_options.metrics = runtime.metrics();
  server_options.trace = runtime.trace();
  // QUIESCE: the engine has finished (all sessions emitted), so write
  // the output file and report the count in the admin reply.
  server_options.on_quiesce = [&]() -> wum::Result<std::string> {
    if (checkpoint.has_value()) {
      journal.flush();
      journal.close();
      if (!journal) {
        return wum::Status::IoError("journal write failed: " + journal_path);
      }
      WUM_ASSIGN_OR_RETURN(sessions, wum::ReadSessionsFile(journal_path));
    }
    std::stable_sort(sessions.begin(), sessions.end(),
                     [](const wum::UserSession& a, const wum::UserSession& b) {
                       return a.user_key < b.user_key;
                     });
    WUM_RETURN_NOT_OK(wum::WriteSessionsFile(sessions, out_path, format));
    sessions_written = sessions.size();
    return "sessions=" + std::to_string(sessions_written);
  };

  WUM_ASSIGN_OR_RETURN(
      std::unique_ptr<wum::net::LogServer> server,
      wum::net::LogServer::Start(server_options, engine.get(), &dead_letters,
                                 std::move(resumed_offsets)));
  if (flags.Has("port-file")) {
    WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("port-file"));
    WUM_RETURN_NOT_OK(WritePortFile(path, server->port()));
  }
  if (flags.Has("admin-port-file")) {
    WUM_ASSIGN_OR_RETURN(std::string path,
                         flags.GetRequired("admin-port-file"));
    WUM_RETURN_NOT_OK(WritePortFile(path, server->admin_port()));
  }
  if (flags.Has("http-port-file")) {
    WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("http-port-file"));
    WUM_RETURN_NOT_OK(WritePortFile(path, server->http_port()));
  }
  // Engine config fingerprint on wum_build_info: enough to tell two
  // daemons apart when triaging a scrape.
  runtime.SetBuildLabel(
      "config", "heuristic=" + flags.GetString("heuristic", "smart-sra") +
                    " identity=" + identity_name +
                    " shards=" + std::to_string(threads) +
                    " policy=" + policy_name +
                    " delta=" + std::to_string(delta_minutes) +
                    "m rho=" + std::to_string(rho_minutes) + "m");
  g_stop_fd.store(server->stop_fd(), std::memory_order_relaxed);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::cout << "serving on " << server_options.host << ":" << server->port()
            << " (admin " << server->admin_port();
  if (server_options.http_port.has_value()) {
    std::cout << ", http " << server->http_port();
  }
  std::cout << ")" << std::endl;
  const wum::Status served = server->Serve();
  g_stop_fd.store(-1, std::memory_order_relaxed);
  WUM_RETURN_NOT_OK(served);

  const wum::net::ServeStats& stats = server->stats();
  std::cerr << "server: " << stats.connections_accepted << " connections, "
            << stats.bytes_read << " bytes, " << stats.handshakes
            << " handshakes, " << stats.admin_commands << " admin commands\n";
  std::cerr << "engine[" << engine->num_shards()
            << " shards]: " << wum::EngineStatsToString(engine->TotalStats())
            << "\n";
  if (dead_letters.total_offered() > 0) {
    std::cerr << "dead letters: " << dead_letters.total_offered()
              << " entries covering " << dead_letters.records_covered()
              << " records\n";
  }
  std::cout << "wrote " << sessions_written << " sessions to " << out_path
            << "\n";
  return runtime.Finish(flags);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage = Usage();
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"no-clean", "resume"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), usage.c_str());
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, usage.c_str());
  return 0;
}
