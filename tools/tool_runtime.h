// ToolRuntime: the one observability + durability surface shared by the
// websra_* tools. Every tool that takes --metrics-out/--metrics-every/
// --metrics-series/--trace-out/--log-level (and, when durable,
// --checkpoint-dir/--checkpoint-every-records/--resume) parses and
// starts them through this runtime, so websra_sessionize,
// websra_simulate and websra_serve present identical flags with
// identical semantics. Extracted from the per-tool ObsSession plumbing
// that used to live in each main().

#ifndef WEBSRA_TOOLS_TOOL_RUNTIME_H_
#define WEBSRA_TOOLS_TOOL_RUNTIME_H_

#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

#include "tool_util.h"
#include "wum/common/result.h"
#include "wum/common/string_util.h"
#include "wum/common/table.h"
#include "wum/net/http.h"
#include "wum/obs/log.h"
#include "wum/obs/metrics.h"
#include "wum/obs/reporter.h"
#include "wum/obs/trace.h"

// Build identity injected by tools/CMakeLists.txt; the fallbacks keep
// non-CMake builds (clangd, one-off compiles) working.
#ifndef WEBSRA_VERSION
#define WEBSRA_VERSION "unknown"
#endif
#ifndef WEBSRA_GIT_DESCRIBE
#define WEBSRA_GIT_DESCRIBE "unknown"
#endif

namespace wum_tools {

/// Where --metrics-every snapshots land unless --metrics-series says
/// otherwise.
inline constexpr char kDefaultMetricsSeriesPath[] = "metrics.series.jsonl";

/// Human-readable rollup of a metrics snapshot, rendered with
/// wum::Table — identical across every tool's end-of-run output.
inline void PrintMetricsSummary(const wum::obs::MetricsSnapshot& snapshot) {
  wum::Table table({"metric", "kind", "value"});
  for (const auto& counter : snapshot.counters) {
    table.AddRow({counter.name, "counter", std::to_string(counter.value)});
  }
  for (const auto& gauge : snapshot.gauges) {
    table.AddRow({gauge.name, "gauge", std::to_string(gauge.value)});
  }
  for (const auto& histogram : snapshot.histograms) {
    table.AddRow({histogram.name, "histogram",
                  "count=" + std::to_string(histogram.count) +
                      " mean=" + wum::FormatDouble(histogram.mean(), 1) +
                      "us p50=" + wum::FormatDouble(histogram.p50(), 1) +
                      "us p90=" + wum::FormatDouble(histogram.p90(), 1) +
                      "us p99=" + wum::FormatDouble(histogram.p99(), 1) +
                      "us max=" + wum::FormatDouble(histogram.max, 1) +
                      "us"});
  }
  table.Render(&std::cout);
}

/// Durable checkpointing configuration (--checkpoint-dir and friends),
/// parsed identically for every durable tool.
struct CheckpointConfig {
  std::string dir;
  std::uint64_t every_records = 100000;
  bool resume = false;
};

/// Which optional surfaces a tool opts into.
struct RuntimeFeatures {
  /// Accept --checkpoint-dir/--checkpoint-every-records/--resume.
  bool durability = false;
  /// Keep the metric registry live even without --metrics-out (daemons:
  /// the admin STATS command must always have numbers to report).
  bool always_metrics = false;
  /// Accept --http-port and run a standalone MetricsHttpServer scrape
  /// endpoint for the duration of the run. For long-running tools with
  /// no LogServer poll loop to ride (websra_sessionize --streaming);
  /// websra_serve exposes /metrics through the server itself instead.
  bool scrape_server = false;
};

/// The started runtime: a metric registry the tool wires into its
/// components, the optional trace recorder and periodic reporter, and
/// the parsed checkpoint configuration. Start() at the top of Run,
/// Finish() at the bottom.
class ToolRuntime {
 public:
  /// The runtime's flag names, for Flags::CheckKnown. Splice into the
  /// tool's own set.
  static std::set<std::string> FlagNames(const RuntimeFeatures& features) {
    std::set<std::string> names = {"metrics-out", "metrics-every",
                                   "metrics-series", "log-level", "trace-out"};
    if (features.durability) {
      names.insert({"checkpoint-dir", "checkpoint-every-records", "resume"});
    }
    if (features.scrape_server) {
      names.insert("http-port");
    }
    return names;
  }

  /// `known` plus the runtime's flags, for CheckKnown.
  static std::set<std::string> WithFlags(std::set<std::string> known,
                                         const RuntimeFeatures& features) {
    std::set<std::string> names = FlagNames(features);
    known.insert(names.begin(), names.end());
    return known;
  }

  /// Applies --log-level, activates the registry (--metrics-out,
  /// --metrics-every, or always_metrics), starts the --trace-out
  /// recorder and the --metrics-every reporter, and parses the
  /// checkpoint flags when the tool is durable.
  static wum::Result<ToolRuntime> Start(const Flags& flags,
                                        RuntimeFeatures features) {
    // A peer that disappears mid-reply must surface as EPIPE on the
    // write, never as a process-killing SIGPIPE. The socket layer also
    // passes MSG_NOSIGNAL per send, but stdout/stderr pipes (a died
    // `websra_serve | head`) have no such flag — the process-wide
    // disposition is the backstop.
#if defined(__unix__) || defined(__APPLE__)
    std::signal(SIGPIPE, SIG_IGN);
#endif
    ToolRuntime runtime;
    runtime.features_ = features;
    runtime.registry_ = std::make_unique<wum::obs::MetricRegistry>();
    if (flags.Has("log-level")) {
      WUM_ASSIGN_OR_RETURN(std::string name, flags.GetRequired("log-level"));
      WUM_ASSIGN_OR_RETURN(wum::obs::LogLevel level,
                           wum::obs::ParseLogLevel(name));
      wum::obs::Logger::Default().set_min_level(level);
    }
    if (features.always_metrics || flags.Has("metrics-out") ||
        flags.Has("metrics-every") ||
        (features.scrape_server && flags.Has("http-port"))) {
      runtime.metrics_ = runtime.registry_.get();
    }
    if (runtime.metrics_ != nullptr) {
      // Process identity + uptime, uniform across every tool:
      // `wum_build_info{...} 1` in the Prometheus exposition, the
      // "infos" section in the JSON export. Tools append run-specific
      // labels (engine config fingerprint) via SetBuildLabel.
      runtime.build_labels_ = {{"version", WEBSRA_VERSION},
                               {"git", WEBSRA_GIT_DESCRIBE}};
      runtime.registry_->SetInfo("build.info", runtime.build_labels_);
      wum::obs::Gauge uptime =
          runtime.registry_->GetGauge("obs.uptime_seconds");
      const double started_us = wum::obs::internal::NowMicros();
      runtime.registry_->AddProbe([uptime, started_us]() mutable {
        const double now_us = wum::obs::internal::NowMicros();
        uptime.Set(now_us > started_us
                       ? static_cast<std::uint64_t>((now_us - started_us) /
                                                    1e6)
                       : 0);
      });
    }
    if (flags.Has("trace-out")) {
      wum::obs::TraceRecorder::Options options;
      options.metrics = runtime.metrics_;
      runtime.trace_ = std::make_unique<wum::obs::TraceRecorder>(options);
    }
    if (flags.Has("metrics-every")) {
      WUM_ASSIGN_OR_RETURN(std::uint64_t seconds,
                           flags.GetUint("metrics-every", 1));
      if (seconds == 0) {
        return wum::Status::InvalidArgument(
            "--metrics-every must be >= 1 second");
      }
      wum::obs::MetricsReporter::Options options;
      options.interval = std::chrono::seconds(seconds);
      options.path =
          flags.GetString("metrics-series", kDefaultMetricsSeriesPath);
      WUM_ASSIGN_OR_RETURN(runtime.reporter_,
                           wum::obs::MetricsReporter::Start(
                               runtime.registry_.get(), std::move(options)));
    } else if (flags.Has("metrics-series")) {
      return wum::Status::InvalidArgument(
          "--metrics-series requires --metrics-every");
    }
    if (features.durability) {
      if (flags.Has("checkpoint-dir")) {
        CheckpointConfig config;
        WUM_ASSIGN_OR_RETURN(config.dir, flags.GetRequired("checkpoint-dir"));
        WUM_ASSIGN_OR_RETURN(
            config.every_records,
            flags.GetUint("checkpoint-every-records", 100000));
        if (config.every_records == 0) {
          return wum::Status::InvalidArgument(
              "--checkpoint-every-records must be >= 1");
        }
        config.resume = flags.Has("resume");
        runtime.checkpoint_ = std::move(config);
      } else if (flags.Has("checkpoint-every-records") ||
                 flags.Has("resume")) {
        return wum::Status::InvalidArgument(
            "--checkpoint-every-records/--resume require --checkpoint-dir");
      }
    }
    if (features.scrape_server && flags.Has("http-port")) {
      WUM_ASSIGN_OR_RETURN(std::uint64_t port, flags.GetUint("http-port", 0));
      if (port > 65535) {
        return wum::Status::InvalidArgument("--http-port must be <= 65535");
      }
      WUM_ASSIGN_OR_RETURN(
          runtime.scrape_server_,
          wum::net::MetricsHttpServer::Start(
              "127.0.0.1", static_cast<std::uint16_t>(port),
              runtime.registry_.get()));
      std::cout << "metrics endpoint on http://127.0.0.1:"
                << runtime.scrape_server_->port() << "/metrics\n";
    }
    return runtime;
  }

  /// The registry for instrumented components, or null when metrics are
  /// disabled (components then hold disabled handles and skip the
  /// clock). Non-null whenever always_metrics was requested.
  wum::obs::MetricRegistry* metrics() const { return metrics_; }

  wum::obs::TraceRecorder* trace() const { return trace_.get(); }

  /// Handle for instrumented components; disabled without --trace-out.
  wum::obs::Tracer tracer() const { return wum::obs::TracerIn(trace_.get()); }

  /// Parsed --checkpoint-dir configuration; nullopt when absent (or the
  /// tool is not durable).
  const std::optional<CheckpointConfig>& checkpoint() const {
    return checkpoint_;
  }

  /// The --http-port scrape endpoint, or null when the feature is off or
  /// the flag absent.
  const wum::net::MetricsHttpServer* scrape_server() const {
    return scrape_server_.get();
  }

  /// Adds (or overwrites) one label on the wum_build_info metric —
  /// run-specific identity like the engine config fingerprint, set once
  /// the tool has parsed its own flags. No-op when metrics are off.
  void SetBuildLabel(const std::string& key, const std::string& value) {
    if (metrics_ == nullptr) return;
    for (auto& [existing_key, existing_value] : build_labels_) {
      if (existing_key == key) {
        existing_value = value;
        registry_->SetInfo("build.info", build_labels_);
        return;
      }
    }
    build_labels_.emplace_back(key, value);
    registry_->SetInfo("build.info", build_labels_);
  }

  /// End-of-run counterpart: stops the reporter (writing its final
  /// snapshot), exports the trace, writes --metrics-out and prints the
  /// summary table whenever metrics were enabled.
  wum::Status Finish(const Flags& flags) {
    if (reporter_ != nullptr) {
      WUM_RETURN_NOT_OK(reporter_->Stop());
      std::cout << "wrote " << reporter_->snapshots_written()
                << " metric snapshots to "
                << flags.GetString("metrics-series", kDefaultMetricsSeriesPath)
                << "\n";
    }
    if (trace_ != nullptr) {
      WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("trace-out"));
      WUM_RETURN_NOT_OK(trace_->WriteChromeTrace(path));
      std::cout << "wrote trace (" << trace_->events_recorded() << " events, "
                << trace_->events_dropped() << " dropped) to " << path << "\n";
    }
    if (metrics_ != nullptr) {
      const wum::obs::MetricsSnapshot snapshot = metrics_->Snapshot();
      PrintMetricsSummary(snapshot);
      if (flags.Has("metrics-out")) {
        WUM_ASSIGN_OR_RETURN(std::string path,
                             flags.GetRequired("metrics-out"));
        WUM_RETURN_NOT_OK(wum::obs::WriteMetricsFile(snapshot, path));
        std::cout << "wrote metrics to " << path << "\n";
      }
    }
    return wum::Status::OK();
  }

 private:
  ToolRuntime() = default;

  // Owned registry: a stable address for component wiring while the
  // runtime itself stays movable (Result-friendly).
  std::unique_ptr<wum::obs::MetricRegistry> registry_;
  wum::obs::MetricRegistry* metrics_ = nullptr;
  std::unique_ptr<wum::obs::TraceRecorder> trace_;
  std::unique_ptr<wum::obs::MetricsReporter> reporter_;
  std::unique_ptr<wum::net::MetricsHttpServer> scrape_server_;
  RuntimeFeatures features_;
  std::optional<CheckpointConfig> checkpoint_;
  std::vector<std::pair<std::string, std::string>> build_labels_;
};

}  // namespace wum_tools

#endif  // WEBSRA_TOOLS_TOOL_RUNTIME_H_
