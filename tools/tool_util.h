// Shared plumbing for the websra_* command line tools: a minimal
// "--flag value" / "--switch" parser with typed accessors. The shared
// observability/durability flag surface lives in tool_runtime.h
// (ToolRuntime).

#ifndef WEBSRA_TOOLS_TOOL_UTIL_H_
#define WEBSRA_TOOLS_TOOL_UTIL_H_

#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "wum/common/result.h"
#include "wum/common/string_util.h"
#include "wum/mine/options.h"

namespace wum_tools {

/// Parsed command line: long flags with values plus boolean switches.
class Flags {
 public:
  /// `switches` names the flags that take no value.
  static wum::Result<Flags> Parse(int argc, char** argv,
                                  const std::set<std::string>& switches) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
        return wum::Status::InvalidArgument("unexpected argument '" + arg +
                                            "'");
      }
      std::string name = arg.substr(2);
      if (switches.contains(name)) {
        flags.switches_.insert(name);
        continue;
      }
      if (i + 1 >= argc) {
        return wum::Status::InvalidArgument("missing value for --" + name);
      }
      flags.values_[name] = argv[++i];
    }
    return flags;
  }

  bool Has(const std::string& name) const {
    return switches_.contains(name) || values_.contains(name);
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  wum::Result<std::string> GetRequired(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return wum::Status::InvalidArgument("missing required flag --" + name);
    }
    return it->second;
  }

  wum::Result<std::uint64_t> GetUint(const std::string& name,
                                     std::uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return wum::ParseUint64(it->second);
  }

  wum::Result<double> GetDouble(const std::string& name,
                                double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return wum::ParseDouble(it->second);
  }

  /// Flags that were provided but never consumed by the tool (typo
  /// detection). Call after all Get*/Has calls... kept simple: tools
  /// list their known flags explicitly.
  wum::Status CheckKnown(const std::set<std::string>& known) const {
    for (const auto& [name, value] : values_) {
      if (!known.contains(name)) {
        return wum::Status::InvalidArgument("unknown flag --" + name);
      }
    }
    for (const std::string& name : switches_) {
      if (!known.contains(name)) {
        return wum::Status::InvalidArgument("unknown flag --" + name);
      }
    }
    return wum::Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

/// Shared "--mine-*" flag surface for the streaming tools. Mining is
/// off unless --mine-topk is given; --mine-lengths L tracks paths of
/// lengths 2..L (default 3) and --mine-window N decays counts every N
/// mined paths (default 0 = cumulative). Usage text:
/// "[--mine-topk K [--mine-lengths L=3] [--mine-window N=0]]".
inline wum::Result<std::optional<wum::mine::MinerOptions>> GetMiningFlags(
    const Flags& flags) {
  if (!flags.Has("mine-topk")) {
    if (flags.Has("mine-lengths") || flags.Has("mine-window")) {
      return wum::Status::InvalidArgument(
          "--mine-lengths/--mine-window require --mine-topk");
    }
    return std::optional<wum::mine::MinerOptions>();
  }
  wum::mine::MinerOptions mining;
  WUM_ASSIGN_OR_RETURN(std::uint64_t top_k, flags.GetUint("mine-topk", 0));
  WUM_ASSIGN_OR_RETURN(std::uint64_t max_length,
                       flags.GetUint("mine-lengths", mining.max_length));
  WUM_ASSIGN_OR_RETURN(std::uint64_t window, flags.GetUint("mine-window", 0));
  mining.top_k = static_cast<std::size_t>(top_k);
  mining.max_length = static_cast<std::size_t>(max_length);
  mining.window_paths = static_cast<std::uint64_t>(window);
  WUM_RETURN_NOT_OK(wum::mine::ValidateMinerOptions(mining));
  return std::optional<wum::mine::MinerOptions>(mining);
}

/// Prints a failed status and converts it to a process exit code.
inline int FailWith(const wum::Status& status, const char* usage) {
  std::cerr << "error: " << status.ToString() << "\n\n" << usage;
  return 2;
}

}  // namespace wum_tools

#endif  // WEBSRA_TOOLS_TOOL_UTIL_H_
