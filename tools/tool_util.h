// Shared plumbing for the websra_* command line tools: a minimal
// "--flag value" / "--switch" parser with typed accessors.

#ifndef WEBSRA_TOOLS_TOOL_UTIL_H_
#define WEBSRA_TOOLS_TOOL_UTIL_H_

#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/common/string_util.h"
#include "wum/common/table.h"
#include "wum/obs/log.h"
#include "wum/obs/metrics.h"
#include "wum/obs/reporter.h"
#include "wum/obs/trace.h"

namespace wum_tools {

/// Parsed command line: long flags with values plus boolean switches.
class Flags {
 public:
  /// `switches` names the flags that take no value.
  static wum::Result<Flags> Parse(int argc, char** argv,
                                  const std::set<std::string>& switches) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
        return wum::Status::InvalidArgument("unexpected argument '" + arg +
                                            "'");
      }
      std::string name = arg.substr(2);
      if (switches.contains(name)) {
        flags.switches_.insert(name);
        continue;
      }
      if (i + 1 >= argc) {
        return wum::Status::InvalidArgument("missing value for --" + name);
      }
      flags.values_[name] = argv[++i];
    }
    return flags;
  }

  bool Has(const std::string& name) const {
    return switches_.contains(name) || values_.contains(name);
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  wum::Result<std::string> GetRequired(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return wum::Status::InvalidArgument("missing required flag --" + name);
    }
    return it->second;
  }

  wum::Result<std::uint64_t> GetUint(const std::string& name,
                                     std::uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return wum::ParseUint64(it->second);
  }

  wum::Result<double> GetDouble(const std::string& name,
                                double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return wum::ParseDouble(it->second);
  }

  /// Flags that were provided but never consumed by the tool (typo
  /// detection). Call after all Get*/Has calls... kept simple: tools
  /// list their known flags explicitly.
  wum::Status CheckKnown(const std::set<std::string>& known) const {
    for (const auto& [name, value] : values_) {
      if (!known.contains(name)) {
        return wum::Status::InvalidArgument("unknown flag --" + name);
      }
    }
    for (const std::string& name : switches_) {
      if (!known.contains(name)) {
        return wum::Status::InvalidArgument("unknown flag --" + name);
      }
    }
    return wum::Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

/// Prints a failed status and converts it to a process exit code.
inline int FailWith(const wum::Status& status, const char* usage) {
  std::cerr << "error: " << status.ToString() << "\n\n" << usage;
  return 2;
}

/// Where --metrics-every snapshots land unless --metrics-series says
/// otherwise.
inline constexpr char kDefaultMetricsSeriesPath[] = "metrics.series.jsonl";

/// The flags every websra_* tool takes for the wum::obs layer; splice
/// into the tool's CheckKnown set.
inline const std::set<std::string>& ObsFlagNames() {
  static const std::set<std::string> kNames = {
      "metrics-out", "metrics-every", "metrics-series", "log-level",
      "trace-out"};
  return kNames;
}

/// `known` plus the shared observability flags, for CheckKnown.
inline std::set<std::string> WithObsFlags(std::set<std::string> known) {
  known.insert(ObsFlagNames().begin(), ObsFlagNames().end());
  return known;
}

/// Human-readable rollup of a metrics snapshot, rendered with
/// wum::Table. Shared so websra_simulate and websra_sessionize print
/// identical tables.
inline void PrintMetricsSummary(const wum::obs::MetricsSnapshot& snapshot) {
  wum::Table table({"metric", "kind", "value"});
  for (const auto& counter : snapshot.counters) {
    table.AddRow({counter.name, "counter", std::to_string(counter.value)});
  }
  for (const auto& gauge : snapshot.gauges) {
    table.AddRow({gauge.name, "gauge", std::to_string(gauge.value)});
  }
  for (const auto& histogram : snapshot.histograms) {
    table.AddRow({histogram.name, "histogram",
                  "count=" + std::to_string(histogram.count) +
                      " mean=" + wum::FormatDouble(histogram.mean(), 1) +
                      "us p50=" + wum::FormatDouble(histogram.p50(), 1) +
                      "us p90=" + wum::FormatDouble(histogram.p90(), 1) +
                      "us p99=" + wum::FormatDouble(histogram.p99(), 1) +
                      "us max=" + wum::FormatDouble(histogram.max, 1) +
                      "us"});
  }
  table.Render(&std::cout);
}

/// The live observability state behind the shared flags: a registry
/// pointer (null when metrics are off), the --trace-out recorder and
/// the --metrics-every reporter, each absent unless its flag was given.
struct ObsSession {
  wum::obs::MetricRegistry* metrics = nullptr;
  std::unique_ptr<wum::obs::TraceRecorder> trace;
  std::unique_ptr<wum::obs::MetricsReporter> reporter;

  /// Handle for instrumented components; disabled without --trace-out.
  wum::obs::Tracer tracer() const { return wum::obs::TracerIn(trace.get()); }
};

/// Applies --log-level and starts the --trace-out recorder and the
/// --metrics-every reporter. `registry` must outlive the session; it is
/// activated (metrics != nullptr) when --metrics-out or --metrics-every
/// is present — tracing alone does not pay for metric mirrors.
inline wum::Result<ObsSession> StartObs(const Flags& flags,
                                        wum::obs::MetricRegistry* registry) {
  ObsSession session;
  if (flags.Has("log-level")) {
    WUM_ASSIGN_OR_RETURN(std::string name, flags.GetRequired("log-level"));
    WUM_ASSIGN_OR_RETURN(wum::obs::LogLevel level,
                         wum::obs::ParseLogLevel(name));
    wum::obs::Logger::Default().set_min_level(level);
  }
  if (flags.Has("metrics-out") || flags.Has("metrics-every")) {
    session.metrics = registry;
  }
  if (flags.Has("trace-out")) {
    wum::obs::TraceRecorder::Options options;
    options.metrics = session.metrics;
    session.trace = std::make_unique<wum::obs::TraceRecorder>(options);
  }
  if (flags.Has("metrics-every")) {
    WUM_ASSIGN_OR_RETURN(std::uint64_t seconds,
                         flags.GetUint("metrics-every", 1));
    if (seconds == 0) {
      return wum::Status::InvalidArgument(
          "--metrics-every must be >= 1 second");
    }
    wum::obs::MetricsReporter::Options options;
    options.interval = std::chrono::seconds(seconds);
    options.path = flags.GetString("metrics-series", kDefaultMetricsSeriesPath);
    WUM_ASSIGN_OR_RETURN(
        session.reporter,
        wum::obs::MetricsReporter::Start(registry, std::move(options)));
  } else if (flags.Has("metrics-series")) {
    return wum::Status::InvalidArgument(
        "--metrics-series requires --metrics-every");
  }
  return session;
}

/// End-of-run counterpart: stops the reporter (writing its final
/// snapshot), exports the trace, writes --metrics-out and prints the
/// summary table whenever metrics were enabled.
inline wum::Status FinishObs(const Flags& flags, ObsSession* session) {
  if (session->reporter != nullptr) {
    WUM_RETURN_NOT_OK(session->reporter->Stop());
    std::cout << "wrote " << session->reporter->snapshots_written()
              << " metric snapshots to "
              << flags.GetString("metrics-series", kDefaultMetricsSeriesPath)
              << "\n";
  }
  if (session->trace != nullptr) {
    WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("trace-out"));
    WUM_RETURN_NOT_OK(session->trace->WriteChromeTrace(path));
    std::cout << "wrote trace (" << session->trace->events_recorded()
              << " events, " << session->trace->events_dropped()
              << " dropped) to " << path << "\n";
  }
  if (session->metrics != nullptr) {
    const wum::obs::MetricsSnapshot snapshot = session->metrics->Snapshot();
    PrintMetricsSummary(snapshot);
    if (flags.Has("metrics-out")) {
      WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("metrics-out"));
      WUM_RETURN_NOT_OK(wum::obs::WriteMetricsFile(snapshot, path));
      std::cout << "wrote metrics to " << path << "\n";
    }
  }
  return wum::Status::OK();
}

}  // namespace wum_tools

#endif  // WEBSRA_TOOLS_TOOL_UTIL_H_
