// websra_experiment: runs a Figure 8/9/10-style behaviour sweep with
// custom grids and population sizes — the figure benches as a
// configurable tool, so experiments can be scripted without recompiling.

#include <fstream>
#include <iostream>

#include "tool_util.h"
#include "wum/eval/report.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_experiment --parameter stp|lpp|nip\n"
    "  [--values P1,P2,...]          probabilities in [0, 1)\n"
    "  [--agents N=10000] [--pages N=300] [--out-degree D=15]\n"
    "  [--topology uniform|powerlaw|hierarchical] [--seed S]\n"
    "  [--stp P=0.05] [--lpp P=0.30] [--nip P=0.30]   (fixed values)\n"
    "  [--csv PATH] [--threads N]\n"
    "\n"
    "Runs the paper's evaluation sweep for one behaviour parameter and\n"
    "prints the accuracy series of all four heuristics; the default grid\n"
    "is the paper's (STP: 1..20%, LPP/NIP: 0..90%).\n";

wum::Result<std::vector<double>> ParseValues(const std::string& text) {
  std::vector<double> values;
  for (std::string_view part : wum::SplitString(text, ',')) {
    WUM_ASSIGN_OR_RETURN(double value, wum::ParseDouble(std::string(part)));
    values.push_back(value);
  }
  return values;
}

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown(
      {"parameter", "values", "agents", "pages", "out-degree", "topology",
       "seed", "stp", "lpp", "nip", "csv", "threads"}));
  WUM_ASSIGN_OR_RETURN(std::string parameter_name,
                       flags.GetRequired("parameter"));
  wum::SweepParameter parameter;
  std::vector<double> values;
  if (parameter_name == "stp") {
    parameter = wum::SweepParameter::kStp;
    values = wum::Figure8StpValues();
  } else if (parameter_name == "lpp") {
    parameter = wum::SweepParameter::kLpp;
    values = wum::Figure9LppValues();
  } else if (parameter_name == "nip") {
    parameter = wum::SweepParameter::kNip;
    values = wum::Figure10NipValues();
  } else {
    return wum::Status::InvalidArgument("unknown parameter '" +
                                        parameter_name + "'");
  }
  if (flags.Has("values")) {
    WUM_ASSIGN_OR_RETURN(values, ParseValues(flags.GetString("values", "")));
  }

  wum::ExperimentConfig config = wum::PaperDefaults();
  WUM_ASSIGN_OR_RETURN(std::uint64_t agents, flags.GetUint("agents", 10000));
  config.workload.num_agents = static_cast<std::size_t>(agents);
  WUM_ASSIGN_OR_RETURN(std::uint64_t pages, flags.GetUint("pages", 300));
  config.site.num_pages = static_cast<std::size_t>(pages);
  WUM_ASSIGN_OR_RETURN(config.site.mean_out_degree,
                       flags.GetDouble("out-degree", 15.0));
  WUM_ASSIGN_OR_RETURN(config.seed, flags.GetUint("seed", 20060102));
  WUM_ASSIGN_OR_RETURN(config.profile.stp, flags.GetDouble("stp", 0.05));
  WUM_ASSIGN_OR_RETURN(config.profile.lpp, flags.GetDouble("lpp", 0.30));
  WUM_ASSIGN_OR_RETURN(config.profile.nip, flags.GetDouble("nip", 0.30));
  WUM_ASSIGN_OR_RETURN(std::uint64_t threads, flags.GetUint("threads", 0));
  config.num_threads = static_cast<std::size_t>(threads);
  const std::string topology = flags.GetString("topology", "uniform");
  if (topology == "uniform") {
    config.topology_model = wum::TopologyModel::kUniform;
  } else if (topology == "powerlaw") {
    config.topology_model = wum::TopologyModel::kPowerLaw;
  } else if (topology == "hierarchical") {
    config.topology_model = wum::TopologyModel::kHierarchical;
  } else {
    return wum::Status::InvalidArgument("unknown topology '" + topology +
                                        "'");
  }

  WUM_ASSIGN_OR_RETURN(std::vector<wum::SweepPoint> points,
                       wum::RunSweep(config, parameter, values));
  wum::RenderSweepTable(points, parameter, &std::cout);
  std::cout << "\n# " << wum::SummarizeSweepShape(points) << "\n";
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    std::ofstream csv(csv_path);
    if (!csv) return wum::Status::IoError("cannot open " + csv_path);
    wum::RenderSweepCsv(points, parameter, &csv);
    std::cout << "# csv written to " << csv_path << "\n";
  }
  return wum::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
