// websra_top: a live terminal dashboard over the observability endpoint
// of a running websra daemon. Polls GET /metrics (Prometheus text) from
// `websra_serve --http-port` or `websra_sessionize --http-port`, or
// reads the same exposition from a snapshot file, and renders per-shard
// throughput, ingest->emit latency, watermark lag and queue depths.
//
// `--once --format json` emits one deterministic machine-readable
// snapshot (fixed key order) for CI assertions; `--lint FILE` runs the
// exposition validator and exits.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "tool_util.h"
#include "wum/common/result.h"
#include "wum/common/string_util.h"
#include "wum/common/table.h"
#include "wum/net/http.h"
#include "wum/obs/exposition.h"
#include "wum/obs/metrics.h"

namespace {

std::string Usage() {
  return "usage: websra_top --port N [--host ADDR=127.0.0.1]\n"
         "       websra_top --file EXPOSITION\n"
         "       websra_top --lint EXPOSITION\n"
         "  [--interval-ms N=2000] [--once] [--format text|json]\n"
         "\n"
         "Polls the /metrics endpoint a websra daemon exposes with\n"
         "--http-port (see docs/observability.md) and renders a\n"
         "refreshing dashboard: per-shard records/sec, p99 ingest->emit\n"
         "latency, event-time watermarks and lag, queue depths, dead\n"
         "letters, connection and mining stats. Rates come from\n"
         "successive polls, so the first frame shows '-'.\n"
         "\n"
         "--file renders one frame from exposition text on disk (a\n"
         "scrape saved with curl, or a snapshot) instead of polling.\n"
         "--once prints a single frame and exits; with --format json the\n"
         "frame is one JSON object with a fixed key order, for scripts\n"
         "and CI. --lint validates exposition text (# TYPE coverage,\n"
         "name charset, cumulative histogram buckets) and exits 0/1.\n";
}

/// One parsed exposition: unlabeled samples by metric name, plus the
/// build-info labels (the one labeled family the dashboard reads).
struct Frame {
  std::map<std::string, double> samples;
  std::vector<std::pair<std::string, std::string>> build_labels;
  std::chrono::steady_clock::time_point at;
};

/// Extracts `key="value"` pairs from a Prometheus label block; good
/// enough for labels this module's exporter writes (no escaped quotes in
/// build-info values worth preserving beyond unescaping).
std::vector<std::pair<std::string, std::string>> ParseLabels(
    std::string_view block) {
  std::vector<std::pair<std::string, std::string>> labels;
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::size_t eq = block.find('=', pos);
    if (eq == std::string_view::npos) break;
    std::string key(block.substr(pos, eq - pos));
    while (!key.empty() && (key.front() == ',' || key.front() == ' ')) {
      key.erase(key.begin());
    }
    std::size_t value_start = eq + 1;
    if (value_start >= block.size() || block[value_start] != '"') break;
    ++value_start;
    std::string value;
    std::size_t i = value_start;
    for (; i < block.size() && block[i] != '"'; ++i) {
      if (block[i] == '\\' && i + 1 < block.size()) {
        ++i;
        value += block[i] == 'n' ? '\n' : block[i];
      } else {
        value += block[i];
      }
    }
    labels.emplace_back(std::move(key), std::move(value));
    pos = i + 1;
  }
  return labels;
}

/// Parses exposition text into a Frame. Labeled samples other than
/// wum_build_info (histogram buckets) are skipped: the dashboard reads
/// the exporter's _p50/_p90/_p99 gauges instead.
Frame ParseExposition(std::string_view text) {
  Frame frame;
  frame.at = std::chrono::steady_clock::now();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) continue;
    if (brace != std::string_view::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string_view::npos) continue;
      if (line.substr(0, brace) == "wum_build_info") {
        frame.build_labels = ParseLabels(line.substr(brace + 1,
                                                     close - brace - 1));
      }
      continue;
    }
    const std::string name(line.substr(0, space));
    const std::string value(line.substr(space + 1));
    frame.samples[name] = std::strtod(value.c_str(), nullptr);
  }
  return frame;
}

double Sample(const Frame& frame, const std::string& name) {
  const auto it = frame.samples.find(name);
  return it == frame.samples.end() ? 0.0 : it->second;
}

bool HasSample(const Frame& frame, const std::string& name) {
  return frame.samples.find(name) != frame.samples.end();
}

std::string ShardMetric(std::size_t shard, const char* suffix) {
  return "wum_engine_shard" + std::to_string(shard) + "_" + suffix;
}

std::size_t CountShards(const Frame& frame) {
  std::size_t shards = 0;
  while (HasSample(frame, ShardMetric(shards, "records_in"))) ++shards;
  return shards;
}

/// Sum of one per-shard metric across every shard (kBlock stall time,
/// shed totals).
double ShardSum(const Frame& frame, const char* suffix) {
  double total = 0.0;
  const std::size_t shards = CountShards(frame);
  for (std::size_t i = 0; i < shards; ++i) {
    total += Sample(frame, ShardMetric(i, suffix));
  }
  return total;
}

/// Records/sec between two polls of one counter; negative on restart
/// (counter reset) is clamped to 0. nullopt without a prior frame.
std::optional<double> Rate(const Frame& now, const Frame* prev,
                           const std::string& name) {
  if (prev == nullptr) return std::nullopt;
  const double seconds =
      std::chrono::duration<double>(now.at - prev->at).count();
  if (seconds <= 0.0) return std::nullopt;
  const double delta = Sample(now, name) - Sample(*prev, name);
  return delta < 0.0 ? 0.0 : delta / seconds;
}

std::string FormatRate(const std::optional<double>& rate) {
  return rate.has_value() ? wum::FormatDouble(*rate, 1) : "-";
}

void RenderText(const Frame& frame, const Frame* prev, bool clear_screen,
                std::ostream* out) {
  if (clear_screen) *out << "\x1b[2J\x1b[H";
  *out << "websra_top";
  for (const auto& [key, value] : frame.build_labels) {
    *out << "  " << key << "=" << value;
  }
  *out << "\n";
  *out << "uptime " << Sample(frame, "wum_obs_uptime_seconds")
       << "s  watermark lag "
       << Sample(frame, "wum_engine_watermark_lag_seconds") << "s  skew "
       << Sample(frame, "wum_engine_watermark_skew_seconds") << "s\n";

  const std::size_t shards = CountShards(frame);
  wum::Table table({"shard", "records", "rec/s", "sessions", "p99 lat us",
                    "watermark", "queue", "dead", "shed"});
  for (std::size_t i = 0; i < shards; ++i) {
    table.AddRow(
        {std::to_string(i),
         std::to_string(
             static_cast<std::uint64_t>(Sample(frame,
                                               ShardMetric(i, "records_in")))),
         FormatRate(Rate(frame, prev, ShardMetric(i, "records_in"))),
         std::to_string(static_cast<std::uint64_t>(
             Sample(frame, ShardMetric(i, "sessions_emitted")))),
         wum::FormatDouble(
             Sample(frame, ShardMetric(i, "ingest_to_emit_latency_us_p99")),
             1),
         std::to_string(static_cast<std::uint64_t>(
             Sample(frame, ShardMetric(i, "watermark_seconds")))),
         std::to_string(static_cast<std::uint64_t>(
             Sample(frame, ShardMetric(i, "queue_depth")))),
         std::to_string(static_cast<std::uint64_t>(
             Sample(frame, ShardMetric(i, "dead_letter")))),
         std::to_string(
             static_cast<std::uint64_t>(Sample(frame,
                                               ShardMetric(i, "shed"))))});
  }
  table.Render(out);

  *out << "net: " << Sample(frame, "wum_net_conn_active") << " active conns, "
       << Sample(frame, "wum_net_bytes_read") << " bytes read ("
       << FormatRate(Rate(frame, prev, "wum_net_bytes_read")) << "/s), "
       << Sample(frame, "wum_net_http_requests") << " scrapes, pause "
       << Sample(frame, "wum_net_conn_pause_time_ms") << "ms, blocked "
       << ShardSum(frame, "blocked_wait_us") << "us\n";
  if (HasSample(frame, "wum_mining_sessions")) {
    *out << "mining: " << Sample(frame, "wum_mining_sessions")
         << " sessions, " << Sample(frame, "wum_mining_paths") << " paths, "
         << Sample(frame, "wum_mining_tracked") << " tracked, queue "
         << Sample(frame, "wum_mining_queue_depth") << "\n";
  }
  out->flush();
}

/// The --format json frame: one object, fixed key order, numbers only
/// (no timing-dependent rates), so CI can assert on stable structure.
void RenderJson(const Frame& frame, std::ostream* out) {
  std::ostringstream json;
  json << "{\"build\":{";
  for (std::size_t i = 0; i < frame.build_labels.size(); ++i) {
    if (i > 0) json << ",";
    json << "\"" << frame.build_labels[i].first << "\":\""
         << wum::obs::internal::EscapeJson(frame.build_labels[i].second)
         << "\"";
  }
  json << "},\"uptime_seconds\":"
       << Sample(frame, "wum_obs_uptime_seconds")
       << ",\"watermark_lag_seconds\":"
       << Sample(frame, "wum_engine_watermark_lag_seconds")
       << ",\"watermark_skew_seconds\":"
       << Sample(frame, "wum_engine_watermark_skew_seconds")
       << ",\"shards\":[";
  const std::size_t shards = CountShards(frame);
  for (std::size_t i = 0; i < shards; ++i) {
    if (i > 0) json << ",";
    json << "{\"index\":" << i << ",\"records_in\":"
         << Sample(frame, ShardMetric(i, "records_in"))
         << ",\"sessions_emitted\":"
         << Sample(frame, ShardMetric(i, "sessions_emitted"))
         << ",\"p99_ingest_to_emit_us\":"
         << Sample(frame, ShardMetric(i, "ingest_to_emit_latency_us_p99"))
         << ",\"watermark_seconds\":"
         << Sample(frame, ShardMetric(i, "watermark_seconds"))
         << ",\"queue_depth\":"
         << Sample(frame, ShardMetric(i, "queue_depth"))
         << ",\"dead_letters\":"
         << Sample(frame, ShardMetric(i, "dead_letter")) << ",\"shed\":"
         << Sample(frame, ShardMetric(i, "shed")) << "}";
  }
  json << "],\"net\":{\"active_connections\":"
       << Sample(frame, "wum_net_conn_active") << ",\"bytes_read\":"
       << Sample(frame, "wum_net_bytes_read") << ",\"http_requests\":"
       << Sample(frame, "wum_net_http_requests") << ",\"pause_time_ms\":"
       << Sample(frame, "wum_net_conn_pause_time_ms")
       << ",\"blocked_wait_us\":" << ShardSum(frame, "blocked_wait_us")
       << "},\"mining\":{\"sessions\":"
       << Sample(frame, "wum_mining_sessions") << ",\"paths\":"
       << Sample(frame, "wum_mining_paths") << ",\"tracked\":"
       << Sample(frame, "wum_mining_tracked") << ",\"queue_depth\":"
       << Sample(frame, "wum_mining_queue_depth") << "}}";
  *out << json.str() << "\n";
  out->flush();
}

wum::Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return wum::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown({"host", "port", "file", "lint",
                                      "interval-ms", "once", "format"}));
  if (flags.Has("lint")) {
    WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("lint"));
    WUM_ASSIGN_OR_RETURN(std::string text, ReadFileText(path));
    WUM_RETURN_NOT_OK(wum::obs::LintExposition(text));
    std::cout << path << ": exposition OK\n";
    return wum::Status::OK();
  }

  const std::string format = flags.GetString("format", "text");
  if (format != "text" && format != "json") {
    return wum::Status::InvalidArgument("unknown format '" + format + "'");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t interval_ms,
                       flags.GetUint("interval-ms", 2000));
  if (interval_ms == 0) {
    return wum::Status::InvalidArgument("--interval-ms must be >= 1");
  }
  const bool once = flags.Has("once") || flags.Has("file");
  if (format == "json" && !once) {
    return wum::Status::InvalidArgument("--format json requires --once");
  }

  const auto fetch = [&flags]() -> wum::Result<std::string> {
    if (flags.Has("file")) {
      WUM_ASSIGN_OR_RETURN(std::string path, flags.GetRequired("file"));
      return ReadFileText(path);
    }
    WUM_ASSIGN_OR_RETURN(std::uint64_t port, flags.GetUint("port", 0));
    if (port == 0 || port > 65535) {
      return wum::Status::InvalidArgument(
          "--port (1..65535) or --file is required");
    }
    return wum::net::HttpGet(flags.GetString("host", "127.0.0.1"),
                             static_cast<std::uint16_t>(port), "/metrics");
  };

  std::optional<Frame> previous;
  while (true) {
    WUM_ASSIGN_OR_RETURN(std::string text, fetch());
    const Frame frame = ParseExposition(text);
    if (format == "json") {
      RenderJson(frame, &std::cout);
    } else {
      RenderText(frame, previous.has_value() ? &*previous : nullptr, !once,
                 &std::cout);
    }
    if (once) return wum::Status::OK();
    previous = frame;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage = Usage();
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"once"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), usage.c_str());
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, usage.c_str());
  return 0;
}
