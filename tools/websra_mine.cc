// websra_mine: frequent navigation pattern discovery over a session
// file — the WUM stage the paper's pipeline feeds.

#include <algorithm>
#include <iostream>

#include "tool_util.h"
#include "wum/mining/apriori_all.h"
#include "wum/session/session_io.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_mine --sessions FILE\n"
    "  [--min-support N | --support-frac F=0.005]\n"
    "  [--mode contiguous|subsequence] [--max-length K=0]\n"
    "  [--maximal] [--top N=25]\n"
    "\n"
    "Mines frequent navigation patterns from a websra session file and\n"
    "prints them sorted by support (ties by length).\n";

wum::Status Run(const wum_tools::Flags& flags) {
  WUM_RETURN_NOT_OK(flags.CheckKnown({"sessions", "min-support",
                                      "support-frac", "mode", "max-length",
                                      "maximal", "top"}));
  WUM_ASSIGN_OR_RETURN(std::string sessions_path,
                       flags.GetRequired("sessions"));
  WUM_ASSIGN_OR_RETURN(std::vector<wum::UserSession> sessions,
                       wum::ReadSessionsFile(sessions_path));
  std::vector<std::vector<wum::PageId>> corpus;
  corpus.reserve(sessions.size());
  for (const wum::UserSession& entry : sessions) {
    corpus.push_back(entry.session.PageSequence());
  }

  wum::AprioriOptions options;
  if (flags.Has("min-support")) {
    WUM_ASSIGN_OR_RETURN(std::uint64_t support, flags.GetUint("min-support", 2));
    options.min_support = static_cast<std::size_t>(support);
  } else {
    WUM_ASSIGN_OR_RETURN(double fraction,
                         flags.GetDouble("support-frac", 0.005));
    options.min_support = std::max<std::size_t>(
        2, static_cast<std::size_t>(fraction *
                                    static_cast<double>(corpus.size())));
  }
  const std::string mode_name = flags.GetString("mode", "contiguous");
  if (mode_name == "contiguous") {
    options.mode = wum::MatchMode::kContiguous;
  } else if (mode_name == "subsequence") {
    options.mode = wum::MatchMode::kSubsequence;
  } else {
    return wum::Status::InvalidArgument("unknown mode '" + mode_name + "'");
  }
  WUM_ASSIGN_OR_RETURN(std::uint64_t max_length, flags.GetUint("max-length", 0));
  options.max_length = static_cast<std::size_t>(max_length);

  wum::AprioriAllMiner miner(options);
  WUM_ASSIGN_OR_RETURN(std::vector<wum::SequentialPattern> patterns,
                       miner.Mine(corpus));
  if (flags.Has("maximal")) {
    patterns = wum::FilterMaximalPatterns(patterns, options.mode);
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const wum::SequentialPattern& a,
               const wum::SequentialPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.pages.size() != b.pages.size()) {
                return a.pages.size() > b.pages.size();
              }
              return a.pages < b.pages;
            });

  std::cout << "# " << corpus.size() << " sessions, min support "
            << options.min_support << ", " << wum::MatchModeToString(options.mode)
            << (flags.Has("maximal") ? ", maximal only" : "") << "\n"
            << "# " << patterns.size() << " patterns\n";
  WUM_ASSIGN_OR_RETURN(std::uint64_t top, flags.GetUint("top", 25));
  for (std::size_t i = 0; i < patterns.size() && i < top; ++i) {
    std::cout << wum::PatternToString(patterns[i]) << "\n";
  }
  return wum::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"maximal"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
