// websra_simulate: generates a synthetic web site, simulates a user
// population on it, and writes the three artifacts the rest of the
// toolchain consumes — the topology file, the server access log, and the
// ground-truth session file.

#include <fstream>
#include <iostream>

#include "tool_runtime.h"
#include "tool_util.h"
#include "wum/clf/clf_writer.h"
#include "wum/eval/experiment.h"
#include "wum/obs/metrics.h"
#include "wum/session/session_io.h"
#include "wum/simulator/workload.h"
#include "wum/topology/graph_io.h"

namespace {

constexpr char kUsage[] =
    "usage: websra_simulate --graph-out FILE --log-out FILE "
    "[--truth-out FILE]\n"
    "  [--pages N=300] [--out-degree D=15] [--entry-fraction F=0.05]\n"
    "  [--topology uniform|powerlaw|hierarchical]\n"
    "  [--agents N=10000] [--seed S] [--stp P=0.05] [--lpp P=0.30] "
    "[--nip P=0.30]\n"
    "  [--proxy-group K=1] [--start-window SECONDS=604800] [--combined]\n"
    "  [--metrics-out FILE] [--metrics-every SEC [--metrics-series FILE]]\n"
    "  [--trace-out FILE] [--log-level debug|info|warn|error|off]\n"
    "  [--format text|binary]\n"
    "\n"
    "Writes a websra topology file, a Common Log Format access log\n"
    "(Combined format with --combined) and, optionally, the simulator's\n"
    "ground-truth sessions for websra_evaluate. --metrics-out dumps the\n"
    "simulator's generation-throughput metrics (wum::obs snapshot, CSV\n"
    "when FILE ends in .csv, JSON otherwise) and summarizes them on\n"
    "stdout. --metrics-every appends a snapshot every SEC seconds to\n"
    "--metrics-series (default metrics.series.jsonl). --trace-out writes\n"
    "a Chrome trace-event JSON of the generation phases (site, workload,\n"
    "log, truth) for Perfetto. --log-level (default warn) controls the\n"
    "structured key=value diagnostics on stderr. --format selects the\n"
    "--truth-out serialization (downstream readers auto-detect either).\n";

wum::Result<wum::TopologyModel> ParseTopology(const std::string& name) {
  if (name == "uniform") return wum::TopologyModel::kUniform;
  if (name == "powerlaw") return wum::TopologyModel::kPowerLaw;
  if (name == "hierarchical") return wum::TopologyModel::kHierarchical;
  return wum::Status::InvalidArgument("unknown topology '" + name + "'");
}

wum::Status Run(const wum_tools::Flags& flags) {
  const wum_tools::RuntimeFeatures features{};
  WUM_RETURN_NOT_OK(flags.CheckKnown(wum_tools::ToolRuntime::WithFlags(
      {"graph-out", "log-out", "truth-out", "pages", "out-degree",
       "entry-fraction", "topology", "agents", "seed", "stp", "lpp", "nip",
       "proxy-group", "start-window", "combined", "format"},
      features)));
  WUM_ASSIGN_OR_RETURN(std::string graph_path, flags.GetRequired("graph-out"));
  WUM_ASSIGN_OR_RETURN(std::string log_path, flags.GetRequired("log-out"));

  wum::SiteGeneratorOptions site;
  WUM_ASSIGN_OR_RETURN(std::uint64_t pages, flags.GetUint("pages", 300));
  site.num_pages = static_cast<std::size_t>(pages);
  WUM_ASSIGN_OR_RETURN(site.mean_out_degree,
                       flags.GetDouble("out-degree", 15.0));
  WUM_ASSIGN_OR_RETURN(site.start_page_fraction,
                       flags.GetDouble("entry-fraction", 0.05));
  WUM_ASSIGN_OR_RETURN(
      wum::TopologyModel model,
      ParseTopology(flags.GetString("topology", "uniform")));

  wum::AgentProfile profile;
  WUM_ASSIGN_OR_RETURN(profile.stp, flags.GetDouble("stp", 0.05));
  WUM_ASSIGN_OR_RETURN(profile.lpp, flags.GetDouble("lpp", 0.30));
  WUM_ASSIGN_OR_RETURN(profile.nip, flags.GetDouble("nip", 0.30));

  wum::WorkloadOptions population;
  WUM_ASSIGN_OR_RETURN(std::uint64_t agents, flags.GetUint("agents", 10000));
  population.num_agents = static_cast<std::size_t>(agents);
  WUM_ASSIGN_OR_RETURN(std::uint64_t proxy_group,
                       flags.GetUint("proxy-group", 1));
  population.agents_per_proxy = static_cast<std::size_t>(proxy_group);
  WUM_ASSIGN_OR_RETURN(std::uint64_t window,
                       flags.GetUint("start-window", 604800));
  population.start_window = static_cast<wum::TimeSeconds>(window);

  WUM_ASSIGN_OR_RETURN(std::uint64_t seed, flags.GetUint("seed", 20060102));
  wum::Rng rng(seed);

  // Observability (shared websra_* flags): --metrics-out/--metrics-every
  // activate the registry, --trace-out records the generation phases as
  // coarse spans, --log-level tunes the structured diagnostics.
  WUM_ASSIGN_OR_RETURN(wum_tools::ToolRuntime runtime,
                       wum_tools::ToolRuntime::Start(flags, features));
  wum::obs::MetricRegistry* metrics = runtime.metrics();

  wum::Result<wum::WebGraph> generated = wum::Status::Internal("unreachable");
  {
    wum::obs::ScopedSpan span(runtime.tracer(), "generate-site", 0, site.num_pages);
    generated = wum::GenerateSite(model, site, &rng);
  }
  WUM_ASSIGN_OR_RETURN(wum::WebGraph graph, std::move(generated));
  WUM_RETURN_NOT_OK(wum::WriteGraphFile(graph, graph_path));
  std::cout << "wrote topology (" << graph.num_pages() << " pages, "
            << graph.num_edges() << " links) to " << graph_path << "\n";

  wum::Result<wum::Workload> simulated = wum::Status::Internal("unreachable");
  {
    wum::obs::ScopedSpan span(runtime.tracer(), "simulate-workload", 0,
                         population.num_agents);
    simulated = wum::SimulateWorkload(graph, profile, population, &rng,
                                      metrics);
  }
  WUM_ASSIGN_OR_RETURN(wum::Workload workload, std::move(simulated));
  std::vector<wum::LogRecord> log =
      wum::CollectServerLog(workload.ToAgentRequests());
  {
    wum::obs::ScopedSpan span(runtime.tracer(), "write-log", 0, log.size());
    std::ofstream out(log_path);
    if (!out) return wum::Status::IoError("cannot open " + log_path);
    wum::ClfWriter writer(&out, flags.Has("combined"));
    for (const wum::LogRecord& record : log) writer.Write(record);
    out.flush();
    if (!out) return wum::Status::IoError("write failed: " + log_path);
    std::cout << "wrote " << writer.records_written() << " log records to "
              << log_path << (flags.Has("combined") ? " (combined format)" : "")
              << "\n";
  }

  if (flags.Has("truth-out")) {
    std::vector<wum::UserSession> truth;
    for (const wum::AgentRun& agent : workload.agents) {
      for (const wum::Session& session : agent.trace.real_sessions) {
        truth.push_back(wum::UserSession{agent.client_ip, session});
      }
    }
    const std::string format_name = flags.GetString("format", "text");
    wum::SessionFormat format;
    if (format_name == "text") {
      format = wum::SessionFormat::kText;
    } else if (format_name == "binary") {
      format = wum::SessionFormat::kBinary;
    } else {
      return wum::Status::InvalidArgument("unknown format '" + format_name +
                                          "'");
    }
    const std::string truth_path = flags.GetString("truth-out", "");
    wum::obs::ScopedSpan span(runtime.tracer(), "write-truth", 0, truth.size());
    WUM_RETURN_NOT_OK(wum::WriteSessionsFile(truth, truth_path, format));
    std::cout << "wrote " << truth.size() << " ground-truth sessions to "
              << truth_path << "\n";
  }
  // Same end-of-run surface as websra_sessionize: summary table on
  // stdout whenever metrics are on, plus the --metrics-out file, the
  // --trace-out export and the reporter's final snapshot.
  return runtime.Finish(flags);
}

}  // namespace

int main(int argc, char** argv) {
  wum::Result<wum_tools::Flags> flags =
      wum_tools::Flags::Parse(argc, argv, {"combined"});
  if (!flags.ok()) return wum_tools::FailWith(flags.status(), kUsage);
  wum::Status status = Run(*flags);
  if (!status.ok()) return wum_tools::FailWith(status, kUsage);
  return 0;
}
