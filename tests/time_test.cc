#include "wum/common/time.h"

#include <gtest/gtest.h>

#include "wum/common/random.h"

namespace wum {
namespace {

TEST(TimeTest, MinutesConvert) {
  EXPECT_EQ(Minutes(0), 0);
  EXPECT_EQ(Minutes(30), 1800);
  EXPECT_EQ(Minutes(-1), -60);
}

TEST(TimeTest, MinutesFRounds) {
  EXPECT_EQ(MinutesF(2.2), 132);
  EXPECT_EQ(MinutesF(0.5), 30);
  EXPECT_EQ(MinutesF(0.0001), 0);
}

TEST(TimeTest, DefaultThresholdsMatchPaper) {
  TimeThresholds thresholds;
  EXPECT_EQ(thresholds.max_session_duration, 1800);
  EXPECT_EQ(thresholds.max_page_stay, 600);
}

TEST(CivilTimeTest, EpochIsKnown) {
  CivilTime ct = CivilTimeFromUnixSeconds(0);
  EXPECT_EQ(ct, (CivilTime{1970, 1, 1, 0, 0, 0}));
}

TEST(CivilTimeTest, KnownTimestamp) {
  // 2006-01-02 15:04:05 UTC == 1136214245.
  CivilTime ct = CivilTimeFromUnixSeconds(1136214245);
  EXPECT_EQ(ct, (CivilTime{2006, 1, 2, 15, 4, 5}));
}

TEST(CivilTimeTest, NegativeTimestamps) {
  CivilTime ct = CivilTimeFromUnixSeconds(-1);
  EXPECT_EQ(ct, (CivilTime{1969, 12, 31, 23, 59, 59}));
}

TEST(CivilTimeTest, LeapDayValid) {
  EXPECT_TRUE(IsValidCivilTime(CivilTime{2004, 2, 29, 0, 0, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2005, 2, 29, 0, 0, 0}));
  EXPECT_TRUE(IsValidCivilTime(CivilTime{2000, 2, 29, 0, 0, 0}));  // /400 rule
  EXPECT_FALSE(IsValidCivilTime(CivilTime{1900, 2, 29, 0, 0, 0})); // /100 rule
}

TEST(CivilTimeTest, FieldRangeValidation) {
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 0, 1, 0, 0, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 13, 1, 0, 0, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 4, 31, 0, 0, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 1, 1, 24, 0, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 1, 1, 0, 60, 0}));
  EXPECT_FALSE(IsValidCivilTime(CivilTime{2006, 1, 1, 0, 0, 60}));
}

TEST(CivilTimeTest, InvalidCivilTimeRejectedByConversion) {
  Result<TimeSeconds> result =
      UnixSecondsFromCivilTime(CivilTime{2006, 2, 30, 0, 0, 0});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(CivilTimeTest, RoundTripRandomTimestamps) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    // Range: ~1970 .. ~2100.
    TimeSeconds ts = rng.NextInRange(0, 4102444800LL);
    CivilTime ct = CivilTimeFromUnixSeconds(ts);
    ASSERT_TRUE(IsValidCivilTime(ct));
    Result<TimeSeconds> back = UnixSecondsFromCivilTime(ct);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, ts);
  }
}

TEST(ClfTimestampTest, FormatKnownInstant) {
  EXPECT_EQ(FormatClfTimestamp(1136214245), "02/Jan/2006:15:04:05 +0000");
}

TEST(ClfTimestampTest, FormatPadsFields) {
  // 1970-01-01 00:00:09.
  EXPECT_EQ(FormatClfTimestamp(9), "01/Jan/1970:00:00:09 +0000");
}

TEST(ClfTimestampTest, ParseKnownInstant) {
  Result<TimeSeconds> ts = ParseClfTimestamp("02/Jan/2006:15:04:05 +0000");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1136214245);
}

TEST(ClfTimestampTest, ParseHonorsPositiveZoneOffset) {
  // 17:04:05 at +0200 is 15:04:05 UTC.
  Result<TimeSeconds> ts = ParseClfTimestamp("02/Jan/2006:17:04:05 +0200");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1136214245);
}

TEST(ClfTimestampTest, ParseHonorsNegativeZoneOffset) {
  // 10:04:05 at -0500 is 15:04:05 UTC.
  Result<TimeSeconds> ts = ParseClfTimestamp("02/Jan/2006:10:04:05 -0500");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1136214245);
}

TEST(ClfTimestampTest, ParseHalfHourZone) {
  Result<TimeSeconds> ts = ParseClfTimestamp("02/Jan/2006:20:34:05 +0530");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1136214245);
}

TEST(ClfTimestampTest, RejectsMalformedInputs) {
  EXPECT_TRUE(ParseClfTimestamp("").status().IsParseError());
  EXPECT_TRUE(ParseClfTimestamp("garbage").status().IsParseError());
  EXPECT_TRUE(
      ParseClfTimestamp("2/Jan/2006:15:04:05 +0000").status().IsParseError());
  EXPECT_TRUE(
      ParseClfTimestamp("02/Foo/2006:15:04:05 +0000").status().IsParseError());
  EXPECT_TRUE(
      ParseClfTimestamp("02/Jan/2006 15:04:05 +0000").status().IsParseError());
  EXPECT_TRUE(
      ParseClfTimestamp("02/Jan/2006:15:04:05 0000").status().IsParseError());
  EXPECT_TRUE(
      ParseClfTimestamp("31/Feb/2006:15:04:05 +0000").status().IsParseError());
}

TEST(ClfTimestampTest, RoundTripRandomInstants) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    TimeSeconds ts = rng.NextInRange(0, 4102444800LL);
    Result<TimeSeconds> back = ParseClfTimestamp(FormatClfTimestamp(ts));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, ts);
  }
}

}  // namespace
}  // namespace wum
