#include "wum/topology/web_graph.h"

#include <gtest/gtest.h>

namespace wum {
namespace {

TEST(WebGraphTest, EmptyGraph) {
  WebGraph graph(0);
  EXPECT_EQ(graph.num_pages(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(graph.MeanOutDegree(), 0.0);
  EXPECT_FALSE(graph.IsValidPage(0));
}

TEST(WebGraphTest, AddLinkCreatesEdgeOnce) {
  WebGraph graph(3);
  EXPECT_TRUE(graph.AddLink(0, 1));
  EXPECT_FALSE(graph.AddLink(0, 1));  // duplicate
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_TRUE(graph.HasLink(0, 1));
  EXPECT_FALSE(graph.HasLink(1, 0));  // direction matters
}

TEST(WebGraphTest, AdjacencyListsMirrorEdges) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(3, 2);
  EXPECT_EQ(graph.OutLinks(0), (std::vector<PageId>{1, 2}));
  EXPECT_EQ(graph.InLinks(2), (std::vector<PageId>{0, 3}));
  EXPECT_EQ(graph.OutDegree(0), 2u);
  EXPECT_EQ(graph.InDegree(2), 2u);
  EXPECT_EQ(graph.OutDegree(2), 0u);
}

TEST(WebGraphTest, SelfLoopRepresentable) {
  WebGraph graph(2);
  EXPECT_TRUE(graph.AddLink(1, 1));
  EXPECT_TRUE(graph.HasLink(1, 1));
}

TEST(WebGraphTest, HasLinkRejectsInvalidPages) {
  WebGraph graph(2);
  graph.AddLink(0, 1);
  EXPECT_FALSE(graph.HasLink(0, 5));
  EXPECT_FALSE(graph.HasLink(5, 0));
  EXPECT_FALSE(graph.HasLink(kInvalidPage, 0));
}

TEST(WebGraphTest, MeanOutDegree) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(1, 2);
  EXPECT_DOUBLE_EQ(graph.MeanOutDegree(), 0.75);
}

TEST(WebGraphTest, StartPagesSortedAndIdempotent) {
  WebGraph graph(10);
  graph.MarkStartPage(7);
  graph.MarkStartPage(2);
  graph.MarkStartPage(7);  // idempotent
  graph.MarkStartPage(5);
  EXPECT_EQ(graph.start_pages(), (std::vector<PageId>{2, 5, 7}));
  EXPECT_TRUE(graph.IsStartPage(2));
  EXPECT_FALSE(graph.IsStartPage(3));
  EXPECT_FALSE(graph.IsStartPage(kInvalidPage));
}

TEST(WebGraphTest, EqualityIgnoresInsertionOrder) {
  WebGraph a(3);
  a.AddLink(0, 1);
  a.AddLink(1, 2);
  a.MarkStartPage(0);
  WebGraph b(3);
  b.AddLink(1, 2);
  b.AddLink(0, 1);
  b.MarkStartPage(0);
  EXPECT_TRUE(a == b);
}

TEST(WebGraphTest, EqualityDetectsDifferences) {
  WebGraph a(3);
  a.AddLink(0, 1);
  WebGraph b(3);
  b.AddLink(0, 2);
  EXPECT_FALSE(a == b);
  WebGraph c(3);
  c.AddLink(0, 1);
  c.MarkStartPage(1);
  EXPECT_FALSE(a == c);
  WebGraph d(4);
  d.AddLink(0, 1);
  EXPECT_FALSE(a == d);
}

TEST(WebGraphTest, CopySemantics) {
  WebGraph a(3);
  a.AddLink(0, 1);
  a.MarkStartPage(0);
  WebGraph b = a;
  b.AddLink(1, 2);
  EXPECT_EQ(a.num_edges(), 1u);
  EXPECT_EQ(b.num_edges(), 2u);
  EXPECT_TRUE(b.HasLink(0, 1));
}

TEST(WebGraphTest, LargeIdsPackCorrectly) {
  // Edge keys pack (from, to) into 64 bits; ids near 2^32 must not alias.
  WebGraph graph(1u << 20);
  const PageId a = (1u << 20) - 1;
  const PageId b = (1u << 20) - 2;
  graph.AddLink(a, b);
  EXPECT_TRUE(graph.HasLink(a, b));
  EXPECT_FALSE(graph.HasLink(b, a));
}

}  // namespace
}  // namespace wum
