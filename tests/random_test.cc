#include "wum/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wum {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference values for state starting at 0 (Vigna's splitmix64.c).
  std::uint64_t state = 0;
  EXPECT_EQ(SplitMix64(&state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64(&state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64(&state), 0x06C45D188009454FULL);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.engine()() == b.engine()()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextUnitInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextUnitMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextUnit();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, NextBoundedStaysBelowBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(29);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInRange(42, 42), 42);
}

TEST(RngTest, NormalMoments) {
  Rng rng(37);
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.1);
}

TEST(RngTest, TruncatedNormalRespectsBound) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextTruncatedNormal(0.5, 1.0, 0.0), 0.0);
  }
}

TEST(RngTest, TruncatedNormalPathologicalParametersFallBack) {
  Rng rng(43);
  // Mean far below the bound: resampling fails, fallback applies.
  double v = rng.NextTruncatedNormal(-1000.0, 0.001, 5.0);
  EXPECT_GT(v, 5.0);
  EXPECT_LT(v, 5.1);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(47);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(RngTest, WeightedFrequencies) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, 0.75, 0.01);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(59);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::size_t> sample = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 7u);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(61);
  std::vector<std::size_t> sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(67);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(71);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent_a(99);
  Rng parent_b(99);
  Rng child_a1 = parent_a.Fork();
  Rng child_a2 = parent_a.Fork();
  Rng child_b1 = parent_b.Fork();
  // Same lineage reproduces.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a1.engine()(), child_b1.engine()());
  }
  // Sibling forks differ.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a2.engine()() == child_b1.engine()()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace wum
