// OfferBatch-vs-Offer equivalence: the zero-copy batched ingest path
// must produce exactly the per-user session multiset (and stats) of the
// record-at-a-time Offer path — for every registry heuristic, at 1, 2
// and 8 shards, under both user identities, whatever the batch
// granularity. Offer is documented as a batch of one, so any divergence
// here is an API-contract break.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "wum/common/random.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/stream/engine.h"
#include "wum/stream/heuristic_registry.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

/// (user, page-sequence) multiset for order-insensitive comparison.
using Canonical = std::vector<std::pair<std::string, std::vector<PageId>>>;

class OfferBatchEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng site_rng(17);
    SiteGeneratorOptions options;
    options.num_pages = 70;
    options.mean_out_degree = 5.0;
    graph_ = *GenerateUniformSite(options, &site_rng);

    // One interleaved server log; two browsers per IP so the ip-ua
    // identity sees twice the users the ip identity does.
    AgentSimulator simulator(&graph_, AgentProfile());
    Rng rng(29);
    for (int agent = 0; agent < 16; ++agent) {
      Rng agent_rng = rng.Fork();
      const auto trace = simulator.SimulateAgent(0, &agent_rng);
      for (const PageRequest& request : trace->server_requests) {
        LogRecord record;
        record.client_ip = "10.0.0." + std::to_string(agent / 2);
        record.user_agent =
            agent % 2 == 0 ? "Mozilla/4.0" : "Opera/8.0";
        record.url = PageUrl(request.page);
        record.timestamp = request.timestamp;
        log_.push_back(std::move(record));
      }
    }
    std::stable_sort(log_.begin(), log_.end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
  }

  EngineOptions Options(const std::string& heuristic, std::size_t shards,
                        UserIdentity identity) const {
    EngineOptions options;
    options.set_num_shards(shards)
        .set_queue_capacity(64)  // small: batches must split and block
        .set_identity(identity)
        .set_num_pages(graph_.num_pages())
        .use_graph(&graph_)
        .use_heuristic(heuristic);
    return options;
  }

  /// Runs the log through one engine; `drive` performs the ingest.
  template <typename Drive>
  Canonical Run(const std::string& heuristic, std::size_t shards,
                UserIdentity identity, EngineStats* stats,
                const Drive& drive) const {
    Canonical out;
    CallbackSessionSink sink(
        [&out](const std::string& user_key, Session session) {
          out.emplace_back(user_key, session.PageSequence());
          return Status::OK();
        });
    Result<std::unique_ptr<StreamEngine>> engine =
        StreamEngine::Create(Options(heuristic, shards, identity), &sink);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    if (!engine.ok()) return out;
    drive(engine->get());
    EXPECT_TRUE((*engine)->Finish().ok());
    *stats = (*engine)->TotalStats();
    std::sort(out.begin(), out.end());
    return out;
  }

  WebGraph graph_{0};
  std::vector<LogRecord> log_;
};

TEST_F(OfferBatchEquivalenceTest, MatchesOfferForEveryHeuristicAndShardCount) {
  Rng rng(31);
  for (const std::string& heuristic : HeuristicRegistry::Default().Names()) {
    for (const std::size_t shards : {1u, 2u, 8u}) {
      for (const UserIdentity identity :
           {UserIdentity::kClientIp, UserIdentity::kClientIpAndUserAgent}) {
        SCOPED_TRACE(heuristic + "/" + std::to_string(shards) + " shards");
        EngineStats single_stats;
        const Canonical single =
            Run(heuristic, shards, identity, &single_stats,
                [this](StreamEngine* engine) {
                  for (const LogRecord& record : log_) {
                    ASSERT_TRUE(engine->Offer(record).ok());
                  }
                });
        EngineStats batched_stats;
        const Canonical batched =
            Run(heuristic, shards, identity, &batched_stats,
                [this, &rng](StreamEngine* engine) {
                  std::vector<LogRecordRef> refs;
                  refs.reserve(log_.size());
                  for (const LogRecord& record : log_) {
                    refs.push_back(ViewOf(record));
                  }
                  const std::span<const LogRecordRef> all(refs);
                  // Random batch granularity, including batches far
                  // larger than the queue capacity.
                  for (std::size_t i = 0; i < all.size();) {
                    const std::size_t n = std::min<std::size_t>(
                        1 + rng.NextBounded(200), all.size() - i);
                    ASSERT_TRUE(engine->OfferBatch(all.subspan(i, n)).ok());
                    i += n;
                  }
                });
        EXPECT_EQ(batched, single);
        EXPECT_EQ(batched_stats.records_in, single_stats.records_in);
        EXPECT_EQ(batched_stats.records_dropped, single_stats.records_dropped);
        EXPECT_EQ(batched_stats.sessions_emitted,
                  single_stats.sessions_emitted);
      }
    }
  }
}

TEST_F(OfferBatchEquivalenceTest, EmptyBatchIsANoOp) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      Options("duration", 2, UserIdentity::kClientIp), &sink);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->OfferBatch({}).ok());
  EXPECT_EQ((*engine)->records_seen(), 0u);
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_EQ((*engine)->TotalStats().records_in, 0u);
}

TEST_F(OfferBatchEquivalenceTest, OfferBatchAfterFinishFails) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      Options("duration", 1, UserIdentity::kClientIp), &sink);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  const LogRecordRef ref = ViewOf(log_.front());
  EXPECT_TRUE(
      (*engine)->OfferBatch(std::span<const LogRecordRef>(&ref, 1))
          .IsFailedPrecondition());
}

}  // namespace
}  // namespace wum
