#include <gtest/gtest.h>

#include "wum/common/random.h"
#include "wum/mining/apriori_all.h"
#include "wum/mining/pattern.h"

namespace wum {
namespace {

using Sessions = std::vector<std::vector<PageId>>;

TEST(PatternTest, ToStringFormat) {
  SequentialPattern pattern{{3, 7, 1}, 42};
  EXPECT_EQ(PatternToString(pattern), "P3 -> P7 -> P1 (support 42)");
}

TEST(PatternTest, MatchModeNames) {
  EXPECT_EQ(MatchModeToString(MatchMode::kContiguous), "contiguous");
  EXPECT_EQ(MatchModeToString(MatchMode::kSubsequence), "subsequence");
}

TEST(CountSupportTest, CountsSessionsNotOccurrences) {
  Sessions sessions = {{1, 2, 1, 2}, {1, 2}, {2, 1}};
  // {1, 2} occurs twice in the first session but counts once.
  EXPECT_EQ(CountSupport({1, 2}, sessions, MatchMode::kContiguous), 2u);
  EXPECT_EQ(CountSupport({2, 1}, sessions, MatchMode::kContiguous), 2u);
  EXPECT_EQ(CountSupport({1, 2}, sessions, MatchMode::kSubsequence), 2u);
  EXPECT_EQ(CountSupport({9}, sessions, MatchMode::kContiguous), 0u);
}

TEST(CountSupportTest, SubsequenceCountsGappedMatches) {
  Sessions sessions = {{1, 9, 2}};
  EXPECT_EQ(CountSupport({1, 2}, sessions, MatchMode::kContiguous), 0u);
  EXPECT_EQ(CountSupport({1, 2}, sessions, MatchMode::kSubsequence), 1u);
}

TEST(BruteForceTest, SmallContiguousCase) {
  Sessions sessions = {{1, 2, 3}, {1, 2}, {2, 3}};
  auto patterns =
      BruteForceFrequentPatterns(sessions, 2, MatchMode::kContiguous, 3);
  // Frequent: [1] x2, [2] x3, [3] x2, [1,2] x2, [2,3] x2.
  ASSERT_EQ(patterns.size(), 5u);
  EXPECT_EQ(patterns[0].pages, (std::vector<PageId>{1}));
  EXPECT_EQ(patterns[0].support, 2u);
  EXPECT_EQ(patterns[1].pages, (std::vector<PageId>{2}));
  EXPECT_EQ(patterns[1].support, 3u);
  EXPECT_EQ(patterns[3].pages, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(patterns[4].pages, (std::vector<PageId>{2, 3}));
}

TEST(AprioriTest, RejectsZeroSupport) {
  AprioriOptions options;
  options.min_support = 0;
  AprioriAllMiner miner(options);
  EXPECT_TRUE(miner.Mine({}).status().IsInvalidArgument());
}

TEST(AprioriTest, EmptyDatabase) {
  AprioriAllMiner miner;
  Result<std::vector<SequentialPattern>> patterns = miner.Mine({});
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

TEST(AprioriTest, MatchesBruteForceOnKnownCase) {
  Sessions sessions = {{1, 2, 3, 4}, {1, 2, 4}, {2, 3, 4}, {5}};
  for (MatchMode mode : {MatchMode::kContiguous, MatchMode::kSubsequence}) {
    AprioriOptions options;
    options.min_support = 2;
    options.mode = mode;
    AprioriAllMiner miner(options);
    Result<std::vector<SequentialPattern>> mined = miner.Mine(sessions);
    ASSERT_TRUE(mined.ok());
    auto expected = BruteForceFrequentPatterns(sessions, 2, mode, 4);
    EXPECT_EQ(*mined, expected) << MatchModeToString(mode);
  }
}

TEST(AprioriTest, MaxLengthTruncatesLevels) {
  Sessions sessions = {{1, 2, 3}, {1, 2, 3}};
  AprioriOptions options;
  options.min_support = 2;
  options.max_length = 2;
  AprioriAllMiner miner(options);
  Result<std::vector<SequentialPattern>> mined = miner.Mine(sessions);
  ASSERT_TRUE(mined.ok());
  for (const SequentialPattern& pattern : *mined) {
    EXPECT_LE(pattern.pages.size(), 2u);
  }
  // [1,2] and [2,3] present, [1,2,3] suppressed.
  EXPECT_EQ(CountSupport({1, 2}, sessions, MatchMode::kContiguous), 2u);
  EXPECT_EQ(mined->size(), 5u);
}

TEST(AprioriTest, PatternsWithRepeatedPages) {
  Sessions sessions = {{1, 1, 2}, {1, 1, 2}};
  AprioriOptions options;
  options.min_support = 2;
  AprioriAllMiner miner(options);
  Result<std::vector<SequentialPattern>> mined = miner.Mine(sessions);
  ASSERT_TRUE(mined.ok());
  bool found_1_1_2 = false;
  for (const SequentialPattern& pattern : *mined) {
    if (pattern.pages == std::vector<PageId>{1, 1, 2}) {
      found_1_1_2 = true;
      EXPECT_EQ(pattern.support, 2u);
    }
  }
  EXPECT_TRUE(found_1_1_2);
}

class AprioriRandomEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AprioriRandomEquivalenceTest, ContiguousMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    Sessions sessions;
    const std::size_t session_count = 2 + rng.NextBounded(8);
    for (std::size_t s = 0; s < session_count; ++s) {
      std::vector<PageId> session;
      const std::size_t len = 1 + rng.NextBounded(7);
      for (std::size_t i = 0; i < len; ++i) {
        session.push_back(static_cast<PageId>(rng.NextBounded(5)));
      }
      sessions.push_back(std::move(session));
    }
    AprioriOptions options;
    options.min_support = 2;
    options.mode = MatchMode::kContiguous;
    AprioriAllMiner miner(options);
    Result<std::vector<SequentialPattern>> mined = miner.Mine(sessions);
    ASSERT_TRUE(mined.ok());
    EXPECT_EQ(*mined, BruteForceFrequentPatterns(sessions, 2,
                                                 MatchMode::kContiguous, 8));
  }
}

TEST_P(AprioriRandomEquivalenceTest, SubsequenceMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xACE);
  for (int trial = 0; trial < 8; ++trial) {
    Sessions sessions;
    const std::size_t session_count = 2 + rng.NextBounded(5);
    for (std::size_t s = 0; s < session_count; ++s) {
      std::vector<PageId> session;
      const std::size_t len = 1 + rng.NextBounded(5);  // keep small: 2^len
      for (std::size_t i = 0; i < len; ++i) {
        session.push_back(static_cast<PageId>(rng.NextBounded(4)));
      }
      sessions.push_back(std::move(session));
    }
    AprioriOptions options;
    options.min_support = 2;
    options.mode = MatchMode::kSubsequence;
    AprioriAllMiner miner(options);
    Result<std::vector<SequentialPattern>> mined = miner.Mine(sessions);
    ASSERT_TRUE(mined.ok());
    EXPECT_EQ(*mined, BruteForceFrequentPatterns(sessions, 2,
                                                 MatchMode::kSubsequence, 6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriRandomEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FilterMaximalTest, KeepsOnlyUnsubsumedPatterns) {
  std::vector<SequentialPattern> patterns = {
      {{1}, 3}, {{2}, 3}, {{1, 2}, 3}, {{3}, 2}};
  auto maximal = FilterMaximalPatterns(patterns, MatchMode::kContiguous);
  // [1] and [2] are substrings of [1,2] with equal support: subsumed.
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].pages, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(maximal[1].pages, (std::vector<PageId>{3}));
}

TEST(FilterMaximalTest, HigherSupportSubpatternSurvives) {
  std::vector<SequentialPattern> patterns = {{{1}, 5}, {{1, 2}, 3}};
  auto maximal = FilterMaximalPatterns(patterns, MatchMode::kContiguous);
  // [1] has strictly more support than its superpattern: kept.
  EXPECT_EQ(maximal.size(), 2u);
}

TEST(FilterMaximalTest, SubsequenceModeSubsumesGappedPatterns) {
  std::vector<SequentialPattern> patterns = {{{1, 3}, 2}, {{1, 2, 3}, 2}};
  auto contiguous = FilterMaximalPatterns(patterns, MatchMode::kContiguous);
  EXPECT_EQ(contiguous.size(), 2u);  // [1,3] not a substring of [1,2,3]
  auto subsequence = FilterMaximalPatterns(patterns, MatchMode::kSubsequence);
  ASSERT_EQ(subsequence.size(), 1u);  // but it is a subsequence
  EXPECT_EQ(subsequence[0].pages, (std::vector<PageId>{1, 2, 3}));
}

}  // namespace
}  // namespace wum
