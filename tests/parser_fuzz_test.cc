// Robustness fuzzing: every parser in the library must return a Status
// (never crash, never hang, never accept garbage silently) on randomly
// corrupted inputs. Deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/common/random.h"
#include "wum/session/session_io.h"
#include "wum/topology/graph_io.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

// Applies `count` random single-character corruptions (replace, insert,
// delete) to a string.
std::string Corrupt(std::string text, Rng* rng, int count) {
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos =
        static_cast<std::size_t>(rng->NextBounded(text.size()));
    const char junk = static_cast<char>(rng->NextInRange(1, 126));
    switch (rng->NextBounded(3)) {
      case 0:
        text[pos] = junk;
        break;
      case 1:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos), junk);
        break;
      default:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return text;
}

std::string RandomGarbage(Rng* rng, std::size_t max_length) {
  std::string text;
  const std::size_t length =
      static_cast<std::size_t>(rng->NextBounded(max_length + 1));
  for (std::size_t i = 0; i < length; ++i) {
    text += static_cast<char>(rng->NextInRange(1, 255));
  }
  return text;
}

TEST(ParserFuzzTest, ClfLineCorruptions) {
  Rng rng(101);
  LogRecord record;
  record.client_ip = "10.1.2.3";
  record.timestamp = 1136214245;
  record.url = "/pages/p42.html";
  record.referrer = "http://www.site.example/pages/p7.html";
  record.user_agent = "Mozilla/4.0";
  record.bytes = 2326;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::string base = rng.Bernoulli(0.5)
                                 ? FormatClfLine(record)
                                 : FormatCombinedLogLine(record);
    const std::string line = Corrupt(base, &rng, 1 + rng.NextBounded(6));
    Result<LogRecord> parsed = ParseClfLine(line);  // must not crash
    if (parsed.ok()) {
      // Whatever survived must be internally consistent.
      EXPECT_GE(parsed->status_code, 100);
      EXPECT_LE(parsed->status_code, 599);
      EXPECT_GE(parsed->bytes, -1);
      EXPECT_FALSE(parsed->client_ip.empty());
    }
  }
}

TEST(ParserFuzzTest, ClfLinePureGarbage) {
  Rng rng(103);
  for (int trial = 0; trial < 5000; ++trial) {
    (void)ParseClfLine(RandomGarbage(&rng, 200));  // must not crash
  }
}

TEST(ParserFuzzTest, ClfStreamNeverFailsOnGarbage) {
  Rng rng(107);
  for (int trial = 0; trial < 200; ++trial) {
    std::stringstream stream;
    const int lines = 1 + static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < lines; ++i) {
      stream << RandomGarbage(&rng, 120) << '\n';
    }
    ClfParser parser;
    std::vector<LogRecord> records;
    EXPECT_TRUE(parser.ParseStream(&stream, &records).ok());
    EXPECT_EQ(parser.stats().records_parsed, records.size());
  }
}

TEST(ParserFuzzTest, GraphTextCorruptions) {
  Rng site_rng(5);
  SiteGeneratorOptions options;
  options.num_pages = 20;
  options.mean_out_degree = 3.0;
  WebGraph graph = *GenerateUniformSite(options, &site_rng);
  std::ostringstream canonical;
  WriteGraphText(graph, &canonical);
  const std::string base = canonical.str();

  Rng rng(109);
  for (int trial = 0; trial < 2000; ++trial) {
    std::stringstream corrupted(Corrupt(base, &rng, 1 + rng.NextBounded(8)));
    Result<WebGraph> parsed = ReadGraphText(&corrupted);  // must not crash
    if (parsed.ok()) {
      // Accepted graphs must be structurally sound.
      for (std::size_t p = 0; p < parsed->num_pages(); ++p) {
        for (PageId to : parsed->OutLinks(static_cast<PageId>(p))) {
          EXPECT_TRUE(parsed->IsValidPage(to));
        }
      }
      for (PageId start : parsed->start_pages()) {
        EXPECT_TRUE(parsed->IsValidPage(start));
      }
    }
  }
}

TEST(ParserFuzzTest, GraphTextPureGarbage) {
  Rng rng(113);
  for (int trial = 0; trial < 1000; ++trial) {
    std::stringstream stream(RandomGarbage(&rng, 400));
    (void)ReadGraphText(&stream);
  }
}

TEST(ParserFuzzTest, SessionFileCorruptions) {
  std::vector<UserSession> sessions = {
      UserSession{"10.0.0.1", MakeSession({1, 2, 3}, {10, 20, 30})},
      UserSession{"10.0.0.2", MakeSession({7, 9}, {100, 150})},
  };
  std::ostringstream canonical;
  WriteSessionsText(sessions, &canonical);
  const std::string base = canonical.str();

  Rng rng(127);
  for (int trial = 0; trial < 2000; ++trial) {
    std::stringstream corrupted(Corrupt(base, &rng, 1 + rng.NextBounded(8)));
    Result<std::vector<UserSession>> parsed =
        ReadSessionsText(&corrupted);  // must not crash
    if (parsed.ok()) {
      for (const UserSession& entry : *parsed) {
        EXPECT_FALSE(entry.user_key.empty());
      }
    }
  }
}

TEST(ParserFuzzTest, ClfTimestampGarbage) {
  Rng rng(131);
  for (int trial = 0; trial < 5000; ++trial) {
    (void)ParseClfTimestamp(RandomGarbage(&rng, 40));
  }
  // Near-valid timestamps with digit corruption.
  const std::string base = "02/Jan/2006:15:04:05 +0000";
  for (int trial = 0; trial < 5000; ++trial) {
    Result<TimeSeconds> parsed =
        ParseClfTimestamp(Corrupt(base, &rng, 1 + rng.NextBounded(4)));
    if (parsed.ok()) {
      // Anything accepted must round-trip through the formatter.
      EXPECT_FALSE(FormatClfTimestamp(*parsed).empty());
    }
  }
}

}  // namespace
}  // namespace wum
