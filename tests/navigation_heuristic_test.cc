#include "wum/session/navigation_heuristic.h"

#include <gtest/gtest.h>

#include "wum/topology/site_generator.h"

namespace wum {
namespace {

// Figure 1 ids: 0=P1, 1=P13, 2=P20, 3=P23, 4=P34, 5=P49.

TEST(NavigationHeuristicTest, ReproducesPaperTable2Trace) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  // Table 1 request sequence: P1, P20, P13, P49, P34, P23.
  auto requests = MakeSession({0, 2, 1, 5, 4, 3},
                              {Minutes(0), Minutes(6), Minutes(15),
                               Minutes(29), Minutes(32), Minutes(47)})
                      .requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  // Table 2's final session: [P1, P20, P1, P13, P49, P13, P34, P23]
  // with the backward movements P1 and P13 inserted.
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ((*sessions)[0].PageSequence(),
            (std::vector<PageId>{0, 2, 0, 1, 5, 1, 4, 3}));
}

TEST(NavigationHeuristicTest, DirectLinkAppendsWithoutInsertion) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  // P1 -> P13 -> P34 -> P23 is a pure link path.
  auto requests = MakeSession({0, 1, 4, 3}, {0, 60, 120, 180}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{0, 1, 4, 3}));
}

TEST(NavigationHeuristicTest, NoReferrerStartsNewSession) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  // P20 then P34: nothing in [P20] links to P34.
  auto requests = MakeSession({2, 4}, {0, 60}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 2u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{2}));
  EXPECT_EQ((*sessions)[1].PageSequence(), (std::vector<PageId>{4}));
}

TEST(NavigationHeuristicTest, NearestReferrerChosen) {
  // Two earlier referrers exist; the nearest (largest timestamp) is used,
  // so only the pages after it are inserted as backward movements.
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(1, 2);
  graph.AddLink(0, 3);
  graph.AddLink(1, 3);  // both 0 and 1 link to 3; 1 is nearer
  NavigationSessionizer heuristic(&graph);
  auto requests = MakeSession({0, 1, 2, 3}, {0, 10, 20, 30}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  // Backward movement to 1 (not all the way to 0): [0, 1, 2, 1, 3].
  EXPECT_EQ((*sessions)[0].PageSequence(),
            (std::vector<PageId>{0, 1, 2, 1, 3}));
}

TEST(NavigationHeuristicTest, InsertedBackwardMovesCarryTriggerTimestamp) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  auto requests = MakeSession({0, 2, 1}, {0, 60, 120}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  const Session& session = (*sessions)[0];
  // [P1@0, P20@60, P1@120 (inserted), P13@120].
  ASSERT_EQ(session.size(), 4u);
  EXPECT_EQ(session.requests[2], (PageRequest{0, 120}));
  EXPECT_EQ(session.requests[3], (PageRequest{1, 120}));
  // Timestamps stay non-decreasing.
  EXPECT_TRUE(SatisfiesTimestampRule(session, Minutes(60)));
}

TEST(NavigationHeuristicTest, ForwardStreamsSatisfyNavigationRule) {
  // On a pure link path no backward movements are inserted, so the
  // output obeys the navigation rule. (Path-completed sessions do NOT:
  // inserted backward movements traverse edges in reverse, which is
  // exactly the interpretability problem §2.2 attributes to heur3.)
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  auto requests = MakeSession({0, 1, 5, 3}, {0, 60, 120, 180}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_TRUE(SatisfiesNavigationRule((*sessions)[0], graph));
}

TEST(NavigationHeuristicTest, PathCompletionViolatesForwardRuleByDesign) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  // Table 1 order forces backward insertions (see the Table 2 trace).
  auto requests = MakeSession({0, 2, 1, 5, 4, 3},
                              {0, 60, 120, 180, 240, 300})
                      .requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_FALSE(SatisfiesNavigationRule((*sessions)[0], graph));
}

TEST(NavigationHeuristicTest, OptionalPageStayBoundCuts) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer::Options options;
  options.max_page_stay = Minutes(10);
  NavigationSessionizer heuristic(&graph, options);
  // P1 -> P13 with an 11-minute gap: cut despite the hyperlink.
  auto requests = MakeSession({0, 1}, {0, Minutes(11)}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->size(), 2u);
}

TEST(NavigationHeuristicTest, DefaultHasNoTimeBound) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  auto requests = MakeSession({0, 1}, {0, Minutes(600)}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->size(), 1u);
}

TEST(NavigationHeuristicTest, EmptyAndSingle) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  EXPECT_TRUE(heuristic.Reconstruct({})->empty());
  auto requests = MakeSession({3}, {0}).requests;
  EXPECT_EQ(heuristic.Reconstruct(requests)->size(), 1u);
}

TEST(NavigationHeuristicTest, RejectsInvalidStreams) {
  WebGraph graph = MakeFigure1Topology();
  NavigationSessionizer heuristic(&graph);
  auto unsorted = MakeSession({0, 1}, {60, 0}).requests;
  EXPECT_TRUE(heuristic.Reconstruct(unsorted).status().IsInvalidArgument());
  auto out_of_range = MakeSession({99}, {0}).requests;
  EXPECT_TRUE(
      heuristic.Reconstruct(out_of_range).status().IsInvalidArgument());
}

TEST(NavigationHeuristicTest, Name) {
  WebGraph graph = MakeFigure1Topology();
  EXPECT_EQ(NavigationSessionizer(&graph).name(), "heur3-navigation");
}

TEST(NavigationHeuristicTest, RepeatedPageUsesNearestOccurrence) {
  // Session [0, 1, 0, 2] where only 0 links to 2: the *second* occurrence
  // of 0 is the nearest referrer, so no backward moves are inserted
  // before the new page (0 is directly the last element? no -- it is).
  WebGraph graph(3);
  graph.AddLink(0, 1);
  graph.AddLink(1, 0);
  graph.AddLink(0, 2);
  NavigationSessionizer heuristic(&graph);
  auto requests = MakeSession({0, 1, 0, 2}, {0, 10, 20, 30}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{0, 1, 0, 2}));
}

}  // namespace
}  // namespace wum
