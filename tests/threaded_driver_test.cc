#include "wum/stream/threaded_driver.h"

#include <gtest/gtest.h>

#include <atomic>

#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/spsc_queue.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

class CountingSink : public RecordSink {
 public:
  Status Accept(const LogRecord&) override {
    ++accepted;
    return Status::OK();
  }
  Status Finish() override {
    finished = true;
    return Status::OK();
  }
  std::atomic<int> accepted{0};
  std::atomic<bool> finished{false};
};

class FailingSink : public RecordSink {
 public:
  Status Accept(const LogRecord& record) override {
    if (record.url == PageUrl(13)) return Status::Internal("boom");
    ++accepted;
    return Status::OK();
  }
  Status Finish() override { return Status::OK(); }
  std::atomic<int> accepted{0};
};

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> queue(4);
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(SpscQueueTest, CloseDrainsThenSignalsEnd) {
  SpscQueue<int> queue(4);
  queue.Push(7);
  queue.Close();
  EXPECT_EQ(queue.Pop(), 7);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_FALSE(queue.Push(8));  // closed
}

TEST(SpscQueueTest, BlockingHandoffAcrossThreads) {
  SpscQueue<int> queue(2);  // small capacity forces producer blocking
  constexpr int kItems = 1000;
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) queue.Push(i);
    queue.Close();
  });
  int expected = 0;
  while (auto item = queue.Pop()) {
    EXPECT_EQ(*item, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(ThreadedDriverTest, DeliversAllRecordsThenFinishes) {
  CountingSink sink;
  ThreadedDriver driver(&sink, 16);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, i)).ok());
  }
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(sink.accepted.load(), 500);
  EXPECT_TRUE(sink.finished.load());
}

TEST(ThreadedDriverTest, OfferAfterFinishRejected) {
  CountingSink sink;
  ThreadedDriver driver(&sink);
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).IsFailedPrecondition());
  EXPECT_TRUE(driver.Finish().IsFailedPrecondition());
}

TEST(ThreadedDriverTest, SinkErrorSurfacesAtFinish) {
  FailingSink sink;
  ThreadedDriver driver(&sink, 8);
  // The failing record is somewhere in the middle.
  for (int i = 0; i < 100; ++i) {
    Status status = driver.Offer(PageRecord("ip", i == 50 ? 13 : 1, i));
    if (!status.ok()) break;  // error may surface early; that's fine
  }
  EXPECT_TRUE(driver.Finish().IsInternal());
}

TEST(ThreadedDriverTest, DestructorJoinsWithoutFinish) {
  CountingSink sink;
  {
    ThreadedDriver driver(&sink, 8);
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).ok());
    // No Finish(): destructor must not hang or crash.
  }
  EXPECT_EQ(sink.accepted.load(), 1);
}

TEST(ThreadedDriverTest, EndToEndStreamingSessionization) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  ThreadedDriver driver(&sink, 4);
  ASSERT_TRUE(driver.Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE(driver.Offer(PageRecord("u", 1, 60)).ok());
  ASSERT_TRUE(driver.Offer(PageRecord("u", 4, 120)).ok());
  ASSERT_TRUE(driver.Finish().ok());
  ASSERT_EQ(sessions.entries().size(), 1u);
  EXPECT_EQ(sessions.entries()[0].session.PageSequence(),
            (std::vector<PageId>{0, 1, 4}));
}

}  // namespace
}  // namespace wum
