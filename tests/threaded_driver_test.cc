#include "wum/stream/threaded_driver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/spsc_queue.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

class CountingSink : public RecordSink {
 public:
  Status Accept(const LogRecord&) override {
    ++accepted;
    return Status::OK();
  }
  Status Finish() override {
    finished = true;
    return Status::OK();
  }
  std::atomic<int> accepted{0};
  std::atomic<bool> finished{false};
};

class FailingSink : public RecordSink {
 public:
  Status Accept(const LogRecord& record) override {
    if (record.url == PageUrl(13)) return Status::Internal("boom");
    ++accepted;
    return Status::OK();
  }
  Status Finish() override { return Status::OK(); }
  std::atomic<int> accepted{0};
};

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> queue(4);
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(SpscQueueTest, CloseDrainsThenSignalsEnd) {
  SpscQueue<int> queue(4);
  queue.Push(7);
  queue.Close();
  EXPECT_EQ(queue.Pop(), 7);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_FALSE(queue.Push(8));  // closed
}

TEST(SpscQueueTest, BlockingHandoffAcrossThreads) {
  SpscQueue<int> queue(2);  // small capacity forces producer blocking
  constexpr int kItems = 1000;
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) queue.Push(i);
    queue.Close();
  });
  int expected = 0;
  while (auto item = queue.Pop()) {
    EXPECT_EQ(*item, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(ThreadedDriverTest, DeliversAllRecordsThenFinishes) {
  CountingSink sink;
  ThreadedDriver driver(&sink, 16);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, i)).ok());
  }
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(sink.accepted.load(), 500);
  EXPECT_TRUE(sink.finished.load());
}

TEST(ThreadedDriverTest, OfferAfterFinishRejected) {
  CountingSink sink;
  ThreadedDriver driver(&sink);
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).IsFailedPrecondition());
  EXPECT_TRUE(driver.Finish().IsFailedPrecondition());
}

TEST(ThreadedDriverTest, SinkErrorSurfacesAtFinish) {
  FailingSink sink;
  ThreadedDriver driver(&sink, 8);
  // The failing record is somewhere in the middle.
  for (int i = 0; i < 100; ++i) {
    Status status = driver.Offer(PageRecord("ip", i == 50 ? 13 : 1, i));
    if (!status.ok()) break;  // error may surface early; that's fine
  }
  EXPECT_TRUE(driver.Finish().IsInternal());
}

TEST(ThreadedDriverTest, DestructorJoinsWithoutFinish) {
  CountingSink sink;
  {
    ThreadedDriver driver(&sink, 8);
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).ok());
    // No Finish(): destructor must not hang or crash.
  }
  EXPECT_EQ(sink.accepted.load(), 1);
}

/// First Accept parks the worker until released, then fails with
/// Internal; later Accepts fail immediately. Lets a test hold the queue
/// full with the worker mid-record, then kill the worker on cue.
class GateThenFailSink : public RecordSink {
 public:
  Status Accept(const LogRecord&) override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (first_) {
      first_ = false;
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    }
    return Status::Internal("worker died");
  }
  Status Finish() override { return Status::OK(); }

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool first_ = true;
  bool entered_ = false;
  bool released_ = false;
};

// Regression: a producer blocked in Offer on a full queue whose worker
// just died must be woken with the sticky error — not left waiting for
// space forever, and not handed an OK for a record that will only ever
// be discarded.
TEST(ThreadedDriverTest, BlockedOfferObservesWorkerDeath) {
  GateThenFailSink sink;
  ThreadedDriver driver(&sink, /*queue_capacity=*/1);

  // Worker pops record 0 and parks inside the sink; record 1 then fills
  // the capacity-1 queue.
  ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).ok());
  sink.WaitEntered();
  ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 1)).ok());

  // A second producer thread blocks on the full queue.
  Status blocked_status;
  std::thread producer([&driver, &blocked_status] {
    blocked_status = driver.Offer(PageRecord("ip", 1, 2));
  });
  while (driver.blocked_enqueues() == 0) std::this_thread::yield();

  // Kill the worker: record 0's Accept returns Internal. The blocked
  // producer must resolve with that error even though draining record 1
  // frees queue space.
  sink.Release();
  producer.join();
  EXPECT_TRUE(blocked_status.IsInternal()) << blocked_status.ToString();
  EXPECT_TRUE(driver.failed());
  EXPECT_TRUE(driver.first_error().IsInternal());
  EXPECT_TRUE(driver.Finish().IsInternal());
}

// DriverHooks::on_record_error returning true quarantines the record and
// keeps the worker alive; on_discard reports records drained after a
// real (unhandled) death.
TEST(ThreadedDriverTest, HooksQuarantineAndReportDiscards) {
  FailingSink sink;  // fails on page 13 only
  std::vector<TimeSeconds> quarantined;
  DriverHooks hooks;
  hooks.on_record_error = [&quarantined](const LogRecord& record,
                                         const Status& status) {
    EXPECT_TRUE(status.IsInternal());
    quarantined.push_back(record.timestamp);
    return true;  // handled: the driver must keep going
  };
  ThreadedDriver driver(&sink, 8, DriverMetrics{}, hooks);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(driver.Offer(PageRecord("ip", i == 7 ? 13 : 1, i)).ok());
  }
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(quarantined, (std::vector<TimeSeconds>{7}));
  EXPECT_EQ(sink.accepted.load(), 19);
  EXPECT_FALSE(driver.failed());
}

TEST(ThreadedDriverTest, UnhandledErrorDiscardsRemainderThroughHook) {
  GateThenFailSink sink;
  std::atomic<int> discarded{0};
  DriverHooks hooks;
  hooks.on_record_error = [](const LogRecord&, const Status&) {
    return false;  // unhandled: the sticky error stands
  };
  hooks.on_discard = [&discarded](const LogRecord&, const Status& status) {
    EXPECT_TRUE(status.IsInternal());
    discarded.fetch_add(1);
  };
  {
    ThreadedDriver driver(&sink, 8, DriverMetrics{}, hooks);
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).ok());
    sink.WaitEntered();
    // Queue up records the worker will only ever drain.
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 1)).ok());
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 2)).ok());
    sink.Release();
    EXPECT_TRUE(driver.Finish().IsInternal());
  }
  EXPECT_EQ(discarded.load(), 2);
}

// Regression: after a worker death WaitIdle returns on the sticky error
// while the worker may still be discarding queued records through
// on_discard. WaitDrained must block until every enqueued record has
// been handled, so a barrier over a dead shard (e.g. a checkpoint
// snapshotting the dead-letter queue) sees all of its quarantines.
TEST(ThreadedDriverTest, WaitDrainedOutlastsDiscardsAfterDeath) {
  GateThenFailSink sink;
  std::atomic<int> discarded{0};
  DriverHooks hooks;
  hooks.on_record_error = [](const LogRecord&, const Status&) {
    return false;  // unhandled: the worker dies on record 0
  };
  hooks.on_discard = [&discarded](const LogRecord&, const Status& status) {
    EXPECT_TRUE(status.IsInternal());
    // Slow discards widen the window between WaitIdle's early return
    // and the queue actually being empty.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    discarded.fetch_add(1);
  };
  ThreadedDriver driver(&sink, 16, DriverMetrics{}, hooks);
  ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, 0)).ok());
  sink.WaitEntered();
  constexpr int kQueued = 10;
  for (int i = 1; i <= kQueued; ++i) {
    ASSERT_TRUE(driver.Offer(PageRecord("ip", 1, i)).ok());
  }
  sink.Release();  // record 0 fails; the rest only ever drain
  EXPECT_TRUE(driver.WaitIdle().IsInternal());
  driver.WaitDrained();
  EXPECT_EQ(discarded.load(), kQueued);
  EXPECT_TRUE(driver.Finish().IsInternal());
}

TEST(ThreadedDriverTest, EndToEndStreamingSessionization) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  ThreadedDriver driver(&sink, 4);
  ASSERT_TRUE(driver.Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE(driver.Offer(PageRecord("u", 1, 60)).ok());
  ASSERT_TRUE(driver.Offer(PageRecord("u", 4, 120)).ok());
  ASSERT_TRUE(driver.Finish().ok());
  ASSERT_EQ(sessions.entries().size(), 1u);
  EXPECT_EQ(sessions.entries()[0].session.PageSequence(),
            (std::vector<PageId>{0, 1, 4}));
}

}  // namespace
}  // namespace wum
