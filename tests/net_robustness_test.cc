// Hostile-network robustness tests for wum::net::LogServer plus unit
// tests for the policy primitives behind it (TimerWheel, TokenBucket).
// The integration tests drive a real server over loopback sockets and
// assert the hardening behaviors one by one: lifecycle deadlines expire
// silent / dribbling peers with a protocol ERR and a dead-lettered
// partial, admission control answers BUSY at accept, per-client quotas
// degrade exactly one producer (pause under kBlock, shed-and-close
// under kShed), resetting peers never take down the serve loop, and
// the admin socket shrugs off oversized, split, unknown and concurrent
// commands. The centerpiece regression: a producer stalled over its
// buffer quota under OfferPolicy::kBlock must not block anyone else.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/ingest/driver.h"
#include "wum/net/quota.h"
#include "wum/net/server.h"
#include "wum/net/socket.h"
#include "wum/net/timer_wheel.h"
#include "wum/obs/metrics.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum::net {
namespace {

// ---------------------------------------------------------------------
// TimerWheel.

TEST(TimerWheelTest, FiresAtDeadlineExactlyOnce) {
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/8);
  wheel.Schedule(1, 100);
  EXPECT_TRUE(wheel.Advance(50).empty());
  const std::vector<std::uint64_t> fired = wheel.Advance(120);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_TRUE(wheel.Advance(500).empty());
}

TEST(TimerWheelTest, MultipleKeysInOneWindowAllFire) {
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/8);
  wheel.Schedule(1, 40);
  wheel.Schedule(2, 45);
  wheel.Schedule(3, 300);
  std::vector<std::uint64_t> fired = wheel.Advance(60);
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheelTest, RescheduleMovesTheDeadline) {
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/8);
  wheel.Schedule(7, 100);
  wheel.Schedule(7, 500);  // overwrite: the 100ms copy goes stale
  EXPECT_TRUE(wheel.Advance(200).empty());
  const std::vector<std::uint64_t> fired = wheel.Advance(520);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
}

TEST(TimerWheelTest, CancelForgets) {
  TimerWheel wheel;
  wheel.Schedule(3, 100);
  wheel.Cancel(3);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_TRUE(wheel.Advance(10000).empty());
  wheel.Cancel(42);  // cancelling the unscheduled is a no-op
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  // A deadline already in the past must not hide behind the scan cursor
  // for a full rotation.
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/8);
  EXPECT_TRUE(wheel.Advance(10000).empty());
  wheel.Schedule(9, 50);  // long past
  const std::vector<std::uint64_t> fired = wheel.Advance(10000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(TimerWheelTest, DeadlineBeyondOneRotationSurvives) {
  // Circumference is 4 * 16 = 64ms; a 500ms deadline wraps many times
  // and must survive every intermediate scan.
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/4);
  wheel.Schedule(5, 500);
  for (std::uint64_t now = 30; now < 500; now += 30) {
    EXPECT_TRUE(wheel.Advance(now).empty()) << "at " << now;
  }
  const std::vector<std::uint64_t> fired = wheel.Advance(520);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 5u);
}

TEST(TimerWheelTest, NextDeadlineIsALowerBound) {
  TimerWheel wheel(/*tick_ms=*/16, /*slots=*/8);
  EXPECT_FALSE(wheel.NextDeadline().has_value());
  wheel.Schedule(1, 100);
  wheel.Schedule(2, 60);
  ASSERT_TRUE(wheel.NextDeadline().has_value());
  EXPECT_LE(*wheel.NextDeadline(), 60u);
  ASSERT_EQ(wheel.Advance(70).size(), 1u);
  ASSERT_TRUE(wheel.NextDeadline().has_value());
  EXPECT_LE(*wheel.NextDeadline(), 100u);
}

// ---------------------------------------------------------------------
// TokenBucket.

TEST(TokenBucketTest, DefaultIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_GT(bucket.Available(0), std::uint64_t{1} << 60);
  bucket.Consume(1u << 30, 0);
  EXPECT_GT(bucket.Available(0), std::uint64_t{1} << 60);
  EXPECT_EQ(bucket.WhenAvailable(1u << 30, 123), 123u);
}

TEST(TokenBucketTest, StartsFullThenRefillsAtRate) {
  TokenBucket bucket(/*bytes_per_sec=*/1000, /*burst_bytes=*/500,
                     /*now_ms=*/0);
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_EQ(bucket.Available(0), 500u);
  bucket.Consume(200, 0);
  EXPECT_EQ(bucket.Available(0), 300u);
  // 100ms at 1000 B/s refills 100 bytes.
  EXPECT_EQ(bucket.Available(100), 400u);
  // The burst ceiling caps the refill.
  EXPECT_EQ(bucket.Available(5000), 500u);
}

TEST(TokenBucketTest, SubBytePerMillisecondRatesAccrue) {
  // 1 byte/sec: integer milli-token math must not truncate to zero.
  TokenBucket bucket(/*bytes_per_sec=*/1, /*burst_bytes=*/1, /*now_ms=*/0);
  EXPECT_EQ(bucket.Available(0), 1u);
  bucket.Consume(1, 0);
  EXPECT_EQ(bucket.Available(500), 0u);
  EXPECT_EQ(bucket.Available(1000), 1u);
}

TEST(TokenBucketTest, WhenAvailablePredictsTheRefill) {
  TokenBucket bucket(/*bytes_per_sec=*/1, /*burst_bytes=*/1, /*now_ms=*/0);
  bucket.Consume(1, 0);
  EXPECT_EQ(bucket.WhenAvailable(1, 0), 1000u);
  // Already available: "now".
  TokenBucket full(/*bytes_per_sec=*/1000, /*burst_bytes=*/100, /*now_ms=*/0);
  EXPECT_EQ(full.WhenAvailable(50, 7), 7u);
}

TEST(TokenBucketTest, ConsumeBeyondBalanceClampsAtZero) {
  TokenBucket bucket(/*bytes_per_sec=*/1000, /*burst_bytes=*/100,
                     /*now_ms=*/0);
  bucket.Consume(100000, 0);  // overage already left the wire; clamp
  EXPECT_EQ(bucket.Available(0), 0u);
  EXPECT_EQ(bucket.Available(50), 50u);
}

TEST(TokenBucketTest, WhenAvailableClampsWantToBurstCapacity) {
  TokenBucket bucket(/*bytes_per_sec=*/1000, /*burst_bytes=*/100,
                     /*now_ms=*/0);
  bucket.Consume(100, 0);
  // Asking for more than the bucket can ever hold waits for a full
  // bucket, not forever.
  EXPECT_EQ(bucket.WhenAvailable(1u << 20, 0), 100u);
}

// ---------------------------------------------------------------------
// Integration helpers (mirrors net_server_test.cc idiom).

std::string ClfLine(const std::string& ip, std::uint32_t page,
                    TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return FormatClfLine(record) + "\n";
}

std::string MakeLog(const std::vector<std::string>& users, int rounds,
                    std::uint32_t num_pages, TimeSeconds base) {
  std::string log;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      log += ClfLine(users[u],
                     static_cast<std::uint32_t>((u + r) % num_pages),
                     base + r * 600 + static_cast<TimeSeconds>(u));
    }
  }
  return log;
}

Result<std::string> ReadLine(const Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const ReadResult read, ReadSome(socket, &byte, 1));
    if (read.eof) {
      return Status::IoError("connection closed mid-line: " + line);
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
  }
}

Result<std::string> AdminCommand(std::uint16_t admin_port,
                                 const std::string& command) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", admin_port));
  WUM_RETURN_NOT_OK(WriteAll(socket, command + "\n"));
  return ReadLine(socket);
}

/// Connects, optionally handshakes, and streams `data` in `chunk`-byte
/// writes, closing cleanly at the end.
Status SendData(std::uint16_t port, const std::string& data,
                const std::string& client_id = "", std::size_t chunk = 7) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", port));
  if (!client_id.empty()) {
    WUM_RETURN_NOT_OK(WriteAll(socket, "HELLO " + client_id + "\n"));
    WUM_ASSIGN_OR_RETURN(const std::string reply, ReadLine(socket));
    if (reply.rfind("OK", 0) != 0) {
      return Status::FailedPrecondition("handshake refused: " + reply);
    }
  }
  for (std::size_t at = 0; at < data.size(); at += chunk) {
    WUM_RETURN_NOT_OK(
        WriteAll(socket, std::string_view(data).substr(at, chunk)));
  }
  return Status::OK();
}

std::uint64_t CounterValue(obs::MetricRegistry* registry,
                           const std::string& name) {
  const obs::MetricsSnapshot snapshot = registry->Snapshot();
  for (const auto& entry : snapshot.counters) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

bool WaitForCounter(obs::MetricRegistry* registry, const std::string& counter,
                    std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (CounterValue(registry, counter) >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// Engine + server + serve thread, torn down by QUIESCE + Join().
struct Harness {
  explicit Harness(obs::MetricRegistry* registry) : registry_(registry) {}

  Status Start(EngineOptions engine_options, SessionSink* sink,
               DeadLetterQueue* dead_letters, ServerOptions server_options) {
    WUM_ASSIGN_OR_RETURN(engine,
                         StreamEngine::Create(std::move(engine_options), sink));
    server_options.metrics = registry_;
    WUM_ASSIGN_OR_RETURN(server,
                         LogServer::Start(std::move(server_options),
                                          engine.get(), dead_letters));
    thread = std::thread([this] { serve_status = server->Serve(); });
    return Status::OK();
  }

  Status Quiesce() {
    WUM_ASSIGN_OR_RETURN(const std::string reply,
                         AdminCommand(server->admin_port(), "QUIESCE"));
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("quiesce replied: " + reply);
    }
    return Status::OK();
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }

  ~Harness() {
    if (thread.joinable() && server != nullptr) server->RequestStop();
    Join();
  }

  obs::MetricRegistry* registry_;
  std::unique_ptr<StreamEngine> engine;
  std::unique_ptr<LogServer> server;
  std::thread thread;
  Status serve_status;
};

// ---------------------------------------------------------------------
// Lifecycle deadlines.

TEST(NetRobustnessTest, IdleConnectionExpiredWithProtocolErr) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.deadlines.idle_timeout_ms = 120;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(WriteAll(*socket, "HELLO idler\n").ok());
  Result<std::string> hello = ReadLine(*socket);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(*hello, "OK 0");
  // Go silent; the server must reap us with a reasoned farewell.
  Result<std::string> err = ReadLine(*socket);
  ASSERT_TRUE(err.ok()) << err.status().message();
  EXPECT_EQ(*err, "ERR idle timeout");
  EXPECT_FALSE(ReadLine(*socket).ok());  // then the door shuts
  ASSERT_TRUE(WaitForCounter(&registry, "net.conn.expired", 1));
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(harness.server->stats().connections_expired, 1u);
  EXPECT_EQ(CounterValue(&registry, "net.close.idle_timeout"), 1u);
  EXPECT_EQ(dead_letters.total_offered(), 0u);  // nothing was in flight
}

TEST(NetRobustnessTest, HandshakeTimeoutReapsSilentConnection) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.deadlines.handshake_timeout_ms = 120;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  // Connect and never send a byte: a handshake that never happens.
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(socket.ok());
  Result<std::string> err = ReadLine(*socket);
  ASSERT_TRUE(err.ok()) << err.status().message();
  EXPECT_EQ(*err, "ERR handshake timeout");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(harness.server->stats().connections_expired, 1u);
}

TEST(NetRobustnessTest, ReadTimeoutDeadLettersTheCarriedPartial) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.deadlines.read_timeout_ms = 150;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(WriteAll(*socket, "HELLO dribbler\n").ok());
  ASSERT_TRUE(ReadLine(*socket).ok());
  // One complete line (salvageable) plus a partial that never finishes.
  const std::string line = ClfLine("10.6.0.1", 0, 1000000000);
  ASSERT_TRUE(WriteAll(*socket, line + "10.6.0.1 - - [unfinished").ok());
  Result<std::string> err = ReadLine(*socket);
  ASSERT_TRUE(err.ok()) << err.status().message();
  EXPECT_EQ(*err, "ERR read timeout");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  // The complete line was salvaged into a session...
  EXPECT_EQ(sink.entries().size(), 1u);
  // ...and the partial is quarantined with attribution, not accounted as
  // an accepted record.
  ASSERT_EQ(dead_letters.total_offered(), 1u);
  const std::vector<DeadLetter> letters = dead_letters.Drain();
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0].stage, DeadLetter::Stage::kParse);
  EXPECT_TRUE(letters[0].reason.IsDeadlineExceeded())
      << letters[0].reason.ToString();
  EXPECT_EQ(letters[0].records_covered, 0u);
  EXPECT_NE(letters[0].detail.find("dribbler"), std::string::npos);
  EXPECT_NE(letters[0].detail.find("partial line carried at close"),
            std::string::npos);
}

TEST(NetRobustnessTest, IdleAdminConnectionExpiredToo) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.deadlines.idle_timeout_ms = 120;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->admin_port());
  ASSERT_TRUE(socket.ok());
  Result<std::string> err = ReadLine(*socket);
  ASSERT_TRUE(err.ok()) << err.status().message();
  EXPECT_EQ(*err, "ERR idle timeout");
  // A parked admin socket cannot camp a connection slot forever, and
  // fresh admin commands still work afterwards.
  Result<std::string> ping = AdminCommand(harness.server->admin_port(), "PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, "OK");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
}

// ---------------------------------------------------------------------
// Admission control.

TEST(NetRobustnessTest, MaxConnectionsAnswersBusyAndAdminStaysResponsive) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.max_connections = 1;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> first = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WriteAll(*first, "HELLO occupant\n").ok());
  ASSERT_TRUE(ReadLine(*first).ok());  // fully admitted

  Result<Fd> second = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(second.ok());
  Result<std::string> busy = ReadLine(*second);
  ASSERT_TRUE(busy.ok()) << busy.status().message();
  EXPECT_EQ(*busy, "BUSY max_connections");
  EXPECT_FALSE(ReadLine(*second).ok());  // refused connections close

  // Admission control is for data producers only: admin keeps working
  // at full occupancy.
  Result<std::string> stats =
      AdminCommand(harness.server->admin_port(), "STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->front(), '{') << *stats;

  // Freeing the slot readmits new producers.
  first->reset();
  ASSERT_TRUE(WaitForCounter(&registry, "net.connections_closed", 2));
  const std::string line = ClfLine("10.7.1.1", 0, 1000000000);
  ASSERT_TRUE(SendData(harness.server->port(), line, "latecomer").ok());
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(harness.server->stats().connections_refused, 1u);
  EXPECT_EQ(CounterValue(&registry, "net.conn.refused"), 1u);
  EXPECT_EQ(sink.entries().size(), 1u);
}

TEST(NetRobustnessTest, IngestBudgetRefusesNewProducersWhileExhausted) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.ingest_budget_bytes = 64;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions()
                             .set_num_shards(1)
                             .set_offer_policy(OfferPolicy::kBlock)
                             .use_smart_sra(&graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  // One producer parks 100 buffered bytes (a partial line), exhausting
  // the global budget.
  Result<Fd> hog = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(hog.ok());
  ASSERT_TRUE(WriteAll(*hog, "HELLO hog\n").ok());
  ASSERT_TRUE(ReadLine(*hog).ok());
  ASSERT_TRUE(WriteAll(*hog, std::string(100, 'x')).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", 100));

  Result<Fd> refused = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(refused.ok());
  Result<std::string> busy = ReadLine(*refused);
  ASSERT_TRUE(busy.ok()) << busy.status().message();
  EXPECT_EQ(*busy, "BUSY ingest_budget");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(harness.server->stats().connections_refused, 1u);
}

// ---------------------------------------------------------------------
// Per-client quotas.

TEST(NetRobustnessTest, BufferQuotaBreachUnderShedClosesWithAttribution) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.client_quota.max_buffered_bytes = 64;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions()
                             .set_num_shards(1)
                             .set_offer_policy(OfferPolicy::kShed)
                             .set_dead_letters(&dead_letters)
                             .use_smart_sra(&graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(WriteAll(*socket, "HELLO noisy\n").ok());
  ASSERT_TRUE(ReadLine(*socket).ok());
  // A complete line (absorbed) followed by a 100-byte partial that
  // breaches the 64-byte buffer ceiling.
  const std::string line = ClfLine("10.7.0.1", 0, 1000000000);
  ASSERT_TRUE(WriteAll(*socket, line + std::string(100, 'x')).ok());
  Result<std::string> err = ReadLine(*socket);
  ASSERT_TRUE(err.ok()) << err.status().message();
  EXPECT_EQ(*err, "ERR buffer quota exceeded");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  // The complete line made it through; the shed partial is attributed;
  // the replay offset stayed on the line boundary so a resuming client
  // re-sends the interrupted line whole.
  EXPECT_EQ(sink.entries().size(), 1u);
  ASSERT_EQ(dead_letters.total_offered(), 1u);
  const std::vector<DeadLetter> letters = dead_letters.Drain();
  EXPECT_EQ(letters[0].records_covered, 0u);
  EXPECT_NE(letters[0].detail.find("noisy"), std::string::npos);
  const ClientOffsets& offsets = harness.server->client_offsets();
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0].first, "noisy");
  EXPECT_EQ(offsets[0].second, line.size());
  EXPECT_EQ(CounterValue(&registry, "net.close.buffer_quota_exceeded"), 1u);
}

TEST(NetRobustnessTest, StalledProducerUnderBlockDoesNotBlockOthers) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  // The ceiling sits above any carried partial a well-behaved producer
  // can leave (one CLF line ~90 bytes) and below the blocker's
  // deliberately long partial — only the blocker can breach it.
  options.client_quota.max_buffered_bytes = 256;
  // Freeze the clock: the paused producer's 50ms re-check never comes
  // due, so the pause provably holds for the whole test.
  options.clock_ms = [] { return std::uint64_t{1000}; };
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions()
                             .set_num_shards(1)
                             .set_offer_policy(OfferPolicy::kBlock)
                             .use_smart_sra(&graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  const std::string line1 = ClfLine("10.8.0.1", 0, 1000000000);
  // A valid CLF line whose URL pads it past the buffer ceiling. The
  // parser accepts it (counts in records_seen); the sessionizer skips
  // the unknown page without a dead letter.
  LogRecord long_record;
  long_record.client_ip = "10.8.0.1";
  long_record.url = "/not-in-the-topology-" + std::string(400, 'x');
  long_record.timestamp = 1000000030;
  const std::string line2 = FormatClfLine(long_record) + "\n";
  // chunk1 ends mid-line2: the 256-byte buffer ceiling is breached and
  // the blocker is paused (kBlock: its socket alone leaves the poll
  // set). chunk2 completes the line but must sit unread in the kernel.
  const std::string chunk1 = line1 + line2.substr(0, line2.size() - 1);
  const std::string chunk2 = line2.substr(line2.size() - 1);
  Result<Fd> blocker = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(WriteAll(*blocker, "HELLO blocker\n").ok());
  ASSERT_TRUE(ReadLine(*blocker).ok());
  ASSERT_TRUE(WriteAll(*blocker, chunk1).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", chunk1.size()));
  ASSERT_TRUE(WriteAll(*blocker, chunk2).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Pause proof: the completing byte is in the kernel but the server,
  // which no longer polls the blocker, has not read it.
  EXPECT_EQ(CounterValue(&registry, "net.bytes_read"), chunk1.size());

  // The regression itself: a second producer streams an entire log to
  // completion while the blocker sits paused over quota.
  const std::string other_log =
      MakeLog({"10.8.1.1", "10.8.1.2"}, /*rounds=*/20, num_pages, 1000000000);
  ASSERT_TRUE(SendData(harness.server->port(), other_log, "other", 64).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read",
                             chunk1.size() + other_log.size()));
  EXPECT_EQ(harness.server->stats().connections_expired, 0u);
  EXPECT_EQ(harness.server->stats().connections_refused, 0u);

  // QUIESCE drains the blocker's pending byte, completing line2: nothing
  // was lost, the producer was only held back.
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(dead_letters.total_offered(), 0u);
  EXPECT_EQ(harness.engine->records_seen(),
            static_cast<std::uint64_t>(2 + 2 * 20));
}

TEST(NetRobustnessTest, RateLimitedProducerIsLosslessJustSlower) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  const std::string log =
      MakeLog({"10.9.0.1", "10.9.0.2"}, /*rounds=*/15, num_pages, 1000000000);
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.client_quota.bytes_per_sec = 16000;
  options.client_quota.burst_bytes = 512;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  // The producer rides through several pause/refill cycles; every byte
  // still arrives (TCP pushes back, nothing is dropped).
  ASSERT_TRUE(SendData(harness.server->port(), log, "steady", 256).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", log.size()));
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(dead_letters.total_offered(), 0u);
  EXPECT_EQ(harness.engine->records_seen(),
            static_cast<std::uint64_t>(2 * 15));
  EXPECT_EQ(harness.server->stats().connections_expired, 0u);
}

// ---------------------------------------------------------------------
// Oversize lines.

TEST(NetRobustnessTest, OversizeLineRejectionIsCountedAndAttributed) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.max_line_bytes = 128;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(WriteAll(*socket, "HELLO biggun\n").ok());
  ASSERT_TRUE(ReadLine(*socket).ok());
  const std::string line = ClfLine("10.10.0.1", 0, 1000000000);
  ASSERT_TRUE(WriteAll(*socket, line).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", line.size()));
  // 300 bytes with no newline: past the 128-byte line bound.
  ASSERT_TRUE(WriteAll(*socket, std::string(300, 'z')).ok());
  EXPECT_FALSE(ReadLine(*socket).ok());  // dropped
  ASSERT_TRUE(WaitForCounter(&registry, "net.conn.oversize_rejected", 1));
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(harness.server->stats().oversize_rejections, 1u);
  EXPECT_EQ(CounterValue(&registry, "net.close.overlong_line"), 1u);
  // The line sent before the abuse was salvaged.
  EXPECT_EQ(sink.entries().size(), 1u);
  ASSERT_EQ(dead_letters.total_offered(), 1u);
  const std::vector<DeadLetter> letters = dead_letters.Drain();
  EXPECT_EQ(letters[0].records_covered, 0u);
  EXPECT_EQ(letters[0].detail, "biggun");
}

// ---------------------------------------------------------------------
// Resetting peers (SIGPIPE / EPIPE regression).

TEST(NetRobustnessTest, ResettingPeersMidReplyNeverKillTheServer) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  // A swarm of peers that RST at the worst moments: mid-handshake-reply
  // (the server's OK write races the reset — EPIPE, never SIGPIPE) and
  // mid-line. The serve loop must shrug off every one.
  for (int i = 0; i < 12; ++i) {
    Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
    ASSERT_TRUE(socket.ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(
          WriteAll(*socket, "HELLO rst-" + std::to_string(i) + "\n").ok());
    } else {
      ASSERT_TRUE(WriteAll(*socket, "10.11.0.1 - - [mid-line").ok());
    }
    ResetHard(&*socket);
  }
  Result<std::string> ping = AdminCommand(harness.server->admin_port(), "PING");
  ASSERT_TRUE(ping.ok()) << ping.status().message();
  EXPECT_EQ(*ping, "OK");
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
}

// ---------------------------------------------------------------------
// Admin-socket abuse.

TEST(NetRobustnessTest, AdminSocketShrugsOffAbuse) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  const std::uint16_t admin = harness.server->admin_port();

  // Oversized command (no newline in sight): closed without ceremony.
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", admin);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(WriteAll(*socket, std::string(5000, 'A')).ok());
    EXPECT_FALSE(ReadLine(*socket).ok());
  }
  // A command split across writes still parses once the newline lands.
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", admin);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(WriteAll(*socket, "STA").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(WriteAll(*socket, "TS\n").ok());
    Result<std::string> stats = ReadLine(*socket);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->front(), '{') << *stats;
  }
  // Pipelined commands each get their reply, unknown ones a bounded
  // echo (a hostile command cannot bloat the reply or the log).
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", admin);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(
        WriteAll(*socket, "PING\n" + std::string(300, 'Q') + "\n").ok());
    Result<std::string> ok = ReadLine(*socket);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(*ok, "OK");
    Result<std::string> err = ReadLine(*socket);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->rfind("ERR unknown command: ", 0), 0u) << *err;
    EXPECT_LE(err->size(), std::string("ERR unknown command: ").size() + 200);
  }
  // Concurrent admin connections: all served, none starved.
  {
    std::vector<std::thread> threads;
    std::vector<Result<std::string>> replies(
        4, Result<std::string>(Status::Internal("unset")));
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back(
          [&, i] { replies[static_cast<std::size_t>(i)] =
                       AdminCommand(admin, "PING"); });
    }
    for (std::thread& thread : threads) thread.join();
    for (const Result<std::string>& reply : replies) {
      ASSERT_TRUE(reply.ok()) << reply.status().message();
      EXPECT_EQ(*reply, "OK");
    }
  }
  // STATS pipelined ahead of QUIESCE is answered before shutdown;
  // anything buffered after the QUIESCE is dropped with the server.
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", admin);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(WriteAll(*socket, "STATS\nQUIESCE\nSTATS\n").ok());
    Result<std::string> stats = ReadLine(*socket);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->front(), '{') << *stats;
    Result<std::string> quiesced = ReadLine(*socket);
    ASSERT_TRUE(quiesced.ok());
    EXPECT_EQ(quiesced->rfind("OK", 0), 0u) << *quiesced;
  }
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
}

}  // namespace
}  // namespace wum::net
