// Cross-checks Smart-SRA phase 2 against a brute-force reference that
// enumerates *every* maximal anchored session satisfying the
// timestamp-ordering and topology rules of a candidate, on exhaustive
// tiny inputs and random small ones.
//
// The provable relationship (and what the paper's Figure 2 algorithm
// actually guarantees) is CONTAINMENT, not equality: every emitted
// session is a maximal anchored rule-satisfying path, and every
// occurrence is covered, but the layered construction can omit some
// maximal paths — once a session was extended in an iteration, later
// alternative extensions of its former prefix are lost unless they fire
// in the same iteration. (Example: occurrences D,A,C,X,B with links
// D->C, A->X, A->B, C->B — the path [A,B] is maximal but never built,
// because B only becomes extendable after [A] was already consumed by
// X.) The paper example of Table 4 does reach equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "wum/common/random.h"
#include "wum/session/smart_sra.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

using IndexPath = std::vector<std::size_t>;

// All rule-satisfying paths over candidate occurrence indices:
// strictly increasing indices, each consecutive pair linked within rho.
// A path is *maximal* if no other rule-satisfying path contains it as a
// subsequence of occurrences. The reference builds every maximal path
// whose head has no eligible in-candidate referrer (matching Smart-SRA's
// "start page" notion) via DFS with dead-end extension detection.
std::set<std::vector<PageRequest>> ReferenceMaximalSessions(
    const Session& candidate, const WebGraph& graph, TimeSeconds rho) {
  const auto& reqs = candidate.requests;
  const std::size_t n = reqs.size();
  auto linked = [&](std::size_t from, std::size_t to) {
    const TimeSeconds gap = reqs[to].timestamp - reqs[from].timestamp;
    return gap >= 0 && gap <= rho &&
           graph.HasLink(reqs[from].page, reqs[to].page);
  };

  // Heads: occurrences with no earlier linked occurrence.
  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < n; ++i) {
    bool has_referrer = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (linked(j, i)) {
        has_referrer = true;
        break;
      }
    }
    if (!has_referrer) heads.push_back(i);
  }

  std::set<std::vector<PageRequest>> sessions;
  IndexPath path;
  auto dfs = [&](auto&& self, std::size_t last) -> void {
    bool extended = false;
    for (std::size_t next = last + 1; next < n; ++next) {
      if (linked(last, next)) {
        extended = true;
        path.push_back(next);
        self(self, next);
        path.pop_back();
      }
    }
    if (!extended) {
      std::vector<PageRequest> session;
      for (std::size_t index : path) session.push_back(reqs[index]);
      sessions.insert(std::move(session));
    }
  };
  for (std::size_t head : heads) {
    path.assign(1, head);
    dfs(dfs, head);
  }
  return sessions;
}

std::set<std::vector<PageRequest>> AsSet(const std::vector<Session>& sessions) {
  std::set<std::vector<PageRequest>> result;
  for (const Session& session : sessions) result.insert(session.requests);
  return result;
}

std::string Describe(const std::set<std::vector<PageRequest>>& sessions) {
  std::string out;
  for (const auto& requests : sessions) {
    Session session;
    session.requests = requests;
    out += "  " + SessionToString(session) + "\n";
  }
  return out;
}

void ExpectContainedInReference(const WebGraph& graph,
                                const Session& candidate,
                                bool expect_equality = false) {
  SmartSra::Options options;
  options.thresholds.max_session_duration = Minutes(100000);  // phase 2 only
  SmartSra algorithm(&graph, options);
  Result<std::vector<Session>> actual = algorithm.Phase2(candidate);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  const auto actual_set = AsSet(*actual);
  const auto reference = ReferenceMaximalSessions(
      candidate, graph, options.thresholds.max_page_stay);

  // (1) Every emitted session is a maximal anchored rule-satisfying path.
  for (const auto& session : actual_set) {
    EXPECT_TRUE(reference.contains(session))
        << "not a maximal anchored path: "
        << SessionToString(Session{session}) << "\ncandidate: "
        << SessionToString(candidate) << "\nreference:\n"
        << Describe(reference);
  }
  // (2) Every occurrence of the candidate is covered by some session.
  std::set<PageRequest> covered;
  for (const auto& session : actual_set) {
    covered.insert(session.begin(), session.end());
  }
  for (const PageRequest& request : candidate.requests) {
    EXPECT_TRUE(covered.contains(request))
        << "lost occurrence P" << request.page << " @" << request.timestamp;
  }
  if (expect_equality) {
    EXPECT_EQ(actual_set, reference)
        << "candidate: " << SessionToString(candidate) << "\nexpected:\n"
        << Describe(reference) << "actual:\n"
        << Describe(actual_set);
  }
}

TEST(SmartSraReferenceTest, PaperExampleReachesEquality) {
  WebGraph graph = MakeFigure1Topology();
  ExpectContainedInReference(
      graph,
      MakeSession({0, 2, 1, 5, 4, 3},
                  {Minutes(0), Minutes(6), Minutes(9), Minutes(12),
                   Minutes(14), Minutes(15)}),
      /*expect_equality=*/true);
}

TEST(SmartSraReferenceTest, LayeredConstructionCanDropMaximalPaths) {
  // The D,A,C,X,B example from the file comment: [A,B] is a maximal
  // anchored path but the layered algorithm cannot build it. Documented
  // behaviour of the paper's Figure 2, pinned here so any change to the
  // semantics is noticed.
  WebGraph graph(5);  // 0=D, 1=A, 2=C, 3=X, 4=B
  graph.AddLink(0, 2);  // D -> C
  graph.AddLink(1, 3);  // A -> X
  graph.AddLink(1, 4);  // A -> B
  graph.AddLink(2, 4);  // C -> B
  Session candidate = MakeSession({0, 1, 2, 3, 4}, {0, 10, 20, 30, 40});
  ExpectContainedInReference(graph, candidate);

  SmartSra algorithm(&graph);
  Result<std::vector<Session>> sessions = algorithm.Phase2(candidate);
  ASSERT_TRUE(sessions.ok());
  const auto produced = AsSet(*sessions);
  EXPECT_TRUE(produced.contains(MakeSession({0, 2, 4}, {0, 20, 40}).requests));
  EXPECT_TRUE(produced.contains(MakeSession({1, 3}, {10, 30}).requests));
  EXPECT_FALSE(
      produced.contains(MakeSession({1, 4}, {10, 40}).requests));
  const auto reference = ReferenceMaximalSessions(candidate, graph,
                                                  Minutes(10));
  EXPECT_TRUE(
      reference.contains(MakeSession({1, 4}, {10, 40}).requests));
}

TEST(SmartSraReferenceTest, ExhaustiveTinyTopologiesAndStreams) {
  // Every digraph on 3 pages (2^6 edge subsets) x a fixed set of
  // 4-request streams over those pages with varied timing.
  const std::vector<std::vector<PageId>> page_streams = {
      {0, 1, 2, 0}, {0, 0, 1, 2}, {2, 1, 0, 1}, {0, 1, 0, 1}, {1, 2, 2, 0},
  };
  // Strictly increasing timestamps only: with ties (simultaneous
  // requests) the set of reachable maximal paths depends on log order in
  // a way the paper leaves unspecified, so the reference is not defined
  // there (tie behaviour is covered by the rule-invariant property
  // tests instead).
  const std::vector<std::vector<TimeSeconds>> timings = {
      {0, 60, 120, 180},
      {0, 60, 700, 760},     // gap beyond rho in the middle
      {0, 5, 10, 15},        // rapid-fire requests
      {0, 550, 590, 1150},   // referrers near the rho boundary
  };
  const std::array<std::pair<PageId, PageId>, 6> edges = {
      std::pair<PageId, PageId>{0, 1}, {1, 0}, {0, 2},
      {2, 0}, {1, 2}, {2, 1}};
  for (unsigned mask = 0; mask < 64; ++mask) {
    WebGraph graph(3);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (mask & (1u << e)) graph.AddLink(edges[e].first, edges[e].second);
    }
    for (const auto& pages : page_streams) {
      for (const auto& times : timings) {
        ExpectContainedInReference(graph, MakeSession(pages, times));
      }
    }
  }
}

TEST(SmartSraReferenceTest, RandomSmallCandidates) {
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t num_pages = 3 + rng.NextBounded(4);  // 3..6 pages
    WebGraph graph(num_pages);
    for (std::size_t from = 0; from < num_pages; ++from) {
      for (std::size_t to = 0; to < num_pages; ++to) {
        if (from != to && rng.Bernoulli(0.35)) {
          graph.AddLink(static_cast<PageId>(from), static_cast<PageId>(to));
        }
      }
    }
    const std::size_t length = 1 + rng.NextBounded(7);  // 1..7 requests
    std::vector<PageId> pages;
    std::vector<TimeSeconds> times;
    TimeSeconds t = 0;
    for (std::size_t i = 0; i < length; ++i) {
      pages.push_back(static_cast<PageId>(rng.NextBounded(num_pages)));
      t += rng.NextInRange(1, 400);  // strictly increasing (see above)
      times.push_back(t);
    }
    ExpectContainedInReference(graph, MakeSession(pages, times));
  }
}

}  // namespace
}  // namespace wum
