#include "wum/topology/site_generator.h"

#include <gtest/gtest.h>

#include "wum/topology/graph_algorithms.h"

namespace wum {
namespace {

TEST(SiteGeneratorOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateSiteGeneratorOptions(SiteGeneratorOptions()).ok());
}

TEST(SiteGeneratorOptionsTest, RejectsBadValues) {
  SiteGeneratorOptions options;
  options.num_pages = 0;
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());

  options = SiteGeneratorOptions();
  options.mean_out_degree = -1.0;
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());

  options = SiteGeneratorOptions();
  options.num_pages = 10;
  options.mean_out_degree = 10.0;  // > num_pages - 1
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());

  options = SiteGeneratorOptions();
  options.start_page_fraction = 1.5;
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());

  options = SiteGeneratorOptions();
  options.min_start_pages = 0;
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());

  options = SiteGeneratorOptions();
  options.num_pages = 3;
  options.mean_out_degree = 1.0;
  options.min_start_pages = 4;
  EXPECT_TRUE(ValidateSiteGeneratorOptions(options).IsInvalidArgument());
}

TEST(SiteGeneratorTest, Figure1TopologyMatchesPaper) {
  WebGraph graph = MakeFigure1Topology();
  EXPECT_EQ(graph.num_pages(), 6u);
  EXPECT_EQ(graph.num_edges(), 7u);
  // Links asserted by Table 2 / Table 4 of the paper (ids: 0=P1, 1=P13,
  // 2=P20, 3=P23, 4=P34, 5=P49).
  EXPECT_TRUE(graph.HasLink(0, 2));   // Link[P1, P20] = 1
  EXPECT_FALSE(graph.HasLink(2, 1));  // Link[P20, P13] = 0
  EXPECT_TRUE(graph.HasLink(0, 1));   // Link[P1, P13] = 1
  EXPECT_TRUE(graph.HasLink(1, 5));   // Link[P13, P49] = 1
  EXPECT_FALSE(graph.HasLink(5, 4));  // Link[P49, P34] = 0
  EXPECT_TRUE(graph.HasLink(1, 4));   // Link[P13, P34] = 1
  EXPECT_TRUE(graph.HasLink(4, 3));   // Link[P34, P23] = 1
  EXPECT_TRUE(graph.HasLink(2, 3));   // P23 reachable from P20
  EXPECT_TRUE(graph.HasLink(5, 3));   // P23 reachable from P49
  EXPECT_EQ(graph.start_pages(), (std::vector<PageId>{0, 5}));  // P1, P49
}

TEST(SiteGeneratorTest, Figure1PageNames) {
  EXPECT_EQ(Figure1PageName(0), "P1");
  EXPECT_EQ(Figure1PageName(3), "P23");
  EXPECT_EQ(Figure1PageName(5), "P49");
  EXPECT_EQ(Figure1PageName(9), "P?9");
}

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedTest, UniformSiteInvariants) {
  SiteGeneratorOptions options;  // paper defaults: 300 pages, degree 15
  Rng rng(GetParam());
  Result<WebGraph> graph = GenerateUniformSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_pages(), 300u);
  // Mean out-degree within 10% of the target (reachability patching may
  // add a few edges).
  EXPECT_GE(graph->MeanOutDegree(), 15.0 * 0.95);
  EXPECT_LE(graph->MeanOutDegree(), 15.0 * 1.10);
  // 5% of 300 = 15 start pages.
  EXPECT_EQ(graph->start_pages().size(), 15u);
  // No self loops.
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_FALSE(graph->HasLink(static_cast<PageId>(p),
                                static_cast<PageId>(p)));
  }
  // Whole site reachable from the start pages.
  std::vector<bool> reachable = ReachablePages(*graph, graph->start_pages());
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_TRUE(reachable[p]) << "page " << p << " unreachable";
  }
}

TEST_P(GeneratorSeedTest, PowerLawSiteInvariants) {
  SiteGeneratorOptions options;
  Rng rng(GetParam());
  Result<WebGraph> graph = GeneratePowerLawSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_pages(), 300u);
  EXPECT_GE(graph->MeanOutDegree(), 15.0 * 0.90);
  EXPECT_LE(graph->MeanOutDegree(), 15.0 * 1.10);
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_FALSE(graph->HasLink(static_cast<PageId>(p),
                                static_cast<PageId>(p)));
  }
  std::vector<bool> reachable = ReachablePages(*graph, graph->start_pages());
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_TRUE(reachable[p]);
  }
}

TEST_P(GeneratorSeedTest, PowerLawIsMoreSkewedThanUniform) {
  SiteGeneratorOptions options;
  Rng rng_uniform(GetParam());
  Rng rng_power(GetParam());
  DegreeStats uniform =
      ComputeDegreeStats(*GenerateUniformSite(options, &rng_uniform));
  DegreeStats power =
      ComputeDegreeStats(*GeneratePowerLawSite(options, &rng_power));
  // Preferential attachment concentrates in-links: higher max and higher
  // variance than the uniform model.
  EXPECT_GT(power.in_degree.max(), uniform.in_degree.max());
  EXPECT_GT(power.in_degree.variance(), uniform.in_degree.variance());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 42, 20060102, 999983));

TEST_P(GeneratorSeedTest, HierarchicalSiteInvariants) {
  SiteGeneratorOptions options;
  Rng rng(GetParam());
  Result<WebGraph> graph = GenerateHierarchicalSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_pages(), 300u);
  EXPECT_GE(graph->MeanOutDegree(), 15.0 * 0.90);
  EXPECT_LE(graph->MeanOutDegree(), 15.0 * 1.10);
  // Page 0 (the site index) is always an entry page.
  EXPECT_TRUE(graph->IsStartPage(0));
  // The navigation tree is embedded: every page's parent links to it.
  const std::size_t branching = options.hierarchy_branching_factor;
  for (std::size_t child = 1; child < graph->num_pages(); ++child) {
    const auto parent = static_cast<PageId>((child - 1) / branching);
    EXPECT_TRUE(graph->HasLink(parent, static_cast<PageId>(child)))
        << "tree edge " << parent << " -> " << child << " missing";
  }
  std::vector<bool> reachable = ReachablePages(*graph, graph->start_pages());
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_TRUE(reachable[p]);
  }
  for (std::size_t p = 0; p < graph->num_pages(); ++p) {
    EXPECT_FALSE(graph->HasLink(static_cast<PageId>(p),
                                static_cast<PageId>(p)));
  }
}

TEST(SiteGeneratorTest, HierarchicalValidatesExtraOptions) {
  SiteGeneratorOptions options;
  options.hierarchy_branching_factor = 0;
  Rng rng(1);
  EXPECT_TRUE(
      GenerateHierarchicalSite(options, &rng).status().IsInvalidArgument());
  options = SiteGeneratorOptions();
  options.hierarchy_up_link_probability = 1.5;
  EXPECT_TRUE(
      GenerateHierarchicalSite(options, &rng).status().IsInvalidArgument());
}

TEST(SiteGeneratorTest, DeterministicForSeed) {
  SiteGeneratorOptions options;
  Rng rng_a(777);
  Rng rng_b(777);
  Result<WebGraph> a = GenerateUniformSite(options, &rng_a);
  Result<WebGraph> b = GenerateUniformSite(options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(SiteGeneratorTest, DifferentSeedsProduceDifferentSites) {
  SiteGeneratorOptions options;
  Rng rng_a(1);
  Rng rng_b(2);
  EXPECT_FALSE(*GenerateUniformSite(options, &rng_a) ==
               *GenerateUniformSite(options, &rng_b));
}

TEST(SiteGeneratorTest, MinStartPagesHonored) {
  SiteGeneratorOptions options;
  options.num_pages = 10;
  options.mean_out_degree = 2.0;
  options.start_page_fraction = 0.0;
  options.min_start_pages = 3;
  Rng rng(5);
  Result<WebGraph> graph = GenerateUniformSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->start_pages().size(), 3u);
}

TEST(SiteGeneratorTest, SinglePageSite) {
  SiteGeneratorOptions options;
  options.num_pages = 1;
  options.mean_out_degree = 0.0;
  Rng rng(5);
  Result<WebGraph> graph = GenerateUniformSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_pages(), 1u);
  EXPECT_EQ(graph->num_edges(), 0u);
  EXPECT_EQ(graph->start_pages().size(), 1u);
}

TEST(SiteGeneratorTest, ReachabilityPatchingCanBeDisabled) {
  SiteGeneratorOptions options;
  options.num_pages = 200;
  options.mean_out_degree = 1.0;  // sparse: many unreachable pages
  options.ensure_reachable_from_start_pages = false;
  Rng rng(9);
  Result<WebGraph> graph = GenerateUniformSite(options, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<bool> reachable = ReachablePages(*graph, graph->start_pages());
  std::size_t unreachable = 0;
  for (bool r : reachable) {
    if (!r) ++unreachable;
  }
  EXPECT_GT(unreachable, 0u);
}

}  // namespace
}  // namespace wum
