// End-to-end failure-domain tests for the sharded StreamEngine: a killed
// shard stays isolated under ErrorPolicy::kDegrade (and stops the world
// under kFailFast, same fault schedule), transient sink faults are
// absorbed by set_retry, exhausted retries become kEmit dead letters,
// and OfferPolicy::kShed sheds deterministically. Every scenario is
// driven by the deterministic fault harness — no wall clock, no races in
// what the assertions observe.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "wum/clf/user_partitioner.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

/// Emits every request as its own single-page session immediately.
class EmitEverySessionizer : public IncrementalUserSessionizer {
 public:
  Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
    Session session;
    session.requests.push_back(request);
    return emit(std::move(session));
  }
  Status Flush(const EmitFn&) override { return Status::OK(); }
};

std::size_t ShardOf(const std::string& ip, std::size_t num_shards) {
  return static_cast<std::size_t>(
      UserHashFor(ip, "", UserIdentity::kClientIp) % num_shards);
}

/// (user, page-sequence) pairs sorted for order-insensitive comparison.
std::vector<std::pair<std::string, std::vector<PageId>>> Canonicalize(
    const CollectingSessionSink& sink) {
  std::vector<std::pair<std::string, std::vector<PageId>>> out;
  for (const auto& entry : sink.entries()) {
    out.emplace_back(entry.client_ip, entry.session.PageSequence());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t EmittedRecords(const CollectingSessionSink& sink) {
  std::uint64_t total = 0;
  for (const auto& entry : sink.entries()) {
    total += entry.session.requests.size();
  }
  return total;
}

/// Installs a FaultInjectingOperator on exactly one shard (operator
/// factories run once per shard, in shard order) and pass-through
/// schedules everywhere else.
EngineOptions::OperatorFactory FaultOnShard(std::size_t target_shard,
                                            FaultInjectingOperator::Mode mode,
                                            std::vector<std::uint64_t> at) {
  auto next_shard = std::make_shared<std::size_t>(0);
  return [next_shard, target_shard, mode,
          at = std::move(at)]() -> std::unique_ptr<RecordOperator> {
    const std::size_t shard = (*next_shard)++;
    if (shard == target_shard) {
      return std::make_unique<FaultInjectingOperator>(
          FaultSchedule::AtIndices(at), mode);
    }
    return std::make_unique<FaultInjectingOperator>(FaultSchedule::Never(),
                                                    mode);
  };
}

// The tentpole scenario: one shard is killed mid-stream by an injected
// shard-fatal fault. Under kDegrade the engine finishes OK, every other
// shard's sessions are identical to a fault-free run, and the
// dead-letter accounting covers every record the dead shard swallowed.
TEST(EngineFaultTest, KilledShardStaysIsolatedUnderDegrade) {
  constexpr std::size_t kShards = 4;
  constexpr int kUsers = 16;
  constexpr int kRounds = 5;
  WebGraph graph = MakeFigure1Topology();

  std::vector<LogRecord> records;
  for (int r = 0; r < kRounds; ++r) {
    for (int u = 0; u < kUsers; ++u) {
      records.push_back(
          PageRecord("10.0.0." + std::to_string(u), 0, r * 30));
    }
  }
  // Kill the shard that hosts user 0, on the 3rd record it processes.
  const std::size_t kill_shard = ShardOf("10.0.0.0", kShards);

  // Fault-free baseline for the expected output of the healthy shards.
  CollectingSessionSink baseline;
  {
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions().set_num_shards(kShards).use_smart_sra(&graph),
        &baseline);
    ASSERT_TRUE(engine.ok());
    for (const LogRecord& record : records) {
      ASSERT_TRUE((*engine)->Offer(record).ok());
    }
    ASSERT_TRUE((*engine)->Finish().ok());
  }

  CollectingSessionSink degraded;
  DeadLetterQueue dead_letters;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(kShards)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&dead_letters)
          .use_smart_sra(&graph)
          .add_operator(FaultOnShard(
              kill_shard, FaultInjectingOperator::Mode::kShardFatal, {2})),
      &degraded);
  ASSERT_TRUE(engine.ok());
  // Degraded mode: the producer never sees the shard die.
  for (const LogRecord& record : records) {
    ASSERT_TRUE((*engine)->Offer(record).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // Exactly the injected fault killed exactly the targeted shard.
  const std::vector<Status> health = (*engine)->ShardHealth();
  ASSERT_EQ(health.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    if (i == kill_shard) {
      EXPECT_TRUE(health[i].IsInternal()) << health[i].ToString();
    } else {
      EXPECT_TRUE(health[i].ok()) << health[i].ToString();
    }
  }

  // Healthy shards produced byte-identical sessions to the fault-free
  // run; the dead shard produced none (its fault fired before anything
  // could close).
  auto expected = Canonicalize(baseline);
  expected.erase(std::remove_if(expected.begin(), expected.end(),
                                [&](const auto& entry) {
                                  return ShardOf(entry.first, kShards) ==
                                         kill_shard;
                                }),
                 expected.end());
  EXPECT_EQ(Canonicalize(degraded), expected);

  // Conservation: every accepted record is either inside an emitted
  // session or covered by a dead letter — nothing vanishes.
  EXPECT_EQ(EmittedRecords(degraded) + dead_letters.records_covered(),
            records.size());
  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.dead_letters, dead_letters.records_covered());
  EXPECT_EQ(dead_letters.overflow_dropped(), 0u);

  // Only the dead shard quarantined anything, and the retained letters
  // name it.
  for (const DeadLetter& letter : dead_letters.Drain()) {
    EXPECT_EQ(letter.shard, kill_shard);
    EXPECT_FALSE(letter.reason.ok());
  }
  const std::vector<EngineStats> shards = (*engine)->ShardStats();
  for (std::size_t i = 0; i < kShards; ++i) {
    if (i != kill_shard) {
      EXPECT_EQ(shards[i].dead_letters, 0u) << i;
    }
  }
}

// The same fault schedule under the default kFailFast policy is fatal to
// the whole engine — the pre-existing contract is unchanged.
TEST(EngineFaultTest, SameFaultUnderFailFastStopsTheEngine) {
  constexpr std::size_t kShards = 4;
  WebGraph graph = MakeFigure1Topology();
  const std::size_t kill_shard = ShardOf("10.0.0.0", kShards);

  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(kShards)
          .use_smart_sra(&graph)
          .add_operator(FaultOnShard(
              kill_shard, FaultInjectingOperator::Mode::kShardFatal, {2})),
      &sessions);
  ASSERT_TRUE(engine.ok());
  Status status;
  for (int r = 0; r < 5 && status.ok(); ++r) {
    for (int u = 0; u < 16 && status.ok(); ++u) {
      status = (*engine)->Offer(PageRecord("10.0.0." + std::to_string(u), 0,
                                           r * 30));
    }
  }
  // Offer may or may not observe the death first (the producer can
  // outrun the worker), but Finish must surface the injected fault.
  if (!status.ok()) {
    EXPECT_TRUE(status.IsInternal()) << status.ToString();
    EXPECT_TRUE((*engine)->Finish().IsInternal());
  } else {
    EXPECT_TRUE((*engine)->Finish().IsInternal());
  }
}

// Operator rejections (record-level errors) quarantine only the record:
// the shard keeps sessionizing everything else, and the drained letters
// arrive in processing order with the offending records attached.
TEST(EngineFaultTest, RejectedRecordsAreDeadLetteredInOrder) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  DeadLetterQueue dead_letters;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(1)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&dead_letters)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); })
          .add_operator([] {
            return std::make_unique<FaultInjectingOperator>(
                FaultSchedule::AtIndices({1, 3}),
                FaultInjectingOperator::Mode::kReject);
          }),
      &sessions);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, i * 10)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // Records 0, 2, 4 sessionized; 1 and 3 quarantined, in order.
  EXPECT_EQ(sessions.entries().size(), 3u);
  std::vector<DeadLetter> letters = dead_letters.Drain();
  ASSERT_EQ(letters.size(), 2u);
  EXPECT_EQ(letters[0].stage, DeadLetter::Stage::kRecord);
  ASSERT_TRUE(letters[0].record.has_value());
  EXPECT_EQ(letters[0].record->timestamp, 10);
  EXPECT_TRUE(letters[0].reason.IsInvalidArgument());
  ASSERT_TRUE(letters[1].record.has_value());
  EXPECT_EQ(letters[1].record->timestamp, 30);
  // Conservation again: 3 emitted + 2 quarantined == 5 accepted.
  EXPECT_EQ(EmittedRecords(sessions) + dead_letters.records_covered(), 5u);
  // The shard itself stays healthy: record faults are not shard faults.
  EXPECT_TRUE((*engine)->ShardHealth()[0].ok());
}

// set_retry absorbs transient sink faults: with the flaky sink failing
// on scheduled calls, every session still arrives and the retry counters
// (and the injected backoff ladder) show exactly the configured policy.
TEST(EngineFaultTest, RetryingSinkAbsorbsTransientSinkFaults) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink collected;
  // Emissions are serialized through the emit hub, so FlakySink call
  // indices are global: a failure's immediate successor call is its
  // retry. Indices 0 and 5 fail; the retries (calls 1 and 6) succeed.
  FlakySink flaky(&collected, FaultSchedule::AtIndices({0, 5}));
  std::vector<std::chrono::microseconds> slept;
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::microseconds(1000);
  retry.sleep = [&slept](std::chrono::microseconds delay) {
    slept.push_back(delay);
  };
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .set_retry(retry)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); }),
      &flaky);
  ASSERT_TRUE(engine.ok());
  for (int u = 0; u < 10; ++u) {
    ASSERT_TRUE(
        (*engine)->Offer(PageRecord("10.0.0." + std::to_string(u), 0, 0)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // All 10 sessions delivered despite 2 scheduled faults; each fault
  // cost exactly one retry with the deterministic first-step backoff.
  EXPECT_EQ(collected.entries().size(), 10u);
  EXPECT_EQ((*engine)->TotalStats().retries, 2u);
  EXPECT_EQ((*engine)->TotalStats().sessions_emitted, 10u);
  EXPECT_EQ(flaky.failures(), 2u);
  EXPECT_EQ(slept, (std::vector<std::chrono::microseconds>{
                       std::chrono::microseconds(1000),
                       std::chrono::microseconds(1000)}));
}

// When the sink stays down past max_attempts in kDegrade mode, the
// refused sessions become kEmit dead letters (covering their records)
// and the engine still finishes OK with healthy shards.
TEST(EngineFaultTest, ExhaustedRetriesBecomeEmitDeadLetters) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink collected;
  FlakySink flaky(&collected, FaultSchedule::Always(),
                  Status::IoError("sink down"));
  DeadLetterQueue dead_letters;
  RetryOptions retry;
  retry.max_attempts = 2;
  retry.sleep = [](std::chrono::microseconds) {};
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&dead_letters)
          .set_retry(retry)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); }),
      &flaky);
  ASSERT_TRUE(engine.ok());
  for (int u = 0; u < 4; ++u) {
    ASSERT_TRUE(
        (*engine)->Offer(PageRecord("10.0.0." + std::to_string(u), 0, 0)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // Nothing delivered; every session quarantined at the emit stage with
  // one retry spent on each; the shards themselves never died.
  EXPECT_TRUE(collected.entries().empty());
  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.sessions_emitted, 0u);
  EXPECT_EQ(total.retries, 4u);
  EXPECT_EQ(total.dead_letters, 4u);
  std::vector<DeadLetter> letters = dead_letters.Drain();
  ASSERT_EQ(letters.size(), 4u);
  for (const DeadLetter& letter : letters) {
    EXPECT_EQ(letter.stage, DeadLetter::Stage::kEmit);
    EXPECT_TRUE(letter.reason.IsIoError());
    EXPECT_EQ(letter.records_covered, 1u);
    EXPECT_FALSE(letter.detail.empty());  // the user key of the session
  }
  for (const Status& health : (*engine)->ShardHealth()) {
    EXPECT_TRUE(health.ok());
  }
}

/// Sessionizer that parks the worker on its first record until the test
/// releases it — the deterministic way to hold a shard queue full.
class GateSessionizer : public IncrementalUserSessionizer {
 public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool entered = false;
    bool released = false;

    void WaitEntered() {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return entered; });
    }
    void Release() {
      {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
      }
      cv.notify_all();
    }
  };

  explicit GateSessionizer(Gate* gate) : gate_(gate) {}

  Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
    if (first_) {
      first_ = false;
      std::unique_lock<std::mutex> lock(gate_->mutex);
      gate_->entered = true;
      gate_->cv.notify_all();
      gate_->cv.wait(lock, [this] { return gate_->released; });
    }
    Session session;
    session.requests.push_back(request);
    return emit(std::move(session));
  }
  Status Flush(const EmitFn&) override { return Status::OK(); }

 private:
  Gate* gate_;
  bool first_ = true;
};

// OfferPolicy::kShed drops (and counts) records instead of blocking when
// a shard queue is full. The gate makes "full" deterministic: the worker
// is parked inside record 0, record 1 fills the capacity-1 queue, so
// records 2 and 3 must shed.
TEST(EngineFaultTest, ShedPolicyDropsAndCountsWhenQueueIsFull) {
  WebGraph graph = MakeFigure1Topology();
  GateSessionizer::Gate gate;
  CollectingSessionSink sessions;
  DeadLetterQueue dead_letters;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(1)
          .set_queue_capacity(1)
          .set_offer_policy(OfferPolicy::kShed)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&dead_letters)
          .set_num_pages(graph.num_pages())
          .use_custom([&gate] { return std::make_unique<GateSessionizer>(&gate); }),
      &sessions);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  gate.WaitEntered();  // the worker holds record 0; the queue is empty
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 1, 10)).ok());  // fills it
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 2, 20)).ok());  // sheds
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 3, 30)).ok());  // sheds
  gate.Release();
  ASSERT_TRUE((*engine)->Finish().ok());

  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.records_in, 2u);
  EXPECT_EQ(total.records_shed, 2u);
  EXPECT_EQ(sessions.entries().size(), 2u);
  // Shedding is load management, not a failure: nothing is dead-lettered.
  EXPECT_EQ(dead_letters.total_offered(), 0u);
}

// Away from overload the two offer policies are equivalent: identical
// sessions, zero shed.
TEST(EngineFaultTest, ShedEqualsBlockWithoutBackpressure) {
  WebGraph graph = MakeFigure1Topology();
  auto run = [&graph](OfferPolicy policy, CollectingSessionSink* sink) {
    // kShed requires a dead-letter budget since EngineOptions::Validate;
    // attach one to both runs so the only difference is the policy.
    DeadLetterQueue dead_letters;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions()
            .set_num_shards(2)
            .set_offer_policy(policy)
            .set_dead_letters(&dead_letters)
            .use_smart_sra(&graph),
        sink);
    ASSERT_TRUE(engine.ok());
    for (int u = 0; u < 8; ++u) {
      for (int r = 0; r < 4; ++r) {
        ASSERT_TRUE((*engine)
                        ->Offer(PageRecord("10.0.0." + std::to_string(u), 0,
                                           r * 30))
                        .ok());
      }
    }
    ASSERT_TRUE((*engine)->Finish().ok());
    EXPECT_EQ((*engine)->TotalStats().records_shed, 0u);
  };
  CollectingSessionSink blocked;
  CollectingSessionSink shed;
  run(OfferPolicy::kBlock, &blocked);
  run(OfferPolicy::kShed, &shed);
  EXPECT_EQ(Canonicalize(blocked), Canonicalize(shed));
}

// Records offered to a shard that already died are themselves
// quarantined (stage kShardDead) instead of failing the producer.
TEST(EngineFaultTest, OffersToDeadShardAreQuarantined) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  DeadLetterQueue dead_letters;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(1)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&dead_letters)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); })
          .add_operator([] {
            return std::make_unique<FaultInjectingOperator>(
                FaultSchedule::AtIndices({0}),
                FaultInjectingOperator::Mode::kShardFatal);
          }),
      &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  // Wait until the (only) shard has died, then keep offering: the
  // records must be absorbed as dead letters, never surfaced as errors.
  while ((*engine)->ShardHealth()[0].ok()) {
    std::this_thread::yield();
  }
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 1, 10)).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 2, 20)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());

  EXPECT_TRUE(sessions.entries().empty());
  EXPECT_EQ(dead_letters.records_covered(), 3u);
  std::vector<DeadLetter> letters = dead_letters.Drain();
  for (const DeadLetter& letter : letters) {
    EXPECT_EQ(letter.stage, DeadLetter::Stage::kShardDead);
  }
}

}  // namespace
}  // namespace wum
