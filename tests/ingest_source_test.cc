// Contract tests for the wum::ingest ByteSource surface: LineBuffer's
// partial-line carry round-trips across Next() calls no matter how the
// stream is sliced, the close tail arrives whole like a file's final
// unterminated line, oversize partial lines are rejected with the
// buffer intact, and FileSource chunks reassemble the file exactly —
// so socket ingest and file ingest are interchangeable upstream of
// ClfParser::ParseChunk.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wum/ingest/byte_source.h"

namespace wum::ingest {
namespace {

namespace fs = std::filesystem;

/// Drains every currently available chunk into one string.
std::string DrainAvailable(LineBuffer* buffer) {
  std::string out;
  while (true) {
    Result<std::optional<std::string_view>> chunk = buffer->Next();
    EXPECT_TRUE(chunk.ok());
    if (!chunk.ok() || !chunk->has_value()) return out;
    out.append(**chunk);
  }
}

TEST(LineBufferTest, ServesCompleteLinesOnly) {
  LineBuffer buffer;
  ASSERT_TRUE(buffer.Append("alpha\nbeta\ngam").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "alpha\nbeta\n");
  // The partial line is carried, not served.
  EXPECT_EQ(buffer.buffered_bytes(), 3u);
  EXPECT_FALSE(buffer.exhausted());
  ASSERT_TRUE(buffer.Append("ma\ndelta\n").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "gamma\ndelta\n");
  EXPECT_EQ(buffer.consumed_bytes(), std::string("alpha\nbeta\ngamma\ndelta\n")
                                         .size());
}

TEST(LineBufferTest, CarryRoundTripsAcrossByteAtATimeAppends) {
  // The nastiest slicing: one byte per Append. Whatever Next() serves,
  // concatenated, must equal the original stream exactly.
  const std::string stream = "a\nbb\r\nccc\n\nfinal-no-newline";
  LineBuffer buffer;
  std::string served;
  for (char byte : stream) {
    ASSERT_TRUE(buffer.Append(std::string_view(&byte, 1)).ok());
    served += DrainAvailable(&buffer);
  }
  buffer.Close();
  served += DrainAvailable(&buffer);
  EXPECT_EQ(served, stream);
  EXPECT_TRUE(buffer.exhausted());
  EXPECT_EQ(buffer.consumed_bytes(), stream.size());
}

TEST(LineBufferTest, CloseServesUnterminatedTailWhole) {
  LineBuffer buffer;
  ASSERT_TRUE(buffer.Append("done\npartial tail").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "done\n");
  buffer.Close();
  Result<std::optional<std::string_view>> tail = buffer.Next();
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE(tail->has_value());
  EXPECT_EQ(**tail, "partial tail");
  EXPECT_TRUE(buffer.exhausted());
}

TEST(LineBufferTest, CloseWithEmptyBufferIsExhaustedImmediately) {
  LineBuffer buffer;
  ASSERT_TRUE(buffer.Append("whole line\n").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "whole line\n");
  buffer.Close();
  Result<std::optional<std::string_view>> chunk = buffer.Next();
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->has_value());
  EXPECT_TRUE(buffer.exhausted());
}

TEST(LineBufferTest, OversizePartialLineRejectedWithBufferIntact) {
  LineBuffer buffer(/*max_line_bytes=*/16);
  ASSERT_TRUE(buffer.Append("ok\nstart-").ok());
  const std::size_t before = buffer.buffered_bytes();
  const std::uint64_t consumed_before = buffer.consumed_bytes();
  // Completing lines ride along fine; a partial line growing past the
  // bound is refused and the buffer rolls back to its pre-Append state.
  const Status status =
      buffer.Append(std::string(64, 'x'));  // no newline anywhere
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(buffer.buffered_bytes(), before);
  EXPECT_EQ(buffer.consumed_bytes(), consumed_before);
  // The complete line buffered before the abuse is still served.
  EXPECT_EQ(DrainAvailable(&buffer), "ok\n");
}

TEST(LineBufferTest, OversizeRejectionDoesNotCorruptCarry) {
  LineBuffer buffer(/*max_line_bytes=*/8);
  ASSERT_TRUE(buffer.Append("abc").ok());
  // This append carries a newline but still leaves an oversize partial
  // tail; the rollback must restore the carry marker too, or "abc"
  // would later be served as a (wrong) complete line.
  const Status status = buffer.Append("x\n" + std::string(32, 'y'));
  EXPECT_FALSE(status.ok());
  Result<std::optional<std::string_view>> chunk = buffer.Next();
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->has_value());  // "abc" is still a partial line
  ASSERT_TRUE(buffer.Append("def\n").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "abcdef\n");
}

TEST(LineBufferTest, RejectedBytesAccumulateAcrossOversizeAppends) {
  LineBuffer buffer(/*max_line_bytes=*/8);
  EXPECT_EQ(buffer.rejected_bytes(), 0u);
  ASSERT_TRUE(buffer.Append("fine\n").ok());
  EXPECT_EQ(buffer.rejected_bytes(), 0u);
  // Every byte of a refused Append counts, across repeated abuse — the
  // producer's rate quota already paid for them at read time.
  EXPECT_FALSE(buffer.Append(std::string(20, 'x')).ok());
  EXPECT_EQ(buffer.rejected_bytes(), 20u);
  EXPECT_FALSE(buffer.Append(std::string(13, 'y')).ok());
  EXPECT_EQ(buffer.rejected_bytes(), 33u);
  // Accepted traffic never touches the tally.
  EXPECT_EQ(DrainAvailable(&buffer), "fine\n");
  ASSERT_TRUE(buffer.Append("more\n").ok());
  EXPECT_EQ(buffer.rejected_bytes(), 33u);
}

TEST(LineBufferTest, ShedTailDropsPartialWithoutAdvancingOffset) {
  LineBuffer buffer;
  ASSERT_TRUE(buffer.Append("whole\npart").ok());
  EXPECT_EQ(DrainAvailable(&buffer), "whole\n");
  const std::uint64_t offset = buffer.consumed_bytes();
  // The partial is discarded but the replay offset stays on the line
  // boundary: a resuming client re-sends the shed line whole.
  EXPECT_EQ(buffer.ShedTail(), 4u);
  EXPECT_EQ(buffer.buffered_bytes(), 0u);
  EXPECT_EQ(buffer.consumed_bytes(), offset);
  EXPECT_FALSE(buffer.Next()->has_value());
}

TEST(LineBufferTest, ShedTailKeepsUnservedCompleteLines) {
  LineBuffer buffer;
  ASSERT_TRUE(buffer.Append("a\nb\ncarried-partial").ok());
  // Complete-but-unserved lines survive the shed; only the carry goes.
  EXPECT_EQ(buffer.ShedTail(), std::string("carried-partial").size());
  EXPECT_EQ(DrainAvailable(&buffer), "a\nb\n");
  EXPECT_EQ(buffer.consumed_bytes(), 4u);
  EXPECT_EQ(buffer.ShedTail(), 0u);  // nothing left to shed
}

TEST(LineBufferTest, AppendAfterCloseFails) {
  LineBuffer buffer;
  buffer.Close();
  EXPECT_TRUE(buffer.closed());
  EXPECT_TRUE(buffer.exhausted());
  EXPECT_FALSE(buffer.Append("late\n").ok());
}

TEST(FileSourceTest, ChunksReassembleFileExactly) {
  const fs::path path =
      fs::path(testing::TempDir()) / "ingest_source_test.log";
  std::string content;
  for (int i = 0; i < 500; ++i) {
    content += "line " + std::to_string(i) + " with some padding payload\n";
  }
  content += "final line without newline";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  Result<FileSource> source =
      FileSource::Open(path.string(), /*chunk_bytes=*/256);
  ASSERT_TRUE(source.ok());
  std::string reassembled;
  while (true) {
    Result<std::optional<std::string_view>> chunk = source->Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    // Every chunk except the final one ends on a line boundary.
    if (reassembled.size() + (*chunk)->size() < content.size()) {
      EXPECT_EQ((*chunk)->back(), '\n');
    }
    reassembled.append(**chunk);
  }
  EXPECT_TRUE(source->exhausted());
  EXPECT_EQ(reassembled, content);
  fs::remove(path);
}

TEST(FileSourceTest, MissingFileFailsToOpen) {
  Result<FileSource> source =
      FileSource::Open("/nonexistent/ingest_source_test.log");
  EXPECT_FALSE(source.ok());
}

}  // namespace
}  // namespace wum::ingest
