#include "wum/common/status.h"

#include <gtest/gtest.h>

#include "wum/common/result.h"

namespace wum {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status status = Status::ParseError("x");
  EXPECT_FALSE(status.IsInvalidArgument());
  EXPECT_FALSE(status.IsNotFound());
  EXPECT_FALSE(status.IsIoError());
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::NotFound("missing");
  Status copy = original;                  // copy constructor
  EXPECT_EQ(copy, original);
  Status assigned;
  assigned = original;                     // copy assignment
  EXPECT_EQ(assigned, original);
  EXPECT_EQ(original.message(), "missing");  // source untouched
}

TEST(StatusTest, MoveTransfersState) {
  Status original = Status::IoError("disk");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsIoError());
  EXPECT_EQ(moved.message(), "disk");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status status = Status::Internal("self");
  Status& alias = status;
  status = alias;
  EXPECT_EQ(status.message(), "self");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsWhenNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int value) {
  WUM_RETURN_NOT_OK(FailsWhenNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(good.ValueOr(0), 7);
  EXPECT_EQ(bad.ValueOr(99), 99);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Result<int> HalveEven(int value) {
  if (value % 2 != 0) return Status::InvalidArgument("odd");
  return value / 2;
}

Result<int> QuarterViaMacro(int value) {
  WUM_ASSIGN_OR_RETURN(int half, HalveEven(value));
  WUM_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> good = QuarterViaMacro(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 2);
  EXPECT_TRUE(QuarterViaMacro(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterViaMacro(7).status().IsInvalidArgument());
}

TEST(ResultTest, CopyableWhenValueIs) {
  Result<std::vector<int>> result = std::vector<int>{1, 2, 3};
  Result<std::vector<int>> copy = result;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->size(), 3u);
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace wum
