// ParseChunk is the zero-copy twin of the line-at-a-time parsers: over
// any input — clean logs, corrupted lines, pure garbage, blank lines,
// missing final newline — it must accept exactly the lines ParseClfLine
// accepts, produce identical records, and keep identical accounting
// (stats, sample errors, reject-handler line numbers), whether the text
// arrives as one chunk, many line-aligned chunks, or through a
// ChunkReader over a real file.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wum/clf/chunk_reader.h"
#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/common/random.h"

namespace wum {
namespace {

// Applies `count` random single-character corruptions (replace, insert,
// delete) to a string.
std::string Corrupt(std::string text, Rng* rng, int count) {
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos =
        static_cast<std::size_t>(rng->NextBounded(text.size()));
    char junk = static_cast<char>(rng->NextInRange(1, 126));
    if (junk == '\n') junk = ' ';  // corpus lines must stay single lines
    switch (rng->NextBounded(3)) {
      case 0:
        text[pos] = junk;
        break;
      case 1:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos), junk);
        break;
      default:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return text;
}

std::string RandomGarbage(Rng* rng, std::size_t max_length) {
  std::string text;
  const std::size_t length =
      static_cast<std::size_t>(rng->NextBounded(max_length + 1));
  for (std::size_t i = 0; i < length; ++i) {
    char c = static_cast<char>(rng->NextInRange(1, 255));
    if (c == '\n') c = ' ';  // corpus lines must stay single lines
    text += c;
  }
  return text;
}

/// A fuzz corpus line: clean CLF, clean Combined, corrupted, garbage, or
/// blank — the mix a dirty real-world access log serves.
std::string CorpusLine(Rng* rng) {
  LogRecord record;
  record.client_ip = "10.1.2." + std::to_string(rng->NextBounded(200));
  record.timestamp = 1136214245 + static_cast<TimeSeconds>(
                                      rng->NextBounded(100000));
  record.url = PageUrl(static_cast<std::uint32_t>(rng->NextBounded(300)));
  record.referrer = "http://www.site.example/pages/p7.html";
  record.user_agent = "Mozilla/4.0";
  record.bytes = static_cast<std::int64_t>(rng->NextBounded(9000));
  switch (rng->NextBounded(5)) {
    case 0:
      return FormatClfLine(record);
    case 1:
      return FormatCombinedLogLine(record);
    case 2:
      return Corrupt(FormatClfLine(record), rng, 1 + rng->NextBounded(6));
    case 3:
      return RandomGarbage(rng, 120);
    default:
      return std::string(rng->NextBounded(3), ' ');  // blank-ish line
  }
}

struct Reject {
  std::uint64_t line_number;
  std::string raw_line;

  friend bool operator==(const Reject&, const Reject&) = default;
};

ClfParser::RejectHandler Collect(std::vector<Reject>* rejects) {
  return [rejects](std::uint64_t line_number, std::string_view raw_line,
                   const Status&) {
    rejects->push_back(Reject{line_number, std::string(raw_line)});
  };
}

void ExpectSameStats(const ClfParser::Stats& a, const ClfParser::Stats& b) {
  EXPECT_EQ(a.lines_seen, b.lines_seen);
  EXPECT_EQ(a.records_parsed, b.records_parsed);
  EXPECT_EQ(a.lines_rejected, b.lines_rejected);
  EXPECT_EQ(a.sample_errors, b.sample_errors);
}

TEST(ClfChunkParseTest, MatchesLineParsingOverFuzzCorpus) {
  Rng rng(211);
  for (int trial = 0; trial < 200; ++trial) {
    const int num_lines = 1 + static_cast<int>(rng.NextBounded(40));
    std::vector<std::string> lines;
    std::string text;
    for (int i = 0; i < num_lines; ++i) {
      lines.push_back(CorpusLine(&rng));
      text += lines.back();
      text += '\n';
    }

    // Reference: the documented line-at-a-time parser over each line.
    std::vector<LogRecord> expected;
    for (const std::string& line : lines) {
      Result<LogRecord> parsed = ParseClfLine(line);
      if (parsed.ok()) expected.push_back(std::move(*parsed));
    }

    std::vector<Reject> chunk_rejects;
    ClfParser parser;
    parser.set_reject_handler(Collect(&chunk_rejects));
    std::vector<LogRecordRef> refs;
    ASSERT_TRUE(parser.ParseChunk(text, &refs).ok());
    std::vector<LogRecord> actual;
    actual.reserve(refs.size());
    for (const LogRecordRef& ref : refs) actual.push_back(ref.Materialize());
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(parser.stats().lines_seen, lines.size());
    EXPECT_EQ(parser.stats().records_parsed, expected.size());

    // The stream parser over the same text agrees on every count, every
    // sampled error, and every reject callback.
    std::vector<Reject> stream_rejects;
    ClfParser stream_parser;
    stream_parser.set_reject_handler(Collect(&stream_rejects));
    std::stringstream stream(text);
    std::vector<LogRecord> stream_records;
    ASSERT_TRUE(stream_parser.ParseStream(&stream, &stream_records).ok());
    EXPECT_EQ(actual, stream_records);
    ExpectSameStats(parser.stats(), stream_parser.stats());
    EXPECT_EQ(chunk_rejects, stream_rejects);
  }
}

TEST(ClfChunkParseTest, LineAlignedChunksComposeWithContinuedNumbering) {
  Rng rng(223);
  for (int trial = 0; trial < 100; ++trial) {
    const int num_lines = 2 + static_cast<int>(rng.NextBounded(30));
    std::string text;
    std::vector<std::size_t> boundaries;  // line-aligned split points
    for (int i = 0; i < num_lines; ++i) {
      text += CorpusLine(&rng);
      text += '\n';
      if (rng.Bernoulli(0.3)) boundaries.push_back(text.size());
    }

    std::vector<Reject> whole_rejects;
    ClfParser whole;
    whole.set_reject_handler(Collect(&whole_rejects));
    std::vector<LogRecordRef> whole_refs;
    ASSERT_TRUE(whole.ParseChunk(text, &whole_refs).ok());

    std::vector<Reject> split_rejects;
    ClfParser split;
    split.set_reject_handler(Collect(&split_rejects));
    std::vector<LogRecord> split_records;
    std::size_t start = 0;
    boundaries.push_back(text.size());
    for (const std::size_t end : boundaries) {
      std::vector<LogRecordRef> refs;
      ASSERT_TRUE(
          split.ParseChunk(
                   std::string_view(text).substr(start, end - start), &refs)
              .ok());
      // Chunk-local refs die with this iteration's view scope; own them.
      for (const LogRecordRef& ref : refs) {
        split_records.push_back(ref.Materialize());
      }
      start = end;
    }

    std::vector<LogRecord> whole_records;
    for (const LogRecordRef& ref : whole_refs) {
      whole_records.push_back(ref.Materialize());
    }
    EXPECT_EQ(split_records, whole_records);
    ExpectSameStats(split.stats(), whole.stats());
    // Line numbering continues across chunks: reject callbacks carry the
    // same absolute line numbers as the single-chunk parse.
    EXPECT_EQ(split_rejects, whole_rejects);
  }
}

TEST(ClfChunkParseTest, FinalUnterminatedLineParses) {
  LogRecord record;
  record.client_ip = "10.0.0.1";
  record.timestamp = 1136214245;
  record.url = "/pages/p3.html";
  const std::string text =
      FormatClfLine(record) + "\n" + FormatClfLine(record);  // no trailing \n
  ClfParser parser;
  std::vector<LogRecordRef> refs;
  ASSERT_TRUE(parser.ParseChunk(text, &refs).ok());
  EXPECT_EQ(refs.size(), 2u);
  EXPECT_EQ(parser.stats().lines_seen, 2u);
  EXPECT_EQ(parser.stats().records_parsed, 2u);
}

TEST(ClfChunkParseTest, ChunkReaderFeedsParseChunkIdenticallyToStream) {
  namespace fs = std::filesystem;
  Rng rng(227);
  const fs::path path =
      fs::path(testing::TempDir()) / "clf_chunk_parse_test.log";
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text += CorpusLine(&rng);
    text += '\n';
  }
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.write(text.data(),
                          static_cast<std::streamsize>(text.size())));
  }

  // Tiny chunk size forces many line-aligned chunks through the reader.
  Result<ChunkReader> reader = ChunkReader::Open(path.string(), 512);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ClfParser chunk_parser;
  std::vector<LogRecord> chunk_records;
  std::size_t chunks = 0;
  while (std::optional<std::string_view> chunk = reader->Next()) {
    ++chunks;
    std::vector<LogRecordRef> refs;
    ASSERT_TRUE(chunk_parser.ParseChunk(*chunk, &refs).ok());
    for (const LogRecordRef& ref : refs) {
      chunk_records.push_back(ref.Materialize());
    }
  }
  EXPECT_GT(chunks, 1u);

  std::ifstream in(path, std::ios::binary);
  ClfParser stream_parser;
  std::vector<LogRecord> stream_records;
  ASSERT_TRUE(stream_parser.ParseStream(&in, &stream_records).ok());
  EXPECT_EQ(chunk_records, stream_records);
  ExpectSameStats(chunk_parser.stats(), stream_parser.stats());

  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace
}  // namespace wum
