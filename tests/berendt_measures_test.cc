#include "wum/eval/berendt_measures.h"

#include <gtest/gtest.h>

#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

TEST(LcsTest, KnownCases) {
  EXPECT_EQ(LongestCommonSubsequenceLength({}, {}), 0u);
  EXPECT_EQ(LongestCommonSubsequenceLength({1, 2, 3}, {}), 0u);
  EXPECT_EQ(LongestCommonSubsequenceLength({1, 2, 3}, {1, 2, 3}), 3u);
  EXPECT_EQ(LongestCommonSubsequenceLength({1, 2, 3}, {3, 2, 1}), 1u);
  EXPECT_EQ(LongestCommonSubsequenceLength({1, 9, 2, 8, 3}, {1, 2, 3}), 3u);
  EXPECT_EQ(LongestCommonSubsequenceLength({1, 3, 5, 7}, {0, 3, 0, 7}), 2u);
  EXPECT_EQ(LongestCommonSubsequenceLength({2, 2, 2}, {2, 2}), 2u);
}

TEST(LcsTest, Symmetric) {
  const std::vector<PageId> a = {4, 1, 7, 7, 2};
  const std::vector<PageId> b = {1, 7, 2, 4};
  EXPECT_EQ(LongestCommonSubsequenceLength(a, b),
            LongestCommonSubsequenceLength(b, a));
}

TEST(SequenceSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(SequenceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SequenceSimilarity({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SequenceSimilarity({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(SequenceSimilarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(SequenceSimilarity({1, 2, 3, 4}, {2, 3}), 0.5);
}

Workload TwoSessionWorkload() {
  Workload workload;
  AgentRun run;
  run.agent_id = 0;
  run.client_ip = "ip";
  // Figure 1 behaviour-3 motif again: [P1,P13,P34] + [P1,P20], log
  // [P1,P13,P34,P20].
  run.trace.real_sessions.push_back(MakeSession({0, 1, 4}, {0, 120, 240}));
  run.trace.real_sessions.push_back(MakeSession({0, 2}, {360, 480}));
  run.trace.server_requests =
      MakeSession({0, 1, 4, 2}, {0, 120, 240, 480}).requests;
  workload.agents.push_back(std::move(run));
  return workload;
}

TEST(BerendtMeasuresTest, SmartSraReconstructsBothExactly) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = TwoSessionWorkload();
  SmartSra heuristic(&graph);
  Result<BerendtMeasures> measures =
      EvaluateBerendtMeasures(workload, heuristic);
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->real_sessions, 2u);
  EXPECT_EQ(measures->exact_reconstructions, 2u);
  EXPECT_DOUBLE_EQ(measures->exact_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(measures->mean_best_similarity(), 1.0);
}

TEST(BerendtMeasuresTest, PageStayGetsPartialCredit) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = TwoSessionWorkload();
  PageStaySessionizer heuristic;  // one session [P1,P13,P34,P20]
  Result<BerendtMeasures> measures =
      EvaluateBerendtMeasures(workload, heuristic);
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->exact_reconstructions, 0u);
  // Real 1: LCS([P1,P13,P34,P20], [P1,P13,P34]) = 3, /4 = 0.75.
  // Real 2: LCS(.., [P1,P20]) = 2, /4 = 0.5. Mean = 0.625.
  EXPECT_DOUBLE_EQ(measures->mean_best_similarity(), 0.625);
}

TEST(BerendtMeasuresTest, EmptyWorkload) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  Result<BerendtMeasures> measures =
      EvaluateBerendtMeasures(Workload{}, heuristic);
  ASSERT_TRUE(measures.ok());
  EXPECT_DOUBLE_EQ(measures->exact_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(measures->mean_best_similarity(), 0.0);
}

TEST(BerendtMeasuresTest, OrderingMatchesCaptureMetricOnSimulation) {
  Rng site_rng(41);
  SiteGeneratorOptions site;
  site.num_pages = 90;
  site.mean_out_degree = 6.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);
  WorkloadOptions population;
  population.num_agents = 250;
  Rng rng(4242);
  Workload workload =
      *SimulateWorkload(graph, AgentProfile(), population, &rng);

  SmartSra smart_sra(&graph);
  PageStaySessionizer pagestay;
  SessionDurationSessionizer duration;
  Result<BerendtMeasures> sra =
      EvaluateBerendtMeasures(workload, smart_sra);
  Result<BerendtMeasures> stay =
      EvaluateBerendtMeasures(workload, pagestay);
  Result<BerendtMeasures> dur =
      EvaluateBerendtMeasures(workload, duration);
  ASSERT_TRUE(sra.ok());
  ASSERT_TRUE(stay.ok());
  ASSERT_TRUE(dur.ok());
  // Smart-SRA leads on both the categorical and the gradual measure.
  EXPECT_GT(sra->exact_ratio(), stay->exact_ratio());
  EXPECT_GT(sra->exact_ratio(), dur->exact_ratio());
  EXPECT_GT(sra->mean_best_similarity(), stay->mean_best_similarity());
  EXPECT_GT(sra->mean_best_similarity(), dur->mean_best_similarity());
  // Gradual >= categorical by construction.
  EXPECT_GE(sra->mean_best_similarity(), sra->exact_ratio());
}

}  // namespace
}  // namespace wum
