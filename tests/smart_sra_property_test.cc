// Property sweep for Smart-SRA over simulator-generated workloads and
// adversarial random streams: the invariants of DESIGN.md §6.5.

#include <gtest/gtest.h>

#include <set>

#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  double stp;
  double lpp;
  double nip;
};

class SmartSraPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SmartSraPropertyTest, OutputInvariantsOnSimulatedAgents) {
  const PropertyCase param = GetParam();
  Rng site_rng(param.seed);
  SiteGeneratorOptions site;
  site.num_pages = 80;
  site.mean_out_degree = 6.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);

  AgentProfile profile;
  profile.stp = param.stp;
  profile.lpp = param.lpp;
  profile.nip = param.nip;
  AgentSimulator simulator(&graph, profile);
  SmartSra heuristic(&graph);
  const TimeThresholds& thresholds = heuristic.options().thresholds;

  Rng rng(param.seed ^ 0xDEADBEEF);
  for (int agent = 0; agent < 25; ++agent) {
    Rng agent_rng = rng.Fork();
    AgentTrace trace = *simulator.SimulateAgent(0, &agent_rng);
    Result<std::vector<Session>> sessions =
        heuristic.Reconstruct(trace.server_requests);
    ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();

    // (1) Both rules hold for every output session.
    for (const Session& session : *sessions) {
      ASSERT_FALSE(session.empty());
      EXPECT_TRUE(SatisfiesTopologyRule(session, graph))
          << SessionToString(session);
      EXPECT_TRUE(SatisfiesTimestampRule(session, thresholds.max_page_stay))
          << SessionToString(session);
      EXPECT_LE(session.Duration(), thresholds.max_session_duration);
    }

    // (2) No duplicate sessions.
    std::set<std::vector<PageRequest>> unique;
    for (const Session& session : *sessions) {
      EXPECT_TRUE(unique.insert(session.requests).second)
          << "duplicate: " << SessionToString(session);
    }

    // (3) Every logged request occurrence appears in some session:
    // the per-(page, timestamp) multiset of the log is covered.
    std::set<PageRequest> covered;
    for (const Session& session : *sessions) {
      covered.insert(session.requests.begin(), session.requests.end());
    }
    for (const PageRequest& request : trace.server_requests) {
      EXPECT_TRUE(covered.contains(request))
          << "lost request P" << request.page << " @" << request.timestamp;
    }

    // (4) Phase-1 candidates partition the input and obey both bounds.
    std::vector<Session> candidates =
        heuristic.Phase1(trace.server_requests);
    std::vector<PageRequest> reassembled;
    for (const Session& candidate : candidates) {
      EXPECT_LE(candidate.Duration(), thresholds.max_session_duration);
      EXPECT_TRUE(
          SatisfiesTimestampRule(candidate, thresholds.max_page_stay));
      reassembled.insert(reassembled.end(), candidate.requests.begin(),
                         candidate.requests.end());
    }
    EXPECT_EQ(reassembled, trace.server_requests);
  }
}

TEST_P(SmartSraPropertyTest, EveryRealSessionIsALinkPathInTheTopology) {
  // Sanity link between simulator and heuristic: each ground-truth
  // session is itself a valid Smart-SRA-style session, so the capture
  // metric is well-posed.
  const PropertyCase param = GetParam();
  Rng site_rng(param.seed * 31);
  SiteGeneratorOptions site;
  site.num_pages = 50;
  site.mean_out_degree = 5.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);

  AgentProfile profile;
  profile.stp = param.stp;
  profile.lpp = param.lpp;
  profile.nip = param.nip;
  AgentSimulator simulator(&graph, profile);
  Rng rng(param.seed ^ 0xFACE);
  for (int agent = 0; agent < 25; ++agent) {
    Rng agent_rng = rng.Fork();
    AgentTrace trace = *simulator.SimulateAgent(0, &agent_rng);
    for (const Session& real : trace.real_sessions) {
      EXPECT_TRUE(SatisfiesTopologyRule(real, graph));
      EXPECT_TRUE(SatisfiesTimestampRule(real, Minutes(10)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BehaviourGrid, SmartSraPropertyTest,
    ::testing::Values(
        PropertyCase{1, 0.05, 0.30, 0.30},   // Table 5 defaults
        PropertyCase{2, 0.01, 0.30, 0.30},   // long agents
        PropertyCase{3, 0.20, 0.30, 0.30},   // short agents
        PropertyCase{4, 0.05, 0.00, 0.30},   // no backtracking
        PropertyCase{5, 0.05, 0.90, 0.30},   // heavy backtracking
        PropertyCase{6, 0.05, 0.30, 0.00},   // no re-entry
        PropertyCase{7, 0.05, 0.30, 0.90},   // heavy re-entry
        PropertyCase{8, 0.10, 0.60, 0.60},   // chaotic
        PropertyCase{9, 0.50, 0.10, 0.10},   // tiny sessions
        PropertyCase{10, 0.05, 0.45, 0.45}));

TEST(SmartSraAdversarialTest, RandomStreamsNeverViolateInvariants) {
  // Fully random (non-navigational) streams: pages and gaps arbitrary.
  Rng rng(2024);
  SiteGeneratorOptions site;
  site.num_pages = 30;
  site.mean_out_degree = 3.0;
  Rng site_rng(77);
  WebGraph graph = *GenerateUniformSite(site, &site_rng);
  SmartSra heuristic(&graph);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageRequest> requests;
    TimeSeconds t = 0;
    const std::size_t n = rng.NextBounded(40);
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.NextInRange(0, 900);
      requests.push_back(
          PageRequest{static_cast<PageId>(rng.NextBounded(30)), t});
    }
    Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
    ASSERT_TRUE(sessions.ok());
    std::set<PageRequest> covered;
    for (const Session& session : *sessions) {
      EXPECT_TRUE(SatisfiesTopologyRule(session, graph));
      EXPECT_TRUE(SatisfiesTimestampRule(
          session, heuristic.options().thresholds.max_page_stay));
      covered.insert(session.requests.begin(), session.requests.end());
    }
    for (const PageRequest& request : requests) {
      EXPECT_TRUE(covered.contains(request));
    }
  }
}

}  // namespace
}  // namespace wum
