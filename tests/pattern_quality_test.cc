#include "wum/eval/pattern_quality.h"

#include <gtest/gtest.h>

#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

SequentialPattern P(std::vector<PageId> pages, std::size_t support = 1) {
  return SequentialPattern{std::move(pages), support};
}

TEST(ComparePatternSetsTest, CountsExactSequenceMatches) {
  PatternQuality quality = ComparePatternSets(
      {P({1, 2}), P({2, 3}), P({3, 4})},
      {P({1, 2}), P({9, 9}), P({3, 4})});
  EXPECT_EQ(quality.true_patterns, 3u);
  EXPECT_EQ(quality.mined_patterns, 3u);
  EXPECT_EQ(quality.matched, 2u);
  EXPECT_NEAR(quality.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(quality.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(quality.f1(), 2.0 / 3.0, 1e-12);
}

TEST(ComparePatternSetsTest, SupportValuesIgnored) {
  PatternQuality quality =
      ComparePatternSets({P({1, 2}, 50)}, {P({1, 2}, 3)});
  EXPECT_EQ(quality.matched, 1u);
}

TEST(ComparePatternSetsTest, DuplicatesCollapse) {
  PatternQuality quality = ComparePatternSets(
      {P({1, 2}), P({1, 2})}, {P({1, 2}), P({1, 2}), P({3})});
  EXPECT_EQ(quality.true_patterns, 1u);
  EXPECT_EQ(quality.mined_patterns, 2u);
  EXPECT_EQ(quality.matched, 1u);
}

TEST(ComparePatternSetsTest, EmptySides) {
  PatternQuality quality = ComparePatternSets({}, {});
  EXPECT_DOUBLE_EQ(quality.precision(), 0.0);
  EXPECT_DOUBLE_EQ(quality.recall(), 0.0);
  EXPECT_DOUBLE_EQ(quality.f1(), 0.0);
}

TEST(MineCorpusTest, DropsShortPatternsAndAppliesRelativeSupport) {
  std::vector<std::vector<PageId>> corpus(100, {1, 2, 3});
  PatternQualityOptions options;
  options.min_support_fraction = 0.5;  // support threshold 50
  Result<std::vector<SequentialPattern>> patterns =
      MineCorpus(corpus, options);
  ASSERT_TRUE(patterns.ok());
  // [1,2], [2,3], [1,2,3] (all with support 100); singletons dropped.
  EXPECT_EQ(patterns->size(), 3u);
  for (const SequentialPattern& pattern : *patterns) {
    EXPECT_GE(pattern.pages.size(), 2u);
    EXPECT_EQ(pattern.support, 100u);
  }
}

TEST(PatternQualityTest, PerfectReconstructionScoresPerfectly) {
  // One user whose log is one clean link path: Smart-SRA reproduces the
  // session exactly, so mined pattern sets coincide.
  WebGraph graph = MakeFigure1Topology();
  Workload workload;
  for (int i = 0; i < 10; ++i) {
    AgentRun run;
    run.agent_id = static_cast<std::uint64_t>(i);
    run.client_ip = "10.0.0." + std::to_string(i + 1);
    const TimeSeconds base = i * 10000;
    run.trace.real_sessions.push_back(
        MakeSession({0, 1, 4, 3}, {base, base + 60, base + 120, base + 180}));
    run.trace.server_requests = run.trace.real_sessions[0].requests;
    workload.agents.push_back(std::move(run));
  }
  SmartSra heuristic(&graph);
  PatternQualityOptions options;
  options.min_support_fraction = 0.5;
  Result<PatternQuality> quality =
      EvaluatePatternQuality(workload, heuristic, options);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->true_patterns, 0u);
  EXPECT_DOUBLE_EQ(quality->precision(), 1.0);
  EXPECT_DOUBLE_EQ(quality->recall(), 1.0);
}

TEST(PatternQualityTest, SmartSraBeatsTimeHeuristicsOnSimulatedWorkload) {
  Rng site_rng(5);
  SiteGeneratorOptions site;
  site.num_pages = 100;
  site.mean_out_degree = 8.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);
  WorkloadOptions population;
  population.num_agents = 400;
  Rng rng(99);
  Workload workload =
      *SimulateWorkload(graph, AgentProfile(), population, &rng);

  PatternQualityOptions options;
  options.min_support_fraction = 0.002;
  SmartSra smart_sra(&graph);
  PageStaySessionizer pagestay;
  Result<PatternQuality> sra_quality =
      EvaluatePatternQuality(workload, smart_sra, options);
  Result<PatternQuality> pagestay_quality =
      EvaluatePatternQuality(workload, pagestay, options);
  ASSERT_TRUE(sra_quality.ok());
  ASSERT_TRUE(pagestay_quality.ok());
  EXPECT_GT(sra_quality->true_patterns, 0u);
  EXPECT_GT(sra_quality->f1(), pagestay_quality->f1());
  EXPECT_GT(sra_quality->f1(), 0.5);
}

}  // namespace
}  // namespace wum
