// Unit tests for the fault-tolerance primitives: the dead-letter queue's
// bounded FIFO semantics, the deterministic fault schedules, the
// retrying sink's backoff ladder (asserted exactly, via an injected
// sleep — no wall clock anywhere), and the injection harness itself.

#include "wum/stream/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "wum/stream/dead_letter.h"

namespace wum {
namespace {

using std::chrono::microseconds;

DeadLetter MakeLetter(std::size_t shard, const std::string& detail,
                      std::uint64_t covered = 1) {
  DeadLetter letter;
  letter.shard = shard;
  letter.reason = Status::InvalidArgument("bad record");
  letter.detail = detail;
  letter.records_covered = covered;
  return letter;
}

TEST(DeadLetterQueueTest, DrainReturnsLettersInArrivalOrder) {
  DeadLetterQueue queue;
  EXPECT_TRUE(queue.Offer(MakeLetter(0, "first")));
  EXPECT_TRUE(queue.Offer(MakeLetter(1, "second")));
  EXPECT_TRUE(queue.Offer(MakeLetter(2, "third")));
  EXPECT_EQ(queue.size(), 3u);

  std::vector<DeadLetter> letters = queue.Drain();
  ASSERT_EQ(letters.size(), 3u);
  EXPECT_EQ(letters[0].detail, "first");
  EXPECT_EQ(letters[1].detail, "second");
  EXPECT_EQ(letters[2].detail, "third");
  EXPECT_EQ(queue.size(), 0u);
  // Drain empties retention but not the lifetime accounting.
  EXPECT_EQ(queue.total_offered(), 3u);
  EXPECT_EQ(queue.records_covered(), 3u);
}

TEST(DeadLetterQueueTest, OverflowKeepsEarliestAndCountsDrops) {
  DeadLetterQueue queue(/*capacity=*/2);
  EXPECT_TRUE(queue.Offer(MakeLetter(0, "a")));
  EXPECT_TRUE(queue.Offer(MakeLetter(0, "b")));
  EXPECT_FALSE(queue.Offer(MakeLetter(0, "c", /*covered=*/5)));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.overflow_dropped(), 1u);
  // Accounting covers the dropped letter too — capacity only bounds what
  // is retained for inspection, never what is counted.
  EXPECT_EQ(queue.total_offered(), 3u);
  EXPECT_EQ(queue.records_covered(), 7u);

  std::vector<DeadLetter> letters = queue.Drain();
  ASSERT_EQ(letters.size(), 2u);
  EXPECT_EQ(letters[0].detail, "a");
  EXPECT_EQ(letters[1].detail, "b");
}

TEST(DeadLetterQueueTest, DrainFreesCapacityForNewLetters) {
  DeadLetterQueue queue(/*capacity=*/1);
  EXPECT_TRUE(queue.Offer(MakeLetter(0, "a")));
  EXPECT_FALSE(queue.Offer(MakeLetter(0, "b")));
  EXPECT_EQ(queue.Drain().size(), 1u);
  EXPECT_TRUE(queue.Offer(MakeLetter(0, "c")));
  EXPECT_EQ(queue.Drain()[0].detail, "c");
}

TEST(DeadLetterStageTest, NamesEveryStage) {
  EXPECT_EQ(DeadLetterStageName(DeadLetter::Stage::kParse), "kParse");
  EXPECT_EQ(DeadLetterStageName(DeadLetter::Stage::kRecord), "kRecord");
  EXPECT_EQ(DeadLetterStageName(DeadLetter::Stage::kEmit), "kEmit");
  EXPECT_EQ(DeadLetterStageName(DeadLetter::Stage::kShardDead), "kShardDead");
}

TEST(IsShardFatalTest, InfrastructureErrorsAreFatalDataErrorsAreNot) {
  EXPECT_TRUE(IsShardFatal(Status::Internal("x")));
  EXPECT_TRUE(IsShardFatal(Status::IoError("x")));
  EXPECT_TRUE(IsShardFatal(Status::FailedPrecondition("x")));
  EXPECT_FALSE(IsShardFatal(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsShardFatal(Status::ParseError("x")));
  EXPECT_FALSE(IsShardFatal(Status::OutOfRange("x")));
  EXPECT_FALSE(IsShardFatal(Status::NotFound("x")));
}

std::vector<bool> Take(FaultSchedule schedule, int n) {
  std::vector<bool> fired;
  for (int i = 0; i < n; ++i) fired.push_back(schedule.Next());
  return fired;
}

TEST(FaultScheduleTest, BasicShapes) {
  EXPECT_EQ(Take(FaultSchedule::Never(), 4),
            (std::vector<bool>{false, false, false, false}));
  EXPECT_EQ(Take(FaultSchedule::Always(), 3),
            (std::vector<bool>{true, true, true}));
  EXPECT_EQ(Take(FaultSchedule::AtIndices({1, 3}), 5),
            (std::vector<bool>{false, true, false, true, false}));
  EXPECT_EQ(Take(FaultSchedule::FirstN(2), 4),
            (std::vector<bool>{true, true, false, false}));
  EXPECT_EQ(Take(FaultSchedule::EveryNth(3), 7),
            (std::vector<bool>{false, false, true, false, false, true,
                               false}));
  EXPECT_EQ(Take(FaultSchedule::EveryNth(0), 3),
            (std::vector<bool>{false, false, false}));
}

TEST(FaultScheduleTest, SeededScheduleReplaysIdentically) {
  std::vector<bool> first = Take(FaultSchedule::Seeded(42, 0.5), 64);
  std::vector<bool> second = Take(FaultSchedule::Seeded(42, 0.5), 64);
  EXPECT_EQ(first, second);
  // Degenerate probabilities behave like Never/Always.
  EXPECT_EQ(Take(FaultSchedule::Seeded(7, 0.0), 8),
            Take(FaultSchedule::Never(), 8));
  EXPECT_EQ(Take(FaultSchedule::Seeded(7, 1.0), 8),
            Take(FaultSchedule::Always(), 8));
}

TEST(FaultScheduleTest, CountsSeenAndFired) {
  FaultSchedule schedule = FaultSchedule::AtIndices({0, 2});
  for (int i = 0; i < 4; ++i) schedule.Next();
  EXPECT_EQ(schedule.seen(), 4u);
  EXPECT_EQ(schedule.fired(), 2u);
}

TEST(RetryBackoffTest, ExponentialLadderWithCap) {
  RetryOptions options;
  options.initial_backoff = microseconds(1000);
  options.multiplier = 2.0;
  options.max_backoff = microseconds(5000);
  EXPECT_EQ(RetryBackoff(options, 1), microseconds(1000));
  EXPECT_EQ(RetryBackoff(options, 2), microseconds(2000));
  EXPECT_EQ(RetryBackoff(options, 3), microseconds(4000));
  EXPECT_EQ(RetryBackoff(options, 4), microseconds(5000));  // capped
  EXPECT_EQ(RetryBackoff(options, 9), microseconds(5000));
}

Session OneRequestSession() {
  Session session;
  session.requests.push_back(PageRequest{0, 0});
  return session;
}

TEST(RetryingSinkTest, RecoversAfterTransientFailuresWithExactBackoff) {
  CollectingSessionSink collected;
  FlakySink flaky(&collected, FaultSchedule::FirstN(2));
  std::vector<microseconds> slept;
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = microseconds(1000);
  options.multiplier = 2.0;
  options.max_backoff = microseconds(250000);
  options.sleep = [&slept](microseconds delay) { slept.push_back(delay); };
  RetryingSink sink(&flaky, options);

  EXPECT_TRUE(sink.Accept("u", OneRequestSession()).ok());
  ASSERT_EQ(collected.entries().size(), 1u);
  EXPECT_EQ(sink.retries(), 2u);
  EXPECT_EQ(sink.exhausted(), 0u);
  // The deterministic ladder: 1000us before retry 1, 2000us before
  // retry 2, nothing after success.
  EXPECT_EQ(slept, (std::vector<microseconds>{microseconds(1000),
                                              microseconds(2000)}));
}

TEST(RetryingSinkTest, ExhaustsAndReturnsLastErrorWhenSinkStaysDown) {
  CollectingSessionSink collected;
  FlakySink flaky(&collected, FaultSchedule::Always(),
                  Status::IoError("pipe burst"));
  std::vector<microseconds> slept;
  RetryOptions options;
  options.max_attempts = 3;
  options.sleep = [&slept](microseconds delay) { slept.push_back(delay); };
  RetryingSink sink(&flaky, options);

  Status status = sink.Accept("u", OneRequestSession());
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ(status.message(), "pipe burst");
  EXPECT_TRUE(collected.entries().empty());
  EXPECT_EQ(sink.retries(), 2u);  // attempts 2 and 3
  EXPECT_EQ(sink.exhausted(), 1u);
  EXPECT_EQ(slept.size(), 2u);
  EXPECT_EQ(flaky.failures(), 3u);
  EXPECT_EQ(flaky.delivered(), 0u);
}

TEST(RetryingSinkTest, SingleAttemptMeansNoRetryNoSleep) {
  CollectingSessionSink collected;
  FlakySink flaky(&collected, FaultSchedule::AtIndices({0}));
  bool slept = false;
  RetryOptions options;
  options.max_attempts = 1;
  options.sleep = [&slept](microseconds) { slept = true; };
  RetryingSink sink(&flaky, options);

  EXPECT_TRUE(sink.Accept("u", OneRequestSession()).IsIoError());
  EXPECT_TRUE(sink.Accept("u", OneRequestSession()).ok());
  EXPECT_EQ(sink.retries(), 0u);
  EXPECT_FALSE(slept);
}

TEST(FlakySinkTest, FailsExactlyPerScheduleAndForwardsTheRest) {
  CollectingSessionSink collected;
  FlakySink flaky(&collected, FaultSchedule::AtIndices({1, 2}),
                  Status::Internal("down"));
  EXPECT_TRUE(flaky.Accept("u", OneRequestSession()).ok());
  EXPECT_TRUE(flaky.Accept("u", OneRequestSession()).IsInternal());
  EXPECT_TRUE(flaky.Accept("u", OneRequestSession()).IsInternal());
  EXPECT_TRUE(flaky.Accept("u", OneRequestSession()).ok());
  EXPECT_EQ(flaky.failures(), 2u);
  EXPECT_EQ(flaky.delivered(), 2u);
  EXPECT_EQ(collected.entries().size(), 2u);
}

class CollectingRecordSink : public RecordSink {
 public:
  Status Accept(const LogRecord& record) override {
    records.push_back(record);
    return Status::OK();
  }
  Status Finish() override { return Status::OK(); }

  std::vector<LogRecord> records;
};

TEST(FaultInjectingOperatorTest, ModesMapToDropRejectAndFatal) {
  CollectingRecordSink collected;
  LogRecord record;
  record.client_ip = "u";

  FaultInjectingOperator drop(FaultSchedule::AtIndices({0}),
                              FaultInjectingOperator::Mode::kDrop);
  drop.set_downstream(&collected);
  EXPECT_TRUE(drop.Accept(record).ok());  // dropped, not forwarded
  EXPECT_TRUE(drop.Accept(record).ok());  // forwarded
  EXPECT_EQ(collected.records.size(), 1u);
  EXPECT_EQ(drop.fired(), 1u);

  FaultInjectingOperator reject(FaultSchedule::Always(),
                                FaultInjectingOperator::Mode::kReject);
  reject.set_downstream(&collected);
  Status rejected = reject.Accept(record);
  EXPECT_TRUE(rejected.IsInvalidArgument());
  EXPECT_FALSE(IsShardFatal(rejected));

  FaultInjectingOperator fatal(FaultSchedule::Always(),
                               FaultInjectingOperator::Mode::kShardFatal);
  fatal.set_downstream(&collected);
  Status killed = fatal.Accept(record);
  EXPECT_TRUE(killed.IsInternal());
  EXPECT_TRUE(IsShardFatal(killed));
}

}  // namespace
}  // namespace wum
