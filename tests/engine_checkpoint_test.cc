// Kill-and-resume equivalence tests for StreamEngine::Checkpoint /
// EngineOptions::resume_from: a run killed at any record index and
// resumed from its last checkpoint must emit exactly the same session
// multiset as an uninterrupted run — for every registry heuristic,
// across shard counts, with the dead-letter channel and counters
// restored too. The "kill" is modeled by discarding everything the dying
// engine emitted after the checkpoint barrier (a crashed process's
// un-checkpointed output never reached durable storage).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "wum/ckpt/checkpoint.h"
#include "wum/clf/user_partitioner.h"
#include "wum/mine/path_miner.h"
#include "wum/obs/metrics.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

namespace fs = std::filesystem;

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

using Entries = std::vector<CollectingSessionSink::Entry>;

/// (user, page-sequence) pairs sorted for order-insensitive comparison.
std::vector<std::pair<std::string, std::vector<PageId>>> Canonicalize(
    const Entries& entries) {
  std::vector<std::pair<std::string, std::vector<PageId>>> out;
  for (const auto& entry : entries) {
    out.emplace_back(entry.client_ip, entry.session.PageSequence());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t EmittedRecords(const Entries& entries) {
  std::uint64_t total = 0;
  for (const auto& entry : entries) total += entry.session.requests.size();
  return total;
}

/// A workload whose time gaps cross both thresholds repeatedly, so every
/// heuristic closes several sessions per user and still has sessions
/// open at any kill index. Page walks follow Figure-1 links so the
/// graph heuristics see real navigation.
std::vector<LogRecord> MakeWorkload(int num_users, int rounds) {
  // A path that exists in MakeFigure1Topology: P1 -> P13 -> P34 -> P23.
  constexpr PageId kWalk[] = {0, 1, 4, 3};
  std::vector<LogRecord> records;
  std::vector<TimeSeconds> clock(static_cast<std::size_t>(num_users));
  for (int u = 0; u < num_users; ++u) clock[u] = u * 7;
  for (int r = 0; r < rounds; ++r) {
    for (int u = 0; u < num_users; ++u) {
      TimeSeconds gap = 60;
      if (r % 4 == 3) gap = 700;    // > max_page_stay (600)
      if (r % 8 == 7) gap = 2000;   // > max_session_duration residue too
      clock[u] += gap;
      records.push_back(PageRecord("10.0.0." + std::to_string(u),
                                   kWalk[(r + u) % 4], clock[u]));
    }
  }
  return records;
}

/// Engine options for one registry heuristic (graph-based or not).
EngineOptions HeuristicOptions(const std::string& heuristic,
                               const WebGraph* graph, std::size_t shards) {
  EngineOptions options;
  options.set_num_shards(shards).use_heuristic(heuristic).use_graph(graph);
  return options;
}

Entries RunUninterrupted(const std::string& heuristic, const WebGraph* graph,
                         std::size_t shards,
                         const std::vector<LogRecord>& records,
                         EngineStats* stats = nullptr) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions(heuristic, graph, shards), &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  if (!engine.ok()) return {};
  for (const LogRecord& record : records) {
    EXPECT_TRUE((*engine)->Offer(record).ok());
  }
  EXPECT_TRUE((*engine)->Finish().ok());
  if (stats != nullptr) *stats = (*engine)->TotalStats();
  return sink.entries();
}

/// Offers records[0, kill_at), checkpoints into `dir`, keeps offering
/// until the kill index, then abandons the engine. Returns only the
/// sessions committed at the barrier — the post-checkpoint entries are
/// the crash's lost output.
Entries RunUntilKilled(const std::string& heuristic, const WebGraph* graph,
                       std::size_t shards,
                       const std::vector<LogRecord>& records,
                       std::size_t checkpoint_at, std::size_t kill_at,
                       const std::string& dir) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions(heuristic, graph, shards), &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  if (!engine.ok()) return {};
  for (std::size_t i = 0; i < checkpoint_at; ++i) {
    EXPECT_TRUE((*engine)->Offer(records[i]).ok());
  }
  EXPECT_TRUE((*engine)->Checkpoint(dir).ok());
  EXPECT_EQ((*engine)->records_seen(), checkpoint_at);
  // The barrier guarantees the sink is at rest here: everything in it
  // now is covered by the checkpoint.
  const std::size_t committed = sink.entries().size();
  for (std::size_t i = checkpoint_at; i < kill_at && i < records.size();
       ++i) {
    EXPECT_TRUE((*engine)->Offer(records[i]).ok());
  }
  // The engine dies here: its destructor drains, but the entries past
  // `committed` are discarded, exactly like output a crashed process
  // never persisted.
  engine->reset();
  Entries result = sink.entries();
  result.resize(committed);
  return result;
}

/// Resumes from `dir`, replays the full input, and returns the emitted
/// sessions (plus the engine's final aggregate stats).
Entries RunResumed(const std::string& heuristic, const WebGraph* graph,
                   std::size_t shards, const std::vector<LogRecord>& records,
                   const std::string& dir, EngineStats* stats = nullptr) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions(heuristic, graph, shards).resume_from(dir), &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  if (!engine.ok()) return {};
  EXPECT_TRUE((*engine)->resumed());
  for (const LogRecord& record : records) {
    EXPECT_TRUE((*engine)->Offer(record).ok());
  }
  EXPECT_TRUE((*engine)->Finish().ok());
  EXPECT_EQ((*engine)->records_seen(), records.size());
  if (stats != nullptr) *stats = (*engine)->TotalStats();
  return sink.entries();
}

class EngineCheckpointTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("engine_ckpt_" + std::string(testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    graph_ = MakeFigure1Topology();
    records_ = MakeWorkload(/*num_users=*/24, /*rounds=*/12);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  WebGraph graph_ = WebGraph(0);
  std::vector<LogRecord> records_;
};

// The acceptance matrix: every registry heuristic, one and three shards,
// several checkpoint/kill indices. committed-prefix + resumed output
// must equal the uninterrupted run's session multiset exactly, and the
// restored counters must add up to the baseline's.
TEST_F(EngineCheckpointTest, KillAndResumeMatchesUninterruptedRun) {
  const std::string heuristics[] = {"duration", "pagestay", "navigation",
                                    "smart-sra"};
  const std::size_t shard_counts[] = {1, 3};
  // (checkpoint index, kill index): early, unaligned mid-stream, and a
  // checkpoint with no further input before the crash.
  const std::pair<std::size_t, std::size_t> kills[] = {
      {24, 60}, {121, 150}, {200, 200}};
  for (const std::string& heuristic : heuristics) {
    for (std::size_t shards : shard_counts) {
      EngineStats baseline_stats;
      const Entries baseline = RunUninterrupted(heuristic, &graph_, shards,
                                                records_, &baseline_stats);
      ASSERT_FALSE(baseline.empty());
      for (const auto& [checkpoint_at, kill_at] : kills) {
        const std::string label = heuristic + "/" +
                                  std::to_string(shards) + " shards/ckpt@" +
                                  std::to_string(checkpoint_at);
        const fs::path dir =
            dir_ / (heuristic + "-" + std::to_string(shards) + "-" +
                    std::to_string(checkpoint_at));
        Entries committed =
            RunUntilKilled(heuristic, &graph_, shards, records_,
                           checkpoint_at, kill_at, dir.string());
        EngineStats resumed_stats;
        Entries resumed = RunResumed(heuristic, &graph_, shards, records_,
                                     dir.string(), &resumed_stats);
        Entries combined = std::move(committed);
        combined.insert(combined.end(), resumed.begin(), resumed.end());
        EXPECT_EQ(Canonicalize(combined), Canonicalize(baseline)) << label;
        // The restored engine's lifetime counters match the baseline's:
        // nothing was double-counted across the crash.
        EXPECT_EQ(resumed_stats.records_in, baseline_stats.records_in)
            << label;
        EXPECT_EQ(resumed_stats.sessions_emitted,
                  baseline_stats.sessions_emitted)
            << label;
        EXPECT_EQ(resumed_stats.records_dropped,
                  baseline_stats.records_dropped)
            << label;
      }
    }
  }
}

// Checkpoints are cumulative: a second checkpoint supersedes the first
// (epoch advances, stale epoch directories are removed) and resume picks
// up the latest one.
TEST_F(EngineCheckpointTest, SecondCheckpointSupersedesFirst) {
  const Entries baseline =
      RunUninterrupted("smart-sra", &graph_, 2, records_);
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("smart-sra", &graph_, 2), &sink);
  ASSERT_TRUE(engine.ok());
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
  }
  ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / ckpt::EpochDirName(1)));
  for (std::size_t i = 50; i < 140; ++i) {
    ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
  }
  ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  const std::size_t committed = sink.entries().size();
  engine->reset();  // crash after the second barrier

  // Epoch bookkeeping: epoch 2 is committed, epoch 1 is gone.
  Result<std::uint64_t> current = ckpt::ReadCurrent(dir_.string());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 2u);
  EXPECT_FALSE(fs::exists(dir_ / ckpt::EpochDirName(1)));
  EXPECT_TRUE(fs::exists(dir_ / ckpt::EpochDirName(2)));

  Entries combined = sink.entries();
  combined.resize(committed);
  const Entries resumed =
      RunResumed("smart-sra", &graph_, 2, records_, dir_.string());
  combined.insert(combined.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(Canonicalize(combined), Canonicalize(baseline));
}

// Regression: a checkpoint taken while a resumed engine is still inside
// its replay-skip phase must not shrink the skip offset. records_seen_
// restarts at zero on resume while the restored state already covers
// resume_skip_ records; committing the smaller count would make the
// next resume replay already-absorbed records into the restored
// sessionizers and emit duplicate sessions.
TEST_F(EngineCheckpointTest, CheckpointDuringReplayKeepsSkipOffset) {
  const Entries baseline =
      RunUninterrupted("smart-sra", &graph_, 2, records_);
  // First run: checkpoint at record 100, then crash at the barrier.
  Entries committed = RunUntilKilled("smart-sra", &graph_, 2, records_,
                                     /*checkpoint_at=*/100, /*kill_at=*/100,
                                     dir_.string());
  // Second run: resume, offer only 40 records — all inside the replay
  // skip — take the cadence-driven checkpoint a tool would take, and
  // crash again mid-replay.
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("smart-sra", &graph_, 2).resume_from(dir_.string()),
        &sink);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    for (std::size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
    EXPECT_TRUE(sink.entries().empty());  // replay emitted nothing new
    engine->reset();  // the crash
  }
  // Third run: resume from the mid-replay checkpoint. It must skip the
  // 100 records the state covers, not the 40 the dying engine had
  // re-counted — combined output still matches the baseline exactly.
  Entries resumed =
      RunResumed("smart-sra", &graph_, 2, records_, dir_.string());
  Entries combined = std::move(committed);
  combined.insert(combined.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(Canonicalize(combined), Canonicalize(baseline));
}

// A resumed engine can checkpoint again; the epoch counter continues
// past the restored one instead of overwriting it.
TEST_F(EngineCheckpointTest, ResumedEngineCheckpointsIntoLaterEpochs) {
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("duration", &graph_, 2), &sink);
    ASSERT_TRUE(engine.ok());
    for (std::size_t i = 0; i < 30; ++i) {
      ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  }
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 2).resume_from(dir_.string()),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  for (std::size_t i = 0; i < 80; ++i) {
    ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
  }
  ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  Result<std::uint64_t> current = ckpt::ReadCurrent(dir_.string());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 2u);
  ASSERT_TRUE((*engine)->Finish().ok());
}

// The opaque sink state travels through the manifest: what the
// sink_state_fn returned at the barrier is exactly what
// resumed_sink_state() hands back.
TEST_F(EngineCheckpointTest, SinkStateRoundTripsThroughManifest) {
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("duration", &graph_, 1), &sink);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Offer(records_[0]).ok());
    ASSERT_TRUE((*engine)
                    ->Checkpoint(dir_.string(),
                                 []() -> Result<std::string> {
                                   return std::string("journal:12345");
                                 })
                    .ok());
  }
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 1).resume_from(dir_.string()),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EXPECT_TRUE((*engine)->resumed());
  EXPECT_EQ((*engine)->resumed_sink_state(), "journal:12345");
  ASSERT_TRUE((*engine)->Finish().ok());

  // A fresh (non-resumed) engine reports neither.
  CollectingSessionSink fresh_sink;
  Result<std::unique_ptr<StreamEngine>> fresh = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 1), &fresh_sink);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE((*fresh)->resumed());
  EXPECT_TRUE((*fresh)->resumed_sink_state().empty());
  ASSERT_TRUE((*fresh)->Finish().ok());
}

// A checkpoint taken before a shard-fatal fault under kFailFast is the
// recovery point: the poisoned run dies, the resumed (fault-free) run
// replays from the checkpoint and the combined output matches an
// undisturbed baseline.
TEST_F(EngineCheckpointTest, RecoversFromFailFastCrash) {
  const Entries baseline =
      RunUninterrupted("smart-sra", &graph_, 2, records_);
  CollectingSessionSink sink;
  // Every shard is scheduled to die on its 101st record. The checkpoint
  // at offer index 60 always precedes the first fault (no shard can have
  // seen more than 60 records by then), and with 288 records over 2
  // shards at least one shard is guaranteed to reach the fault index —
  // whatever the user-hash skew.
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("smart-sra", &graph_, 2)
          .add_operator([]() -> std::unique_ptr<RecordOperator> {
            return std::make_unique<FaultInjectingOperator>(
                FaultSchedule::AtIndices({100}),
                FaultInjectingOperator::Mode::kShardFatal);
          }),
      &sink);
  ASSERT_TRUE(engine.ok());
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
  }
  ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  const std::size_t committed = sink.entries().size();
  // Keep offering until the injected fault surfaces (Offer or Finish).
  Status status;
  for (std::size_t i = 60; i < records_.size() && status.ok(); ++i) {
    status = (*engine)->Offer(records_[i]);
  }
  if (status.ok()) status = (*engine)->Finish();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  // A poisoned engine refuses to checkpoint over the good state.
  EXPECT_FALSE((*engine)->Checkpoint(dir_.string()).ok());
  engine->reset();

  Entries combined = sink.entries();
  combined.resize(committed);
  const Entries resumed =
      RunResumed("smart-sra", &graph_, 2, records_, dir_.string());
  combined.insert(combined.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(Canonicalize(combined), Canonicalize(baseline));
}

// The dead-letter channel is part of the snapshot: letters quarantined
// before the crash survive the resume, and the conservation invariant
// (emitted + dead-lettered == accepted) holds across the restart.
TEST_F(EngineCheckpointTest, DeadLettersSurviveResume) {
  DeadLetterQueue first_queue;
  Entries committed_entries;
  {
    CollectingSessionSink sink;
    // One shard, so the reject schedule is deterministic: the shard's
    // 2nd and 4th records are quarantined, well before the barrier.
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("duration", &graph_, 1)
            .set_error_policy(ErrorPolicy::kDegrade)
            .set_dead_letters(&first_queue)
            .add_operator([]() -> std::unique_ptr<RecordOperator> {
              return std::make_unique<FaultInjectingOperator>(
                  FaultSchedule::AtIndices({1, 3}),
                  FaultInjectingOperator::Mode::kReject);
            }),
        &sink);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    for (std::size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
    ASSERT_EQ(first_queue.total_offered(), 2u);
    committed_entries = sink.entries();
  }

  // Resume with a fresh, empty queue and no faults: the two letters are
  // restored from the checkpoint, not re-quarantined.
  DeadLetterQueue restored_queue;
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 1)
          .set_error_policy(ErrorPolicy::kDegrade)
          .set_dead_letters(&restored_queue)
          .resume_from(dir_.string()),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EXPECT_EQ(restored_queue.total_offered(), 2u);
  EXPECT_EQ(restored_queue.records_covered(), 2u);
  EXPECT_EQ(restored_queue.size(), 2u);
  for (const LogRecord& record : records_) {
    ASSERT_TRUE((*engine)->Offer(record).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // Conservation across the restart: every record ever offered is in a
  // committed session, a resumed session, or a restored dead letter.
  EXPECT_EQ(EmittedRecords(committed_entries) + EmittedRecords(sink.entries()) +
                restored_queue.records_covered(),
            records_.size());
  std::vector<DeadLetter> letters = restored_queue.Drain();
  ASSERT_EQ(letters.size(), 2u);
  for (const DeadLetter& letter : letters) {
    EXPECT_EQ(letter.stage, DeadLetter::Stage::kRecord);
    EXPECT_EQ(letter.shard, 0u);
    ASSERT_TRUE(letter.record.has_value());
  }
}

// ckpt.* observability: checkpoints and resume skips are counted in the
// attached registry.
TEST_F(EngineCheckpointTest, CheckpointMetricsAreRecorded) {
  obs::MetricRegistry registry;
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("duration", &graph_, 1).set_metrics(&registry),
        &sink);
    ASSERT_TRUE(engine.ok());
    for (std::size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
    ASSERT_TRUE((*engine)->Finish().ok());
  }
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  const auto* written = snapshot.FindCounter("ckpt.checkpoints_written");
  ASSERT_NE(written, nullptr);
  EXPECT_EQ(written->value, 1u);
  const auto* bytes = snapshot.FindCounter("ckpt.bytes_written");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->value, 0u);
  const auto* latency = snapshot.FindHistogram("ckpt.write_latency_us");
  ASSERT_NE(latency, nullptr);
  // The epoch directory carries the metrics snapshot alongside the
  // state files.
  EXPECT_TRUE(fs::exists(dir_ / ckpt::EpochDirName(1) / "metrics.json"));

  obs::MetricRegistry resumed_registry;
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 1)
          .set_metrics(&resumed_registry)
          .resume_from(dir_.string()),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  for (const LogRecord& record : records_) {
    ASSERT_TRUE((*engine)->Offer(record).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  const obs::MetricsSnapshot resumed_snapshot = resumed_registry.Snapshot();
  const auto* skipped =
      resumed_snapshot.FindCounter("ckpt.records_resume_skipped");
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->value, 40u);
}

// Resume validation: incompatible configurations and broken directories
// fail loudly with precise errors instead of silently diverging.
TEST_F(EngineCheckpointTest, ResumeRejectsIncompatibleConfigurations) {
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        HeuristicOptions("duration", &graph_, 2), &sink);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Offer(records_[0]).ok());
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
    ASSERT_TRUE((*engine)->Finish().ok());
  }
  CollectingSessionSink sink;
  auto create = [&](EngineOptions options) {
    return StreamEngine::Create(std::move(options), &sink).status();
  };

  // Shard-count mismatch.
  Status status =
      create(HeuristicOptions("duration", &graph_, 3).resume_from(
          dir_.string()));
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("shards"), std::string::npos);

  // Heuristic mismatch.
  status = create(
      HeuristicOptions("pagestay", &graph_, 2).resume_from(dir_.string()));
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("heuristic"), std::string::npos);

  // Identity mismatch.
  status = create(HeuristicOptions("duration", &graph_, 2)
                      .set_identity(UserIdentity::kClientIpAndUserAgent)
                      .resume_from(dir_.string()));
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("identity"), std::string::npos);

  // Threshold mismatch.
  TimeThresholds other;
  other.max_page_stay = 123;
  status = create(HeuristicOptions("duration", &graph_, 2)
                      .set_thresholds(other)
                      .resume_from(dir_.string()));
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("thresholds"), std::string::npos);

  // Empty directory: NotFound, the signal websra_sessionize --resume
  // uses to start fresh.
  const fs::path empty = dir_ / "empty";
  fs::create_directories(empty);
  status = create(
      HeuristicOptions("duration", &graph_, 2).resume_from(empty.string()));
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

// A custom sessionizer without checkpoint hooks cannot be checkpointed —
// the failure is a precise Unimplemented, not silent state loss.
TEST_F(EngineCheckpointTest, CustomSessionizerWithoutHooksRefuses) {
  class PlainSessionizer : public IncrementalUserSessionizer {
   public:
    Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
      Session session;
      session.requests.push_back(request);
      return emit(std::move(session));
    }
    Status Flush(const EmitFn&) override { return Status::OK(); }
  };
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(1)
          .set_num_pages(graph_.num_pages())
          .use_custom([] { return std::make_unique<PlainSessionizer>(); }),
      &sink);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(records_[0]).ok());
  Status status = (*engine)->Checkpoint(dir_.string());
  EXPECT_TRUE(status.IsUnimplemented()) << status.ToString();
  ASSERT_TRUE((*engine)->Finish().ok());
}

// The per-shard string interner is part of the snapshot: under the
// ip+user-agent identity a batched run killed mid-stream and resumed
// must emit exactly the uninterrupted run's session multiset. The
// baseline is driven record-at-a-time, so the same comparison also
// cross-checks OfferBatch-vs-Offer equivalence across the crash.
TEST_F(EngineCheckpointTest, InternerSurvivesKillAndResumeUnderBatchedIngest) {
  // MakeWorkload leaves user_agent empty; give each user a stable
  // browser so the identity keys exercise the interner's save/restore.
  std::vector<LogRecord> records = records_;
  for (LogRecord& record : records) {
    record.user_agent =
        record.client_ip.back() % 2 == 0 ? "Mozilla/4.0" : "Opera/8.0";
  }
  const auto options = [this](const std::string& heuristic,
                              std::size_t shards) {
    EngineOptions o = HeuristicOptions(heuristic, &graph_, shards);
    o.set_identity(UserIdentity::kClientIpAndUserAgent);
    return o;
  };
  const auto offer_batched = [](StreamEngine& engine,
                                std::span<const LogRecord> slice) {
    std::vector<LogRecordRef> refs;
    refs.reserve(slice.size());
    for (const LogRecord& record : slice) refs.push_back(ViewOf(record));
    const std::span<const LogRecordRef> all(refs);
    for (std::size_t i = 0; i < all.size(); i += 37) {
      ASSERT_TRUE(
          engine
              .OfferBatch(
                  all.subspan(i, std::min<std::size_t>(37, all.size() - i)))
              .ok());
    }
  };
  for (const std::string heuristic : {"duration", "smart-sra"}) {
    for (const std::size_t shards : {1u, 3u}) {
      SCOPED_TRACE(heuristic + "/" + std::to_string(shards) + " shards");
      const fs::path dir = dir_ / (heuristic + std::to_string(shards));
      fs::create_directories(dir);

      Entries baseline;
      {
        CollectingSessionSink sink;
        Result<std::unique_ptr<StreamEngine>> engine =
            StreamEngine::Create(options(heuristic, shards), &sink);
        ASSERT_TRUE(engine.ok()) << engine.status().message();
        for (const LogRecord& record : records) {
          ASSERT_TRUE((*engine)->Offer(record).ok());
        }
        ASSERT_TRUE((*engine)->Finish().ok());
        baseline = sink.entries();
      }

      // Batched run: checkpoint at a batch-unaligned index, keep going,
      // then crash.
      Entries committed;
      {
        CollectingSessionSink sink;
        Result<std::unique_ptr<StreamEngine>> engine =
            StreamEngine::Create(options(heuristic, shards), &sink);
        ASSERT_TRUE(engine.ok()) << engine.status().message();
        offer_batched(**engine,
                      std::span<const LogRecord>(records).first(117));
        ASSERT_TRUE((*engine)->Checkpoint(dir.string()).ok());
        EXPECT_EQ((*engine)->records_seen(), 117u);
        const std::size_t barrier = sink.entries().size();
        offer_batched(**engine,
                      std::span<const LogRecord>(records).subspan(117, 43));
        engine->reset();  // the crash
        committed = sink.entries();
        committed.resize(barrier);
      }

      // Resume replays the whole input through OfferBatch; the restored
      // interner must map every identity back to its open sessions.
      Entries resumed;
      {
        CollectingSessionSink sink;
        Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
            options(heuristic, shards).resume_from(dir.string()), &sink);
        ASSERT_TRUE(engine.ok()) << engine.status().message();
        EXPECT_TRUE((*engine)->resumed());
        offer_batched(**engine, std::span<const LogRecord>(records));
        ASSERT_TRUE((*engine)->Finish().ok());
        resumed = sink.entries();
      }

      Entries combined = std::move(committed);
      combined.insert(combined.end(), resumed.begin(), resumed.end());
      EXPECT_EQ(Canonicalize(combined), Canonicalize(baseline));
    }
  }
}

// The online miner's state rides the checkpoint: a run killed after the
// barrier and resumed must answer PATTERNS exactly as the uninterrupted
// run — byte-identical JSON at one shard (emit order is deterministic
// there), identical estimates under canonical path order at three
// shards (cross-shard arrival order legitimately permutes the
// first-seen tie-breaker).
TEST_F(EngineCheckpointTest, MiningStateSurvivesKillAndResume) {
  mine::MinerOptions mining;
  mining.top_k = 10;
  mining.capacity = 64;  // ample: every tracked estimate is exact
  mining.batch_sessions = 4;
  const auto options = [&](std::size_t shards) {
    EngineOptions o = HeuristicOptions("smart-sra", &graph_, shards);
    o.set_mining(mining);
    return o;
  };
  const auto canonical_estimates = [&](const StreamEngine& engine) {
    std::vector<mine::PatternEstimate> estimates =
        engine.mining()->TopK(mining.capacity);
    for (mine::PatternEstimate& estimate : estimates) {
      estimate.first_seen = 0;  // arrival-order dependent across shards
    }
    std::sort(estimates.begin(), estimates.end(),
              [](const mine::PatternEstimate& a,
                 const mine::PatternEstimate& b) { return a.path < b.path; });
    return estimates;
  };
  for (const std::size_t shards : {1u, 3u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    const fs::path dir = dir_ / ("mine" + std::to_string(shards));
    fs::create_directories(dir);

    std::string baseline_json;
    std::vector<mine::PatternEstimate> baseline_estimates;
    {
      CollectingSessionSink sink;
      Result<std::unique_ptr<StreamEngine>> engine =
          StreamEngine::Create(options(shards), &sink);
      ASSERT_TRUE(engine.ok()) << engine.status().message();
      ASSERT_NE((*engine)->mining(), nullptr);
      for (const LogRecord& record : records_) {
        ASSERT_TRUE((*engine)->Offer(record).ok());
      }
      ASSERT_TRUE((*engine)->Finish().ok());
      baseline_json = (*engine)->mining()->PatternsJson();
      baseline_estimates = canonical_estimates(**engine);
    }
    ASSERT_FALSE(baseline_estimates.empty());

    // Kill: checkpoint mid-stream, keep mining past the barrier, crash.
    {
      CollectingSessionSink sink;
      Result<std::unique_ptr<StreamEngine>> engine =
          StreamEngine::Create(options(shards), &sink);
      ASSERT_TRUE(engine.ok()) << engine.status().message();
      for (std::size_t i = 0; i < 121; ++i) {
        ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
      }
      ASSERT_TRUE((*engine)->Checkpoint(dir.string()).ok());
      EXPECT_TRUE(
          fs::exists(dir / ckpt::EpochDirName(1) / "mining.state"));
      for (std::size_t i = 121; i < 160; ++i) {
        ASSERT_TRUE((*engine)->Offer(records_[i]).ok());
      }
      engine->reset();  // the crash
    }

    // Resume and replay everything: the miner must reconverge.
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        options(shards).resume_from(dir.string()), &sink);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    ASSERT_NE((*engine)->mining(), nullptr);
    EXPECT_GT((*engine)->mining()->sessions_seen(), 0u);  // restored state
    for (const LogRecord& record : records_) {
      ASSERT_TRUE((*engine)->Offer(record).ok());
    }
    ASSERT_TRUE((*engine)->Finish().ok());
    EXPECT_EQ(canonical_estimates(**engine), baseline_estimates);
    if (shards == 1) {
      EXPECT_EQ((*engine)->mining()->PatternsJson(), baseline_json);
    }
  }
}

// Resume refuses a checkpoint whose mining state was written under a
// different miner configuration.
TEST_F(EngineCheckpointTest, ResumeRejectsMiningConfigMismatch) {
  mine::MinerOptions mining;
  mining.top_k = 10;
  mining.capacity = 64;
  {
    CollectingSessionSink sink;
    EngineOptions o = HeuristicOptions("duration", &graph_, 1);
    o.set_mining(mining);
    Result<std::unique_ptr<StreamEngine>> engine =
        StreamEngine::Create(std::move(o), &sink);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Offer(records_[0]).ok());
    ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
    ASSERT_TRUE((*engine)->Finish().ok());
  }
  CollectingSessionSink sink;
  EngineOptions o = HeuristicOptions("duration", &graph_, 1);
  mining.capacity = 128;  // diverges from the snapshot
  o.set_mining(mining);
  o.resume_from(dir_.string());
  const Status status = StreamEngine::Create(std::move(o), &sink).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

// Checkpoint after Finish is a contract violation, reported as such.
TEST_F(EngineCheckpointTest, CheckpointAfterFinishFails) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      HeuristicOptions("duration", &graph_, 1), &sink);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_TRUE((*engine)->Checkpoint(dir_.string()).IsFailedPrecondition());
}

}  // namespace
}  // namespace wum
