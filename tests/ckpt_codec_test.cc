// Unit tests for the wum::ckpt codec layer: CRC32 check values, varint
// boundary encodings, frame framing/validation, and the persisted
// checkpoint schemas (manifest, session, dead letter) plus the atomic
// file + epoch-directory protocol.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wum/ckpt/checkpoint.h"
#include "wum/ckpt/codec.h"
#include "wum/ckpt/crc32.h"
#include "wum/stream/dead_letter.h"

namespace wum::ckpt {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32Test, StandardCheckValue) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32(""), 0u); }

TEST(Crc32Test, UpdateChainsAcrossChunks) {
  const std::string text = "reactive web usage data processing";
  for (std::size_t split = 0; split <= text.size(); ++split) {
    const std::string_view head(text.data(), split);
    const std::string_view tail(text.data() + split, text.size() - split);
    EXPECT_EQ(Crc32Update(Crc32Update(0, head), tail), Crc32(text))
        << "split at " << split;
  }
}

TEST(Crc32Test, DistinguishesSingleBitFlip) {
  std::string data = "deterministic";
  const std::uint32_t original = Crc32(data);
  data[4] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

// ---------------------------------------------------------------------------
// Encoder / Decoder primitives

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder encoder;
  encoder.PutU8(0x00);
  encoder.PutU8(0xFF);
  encoder.PutU32(0);
  encoder.PutU32(0xDEADBEEFu);
  encoder.PutU64(0);
  encoder.PutU64(std::numeric_limits<std::uint64_t>::max());

  Decoder decoder(encoder.buffer());
  EXPECT_EQ(*decoder.GetU8(), 0x00u);
  EXPECT_EQ(*decoder.GetU8(), 0xFFu);
  EXPECT_EQ(*decoder.GetU32(), 0u);
  EXPECT_EQ(*decoder.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*decoder.GetU64(), 0u);
  EXPECT_EQ(*decoder.GetU64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(decoder.ExpectEnd().ok());
}

TEST(CodecTest, UvarintBoundaries) {
  const std::uint64_t values[] = {
      0,   1,   127, 128,  129,
      300, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t value : values) {
    Encoder encoder;
    encoder.PutUvarint(value);
    Decoder decoder(encoder.buffer());
    Result<std::uint64_t> decoded = decoder.GetUvarint();
    ASSERT_TRUE(decoded.ok()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(decoder.ExpectEnd().ok());
  }
  // One byte per 7 bits: 127 fits in one byte, 128 needs two.
  Encoder one, two;
  one.PutUvarint(127);
  two.PutUvarint(128);
  EXPECT_EQ(one.buffer().size(), 1u);
  EXPECT_EQ(two.buffer().size(), 2u);
}

TEST(CodecTest, VarintZigzagBoundaries) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 63,
                                 -65,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t value : values) {
    Encoder encoder;
    encoder.PutVarint(value);
    Decoder decoder(encoder.buffer());
    Result<std::int64_t> decoded = decoder.GetVarint();
    ASSERT_TRUE(decoded.ok()) << value;
    EXPECT_EQ(*decoded, value);
  }
  // Zigzag keeps small magnitudes short: -1 encodes in one byte.
  Encoder encoder;
  encoder.PutVarint(-1);
  EXPECT_EQ(encoder.buffer().size(), 1u);
}

TEST(CodecTest, StringRoundTripIncludingEmbeddedNul) {
  Encoder encoder;
  encoder.PutString("");
  encoder.PutString(std::string_view("a\0b", 3));
  encoder.PutString("10.0.0.1-Mozilla/5.0");

  Decoder decoder(encoder.buffer());
  EXPECT_EQ(*decoder.GetString(), "");
  EXPECT_EQ(*decoder.GetString(), std::string("a\0b", 3));
  EXPECT_EQ(*decoder.GetString(), "10.0.0.1-Mozilla/5.0");
  EXPECT_TRUE(decoder.ExpectEnd().ok());
}

TEST(CodecTest, TruncatedReadsFailCleanly) {
  EXPECT_FALSE(Decoder("").GetU8().ok());
  EXPECT_FALSE(Decoder("abc").GetU32().ok());
  EXPECT_FALSE(Decoder("abcdefg").GetU64().ok());
  // A continuation bit with nothing after it.
  EXPECT_FALSE(Decoder("\x80").GetUvarint().ok());
  // String length larger than the remaining payload.
  Encoder encoder;
  encoder.PutUvarint(1000);
  encoder.PutString("short");
  Decoder decoder(encoder.buffer());
  Result<std::string> value = decoder.GetString();
  EXPECT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsParseError());
}

TEST(CodecTest, OverlongVarintRejected) {
  // Eleven continuation bytes can never be a valid 64-bit varint.
  std::string overlong(11, '\x80');
  EXPECT_FALSE(Decoder(overlong).GetUvarint().ok());
  // Ten bytes whose top byte overflows 64 bits is also rejected.
  std::string overflow(9, '\xFF');
  overflow.push_back('\x7F');
  EXPECT_FALSE(Decoder(overflow).GetUvarint().ok());
}

TEST(CodecTest, ExpectEndReportsTrailingBytes) {
  Decoder decoder("xy");
  Status status = decoder.ExpectEnd();
  EXPECT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FrameWriter / FrameReader

constexpr std::string_view kTestMagic = "wumckpt.test";

std::string FramedStream(const std::vector<std::string>& payloads,
                         std::uint32_t version = 1) {
  std::ostringstream out;
  FrameWriter writer(&out);
  EXPECT_TRUE(writer.WriteHeader(kTestMagic, version).ok());
  for (const std::string& payload : payloads) {
    EXPECT_TRUE(writer.WriteFrame(payload).ok());
  }
  return out.str();
}

std::vector<std::string> MustReadAll(FrameReader* reader) {
  std::vector<std::string> frames;
  while (true) {
    Result<std::optional<std::string>> frame = reader->ReadFrame();
    EXPECT_TRUE(frame.ok()) << frame.status().message();
    if (!frame.ok() || !frame->has_value()) break;
    frames.push_back(**frame);
  }
  return frames;
}

TEST(FrameTest, RoundTripsMultipleFrames) {
  const std::vector<std::string> payloads = {"", "one", std::string(4096, 'x'),
                                             std::string("\0\1\2", 3)};
  std::istringstream in(FramedStream(payloads));
  FrameReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader(kTestMagic, 1).ok());
  EXPECT_EQ(MustReadAll(&reader), payloads);
}

TEST(FrameTest, RejectsBadMagic) {
  std::istringstream in(FramedStream({"payload"}));
  FrameReader reader(&in);
  Status status = reader.ReadHeader("wumckpt.other", 1);
  EXPECT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(FrameTest, RejectsWrongVersion) {
  std::istringstream in(FramedStream({"payload"}, /*version=*/7));
  FrameReader reader(&in);
  Status status = reader.ReadHeader(kTestMagic, 1);
  EXPECT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(FrameTest, RejectsTruncatedHeader) {
  std::string stream = FramedStream({});
  stream.resize(stream.size() - 1);
  std::istringstream in(stream);
  FrameReader reader(&in);
  EXPECT_TRUE(reader.ReadHeader(kTestMagic, 1).IsParseError());
}

TEST(FrameTest, RejectsTruncatedFrame) {
  // Truncate at every strict prefix past the header: each must fail with
  // ParseError, never succeed or crash. (A cut exactly at the header
  // boundary is a valid zero-frame file — clean EOF — so start past it.)
  const std::string full = FramedStream({"hello, frames"});
  std::istringstream probe(full);
  FrameReader header_reader(&probe);
  ASSERT_TRUE(header_reader.ReadHeader(kTestMagic, 1).ok());
  const auto header_size = static_cast<std::size_t>(probe.tellg());
  for (std::size_t cut = header_size + 1; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    FrameReader reader(&in);
    ASSERT_TRUE(reader.ReadHeader(kTestMagic, 1).ok());
    Result<std::optional<std::string>> frame = reader.ReadFrame();
    EXPECT_FALSE(frame.ok()) << "cut at " << cut;
    EXPECT_TRUE(frame.status().IsParseError()) << "cut at " << cut;
  }
}

TEST(FrameTest, DetectsPayloadCorruption) {
  std::string stream = FramedStream({"checksummed payload"});
  stream.back() ^= 0x40;  // flip a bit inside the payload
  std::istringstream in(stream);
  FrameReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader(kTestMagic, 1).ok());
  Result<std::optional<std::string>> frame = reader.ReadFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("checksum"), std::string::npos);
}

TEST(FrameTest, BoundsPayloadSize) {
  std::string stream = FramedStream({std::string(128, 'p')});
  std::istringstream in(stream);
  FrameReader reader(&in, /*max_payload=*/64);
  ASSERT_TRUE(reader.ReadHeader(kTestMagic, 1).ok());
  Result<std::optional<std::string>> frame = reader.ReadFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("limit"), std::string::npos);
}

TEST(FrameTest, CleanEofReturnsNullopt) {
  std::istringstream in(FramedStream({"only"}));
  FrameReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader(kTestMagic, 1).ok());
  ASSERT_TRUE(reader.ReadFrame().ok());
  Result<std::optional<std::string>> eof = reader.ReadFrame();
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
}

// ---------------------------------------------------------------------------
// Persisted schemas

Session MakeSession(std::initializer_list<PageId> pages,
                    std::initializer_list<TimeSeconds> timestamps) {
  Session session;
  auto page = pages.begin();
  auto timestamp = timestamps.begin();
  for (; page != pages.end(); ++page, ++timestamp) {
    session.requests.push_back(PageRequest{*page, *timestamp});
  }
  return session;
}

TEST(SchemaTest, ManifestRoundTrip) {
  CheckpointManifest manifest;
  manifest.epoch = 42;
  manifest.num_shards = 8;
  manifest.records_seen = 123456789;
  manifest.heuristic = "smart-sra";
  manifest.identity = "ip-ua";
  manifest.max_session_duration = 1800;
  manifest.max_page_stay = 600;
  manifest.sink_state = "9876543210";

  Encoder encoder;
  EncodeManifest(manifest, &encoder);
  Decoder decoder(encoder.buffer());
  CheckpointManifest restored;
  ASSERT_TRUE(DecodeManifest(&decoder, &restored).ok());
  EXPECT_TRUE(decoder.ExpectEnd().ok());
  EXPECT_EQ(restored.epoch, manifest.epoch);
  EXPECT_EQ(restored.num_shards, manifest.num_shards);
  EXPECT_EQ(restored.records_seen, manifest.records_seen);
  EXPECT_EQ(restored.heuristic, manifest.heuristic);
  EXPECT_EQ(restored.identity, manifest.identity);
  EXPECT_EQ(restored.max_session_duration, manifest.max_session_duration);
  EXPECT_EQ(restored.max_page_stay, manifest.max_page_stay);
  EXPECT_EQ(restored.sink_state, manifest.sink_state);
}

TEST(SchemaTest, SessionRoundTrip) {
  const Session sessions[] = {
      MakeSession({}, {}),
      MakeSession({0}, {0}),
      MakeSession({1, 5, 3, 7}, {100, 160, 220, 280}),
  };
  for (const Session& session : sessions) {
    Encoder encoder;
    EncodeSession(session, &encoder);
    Decoder decoder(encoder.buffer());
    Session restored;
    ASSERT_TRUE(DecodeSession(&decoder, &restored).ok());
    EXPECT_TRUE(decoder.ExpectEnd().ok());
    EXPECT_EQ(restored, session);
  }
}

TEST(SchemaTest, TruncatedSessionFailsCleanly) {
  Encoder encoder;
  EncodeSession(MakeSession({1, 2, 3}, {10, 20, 30}), &encoder);
  for (std::size_t cut = 0; cut < encoder.buffer().size(); ++cut) {
    Decoder decoder(std::string_view(encoder.buffer()).substr(0, cut));
    Session session;
    Status status = DecodeSession(&decoder, &session);
    if (status.ok()) status = decoder.ExpectEnd();
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
  }
}

TEST(SchemaTest, DeadLetterRoundTripWithRecord) {
  DeadLetter letter;
  letter.stage = DeadLetter::Stage::kRecord;
  letter.shard = 3;
  letter.reason = Status::ParseError("bad record");
  LogRecord record;
  record.client_ip = "10.0.0.7";
  record.timestamp = 1136160000;
  record.url = "/pages/p42.html";
  record.status_code = 404;
  record.bytes = -1;
  record.referrer = "/pages/p1.html";
  record.user_agent = "Mozilla/5.0";
  letter.record = record;
  letter.detail = "line 9";
  letter.records_covered = 1;

  Encoder encoder;
  EncodeDeadLetter(letter, &encoder);
  Decoder decoder(encoder.buffer());
  DeadLetter restored;
  ASSERT_TRUE(DecodeDeadLetter(&decoder, &restored).ok());
  EXPECT_TRUE(decoder.ExpectEnd().ok());
  EXPECT_EQ(restored.stage, letter.stage);
  EXPECT_EQ(restored.shard, letter.shard);
  EXPECT_EQ(restored.reason.code(), letter.reason.code());
  EXPECT_EQ(restored.reason.message(), letter.reason.message());
  ASSERT_TRUE(restored.record.has_value());
  EXPECT_EQ(*restored.record, record);
  EXPECT_EQ(restored.detail, letter.detail);
  EXPECT_EQ(restored.records_covered, letter.records_covered);
}

TEST(SchemaTest, DeadLetterRoundTripWithoutRecord) {
  DeadLetter letter;
  letter.stage = DeadLetter::Stage::kEmit;
  letter.shard = 0;
  letter.reason = Status::IoError("sink refused");
  letter.detail = "10.0.0.9";
  letter.records_covered = 12;

  Encoder encoder;
  EncodeDeadLetter(letter, &encoder);
  Decoder decoder(encoder.buffer());
  DeadLetter restored;
  ASSERT_TRUE(DecodeDeadLetter(&decoder, &restored).ok());
  EXPECT_EQ(restored.stage, DeadLetter::Stage::kEmit);
  EXPECT_FALSE(restored.record.has_value());
  EXPECT_EQ(restored.records_covered, 12u);
}

// ---------------------------------------------------------------------------
// File-level protocol

class CheckpointFilesTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("ckpt_codec_test_" +
            std::to_string(
                testing::UnitTest::GetInstance()->random_seed()) +
            "_" + testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CheckpointFilesTest, WriteFileAtomicReplacesContents) {
  const std::string path = (dir_ / "value").string();
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "second");
  // No temp-file litter left behind.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(CheckpointFilesTest, FramedFileRoundTrip) {
  const std::string path = (dir_ / "shard-0.state").string();
  const std::vector<std::string> payloads = {"header", "", "state blob"};
  ASSERT_TRUE(WriteFramedFile(path, kShardMagic, payloads).ok());
  Result<std::vector<std::string>> frames = ReadFramedFile(path, kShardMagic);
  ASSERT_TRUE(frames.ok()) << frames.status().message();
  EXPECT_EQ(*frames, payloads);
}

TEST_F(CheckpointFilesTest, FramedFileRejectsWrongMagic) {
  const std::string path = (dir_ / "file.state").string();
  ASSERT_TRUE(WriteFramedFile(path, kShardMagic, {"x"}).ok());
  Result<std::vector<std::string>> frames =
      ReadFramedFile(path, kDeadLetterMagic);
  EXPECT_FALSE(frames.ok());
  EXPECT_TRUE(frames.status().IsParseError());
}

TEST_F(CheckpointFilesTest, FramedFileRejectsCorruption) {
  const std::string path = (dir_ / "file.state").string();
  ASSERT_TRUE(WriteFramedFile(path, kShardMagic, {"payload bytes"}).ok());
  // Flip one bit near the end of the file.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(file.tellg());
  file.seekp(size - 2);
  char byte = 0;
  file.seekg(size - 2);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(size - 2);
  file.write(&byte, 1);
  file.close();

  Result<std::vector<std::string>> frames = ReadFramedFile(path, kShardMagic);
  EXPECT_FALSE(frames.ok());
  EXPECT_TRUE(frames.status().IsParseError());
}

TEST_F(CheckpointFilesTest, FramedFileMissingIsIoError) {
  Result<std::vector<std::string>> frames =
      ReadFramedFile((dir_ / "missing").string(), kShardMagic);
  EXPECT_FALSE(frames.ok());
  EXPECT_TRUE(frames.status().IsIoError());
}

TEST_F(CheckpointFilesTest, CurrentPointerLifecycle) {
  // No checkpoint yet.
  Result<std::uint64_t> none = ReadCurrent(dir_.string());
  EXPECT_FALSE(none.ok());
  EXPECT_TRUE(none.status().IsNotFound());

  ASSERT_TRUE(CommitCurrent(dir_.string(), 1).ok());
  Result<std::uint64_t> first = ReadCurrent(dir_.string());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);

  ASSERT_TRUE(CommitCurrent(dir_.string(), 2).ok());
  Result<std::uint64_t> second = ReadCurrent(dir_.string());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 2u);
}

TEST_F(CheckpointFilesTest, CorruptCurrentFailsCleanly) {
  ASSERT_TRUE(WriteFileAtomic((dir_ / "CURRENT").string(), "garbage").ok());
  Result<std::uint64_t> current = ReadCurrent(dir_.string());
  EXPECT_FALSE(current.ok());
  EXPECT_FALSE(current.status().IsNotFound());
}

TEST_F(CheckpointFilesTest, RemoveStaleEpochsKeepsCommitted) {
  EXPECT_EQ(EpochDirName(7), "epoch-7");
  fs::create_directories(dir_ / EpochDirName(1));
  fs::create_directories(dir_ / EpochDirName(2));
  fs::create_directories(dir_ / EpochDirName(3));
  // A non-epoch entry must survive untouched.
  ASSERT_TRUE(WriteFileAtomic((dir_ / "journal").string(), "data").ok());

  RemoveStaleEpochs(dir_.string(), 3);
  EXPECT_FALSE(fs::exists(dir_ / EpochDirName(1)));
  EXPECT_FALSE(fs::exists(dir_ / EpochDirName(2)));
  EXPECT_TRUE(fs::exists(dir_ / EpochDirName(3)));
  EXPECT_TRUE(fs::exists(dir_ / "journal"));
}

}  // namespace
}  // namespace wum::ckpt
