#include "wum/mine/stream_summary.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "wum/ckpt/codec.h"
#include "wum/common/random.h"

namespace wum::mine {
namespace {

/// Drives a summary the way PathMiner does: the sequence counter
/// advances only when Offer reports a new insertion.
class Feeder {
 public:
  explicit Feeder(StreamSummary* summary) : summary_(summary) {}
  void Offer(const std::vector<PageId>& path) {
    if (summary_->Offer(path, seq_)) ++seq_;
  }

 private:
  StreamSummary* summary_;
  std::uint64_t seq_ = 0;
};

TEST(PatternOrderBeforeTest, CountDescendingDominates) {
  const PatternEstimate high{{9, 9}, 5, 0, 100};
  const PatternEstimate low{{1, 1}, 4, 0, 0};
  EXPECT_TRUE(PatternOrderBefore(high, low));
  EXPECT_FALSE(PatternOrderBefore(low, high));
}

TEST(PatternOrderBeforeTest, FirstSeenBreaksCountTies) {
  const PatternEstimate older{{9, 9}, 5, 0, 1};
  const PatternEstimate newer{{1, 1}, 5, 0, 2};
  EXPECT_TRUE(PatternOrderBefore(older, newer));
  EXPECT_FALSE(PatternOrderBefore(newer, older));
}

TEST(PatternOrderBeforeTest, PathLexBreaksRemainingTies) {
  const PatternEstimate a{{1, 2}, 5, 0, 3};
  const PatternEstimate b{{1, 3}, 5, 0, 3};
  EXPECT_TRUE(PatternOrderBefore(a, b));
  EXPECT_FALSE(PatternOrderBefore(b, a));
  EXPECT_FALSE(PatternOrderBefore(a, a));
}

TEST(StreamSummaryTest, ExactWhenUnderCapacity) {
  StreamSummary summary(16, 0);
  Feeder feeder(&summary);
  feeder.Offer({1, 2});
  feeder.Offer({2, 3});
  feeder.Offer({1, 2});
  EXPECT_EQ(summary.paths_processed(), 3u);
  EXPECT_EQ(summary.tracked(), 2u);
  auto top = summary.TopK(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].path, (std::vector<PageId>{2, 3}));
  EXPECT_EQ(top[1].count, 1u);
}

TEST(StreamSummaryTest, EvictionInheritsMinimumEstimate) {
  StreamSummary summary(2, 0);
  Feeder feeder(&summary);
  for (int i = 0; i < 3; ++i) feeder.Offer({1});
  feeder.Offer({2});
  feeder.Offer({3});  // evicts [2] (min = 1): [3] count 2, error 1
  auto top = summary.TopK(3);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1}));
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_EQ(top[1].path, (std::vector<PageId>{3}));
  EXPECT_EQ(top[1].count, 2u);
  EXPECT_EQ(top[1].error, 1u);
}

TEST(StreamSummaryTest, EvictsLongestResidentOfMinimumCount) {
  // Three paths tied at count 1: the victim must be the one that has
  // sat at the minimum count longest ([1], inserted first), not an
  // arbitrary map-order pick — this pins the deterministic choice.
  StreamSummary summary(3, 0);
  Feeder feeder(&summary);
  feeder.Offer({1});
  feeder.Offer({2});
  feeder.Offer({3});
  feeder.Offer({4});  // evicts [1]
  auto top = summary.TopK(4);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{4}));  // count 2 (inherited)
  std::vector<std::vector<PageId>> paths;
  for (const auto& entry : top) paths.push_back(entry.path);
  EXPECT_EQ(paths, (std::vector<std::vector<PageId>>{{4}, {2}, {3}}));
}

TEST(StreamSummaryTest, TopKTruncatesAndOrders) {
  StreamSummary summary(16, 0);
  Feeder feeder(&summary);
  for (int i = 0; i < 5; ++i) feeder.Offer({1});
  for (int i = 0; i < 3; ++i) feeder.Offer({2});
  feeder.Offer({3});
  auto top = summary.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1}));
  EXPECT_EQ(top[1].path, (std::vector<PageId>{2}));
}

TEST(StreamSummaryTest, SpaceSavingGuaranteesOnRandomStream) {
  // SpaceSaving invariants against exact counts:
  //   estimate >= true count, estimate - error <= true count, and every
  //   path with true count > N/capacity is tracked.
  Rng rng(77);
  constexpr std::size_t kCapacity = 24;
  StreamSummary summary(kCapacity, 0);
  Feeder feeder(&summary);
  std::map<std::vector<PageId>, std::uint64_t> exact;
  for (int s = 0; s < 500; ++s) {
    std::vector<PageId> session;
    const std::size_t length = 2 + rng.NextBounded(6);
    for (std::size_t i = 0; i < length; ++i) {
      // Skewed page distribution so some paths are genuinely frequent.
      session.push_back(static_cast<PageId>(
          rng.NextWeighted({30, 20, 10, 5, 2, 1, 1, 1, 1, 1})));
    }
    for (std::size_t i = 0; i + 2 <= session.size(); ++i) {
      const std::vector<PageId> path{session[i], session[i + 1]};
      feeder.Offer(path);
      ++exact[path];
    }
  }
  const std::uint64_t n = summary.paths_processed();
  ASSERT_GT(n, 0u);
  std::vector<PatternEstimate> tracked;
  summary.AppendAll(&tracked);
  std::map<std::vector<PageId>, PatternEstimate> tracked_map;
  for (const auto& entry : tracked) tracked_map[entry.path] = entry;
  for (const auto& [path, entry] : tracked_map) {
    const std::uint64_t true_count = exact.contains(path) ? exact.at(path) : 0;
    EXPECT_GE(entry.count, true_count);
    EXPECT_LE(entry.count - entry.error, true_count);
  }
  for (const auto& [path, true_count] : exact) {
    if (true_count > n / kCapacity) {
      EXPECT_TRUE(tracked_map.contains(path))
          << "frequent path lost (true count " << true_count << ")";
    }
  }
}

TEST(StreamSummaryTest, DecayHalvesCountsAndDropsZeros) {
  StreamSummary summary(8, 0);
  Feeder feeder(&summary);
  for (int i = 0; i < 4; ++i) feeder.Offer({1});
  feeder.Offer({2});  // count 1: halves to zero and drops
  EXPECT_EQ(summary.paths_processed(), 5u);
  summary.Decay();
  EXPECT_EQ(summary.decays(), 1u);
  EXPECT_EQ(summary.paths_processed(), 2u);
  auto top = summary.TopK(8);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1}));
  EXPECT_EQ(top[0].count, 2u);
}

TEST(StreamSummaryTest, WindowModeDecaysAutomatically) {
  StreamSummary summary(8, 4);
  Feeder feeder(&summary);
  for (int i = 0; i < 4; ++i) feeder.Offer({1});
  EXPECT_EQ(summary.decays(), 1u);
  auto top = summary.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].count, 2u);
  // The halved stream keeps decaying on the same cadence.
  for (int i = 0; i < 4; ++i) feeder.Offer({1});
  EXPECT_EQ(summary.decays(), 2u);
}

std::string SerializeToString(const StreamSummary& summary) {
  ckpt::Encoder encoder;
  summary.Serialize(&encoder);
  return encoder.Release();
}

TEST(StreamSummaryTest, SerializeRestoreRoundTrip) {
  // Build a summary that has seen evictions, snapshot it, and check the
  // restored copy is indistinguishable — same estimates now, and the
  // same evictions later (determinism under continued load).
  Rng rng(1234);
  StreamSummary original(8, 0);
  Feeder feeder(&original);
  for (int i = 0; i < 200; ++i) {
    feeder.Offer({static_cast<PageId>(rng.NextBounded(20)),
                  static_cast<PageId>(rng.NextBounded(20))});
  }
  const std::string snapshot = SerializeToString(original);

  StreamSummary restored(8, 0);
  ckpt::Decoder decoder(snapshot);
  ASSERT_TRUE(restored.Restore(&decoder).ok());
  ASSERT_TRUE(decoder.ExpectEnd().ok());
  EXPECT_EQ(restored.paths_processed(), original.paths_processed());
  EXPECT_EQ(restored.tracked(), original.tracked());
  EXPECT_EQ(restored.TopK(8), original.TopK(8));

  // Continue both with the identical suffix stream: every estimate —
  // including eviction-inherited errors — must stay equal.
  Feeder original_feeder(&original);
  Feeder restored_feeder(&restored);
  Rng suffix_rng(99);
  for (int i = 0; i < 200; ++i) {
    const std::vector<PageId> path{
        static_cast<PageId>(suffix_rng.NextBounded(20)),
        static_cast<PageId>(suffix_rng.NextBounded(20))};
    original_feeder.Offer(path);
    restored_feeder.Offer(path);
  }
  EXPECT_EQ(restored.TopK(8), original.TopK(8));
  EXPECT_EQ(restored.paths_processed(), original.paths_processed());
}

TEST(StreamSummaryTest, RestoreRejectsConfigMismatch) {
  StreamSummary original(8, 0);
  Feeder feeder(&original);
  feeder.Offer({1, 2});
  const std::string snapshot = SerializeToString(original);

  StreamSummary wrong_capacity(16, 0);
  ckpt::Decoder capacity_decoder(snapshot);
  EXPECT_TRUE(wrong_capacity.Restore(&capacity_decoder).IsInvalidArgument());

  StreamSummary wrong_window(8, 1024);
  ckpt::Decoder window_decoder(snapshot);
  EXPECT_TRUE(wrong_window.Restore(&window_decoder).IsInvalidArgument());
}

TEST(StreamSummaryTest, RestoreRejectsCorruptChainOrder) {
  // Serialized counts must be non-decreasing in chain order; a snapshot
  // violating that is corruption, not state.
  ckpt::Encoder encoder;
  encoder.PutUvarint(8);    // capacity
  encoder.PutUvarint(0);    // window
  encoder.PutUvarint(10);   // paths_processed
  encoder.PutUvarint(0);    // offers_since_decay
  encoder.PutUvarint(0);    // decays
  encoder.PutUvarint(2);    // tracked
  encoder.PutUvarint(5);    // count
  encoder.PutUvarint(0);    // error
  encoder.PutUvarint(0);    // first_seen
  encoder.PutString(std::string("\1\0\0\0", 4));
  encoder.PutUvarint(3);    // count < previous: out of order
  encoder.PutUvarint(0);
  encoder.PutUvarint(1);
  encoder.PutString(std::string("\2\0\0\0", 4));
  const std::string snapshot = encoder.Release();
  StreamSummary summary(8, 0);
  ckpt::Decoder decoder(snapshot);
  EXPECT_TRUE(summary.Restore(&decoder).IsParseError());
}

}  // namespace
}  // namespace wum::mine
