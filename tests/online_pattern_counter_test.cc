#include "wum/stream/online_pattern_counter.h"

#include <gtest/gtest.h>

#include <map>

#include "wum/common/random.h"
#include "wum/session/session.h"

namespace wum {
namespace {

TEST(TopKPathCounterTest, ExactWhenUnderCapacity) {
  TopKPathCounter counter(16, 2);
  counter.AddSession({1, 2, 3});      // paths: [1,2], [2,3]
  counter.AddSession({1, 2});         // [1,2]
  counter.AddSession({4});            // too short: nothing
  EXPECT_EQ(counter.paths_processed(), 3u);
  auto top = counter.TopK(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].path, (std::vector<PageId>{2, 3}));
  EXPECT_EQ(top[1].count, 1u);
}

TEST(TopKPathCounterTest, PathLengthOne) {
  TopKPathCounter counter(8, 1);
  counter.AddSession({5, 5, 7});
  auto top = counter.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{5}));
  EXPECT_EQ(top[0].count, 2u);
}

TEST(TopKPathCounterTest, EvictionInheritsMinimumEstimate) {
  TopKPathCounter counter(2, 1);
  counter.AddSession({1, 1, 1});  // [1] x3
  counter.AddSession({2});        // [2] x1
  counter.AddSession({3});        // evicts [2] (min=1): [3] count 2, error 1
  auto top = counter.TopK(3);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1}));
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_EQ(top[1].path, (std::vector<PageId>{3}));
  EXPECT_EQ(top[1].count, 2u);
  EXPECT_EQ(top[1].error, 1u);
}

TEST(TopKPathCounterTest, TopKTruncatesAndOrders) {
  TopKPathCounter counter(16, 1);
  for (int i = 0; i < 5; ++i) counter.AddSession({1});
  for (int i = 0; i < 3; ++i) counter.AddSession({2});
  counter.AddSession({3});
  auto top = counter.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, (std::vector<PageId>{1}));
  EXPECT_EQ(top[1].path, (std::vector<PageId>{2}));
}

TEST(TopKPathCounterTest, SpaceSavingGuaranteesOnRandomStream) {
  // SpaceSaving invariants against exact counts:
  //   estimate >= true count, estimate - error <= true count, and every
  //   path with true count > N/capacity is tracked.
  Rng rng(77);
  constexpr std::size_t kCapacity = 24;
  TopKPathCounter counter(kCapacity, 2);
  std::map<std::vector<PageId>, std::uint64_t> exact;
  for (int s = 0; s < 500; ++s) {
    std::vector<PageId> session;
    const std::size_t length = 2 + rng.NextBounded(6);
    for (std::size_t i = 0; i < length; ++i) {
      // Skewed page distribution so some paths are genuinely frequent.
      session.push_back(static_cast<PageId>(rng.NextWeighted(
          {30, 20, 10, 5, 2, 1, 1, 1, 1, 1})));
    }
    counter.AddSession(session);
    for (std::size_t i = 0; i + 2 <= session.size(); ++i) {
      ++exact[{session[i], session[i + 1]}];
    }
  }
  const std::uint64_t n = counter.paths_processed();
  ASSERT_GT(n, 0u);
  auto tracked = counter.TopK(kCapacity);
  std::map<std::vector<PageId>, TopKPathCounter::Entry> tracked_map;
  for (const auto& entry : tracked) tracked_map[entry.path] = entry;
  for (const auto& [path, entry] : tracked_map) {
    const std::uint64_t true_count =
        exact.contains(path) ? exact.at(path) : 0;
    EXPECT_GE(entry.count, true_count);
    EXPECT_LE(entry.count - entry.error, true_count);
  }
  for (const auto& [path, true_count] : exact) {
    if (true_count > n / kCapacity) {
      EXPECT_TRUE(tracked_map.contains(path))
          << "frequent path lost (true count " << true_count << ")";
    }
  }
}

TEST(PatternCountingSinkTest, CountsAndForwards) {
  CollectingSessionSink downstream;
  PatternCountingSink sink(&downstream);
  const std::size_t pairs = sink.AddCounter(8, 2);
  const std::size_t triples = sink.AddCounter(8, 3);
  ASSERT_TRUE(sink.Accept("ip", MakeSession({1, 2, 3}, {0, 1, 2})).ok());
  ASSERT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {5, 6})).ok());
  EXPECT_EQ(sink.sessions_seen(), 2u);
  EXPECT_EQ(sink.counter(pairs).paths_processed(), 3u);
  EXPECT_EQ(sink.counter(triples).paths_processed(), 1u);
  EXPECT_EQ(downstream.entries().size(), 2u);
}

TEST(PatternCountingSinkTest, NullDownstreamIsFine) {
  PatternCountingSink sink;
  sink.AddCounter(4, 2);
  EXPECT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {0, 1})).ok());
  EXPECT_EQ(sink.sessions_seen(), 1u);
}

}  // namespace
}  // namespace wum
