// StreamEngine lifecycle and failure semantics: option validation,
// sharded stats accounting, identity-keyed sessionization, error
// propagation (a sink failure stops every shard), and the
// double-Finish / use-after-Finish guards.

#include "wum/stream/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "wum/clf/log_filter.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

/// Emits every request as its own single-page session immediately, so
/// sink errors surface mid-stream instead of only at Flush.
class EmitEverySessionizer : public IncrementalUserSessionizer {
 public:
  Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
    Session session;
    session.requests.push_back(request);
    return emit(std::move(session));
  }
  Status Flush(const EmitFn&) override { return Status::OK(); }
};

/// Accepts `limit` sessions, then fails every call.
class FailAfterSink : public SessionSink {
 public:
  explicit FailAfterSink(std::uint64_t limit) : limit_(limit) {}

  Status Accept(const std::string&, Session) override {
    if (accepted_.load() >= limit_) return Status::Internal("sink full");
    accepted_.fetch_add(1);
    return Status::OK();
  }

  std::uint64_t accepted() const { return accepted_.load(); }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> accepted_{0};
};

TEST(StreamEngineCreateTest, RejectsInvalidOptions) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;

  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_smart_sra(&graph),
                                   nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions(), &sink)
                  .status()
                  .IsInvalidArgument());  // no heuristic
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_smart_sra(&graph).set_num_shards(0),
                  &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_smart_sra(&graph).set_queue_capacity(0),
                  &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_smart_sra(nullptr),
                                   &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_custom(nullptr), &sink)
                  .status()
                  .IsInvalidArgument());
  // Time heuristics have no graph to derive the page bound from.
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_duration(), &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_duration().set_num_pages(10), &sink)
                  .ok());
}

TEST(StreamEngineTest, SessionizesOneUserEndToEnd) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 1, 60)).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 4, 120)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  ASSERT_EQ(sessions.entries().size(), 1u);
  EXPECT_EQ(sessions.entries()[0].client_ip, "u");
  EXPECT_EQ(sessions.entries()[0].session.PageSequence(),
            (std::vector<PageId>{0, 1, 4}));
}

TEST(StreamEngineTest, StatsAccountForEveryRecordAcrossShards) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(4).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  constexpr int kUsers = 23;
  constexpr int kRequests = 7;
  for (int r = 0; r < kRequests; ++r) {
    for (int u = 0; u < kUsers; ++u) {
      ASSERT_TRUE(
          (*engine)
              ->Offer(PageRecord("10.0.0." + std::to_string(u), 0, r * 30))
              .ok());
    }
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.records_in, static_cast<std::uint64_t>(kUsers * kRequests));
  EXPECT_EQ(total.records_dropped, 0u);
  EXPECT_EQ(total.sessions_emitted, sessions.entries().size());
  EXPECT_GT(total.queue_high_watermark, 0u);

  // Per-shard counters sum to the totals, and every user's records
  // landed on exactly one shard (records_in per shard is a multiple of
  // kRequests).
  std::uint64_t sum_in = 0;
  for (const EngineStats& shard : (*engine)->ShardStats()) {
    EXPECT_EQ(shard.records_in % kRequests, 0u);
    sum_in += shard.records_in;
  }
  EXPECT_EQ(sum_in, total.records_in);
}

TEST(StreamEngineTest, IdentitySeparatesAgentsBehindOneProxy) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_identity(UserIdentity::kClientIpAndUserAgent)
          .use_smart_sra(&graph),
      &sessions);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 3; ++i) {
    LogRecord a = PageRecord("proxy", 0, i * 60);
    a.user_agent = "firefox";
    LogRecord b = PageRecord("proxy", 0, i * 60);
    b.user_agent = "safari";
    ASSERT_TRUE((*engine)->Offer(a).ok());
    ASSERT_TRUE((*engine)->Offer(b).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  std::set<std::string> keys;
  for (const auto& entry : sessions.entries()) keys.insert(entry.client_ip);
  EXPECT_EQ(keys, (std::set<std::string>{std::string("proxy\x1f") + "firefox",
                                         std::string("proxy\x1f") +
                                             "safari"}));
}

TEST(StreamEngineTest, FilterChainDropsAreCounted) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .use_smart_sra(&graph)
          .add_filter([] { return std::make_unique<MethodFilter>(); }),
      &sessions);
  ASSERT_TRUE(engine.ok());
  LogRecord post = PageRecord("u", 0, 0);
  post.method = HttpMethod::kPost;
  ASSERT_TRUE((*engine)->Offer(post).ok());
  LogRecord non_page = PageRecord("u", 0, 10);
  non_page.url = "/favicon.ico";
  ASSERT_TRUE((*engine)->Offer(non_page).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 20)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.records_in, 3u);
  EXPECT_EQ(total.records_dropped, 2u);  // POST + non-page URL
  EXPECT_EQ(sessions.entries().size(), 1u);
}

TEST(StreamEngineTest, SinkFailureStopsAllShards) {
  WebGraph graph = MakeFigure1Topology();
  FailAfterSink sink(/*limit=*/1);
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_queue_capacity(4)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); }),
      &sink);
  ASSERT_TRUE(engine.ok());

  // Every record emits a session; after the first one the sink fails and
  // the shared emit path poisons every shard, so Offer must start
  // rejecting (the ingest path observes the failure).
  Status offer_status;
  for (int i = 0; i < 10000 && offer_status.ok(); ++i) {
    offer_status =
        (*engine)->Offer(PageRecord("10.0.0." + std::to_string(i % 64), 0, i));
  }
  EXPECT_TRUE(offer_status.IsInternal());
  EXPECT_TRUE((*engine)->Finish().IsInternal());
  // Nothing got through after the failure, on any shard.
  EXPECT_EQ(sink.accepted(), 1u);
}

TEST(StreamEngineTest, FinishGuards) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_TRUE((*engine)->Finish().IsFailedPrecondition());
  EXPECT_TRUE((*engine)->Offer(PageRecord("u", 1, 60)).IsFailedPrecondition());
}

TEST(StreamEngineTest, DestructorFinishesWithoutExplicitFinish) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  {
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
    // No Finish(): the destructor must drain, flush and join cleanly.
  }
  EXPECT_EQ(sessions.entries().size(), 1u);
}

}  // namespace
}  // namespace wum
