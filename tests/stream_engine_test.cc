// StreamEngine lifecycle and failure semantics: option validation,
// sharded stats accounting, identity-keyed sessionization, error
// propagation (a sink failure stops every shard), and the
// double-Finish / use-after-Finish guards.

#include "wum/stream/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "wum/clf/log_filter.h"
#include "wum/obs/metrics.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

/// Emits every request as its own single-page session immediately, so
/// sink errors surface mid-stream instead of only at Flush.
class EmitEverySessionizer : public IncrementalUserSessionizer {
 public:
  Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
    Session session;
    session.requests.push_back(request);
    return emit(std::move(session));
  }
  Status Flush(const EmitFn&) override { return Status::OK(); }
};

/// Accepts `limit` sessions, then fails every call.
class FailAfterSink : public SessionSink {
 public:
  explicit FailAfterSink(std::uint64_t limit) : limit_(limit) {}

  Status Accept(const std::string&, Session) override {
    if (accepted_.load() >= limit_) return Status::Internal("sink full");
    accepted_.fetch_add(1);
    return Status::OK();
  }

  std::uint64_t accepted() const { return accepted_.load(); }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> accepted_{0};
};

TEST(StreamEngineCreateTest, RejectsInvalidOptions) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;

  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_smart_sra(&graph),
                                   nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions(), &sink)
                  .status()
                  .IsInvalidArgument());  // no heuristic
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_smart_sra(&graph).set_num_shards(0),
                  &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_smart_sra(&graph).set_queue_capacity(0),
                  &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_smart_sra(nullptr),
                                   &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_custom(nullptr), &sink)
                  .status()
                  .IsInvalidArgument());
  // Time heuristics have no graph to derive the page bound from.
  EXPECT_TRUE(StreamEngine::Create(EngineOptions().use_duration(), &sink)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamEngine::Create(
                  EngineOptions().use_duration().set_num_pages(10), &sink)
                  .ok());
}

TEST(StreamEngineTest, SessionizesOneUserEndToEnd) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 1, 60)).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 4, 120)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  ASSERT_EQ(sessions.entries().size(), 1u);
  EXPECT_EQ(sessions.entries()[0].client_ip, "u");
  EXPECT_EQ(sessions.entries()[0].session.PageSequence(),
            (std::vector<PageId>{0, 1, 4}));
}

TEST(StreamEngineTest, StatsAccountForEveryRecordAcrossShards) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(4).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  constexpr int kUsers = 23;
  constexpr int kRequests = 7;
  for (int r = 0; r < kRequests; ++r) {
    for (int u = 0; u < kUsers; ++u) {
      ASSERT_TRUE(
          (*engine)
              ->Offer(PageRecord("10.0.0." + std::to_string(u), 0, r * 30))
              .ok());
    }
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.records_in, static_cast<std::uint64_t>(kUsers * kRequests));
  EXPECT_EQ(total.records_dropped, 0u);
  EXPECT_EQ(total.sessions_emitted, sessions.entries().size());
  EXPECT_GT(total.queue_high_watermark, 0u);

  // Per-shard counters sum to the totals, and every user's records
  // landed on exactly one shard (records_in per shard is a multiple of
  // kRequests).
  std::uint64_t sum_in = 0;
  for (const EngineStats& shard : (*engine)->ShardStats()) {
    EXPECT_EQ(shard.records_in % kRequests, 0u);
    sum_in += shard.records_in;
  }
  EXPECT_EQ(sum_in, total.records_in);
}

TEST(StreamEngineTest, IdentitySeparatesAgentsBehindOneProxy) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_identity(UserIdentity::kClientIpAndUserAgent)
          .use_smart_sra(&graph),
      &sessions);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 3; ++i) {
    LogRecord a = PageRecord("proxy", 0, i * 60);
    a.user_agent = "firefox";
    LogRecord b = PageRecord("proxy", 0, i * 60);
    b.user_agent = "safari";
    ASSERT_TRUE((*engine)->Offer(a).ok());
    ASSERT_TRUE((*engine)->Offer(b).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  std::set<std::string> keys;
  for (const auto& entry : sessions.entries()) keys.insert(entry.client_ip);
  EXPECT_EQ(keys, (std::set<std::string>{std::string("proxy\x1f") + "firefox",
                                         std::string("proxy\x1f") +
                                             "safari"}));
}

TEST(StreamEngineTest, FilterChainDropsAreCounted) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .use_smart_sra(&graph)
          .add_filter([] { return std::make_unique<MethodFilter>(); }),
      &sessions);
  ASSERT_TRUE(engine.ok());
  LogRecord post = PageRecord("u", 0, 0);
  post.method = HttpMethod::kPost;
  ASSERT_TRUE((*engine)->Offer(post).ok());
  LogRecord non_page = PageRecord("u", 0, 10);
  non_page.url = "/favicon.ico";
  ASSERT_TRUE((*engine)->Offer(non_page).ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 20)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(total.records_in, 3u);
  EXPECT_EQ(total.records_dropped, 2u);  // POST + non-page URL
  EXPECT_EQ(sessions.entries().size(), 1u);
}

TEST(StreamEngineTest, SinkFailureStopsAllShards) {
  WebGraph graph = MakeFigure1Topology();
  FailAfterSink sink(/*limit=*/1);
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_queue_capacity(4)
          .set_num_pages(graph.num_pages())
          .use_custom([] { return std::make_unique<EmitEverySessionizer>(); }),
      &sink);
  ASSERT_TRUE(engine.ok());

  // Every record emits a session; after the first one the sink fails and
  // the shared emit path poisons every shard, so Offer must start
  // rejecting (the ingest path observes the failure).
  Status offer_status;
  for (int i = 0; i < 10000 && offer_status.ok(); ++i) {
    offer_status =
        (*engine)->Offer(PageRecord("10.0.0." + std::to_string(i % 64), 0, i));
  }
  EXPECT_TRUE(offer_status.IsInternal());
  EXPECT_TRUE((*engine)->Finish().IsInternal());
  // Nothing got through after the failure, on any shard.
  EXPECT_EQ(sink.accepted(), 1u);
}

TEST(StreamEngineTest, FinishGuards) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_TRUE((*engine)->Finish().IsFailedPrecondition());
  EXPECT_TRUE((*engine)->Offer(PageRecord("u", 1, 60)).IsFailedPrecondition());
}

TEST(StreamEngineCreateTest, UseHeuristicResolvesThroughRegistry) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;
  // Every registry name works through the generic setter.
  for (const std::string name :
       {"duration", "pagestay", "navigation", "smart-sra"}) {
    EXPECT_TRUE(StreamEngine::Create(
                    EngineOptions().use_graph(&graph).use_heuristic(name),
                    &sink)
                    .ok())
        << name;
  }
  // Unknown names surface the registry's NotFound (listing valid names).
  Status unknown = StreamEngine::Create(
                       EngineOptions().use_graph(&graph).use_heuristic("h9"),
                       &sink)
                       .status();
  EXPECT_TRUE(unknown.IsNotFound());
  EXPECT_NE(unknown.message().find("smart-sra"), std::string::npos);
}

// With a registry attached, the per-shard obs metrics must agree exactly
// with the legacy EngineStats snapshots — they count the same events.
TEST(StreamEngineTest, MetricsMatchEngineStats) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  obs::MetricRegistry registry;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_metrics(&registry)
          .use_smart_sra(&graph)
          .add_filter([] { return std::make_unique<MethodFilter>(); }),
      &sessions);
  ASSERT_TRUE(engine.ok());
  for (int u = 0; u < 17; ++u) {
    const std::string ip = "10.0.0." + std::to_string(u);
    for (int r = 0; r < 5; ++r) {
      ASSERT_TRUE((*engine)->Offer(PageRecord(ip, 0, r * 30)).ok());
    }
    LogRecord post = PageRecord(ip, 0, 300);
    post.method = HttpMethod::kPost;  // dropped by the filter
    ASSERT_TRUE((*engine)->Offer(post).ok());
    LogRecord non_page = PageRecord(ip, 0, 310);
    non_page.url = "/favicon.ico";  // skipped by the sessionize stage
    ASSERT_TRUE((*engine)->Offer(non_page).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const std::vector<EngineStats> shards = (*engine)->ShardStats();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::string prefix = "engine.shard" + std::to_string(i) + ".";
    EXPECT_EQ(snapshot.CounterOrZero(prefix + "records_in"),
              shards[i].records_in);
    EXPECT_EQ(snapshot.CounterOrZero(prefix + "sessions_emitted"),
              shards[i].sessions_emitted);
    EXPECT_EQ(snapshot.CounterOrZero(prefix + "blocked_enqueues"),
              shards[i].blocked_enqueues);
    const obs::MetricsSnapshot::GaugeValue* watermark =
        snapshot.FindGauge(prefix + "queue_high_watermark");
    ASSERT_NE(watermark, nullptr);
    EXPECT_EQ(watermark->value, shards[i].queue_high_watermark);
    // records_dropped is derived the same way EngineStats derives it.
    EXPECT_EQ(snapshot.CounterOrZero(prefix + "records_processed") -
                  snapshot.CounterOrZero(prefix + "records_delivered") +
                  snapshot.CounterOrZero(prefix + "skipped_non_page_urls"),
              shards[i].records_dropped);
    // The drain timer saw every processed record; the sessionize timer
    // every record that reached the sessionizer as a page request.
    const obs::MetricsSnapshot::HistogramValue* drain =
        snapshot.FindHistogram(prefix + "drain_latency_us");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->count,
              snapshot.CounterOrZero(prefix + "records_processed"));
  }
  const EngineStats total = (*engine)->TotalStats();
  std::uint64_t records_in_total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    records_in_total += snapshot.CounterOrZero(
        "engine.shard" + std::to_string(i) + ".records_in");
  }
  EXPECT_EQ(records_in_total, total.records_in);
  EXPECT_EQ(total.records_in, 17u * 7u);
  EXPECT_EQ(total.records_dropped, 17u * 2u);
}

// Without set_metrics the engine registers nothing anywhere and the
// legacy stats still work — the disabled mode of the tentpole.
TEST(StreamEngineTest, NoRegistryMeansNoMetricsButStatsStillWork) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_EQ((*engine)->TotalStats().records_in, 1u);
}

TEST(StreamEngineTest, DestructorFinishesWithoutExplicitFinish) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  {
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sessions);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Offer(PageRecord("u", 0, 0)).ok());
    // No Finish(): the destructor must drain, flush and join cleanly.
  }
  EXPECT_EQ(sessions.entries().size(), 1u);
}

}  // namespace
}  // namespace wum
