#include <gtest/gtest.h>

#include <sstream>

#include "wum/common/csv.h"
#include "wum/common/table.h"

namespace wum {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream oss;
  CsvWriter csv(&oss);
  csv.WriteRow({"a", "b", "c"});
  EXPECT_EQ(oss.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1);
}

TEST(CsvWriterTest, EscapesCommas) {
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
}

TEST(CsvWriterTest, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::EscapeField("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, PlainFieldUntouched) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
}

TEST(CsvWriterTest, NumericRowPrecision) {
  std::ostringstream oss;
  CsvWriter csv(&oss);
  csv.WriteRow("x", {1.23456, 2.0}, 2);
  EXPECT_EQ(oss.str(), "x,1.23,2.00\n");
}

TEST(TableTest, RendersAlignedMarkdown) {
  Table table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| name   | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| ------ | ----- |"), std::string::npos);
  EXPECT_NE(rendered.find("| a      | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, NumericRow) {
  Table table({"label", "v1", "v2"});
  table.AddRow("row", {1.5, 2.25}, 1);
  EXPECT_NE(table.ToString().find("| row   | 1.5 | 2.2 |"),
            std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, EmptyTableStillRendersHeader) {
  Table table({"only"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| only |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 0), "-0"); // snprintf rounds toward even digit
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

}  // namespace
}  // namespace wum
