// wum::obs reporting: option validation, the final-snapshot-on-Stop
// guarantee, periodic JSONL series content and idempotent shutdown.

#include "wum/obs/reporter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace wum {
namespace obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(MetricsReporterTest, RejectsInvalidOptions) {
  MetricRegistry registry;
  MetricsReporter::Options options;
  options.path = TempPath("reporter_invalid.jsonl");

  EXPECT_TRUE(MetricsReporter::Start(nullptr, options)
                  .status()
                  .IsInvalidArgument());

  MetricsReporter::Options no_interval = options;
  no_interval.interval = std::chrono::milliseconds(0);
  EXPECT_TRUE(MetricsReporter::Start(&registry, no_interval)
                  .status()
                  .IsInvalidArgument());

  MetricsReporter::Options no_path = options;
  no_path.path.clear();
  EXPECT_TRUE(MetricsReporter::Start(&registry, no_path)
                  .status()
                  .IsInvalidArgument());

  MetricsReporter::Options bad_path = options;
  bad_path.path = TempPath("no-such-dir/deep/reporter.jsonl");
  EXPECT_TRUE(
      MetricsReporter::Start(&registry, bad_path).status().IsIoError());
}

TEST(MetricsReporterTest, StopWritesFinalSnapshotEvenWithinFirstInterval) {
  const std::string path = TempPath("reporter_final.jsonl");
  MetricRegistry registry;
  registry.GetCounter("work.items").Increment(42);
  MetricsReporter::Options options;
  options.interval = std::chrono::hours(1);  // never fires on its own
  options.path = path;
  Result<std::unique_ptr<MetricsReporter>> reporter =
      MetricsReporter::Start(&registry, options);
  ASSERT_TRUE(reporter.ok()) << reporter.status().ToString();
  ASSERT_TRUE((*reporter)->Stop().ok());
  EXPECT_EQ((*reporter)->snapshots_written(), 1u);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"uptime_ms\": "), std::string::npos);
  // The embedded snapshot carries the registry state at Stop time.
  EXPECT_NE(lines[0].find("\"work.items\": 42"), std::string::npos);
  // Registered in the observed registry itself: the series documents
  // its own cadence.
  EXPECT_NE(lines[0].find("\"obs.reporter.snapshots\": 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsReporterTest, WritesPeriodicSeries) {
  const std::string path = TempPath("reporter_series.jsonl");
  MetricRegistry registry;
  Counter counter = registry.GetCounter("ticks");
  MetricsReporter::Options options;
  options.interval = std::chrono::milliseconds(10);
  options.path = path;
  Result<std::unique_ptr<MetricsReporter>> reporter =
      MetricsReporter::Start(&registry, options);
  ASSERT_TRUE(reporter.ok()) << reporter.status().ToString();
  // Wait until at least two periodic snapshots have landed (generous
  // deadline so a loaded CI machine cannot flake this).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*reporter)->snapshots_written() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    counter.Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE((*reporter)->Stop().ok());
  const std::uint64_t written = (*reporter)->snapshots_written();
  EXPECT_GE(written, 3u);  // >= 2 periodic + the final one

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), written);
  // Sequence numbers are dense from 0; every line is one JSON object.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"seq\": " + std::to_string(i)), 0u)
        << lines[i];
    EXPECT_EQ(lines[i].back(), '}');
    EXPECT_NE(lines[i].find("\"metrics\": {"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(MetricsReporterTest, StopIsIdempotentAndDestructionIsSafe) {
  const std::string path = TempPath("reporter_idem.jsonl");
  MetricRegistry registry;
  MetricsReporter::Options options;
  options.interval = std::chrono::hours(1);
  options.path = path;
  Result<std::unique_ptr<MetricsReporter>> reporter =
      MetricsReporter::Start(&registry, options);
  ASSERT_TRUE(reporter.ok());
  EXPECT_TRUE((*reporter)->Stop().ok());
  EXPECT_TRUE((*reporter)->Stop().ok());  // second Stop: no-op, same result
  EXPECT_EQ((*reporter)->snapshots_written(), 1u);
  reporter->reset();  // destructor after Stop must not double-join
  EXPECT_EQ(ReadLines(path).size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace wum
