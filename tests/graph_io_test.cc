#include "wum/topology/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "wum/common/random.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

TEST(GraphIoTest, RoundTripFigure1) {
  WebGraph original = MakeFigure1Topology();
  std::stringstream stream;
  WriteGraphText(original, &stream);
  Result<WebGraph> loaded = ReadGraphText(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(original == *loaded);
}

TEST(GraphIoTest, RoundTripGeneratedSites) {
  for (std::uint64_t seed : {1ULL, 7ULL, 31337ULL}) {
    Rng rng(seed);
    SiteGeneratorOptions options;
    options.num_pages = 80;
    options.mean_out_degree = 5.0;
    WebGraph original = *GenerateUniformSite(options, &rng);
    std::stringstream stream;
    WriteGraphText(original, &stream);
    Result<WebGraph> loaded = ReadGraphText(&stream);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(original == *loaded);
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream(
      "# a comment\n"
      "websra-graph 1\n"
      "\n"
      "pages 2\n"
      "# another\n"
      "start 0\n"
      "edge 0 1\n");
  Result<WebGraph> graph = ReadGraphText(&stream);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_pages(), 2u);
  EXPECT_TRUE(graph->HasLink(0, 1));
  EXPECT_TRUE(graph->IsStartPage(0));
}

TEST(GraphIoTest, RejectsMissingMagic) {
  std::stringstream stream("pages 2\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, RejectsWrongVersion) {
  std::stringstream stream("websra-graph 2\npages 2\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, RejectsContentBeforePages) {
  std::stringstream stream("websra-graph 1\nedge 0 1\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, RejectsOutOfRangeIds) {
  std::stringstream stream("websra-graph 1\npages 2\nedge 0 2\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
  std::stringstream stream2("websra-graph 1\npages 2\nstart 9\n");
  EXPECT_TRUE(ReadGraphText(&stream2).status().IsParseError());
}

TEST(GraphIoTest, RejectsDuplicateEdge) {
  std::stringstream stream(
      "websra-graph 1\npages 2\nedge 0 1\nedge 0 1\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, RejectsUnknownDirective) {
  std::stringstream stream("websra-graph 1\npages 2\nfrobnicate 1\n");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, RejectsEmptyStream) {
  std::stringstream stream("");
  EXPECT_TRUE(ReadGraphText(&stream).status().IsParseError());
}

TEST(GraphIoTest, FileRoundTrip) {
  WebGraph original = MakeFigure1Topology();
  const std::string path = ::testing::TempDir() + "/websra_graph_test.txt";
  ASSERT_TRUE(WriteGraphFile(original, path).ok());
  Result<WebGraph> loaded = ReadGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(original == *loaded);
}

TEST(GraphIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadGraphFile("/nonexistent/websra.graph").status().IsIoError());
}

TEST(GraphIoTest, DotExportContainsEdgesAndStartStyling) {
  WebGraph graph = MakeFigure1Topology();
  const std::string dot = GraphToDot(graph, "fig1");
  EXPECT_NE(dot.find("digraph fig1 {"), std::string::npos);
  EXPECT_NE(dot.find("p0 -> p1;"), std::string::npos);
  EXPECT_NE(dot.find("p0 [shape=box, style=filled];"), std::string::npos);
  EXPECT_NE(dot.find("p5 [shape=box, style=filled];"), std::string::npos);
}

}  // namespace
}  // namespace wum
