#include "wum/stream/pipeline.h"

#include <gtest/gtest.h>

#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/operators.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

// Terminal sink collecting records for operator tests.
class VectorSink : public RecordSink {
 public:
  Status Accept(const LogRecord& record) override {
    records.push_back(record);
    return Status::OK();
  }
  Status Finish() override {
    finished = true;
    return Status::OK();
  }
  std::vector<LogRecord> records;
  bool finished = false;
};

TEST(PipelineTest, EmptyPipelinePassesThrough) {
  VectorSink sink;
  Pipeline pipeline(&sink);
  ASSERT_TRUE(pipeline.Accept(PageRecord("ip", 1, 10)).ok());
  ASSERT_TRUE(pipeline.Finish().ok());
  EXPECT_EQ(sink.records.size(), 1u);
  EXPECT_TRUE(sink.finished);
  EXPECT_EQ(pipeline.records_in(), 1u);
}

TEST(PipelineTest, DoubleFinishRejected) {
  VectorSink sink;
  Pipeline pipeline(&sink);
  ASSERT_TRUE(pipeline.Finish().ok());
  EXPECT_TRUE(pipeline.Finish().IsFailedPrecondition());
}

TEST(PipelineTest, OperatorsChainInOrder) {
  VectorSink sink;
  Pipeline pipeline(&sink);
  // Filter drops status != 200, transform rewrites the IP.
  auto filter = std::make_unique<TransformOperator>(
      [](const LogRecord& record) -> std::optional<LogRecord> {
        if (record.status_code != 200) return std::nullopt;
        return record;
      });
  auto rename = std::make_unique<TransformOperator>(
      [](const LogRecord& record) -> std::optional<LogRecord> {
        LogRecord copy = record;
        copy.client_ip = "rewritten";
        return copy;
      });
  pipeline.Append(std::move(filter));
  pipeline.Append(std::move(rename));
  LogRecord bad = PageRecord("ip", 1, 10);
  bad.status_code = 404;
  ASSERT_TRUE(pipeline.Accept(bad).ok());
  ASSERT_TRUE(pipeline.Accept(PageRecord("ip", 2, 20)).ok());
  ASSERT_TRUE(pipeline.Finish().ok());
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].client_ip, "rewritten");
  EXPECT_TRUE(sink.finished);
}

TEST(FilterOperatorTest, CountsDrops) {
  VectorSink sink;
  FilterOperator op(std::make_unique<StatusFilter>());
  op.set_downstream(&sink);
  LogRecord ok_record = PageRecord("ip", 1, 10);
  LogRecord bad_record = PageRecord("ip", 2, 20);
  bad_record.status_code = 500;
  ASSERT_TRUE(op.Accept(ok_record).ok());
  ASSERT_TRUE(op.Accept(bad_record).ok());
  EXPECT_EQ(op.dropped(), 1u);
  EXPECT_EQ(sink.records.size(), 1u);
}

TEST(WatermarkOperatorTest, TracksMaxTimestamp) {
  VectorSink sink;
  WatermarkOperator op;
  op.set_downstream(&sink);
  ASSERT_TRUE(op.Accept(PageRecord("ip", 1, 50)).ok());
  ASSERT_TRUE(op.Accept(PageRecord("ip", 2, 30)).ok());
  EXPECT_EQ(op.count(), 2u);
  EXPECT_EQ(op.watermark(), 50);
  EXPECT_EQ(sink.records.size(), 2u);
}

TEST(OrderGuardOperatorTest, DropsTooLateRecords) {
  VectorSink sink;
  OrderGuardOperator op(/*max_lateness=*/10);
  op.set_downstream(&sink);
  ASSERT_TRUE(op.Accept(PageRecord("ip", 1, 100)).ok());
  ASSERT_TRUE(op.Accept(PageRecord("ip", 2, 95)).ok());   // within lateness
  ASSERT_TRUE(op.Accept(PageRecord("ip", 3, 50)).ok());   // too late: dropped
  EXPECT_EQ(op.late_dropped(), 1u);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[1].url, PageUrl(2));
}

TEST(SessionizeSinkTest, EmitsSessionsPerIp) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  // Two users interleaved.
  ASSERT_TRUE(sink.Accept(PageRecord("a", 0, 0)).ok());
  ASSERT_TRUE(sink.Accept(PageRecord("b", 5, 10)).ok());
  ASSERT_TRUE(sink.Accept(PageRecord("a", 1, 60)).ok());
  ASSERT_TRUE(sink.Accept(PageRecord("b", 3, 70)).ok());
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(sink.active_users(), 2u);
  ASSERT_EQ(sessions.entries().size(), 2u);
  for (const auto& entry : sessions.entries()) {
    if (entry.client_ip == "a") {
      EXPECT_EQ(entry.session.PageSequence(), (std::vector<PageId>{0, 1}));
    } else {
      EXPECT_EQ(entry.session.PageSequence(), (std::vector<PageId>{5, 3}));
    }
  }
  EXPECT_EQ(sink.sessions_emitted(), 2u);
}

TEST(SessionizeSinkTest, SkipsNonPageUrls) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  LogRecord favicon;
  favicon.client_ip = "a";
  favicon.url = "/favicon.ico";
  ASSERT_TRUE(sink.Accept(favicon).ok());
  EXPECT_EQ(sink.skipped_non_page_urls(), 1u);
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_TRUE(sessions.entries().empty());
}

TEST(SessionizeSinkTest, RejectsOutOfOrderPerUser) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  ASSERT_TRUE(sink.Accept(PageRecord("a", 0, 100)).ok());
  EXPECT_TRUE(sink.Accept(PageRecord("a", 1, 50)).IsInvalidArgument());
  // A different user at an older time is fine (ordering is per user).
  EXPECT_TRUE(sink.Accept(PageRecord("b", 1, 50)).ok());
}

TEST(SessionizeSinkTest, RejectsOutOfTopologyPages) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sessions;
  SessionizeSink sink(
      [&graph]() {
        return std::make_unique<IncrementalSmartSra>(&graph,
                                                     SmartSra::Options());
      },
      &sessions, graph.num_pages());
  EXPECT_TRUE(sink.Accept(PageRecord("a", 77, 0)).IsInvalidArgument());
}

TEST(CallbackSessionSinkTest, ForwardsToCallback) {
  int calls = 0;
  CallbackSessionSink sink([&calls](const std::string& ip, Session session) {
    ++calls;
    EXPECT_EQ(ip, "x");
    EXPECT_EQ(session.size(), 1u);
    return Status::OK();
  });
  ASSERT_TRUE(sink.Accept("x", MakeSession({1}, {0})).ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace wum
