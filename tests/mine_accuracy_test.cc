// Accuracy harness for the online miner (wum::mine): on simulated
// workloads, the streaming top-k must (a) satisfy the SpaceSaving error
// bound against an exact occurrence recount — estimate >= true and
// estimate - error <= true, with every path above the N/capacity
// frequency threshold retained — and (b) recover the batch AprioriAll
// top-10 (recall@10, reported on stdout for the experiment log).

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <vector>

#include "wum/common/random.h"
#include "wum/mine/options.h"
#include "wum/mine/path_miner.h"
#include "wum/mining/apriori_all.h"
#include "wum/mining/pattern.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"
#include "wum/topology/web_graph.h"

namespace wum::mine {
namespace {

std::vector<std::vector<PageId>> GroundTruthSessions(
    const Workload& workload) {
  std::vector<std::vector<PageId>> sessions;
  for (const AgentRun& run : workload.agents) {
    for (const Session& session : run.trace.real_sessions) {
      sessions.push_back(session.PageSequence());
    }
  }
  return sessions;
}

/// Exact occurrence counts of the topology-valid n-grams of `length`.
/// Returns the counts and (via `total`) the stream size N of the bound.
std::map<std::vector<PageId>, std::uint64_t> ExactCounts(
    const std::vector<std::vector<PageId>>& sessions, const WebGraph& graph,
    std::size_t length, std::uint64_t* total) {
  std::map<std::vector<PageId>, std::uint64_t> exact;
  *total = 0;
  for (const std::vector<PageId>& session : sessions) {
    for (std::size_t i = 0; i + length <= session.size(); ++i) {
      bool valid = true;
      for (std::size_t j = 1; j < length; ++j) {
        if (!graph.HasLink(session[i + j - 1], session[i + j])) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      ++exact[std::vector<PageId>(session.begin() + i,
                                  session.begin() + i + length)];
      ++*total;
    }
  }
  return exact;
}

/// Feeds every session through a small-capacity miner (evictions are
/// the point) and checks the SpaceSaving guarantee per length.
void CheckSpaceSavingBounds(const std::vector<std::vector<PageId>>& sessions,
                            const WebGraph& graph) {
  MinerOptions options;
  options.top_k = 10;
  options.capacity = 32;  // small on purpose: force evictions
  PathMiner miner(options, &graph, nullptr);
  for (const std::vector<PageId>& session : sessions) {
    miner.AddSession(session);
  }
  for (std::size_t length = options.min_length; length <= options.max_length;
       ++length) {
    std::uint64_t n = 0;
    const auto exact = ExactCounts(sessions, graph, length, &n);
    ASSERT_GT(n, 0u);
    const auto tracked = miner.TopK(options.capacity, length);
    EXPECT_LE(tracked.size(), options.capacity);
    std::set<std::vector<PageId>> tracked_paths;
    for (const PatternEstimate& entry : tracked) {
      tracked_paths.insert(entry.path);
      const std::uint64_t true_count =
          exact.contains(entry.path) ? exact.at(entry.path) : 0;
      EXPECT_GE(entry.count, true_count)
          << "undercount at length " << length;
      EXPECT_LE(entry.count - entry.error, true_count)
          << "error bound violated at length " << length;
    }
    for (const auto& [path, true_count] : exact) {
      if (true_count > n / options.capacity) {
        EXPECT_TRUE(tracked_paths.contains(path))
            << "frequent length-" << length << " path lost (true count "
            << true_count << " of " << n << ")";
      }
    }
  }
}

/// Online top-10 (ample capacity) vs the batch AprioriAll top-10.
double RecallAt10(const std::vector<std::vector<PageId>>& sessions,
                  const WebGraph& graph) {
  MinerOptions options;
  options.top_k = 10;
  PathMiner miner(options, &graph, nullptr);
  for (const std::vector<PageId>& session : sessions) {
    miner.AddSession(session);
  }

  AprioriOptions batch_options;
  batch_options.min_support = 2;
  batch_options.max_length = options.max_length;
  batch_options.mode = MatchMode::kContiguous;
  Result<std::vector<SequentialPattern>> mined =
      AprioriAllMiner(batch_options).Mine(sessions);
  EXPECT_TRUE(mined.ok());
  std::vector<SequentialPattern> batch;
  for (SequentialPattern& pattern : *mined) {
    if (pattern.pages.size() >= options.min_length) {
      batch.push_back(std::move(pattern));
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const SequentialPattern& a, const SequentialPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.pages < b.pages;
            });
  if (batch.size() > 10) batch.resize(10);
  EXPECT_FALSE(batch.empty());

  std::set<std::vector<PageId>> online;
  for (const PatternEstimate& entry : miner.TopK(10)) {
    online.insert(entry.path);
  }
  std::size_t matched = 0;
  for (const SequentialPattern& pattern : batch) {
    if (online.contains(pattern.pages)) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(batch.size());
}

void RunHarness(const char* name, const WebGraph& graph,
                const Workload& workload) {
  const std::vector<std::vector<PageId>> sessions =
      GroundTruthSessions(workload);
  ASSERT_GT(sessions.size(), 100u);
  CheckSpaceSavingBounds(sessions, graph);
  const double recall = RecallAt10(sessions, graph);
  // The online ranking counts occurrences while AprioriAll counts
  // supporting sessions, so the two top-10s can legitimately disagree
  // at the boundary; most of the batch answer must still be recovered.
  std::cout << "mine_accuracy[" << name << "]: sessions=" << sessions.size()
            << " recall@10=" << recall << "\n";
  EXPECT_GE(recall, 0.6) << name;
}

TEST(MineAccuracyTest, UniformSiteWorkload) {
  Rng site_rng(5);
  SiteGeneratorOptions site;
  site.num_pages = 60;
  site.mean_out_degree = 6.0;
  const WebGraph graph = *GenerateUniformSite(site, &site_rng);
  WorkloadOptions population;
  population.num_agents = 200;
  Rng rng(99);
  const Workload workload =
      *SimulateWorkload(graph, AgentProfile(), population, &rng);
  RunHarness("uniform-site", graph, workload);
}

TEST(MineAccuracyTest, Figure1Workload) {
  const WebGraph graph = MakeFigure1Topology();
  WorkloadOptions population;
  population.num_agents = 150;
  Rng rng(7);
  const Workload workload =
      *SimulateWorkload(graph, AgentProfile(), population, &rng);
  RunHarness("figure1", graph, workload);
}

}  // namespace
}  // namespace wum::mine
