#include <gtest/gtest.h>

#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/common/random.h"
#include "wum/obs/metrics.h"

namespace wum {
namespace {

LogRecord SampleRecord() {
  LogRecord record;
  record.client_ip = "10.1.2.3";
  record.timestamp = 1136214245;  // 02/Jan/2006:15:04:05 UTC
  record.method = HttpMethod::kGet;
  record.url = "/pages/p42.html";
  record.protocol = "HTTP/1.1";
  record.status_code = 200;
  record.bytes = 2326;
  return record;
}

TEST(ClfWriterTest, FormatsCanonicalLine) {
  EXPECT_EQ(FormatClfLine(SampleRecord()),
            "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
            "\"GET /pages/p42.html HTTP/1.1\" 200 2326");
}

TEST(ClfWriterTest, DashForMissingBytes) {
  LogRecord record = SampleRecord();
  record.bytes = -1;
  record.status_code = 304;
  EXPECT_EQ(FormatClfLine(record),
            "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
            "\"GET /pages/p42.html HTTP/1.1\" 304 -");
}

TEST(ClfWriterTest, StreamWriterCountsLines) {
  std::ostringstream oss;
  ClfWriter writer(&oss);
  writer.Write(SampleRecord());
  writer.Write(SampleRecord());
  EXPECT_EQ(writer.records_written(), 2u);
  const std::string output = oss.str();
  EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 2);
}

TEST(ClfParserTest, ParsesCanonicalLine) {
  Result<LogRecord> parsed = ParseClfLine(
      "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
      "\"GET /pages/p42.html HTTP/1.1\" 200 2326");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, SampleRecord());
}

TEST(ClfParserTest, ParsesApacheStyleIdentityFields) {
  // Real logs carry identd/user fields; they are tolerated and dropped.
  Result<LogRecord> parsed = ParseClfLine(
      "10.1.2.3 ident frank [02/Jan/2006:15:04:05 +0000] "
      "\"GET /pages/p42.html HTTP/1.1\" 200 2326");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->client_ip, "10.1.2.3");
  EXPECT_EQ(parsed->url, "/pages/p42.html");
}

TEST(ClfParserTest, ParsesDashBytes) {
  Result<LogRecord> parsed = ParseClfLine(
      "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
      "\"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->bytes, -1);
  EXPECT_EQ(parsed->status_code, 304);
  EXPECT_EQ(parsed->protocol, "HTTP/1.0");
}

TEST(ClfParserTest, ParsesPostAndHead) {
  Result<LogRecord> post = ParseClfLine(
      "1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] \"POST /f HTTP/1.1\" 200 10");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->method, HttpMethod::kPost);
  Result<LogRecord> head = ParseClfLine(
      "1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] \"HEAD /f HTTP/1.1\" 200 0");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->method, HttpMethod::kHead);
}

TEST(ClfParserTest, RejectsMalformedLines) {
  EXPECT_TRUE(ParseClfLine("").status().IsParseError());
  EXPECT_TRUE(ParseClfLine("onlyhost").status().IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - no-brackets \"GET /x HTTP/1.1\" 200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000 \"GET /x "
                           "HTTP/1.1\" 200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] GET /x "
                           "HTTP/1.1 200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x\" "
                           "200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"FROB /x "
                           "HTTP/1.1\" 200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/9.9\" 200 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 999 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 -5")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 1 extra")
                  .status()
                  .IsParseError());
}

TEST(ClfParserTest, ErrorsNameTheOffendingField) {
  // Each malformed line must blame the specific CLF field, not just say
  // "parse error" — operators triage bad logs from these messages.
  const struct {
    const char* line;
    const char* field;
  } kCases[] = {
      {"onlyhost", "host"},
      {"h - - no-brackets \"GET /x HTTP/1.1\" 200 1", "timestamp"},
      {"h - - [02/Jan/2006:15:04:05 +0000] GET-no-quotes 200 1", "request"},
      {"h - - [02/Jan/2006:15:04:05 +0000] \"FROB /x HTTP/1.1\" 200 1",
       "request"},
      {"h - - [02/Jan/2006:15:04:05 +0000] \"GET /x HTTP/1.1\" abc 1",
       "status"},
      {"h - - [02/Jan/2006:15:04:05 +0000] \"GET /x HTTP/1.1\" 200 oops",
       "bytes"},
  };
  for (const auto& test_case : kCases) {
    const Status status = ParseClfLine(test_case.line).status();
    ASSERT_TRUE(status.IsParseError()) << test_case.line;
    EXPECT_NE(status.message().find(std::string("field '") + test_case.field +
                                    "'"),
              std::string::npos)
        << test_case.line << " -> " << status.ToString();
  }
}

TEST(ClfStreamParserTest, SampleErrorsCarryLineNumberAndField) {
  std::stringstream stream;
  stream << FormatClfLine(SampleRecord()) << '\n'
         << "h - - [02/Jan/2006:15:04:05 +0000] \"GET /x HTTP/1.1\" abc 1\n";
  ClfParser parser;
  std::vector<LogRecord> records;
  ASSERT_TRUE(parser.ParseStream(&stream, &records).ok());
  ASSERT_EQ(parser.stats().sample_errors.size(), 1u);
  EXPECT_NE(parser.stats().sample_errors[0].find("line 2"),
            std::string::npos);
  EXPECT_NE(parser.stats().sample_errors[0].find("field 'status'"),
            std::string::npos);
}

TEST(ClfStreamParserTest, MetricsMirrorStats) {
  std::stringstream stream;
  stream << FormatClfLine(SampleRecord()) << '\n'
         << "garbage line\n"
         << FormatClfLine(SampleRecord()) << '\n';
  obs::MetricRegistry registry;
  ClfParser parser(&registry);
  std::vector<LogRecord> records;
  ASSERT_TRUE(parser.ParseStream(&stream, &records).ok());
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOrZero("clf.lines_seen"),
            parser.stats().lines_seen);
  EXPECT_EQ(snapshot.CounterOrZero("clf.records_parsed"),
            parser.stats().records_parsed);
  EXPECT_EQ(snapshot.CounterOrZero("clf.lines_rejected"),
            parser.stats().lines_rejected);
  EXPECT_EQ(snapshot.CounterOrZero("clf.records_parsed"), 2u);
  EXPECT_EQ(snapshot.CounterOrZero("clf.lines_rejected"), 1u);
}

TEST(ClfParserTest, WhitespaceTolerated) {
  Result<LogRecord> parsed = ParseClfLine(
      "  10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
      "\"GET /pages/p42.html HTTP/1.1\" 200 2326  \r");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, SampleRecord());
}

TEST(CombinedLogTest, FormatsReferrerAndAgent) {
  LogRecord record = SampleRecord();
  record.referrer = "http://www.site.example/pages/p7.html";
  record.user_agent = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
  EXPECT_EQ(FormatCombinedLogLine(record),
            "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
            "\"GET /pages/p42.html HTTP/1.1\" 200 2326 "
            "\"http://www.site.example/pages/p7.html\" "
            "\"Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)\"");
}

TEST(CombinedLogTest, EmptyExtrasRenderAsDash) {
  LogRecord record = SampleRecord();
  const std::string line = FormatCombinedLogLine(record);
  EXPECT_NE(line.find("2326 \"-\" \"-\""), std::string::npos);
}

TEST(CombinedLogTest, ParserRoundTripsCombinedLines) {
  LogRecord record = SampleRecord();
  record.referrer = "http://www.site.example/pages/p7.html";
  record.user_agent = "Opera/8.51 (Windows NT 5.1; U; en)";
  Result<LogRecord> back = ParseClfLine(FormatCombinedLogLine(record));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, record);
}

TEST(CombinedLogTest, DashFieldsParseAsEmpty) {
  Result<LogRecord> parsed = ParseClfLine(
      "10.1.2.3 - - [02/Jan/2006:15:04:05 +0000] "
      "\"GET /pages/p42.html HTTP/1.1\" 200 2326 \"-\" \"-\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->referrer.empty());
  EXPECT_TRUE(parsed->user_agent.empty());
}

TEST(CombinedLogTest, MalformedExtrasRejected) {
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 1 extra")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 1 \"unterminated")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 1 \"ref\" \"ua\" junk")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseClfLine("h - - [02/Jan/2006:15:04:05 +0000] \"GET /x "
                           "HTTP/1.1\" 200 1 \"ref-only\"")
                  .status()
                  .IsParseError());
}

TEST(ClfRoundTripTest, RandomRecordsSurvive) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    LogRecord record;
    record.client_ip = AgentIp(rng.NextBounded(100000));
    record.timestamp = rng.NextInRange(0, 4102444800LL);
    record.method = static_cast<HttpMethod>(rng.NextBounded(3));
    record.url = PageUrl(static_cast<std::uint32_t>(rng.NextBounded(100000)));
    record.protocol = rng.Bernoulli(0.5) ? "HTTP/1.0" : "HTTP/1.1";
    record.status_code = rng.Bernoulli(0.8) ? 200 : 404;
    record.bytes = rng.Bernoulli(0.1)
                       ? -1
                       : static_cast<std::int64_t>(rng.NextBounded(1 << 20));
    Result<LogRecord> back = ParseClfLine(FormatClfLine(record));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, record);
  }
}

TEST(ClfStreamParserTest, CountsGoodAndBadLines) {
  std::stringstream stream;
  stream << FormatClfLine(SampleRecord()) << '\n'
         << "garbage line\n"
         << '\n'  // blank: skipped, not an error
         << FormatClfLine(SampleRecord()) << '\n'
         << "another bad one\n";
  ClfParser parser;
  std::vector<LogRecord> records;
  ASSERT_TRUE(parser.ParseStream(&stream, &records).ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(parser.stats().lines_seen, 5u);
  EXPECT_EQ(parser.stats().records_parsed, 2u);
  EXPECT_EQ(parser.stats().lines_rejected, 2u);
  ASSERT_EQ(parser.stats().sample_errors.size(), 2u);
  EXPECT_NE(parser.stats().sample_errors[0].find("line 2"),
            std::string::npos);
}

TEST(ClfStreamParserTest, SampleErrorsCapped) {
  std::stringstream stream;
  for (int i = 0; i < 20; ++i) stream << "bad\n";
  ClfParser parser;
  std::vector<LogRecord> records;
  ASSERT_TRUE(parser.ParseStream(&stream, &records).ok());
  EXPECT_EQ(parser.stats().lines_rejected, 20u);
  EXPECT_EQ(parser.stats().sample_errors.size(), 8u);
}

}  // namespace
}  // namespace wum
