// Pipeline lag instrumentation under injected clocks: per-shard
// event-time watermarks (and the derived lag/skew gauges computed at
// scrape time), the ingest-to-emit latency histogram fed by batch
// accept stamps, the zero-cost guarantee that an uninstrumented engine
// never reads the clock, and watermark survival across checkpoint +
// resume.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "wum/obs/metrics.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

namespace fs = std::filesystem;

// Injected clocks. SetClockForTesting takes a plain function pointer,
// so the state lives in file-scope atomics. Every NowMicros() call
// advances the monotonic clock by 100us; the epoch clock is a settable
// constant "wall time".
std::atomic<std::uint64_t> g_micros{1'000'000};
std::atomic<std::uint64_t> g_micros_calls{0};
std::atomic<std::uint64_t> g_epoch_seconds{1'300'000'000};

double TestMicros() {
  g_micros_calls.fetch_add(1, std::memory_order_relaxed);
  return static_cast<double>(
      g_micros.fetch_add(100, std::memory_order_relaxed));
}

std::uint64_t TestEpochSeconds() {
  return g_epoch_seconds.load(std::memory_order_relaxed);
}

class StreamLatencyTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::internal::SetClockForTesting(&TestMicros);
    obs::internal::SetEpochClockForTesting(&TestEpochSeconds);
    g_epoch_seconds.store(1'300'000'000, std::memory_order_relaxed);
  }
  void TearDown() override {
    obs::internal::SetClockForTesting(nullptr);
    obs::internal::SetEpochClockForTesting(nullptr);
  }
};

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

std::uint64_t GaugeValue(const obs::MetricsSnapshot& snapshot,
                         const std::string& name) {
  const obs::MetricsSnapshot::GaugeValue* gauge = snapshot.FindGauge(name);
  return gauge != nullptr ? gauge->value : 0;
}

TEST_F(StreamLatencyTest, WatermarkGaugesTrackShardMaximaLagAndSkew) {
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  constexpr std::size_t kShards = 2;
  constexpr TimeSeconds kBase = 1'200'000'000;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(kShards)
          .use_smart_sra(&graph)
          .set_metrics(&registry),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  // Eight users, two rounds 5000s apart: each user's event-time maximum
  // is kBase + 5000 + u, so shard watermarks differ wherever the user
  // partition does.
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t u = 0; u < 8; ++u) {
      ASSERT_TRUE((*engine)
                      ->Offer(PageRecord("10.0.0." + std::to_string(u),
                                         u % 5,
                                         kBase + round * 5000 + u))
                      .ok());
    }
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // The accessors are ground truth; the probe-driven gauges must agree.
  std::uint64_t min_nonzero = 0;
  std::uint64_t max_watermark = 0;
  for (std::size_t k = 0; k < kShards; ++k) {
    const std::uint64_t watermark = (*engine)->ShardWatermarkSeconds(k);
    if (watermark != 0 && (min_nonzero == 0 || watermark < min_nonzero)) {
      min_nonzero = watermark;
    }
    if (watermark > max_watermark) max_watermark = watermark;
  }
  // The global maximum is the latest event ever offered.
  EXPECT_EQ(max_watermark, static_cast<std::uint64_t>(kBase + 5000 + 7));
  ASSERT_NE(min_nonzero, 0u);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (std::size_t k = 0; k < kShards; ++k) {
    EXPECT_EQ(GaugeValue(snapshot, "engine.shard" + std::to_string(k) +
                                       ".watermark_seconds"),
              (*engine)->ShardWatermarkSeconds(k));
    // Everything is drained after Finish.
    EXPECT_EQ(GaugeValue(snapshot, "engine.shard" + std::to_string(k) +
                                       ".queue_depth"),
              0u);
  }
  const std::uint64_t now = g_epoch_seconds.load();
  ASSERT_GT(now, max_watermark);  // replaying a historical log
  EXPECT_EQ(GaugeValue(snapshot, "engine.watermark_lag_seconds"),
            now - min_nonzero);
  EXPECT_EQ(GaugeValue(snapshot, "engine.watermark_skew_seconds"),
            max_watermark - min_nonzero);

  // A wall clock *behind* event time (clock skew, synthetic logs from
  // the future) clamps lag to zero instead of underflowing.
  g_epoch_seconds.store(kBase, std::memory_order_relaxed);
  const obs::MetricsSnapshot clamped = registry.Snapshot();
  EXPECT_EQ(GaugeValue(clamped, "engine.watermark_lag_seconds"), 0u);
  EXPECT_EQ(GaugeValue(clamped, "engine.watermark_skew_seconds"),
            max_watermark - min_nonzero);
}

TEST_F(StreamLatencyTest, WatermarkZeroBeforeFirstRecordKeepsLagUnset) {
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .use_smart_sra(&graph)
          .set_metrics(&registry),
      &sink);
  ASSERT_TRUE(engine.ok());
  // No records absorbed anywhere: per-shard watermarks are 0 and the
  // probe must not fabricate a lag against watermark 0 (which would be
  // ~55 years).
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(GaugeValue(snapshot, "engine.shard0.watermark_seconds"), 0u);
  EXPECT_EQ(GaugeValue(snapshot, "engine.watermark_lag_seconds"), 0u);
  EXPECT_EQ(GaugeValue(snapshot, "engine.watermark_skew_seconds"), 0u);
  ASSERT_TRUE((*engine)->Finish().ok());
}

TEST_F(StreamLatencyTest, IngestToEmitLatencyObservedForStreamingEmissions) {
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  constexpr TimeSeconds kBase = 1'200'000'000;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(1)
          .use_smart_sra(&graph)
          .set_metrics(&registry),
      &sink);
  ASSERT_TRUE(engine.ok());
  // One user walks Figure 1 twice, 5000s apart: the second walk's
  // arrival closes the first session *while streaming* (batch stamp
  // live), so at least one ingest-to-emit latency lands in the
  // histogram. The final session flushes at Finish with the stamp
  // zeroed — no stale-stamp pollution.
  constexpr PageId kWalk[] = {0, 1, 4, 3};
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*engine)
                      ->Offer(PageRecord("10.1.0.1", kWalk[i],
                                         kBase + round * 5000 + i * 30))
                      .ok());
    }
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  const std::uint64_t sessions = (*engine)->TotalStats().sessions_emitted;
  ASSERT_GE(sessions, 2u);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::MetricsSnapshot::HistogramValue* latency =
      snapshot.FindHistogram("engine.shard0.ingest_to_emit_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, 1u);
  // Only streaming emissions observe; Finish-flush sessions must not.
  EXPECT_LT(latency->count, sessions);
  // The injected clock advances 100us per read, so every latency is a
  // positive multiple of it: accept stamps really precede emission.
  EXPECT_GE(latency->min, 100.0);
  EXPECT_GE(latency->sum, latency->min * static_cast<double>(latency->count));
  // The mirror counter confirms the records the latencies cover.
  EXPECT_EQ(snapshot.CounterOrZero("engine.shard0.records_in"), 8u);
}

TEST_F(StreamLatencyTest, UninstrumentedEngineNeverReadsTheClock) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;
  constexpr TimeSeconds kBase = 1'200'000'000;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(2).use_smart_sra(&graph), &sink);
  ASSERT_TRUE(engine.ok());
  const std::uint64_t calls_before =
      g_micros_calls.load(std::memory_order_relaxed);
  for (std::uint32_t u = 0; u < 8; ++u) {
    ASSERT_TRUE(
        (*engine)
            ->Offer(PageRecord("10.2.0." + std::to_string(u), u % 5, kBase))
            .ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  // No registry, no tracer: the entire offer -> drain -> emit path must
  // run without a single clock read (the "disabled handles" contract
  // that makes telemetry free when switched off).
  EXPECT_EQ(g_micros_calls.load(std::memory_order_relaxed), calls_before);
}

TEST_F(StreamLatencyTest, WatermarkSurvivesCheckpointAndResume) {
  WebGraph graph = MakeFigure1Topology();
  const fs::path dir = fs::path(testing::TempDir()) / "latency_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  constexpr std::size_t kShards = 2;
  constexpr TimeSeconds kBase = 1'200'000'000;
  std::vector<std::uint64_t> saved(kShards, 0);
  {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions().set_num_shards(kShards).use_smart_sra(&graph),
        &sink);
    ASSERT_TRUE(engine.ok());
    for (std::uint32_t u = 0; u < 8; ++u) {
      ASSERT_TRUE((*engine)
                      ->Offer(PageRecord("10.3.0." + std::to_string(u),
                                         u % 5, kBase + u))
                      .ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(dir.string()).ok());
    for (std::size_t k = 0; k < kShards; ++k) {
      saved[k] = (*engine)->ShardWatermarkSeconds(k);
    }
    // Crash: the engine dies without Finish.
  }
  std::uint64_t saved_max = 0;
  for (const std::uint64_t watermark : saved) {
    if (watermark > saved_max) saved_max = watermark;
  }
  ASSERT_EQ(saved_max, static_cast<std::uint64_t>(kBase + 7));

  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> resumed = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(kShards)
          .use_smart_sra(&graph)
          .set_metrics(&registry)
          .resume_from(dir.string()),
      &sink);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ASSERT_TRUE((*resumed)->resumed());
  // The restored watermarks are the checkpointed ones — lag after a
  // restart reflects real event-time progress, not a reset to zero —
  // and the scrape probe sees them before any new record arrives.
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (std::size_t k = 0; k < kShards; ++k) {
    EXPECT_EQ((*resumed)->ShardWatermarkSeconds(k), saved[k]) << "shard " << k;
    EXPECT_EQ(GaugeValue(snapshot, "engine.shard" + std::to_string(k) +
                                       ".watermark_seconds"),
              saved[k]);
  }
  ASSERT_TRUE((*resumed)->Finish().ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wum
