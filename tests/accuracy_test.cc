#include "wum/eval/accuracy.h"

#include <gtest/gtest.h>

#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

TEST(CaptureRelationTest, Names) {
  EXPECT_EQ(CaptureRelationToString(CaptureRelation::kSubstring),
            "substring");
  EXPECT_EQ(CaptureRelationToString(CaptureRelation::kSubsequence),
            "subsequence");
}

TEST(IsCapturedTest, SubstringVsSubsequence) {
  std::vector<std::vector<PageId>> reconstructed = {{1, 9, 3, 5, 8}};
  EXPECT_FALSE(IsCaptured({1, 3, 5}, reconstructed,
                          CaptureRelation::kSubstring));
  EXPECT_TRUE(IsCaptured({1, 3, 5}, reconstructed,
                         CaptureRelation::kSubsequence));
}

TEST(IsCapturedTest, AnyReconstructionSuffices) {
  std::vector<std::vector<PageId>> reconstructed = {{7, 8}, {1, 3, 5}};
  EXPECT_TRUE(
      IsCaptured({1, 3, 5}, reconstructed, CaptureRelation::kSubstring));
  EXPECT_FALSE(IsCaptured({1, 3, 5}, {}, CaptureRelation::kSubstring));
}

// Hand-built workload: one agent, known ground truth and log.
Workload HandWorkload() {
  Workload workload;
  AgentRun run;
  run.agent_id = 0;
  run.client_ip = "10.0.0.1";
  // Real sessions: [P1, P13, P34] and [P1, P20] (the paper's behaviour-3
  // example); log misses the cache-served revisit of P1.
  run.trace.real_sessions.push_back(
      MakeSession({0, 1, 4}, {0, 120, 240}));
  run.trace.real_sessions.push_back(MakeSession({0, 2}, {360, 480}));
  run.trace.server_requests =
      MakeSession({0, 1, 4, 2}, {0, 120, 240, 480}).requests;
  workload.agents.push_back(std::move(run));
  return workload;
}

TEST(AccuracyEvaluatorTest, SmartSraCapturesBothPaperExampleSessions) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = HandWorkload();
  SmartSra heuristic(&graph);
  AccuracyEvaluator evaluator(&graph, TimeThresholds());
  Result<AccuracyResult> result = evaluator.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->real_sessions, 2u);
  EXPECT_EQ(result->captured_sessions, 2u);
  EXPECT_DOUBLE_EQ(result->accuracy(), 1.0);
  // Smart-SRA output is valid by construction.
  EXPECT_EQ(result->valid_reconstructed_sessions,
            result->reconstructed_sessions);
}

TEST(AccuracyEvaluatorTest, PageStayGiantSessionIsIneligible) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = HandWorkload();
  PageStaySessionizer heuristic;  // one big session: [P1, P13, P34, P20]
  AccuracyEvaluator evaluator(&graph, TimeThresholds());
  Result<AccuracyResult> result = evaluator.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->real_sessions, 2u);
  // [P1, P13, P34, P20] breaks the topology rule at P34 -> P20, so it
  // cannot capture anything under the paper's §5.1 requirement.
  EXPECT_EQ(result->valid_reconstructed_sessions, 0u);
  EXPECT_EQ(result->captured_sessions, 0u);
  EXPECT_DOUBLE_EQ(result->accuracy(), 0.0);
}

TEST(AccuracyEvaluatorTest, DisablingValidityFilterRestoresSubstringOnly) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = HandWorkload();
  PageStaySessionizer heuristic;
  AccuracyOptions options;
  options.require_valid_sessions = false;
  AccuracyEvaluator evaluator(&graph, TimeThresholds(), options);
  Result<AccuracyResult> result = evaluator.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  // [P1, P13, P34] is a substring of the giant session; [P1, P20] is
  // interrupted by P34.
  EXPECT_EQ(result->captured_sessions, 1u);
  EXPECT_DOUBLE_EQ(result->accuracy(), 0.5);
}

TEST(AccuracyEvaluatorTest, SubsequenceRelationIsMoreLenient) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = HandWorkload();
  PageStaySessionizer heuristic;
  AccuracyOptions options;
  options.definition = AccuracyDefinition::kRealSessionsCaptured;
  options.relation = CaptureRelation::kSubsequence;
  options.require_valid_sessions = false;
  AccuracyEvaluator lenient(&graph, TimeThresholds(), options);
  Result<AccuracyResult> result = lenient.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  // Both real sessions are subsequences of the single giant session.
  EXPECT_DOUBLE_EQ(result->accuracy(), 1.0);
  EXPECT_EQ(result->captured_sessions, 2u);
  // Under the paper's definition the same reconstruction counts once.
  EXPECT_EQ(result->correct_reconstructions, 1u);
}

TEST(AccuracyEvaluatorTest, DefinitionsDifferOnMergedReconstructions) {
  // One giant (but, here, link-valid) session capturing two real
  // sessions: recall-style accuracy is 2/2, the paper's
  // correct-reconstruction ratio is 1/2.
  WebGraph graph = MakeFigure1Topology();
  Workload workload;
  AgentRun run;
  run.agent_id = 0;
  run.client_ip = "10.0.0.1";
  run.trace.real_sessions.push_back(MakeSession({0, 1}, {0, 60}));
  run.trace.real_sessions.push_back(MakeSession({4, 3}, {120, 180}));
  // Log happens to be one link-consistent path P1->P13->P34->P23.
  run.trace.server_requests =
      MakeSession({0, 1, 4, 3}, {0, 60, 120, 180}).requests;
  workload.agents.push_back(std::move(run));

  PageStaySessionizer heuristic;  // one session: the whole path
  AccuracyEvaluator paper_metric(&graph, TimeThresholds());
  Result<AccuracyResult> result = paper_metric.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->real_sessions, 2u);
  EXPECT_EQ(result->captured_sessions, 2u);
  EXPECT_EQ(result->correct_reconstructions, 1u);
  EXPECT_DOUBLE_EQ(result->accuracy(), 0.5);       // paper definition
  EXPECT_DOUBLE_EQ(result->capture_rate(), 1.0);   // recall-style
}

TEST(AccuracyEvaluatorTest, LengthStatisticsTracked) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload = HandWorkload();
  PageStaySessionizer heuristic;
  AccuracyEvaluator evaluator(&graph, TimeThresholds());
  Result<AccuracyResult> result = evaluator.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reconstructed_sessions, 1u);
  EXPECT_DOUBLE_EQ(result->reconstructed_length.mean(), 4.0);
  EXPECT_EQ(result->real_length.count(), 2u);
  EXPECT_DOUBLE_EQ(result->real_length.mean(), 2.5);
}

TEST(AccuracyEvaluatorTest, EmptyWorkload) {
  WebGraph graph = MakeFigure1Topology();
  Workload workload;
  SmartSra heuristic(&graph);
  AccuracyEvaluator evaluator(&graph, TimeThresholds());
  Result<AccuracyResult> result = evaluator.Evaluate(workload, heuristic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->real_sessions, 0u);
  EXPECT_DOUBLE_EQ(result->accuracy(), 0.0);
}

TEST(AccuracyDefinitionTest, Names) {
  EXPECT_EQ(
      AccuracyDefinitionToString(AccuracyDefinition::kCorrectReconstructions),
      "correct-reconstructions");
  EXPECT_EQ(
      AccuracyDefinitionToString(AccuracyDefinition::kRealSessionsCaptured),
      "real-sessions-captured");
}

TEST(BuildIpReferredStreamsTest, AttachesReferrersAndSorts) {
  Workload workload;
  AgentRun run;
  run.agent_id = 0;
  run.client_ip = "ip";
  run.trace.server_requests = MakeSession({3, 5}, {100, 200}).requests;
  run.trace.server_referrers = {kInvalidPage, 3};
  workload.agents.push_back(std::move(run));
  auto streams = BuildIpReferredStreams(workload);
  ASSERT_EQ(streams.size(), 1u);
  const auto& stream = streams["ip"];
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].page, 3u);
  EXPECT_EQ(stream[0].referrer, kInvalidPage);
  EXPECT_EQ(stream[1].page, 5u);
  EXPECT_EQ(stream[1].referrer, 3u);
}

TEST(BuildIpStreamsTest, IdentityModeSeparatesUserAgents) {
  Workload workload;
  for (int i = 0; i < 2; ++i) {
    AgentRun run;
    run.agent_id = static_cast<std::uint64_t>(i);
    run.client_ip = "proxy";
    run.user_agent = i == 0 ? "MSIE" : "Firefox";
    run.trace.server_requests = MakeSession({1}, {i * 10}).requests;
    workload.agents.push_back(std::move(run));
  }
  EXPECT_EQ(BuildIpStreams(workload, UserIdentity::kClientIp).size(), 1u);
  EXPECT_EQ(
      BuildIpStreams(workload, UserIdentity::kClientIpAndUserAgent).size(),
      2u);
}

TEST(BuildIpStreamsTest, MergesProxySharedAgentsSorted) {
  Workload workload;
  AgentRun a;
  a.agent_id = 0;
  a.client_ip = "proxy";
  a.trace.server_requests = MakeSession({1, 2}, {100, 300}).requests;
  AgentRun b;
  b.agent_id = 1;
  b.client_ip = "proxy";
  b.trace.server_requests = MakeSession({3}, {200}).requests;
  workload.agents.push_back(std::move(a));
  workload.agents.push_back(std::move(b));
  auto streams = BuildIpStreams(workload);
  ASSERT_EQ(streams.size(), 1u);
  const auto& merged = streams["proxy"];
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].page, 1u);
  EXPECT_EQ(merged[1].page, 3u);  // interleaved by timestamp
  EXPECT_EQ(merged[2].page, 2u);
}

TEST(AccuracyEvaluatorTest, ProxySharingDegradesAccuracy) {
  // Two agents interleaved behind one IP: their pages interrupt each
  // other, so substring capture fails where separate IPs would succeed.
  WebGraph graph = MakeFigure1Topology();
  auto make_agent = [](std::uint64_t id, const std::string& ip,
                       TimeSeconds offset) {
    AgentRun run;
    run.agent_id = id;
    run.client_ip = ip;
    run.trace.real_sessions.push_back(
        MakeSession({0, 1, 4}, {offset, offset + 120, offset + 240}));
    run.trace.server_requests =
        MakeSession({0, 1, 4}, {offset, offset + 120, offset + 240}).requests;
    return run;
  };
  PageStaySessionizer heuristic;
  AccuracyEvaluator evaluator(&graph, TimeThresholds());

  Workload separate;
  separate.agents.push_back(make_agent(0, "ip-a", 0));
  separate.agents.push_back(make_agent(1, "ip-b", 60));
  Result<AccuracyResult> separate_result =
      evaluator.Evaluate(separate, heuristic);
  ASSERT_TRUE(separate_result.ok());
  EXPECT_DOUBLE_EQ(separate_result->accuracy(), 1.0);

  Workload shared;
  shared.agents.push_back(make_agent(0, "proxy", 0));
  shared.agents.push_back(make_agent(1, "proxy", 60));  // interleaves
  Result<AccuracyResult> shared_result =
      evaluator.Evaluate(shared, heuristic);
  ASSERT_TRUE(shared_result.ok());
  EXPECT_LT(shared_result->accuracy(), 1.0);
}

}  // namespace
}  // namespace wum
