#include "wum/session/session_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace wum {
namespace {

std::vector<UserSession> SampleSessions() {
  return {
      UserSession{"10.0.0.1", MakeSession({1, 2, 3}, {10, 20, 30})},
      UserSession{"10.0.0.2", MakeSession({7}, {100})},
      UserSession{"10.0.0.1", MakeSession({}, {})},  // empty session
  };
}

TEST(SessionIoTest, RoundTrip) {
  std::stringstream stream;
  WriteSessionsText(SampleSessions(), &stream);
  Result<std::vector<UserSession>> loaded = ReadSessionsText(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, SampleSessions());
}

TEST(SessionIoTest, TextFormatIsAsDocumented) {
  std::stringstream stream;
  WriteSessionsText({SampleSessions()[0]}, &stream);
  EXPECT_EQ(stream.str(), "websra-sessions 1\n10.0.0.1\t1:10\t2:20\t3:30\n");
}

TEST(SessionIoTest, UserKeysWithSpacesSurvive) {
  std::vector<UserSession> sessions = {
      UserSession{std::string("1.2.3.4") + '\x1f' + "Mozilla/4.0 (X11)",
                  MakeSession({5}, {7})}};
  std::stringstream stream;
  WriteSessionsText(sessions, &stream);
  Result<std::vector<UserSession>> loaded = ReadSessionsText(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, sessions);
}

TEST(SessionIoTest, CommentsAndBlanksIgnored) {
  std::stringstream stream(
      "# header comment\n"
      "websra-sessions 1\n"
      "\n"
      "# inline\n"
      "user\t3:5\n");
  Result<std::vector<UserSession>> loaded = ReadSessionsText(&stream);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].user_key, "user");
}

TEST(SessionIoTest, NegativeTimestampsAllowed) {
  std::stringstream stream("websra-sessions 1\nuser\t3:-5\n");
  Result<std::vector<UserSession>> loaded = ReadSessionsText(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].session.requests[0].timestamp, -5);
}

TEST(SessionIoTest, RejectsMalformedInput) {
  {
    std::stringstream stream("bogus header\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("websra-sessions 2\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("websra-sessions 1\n\tmissing-key:1\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("websra-sessions 1\nuser\tnot-a-request\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("websra-sessions 1\nuser\t1:2:3\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("websra-sessions 1\nuser\t4294967295:0\n");
    EXPECT_TRUE(ReadSessionsText(&stream).status().IsParseError());
  }
}

TEST(SessionIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/websra_sessions_test.txt";
  ASSERT_TRUE(WriteSessionsFile(SampleSessions(), path).ok());
  Result<std::vector<UserSession>> loaded = ReadSessionsFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, SampleSessions());
}

TEST(SessionIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(
      ReadSessionsFile("/nonexistent/x.sessions").status().IsIoError());
}

TEST(SessionIoTest, BinaryRoundTrip) {
  std::stringstream stream;
  ASSERT_TRUE(WriteSessionsBinary(SampleSessions(), &stream).ok());
  Result<std::vector<UserSession>> loaded = ReadSessionsBinary(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, SampleSessions());
}

TEST(SessionIoTest, BinaryStartsWithReadableHeaderLine) {
  std::stringstream stream;
  ASSERT_TRUE(WriteSessionsBinary({}, &stream).ok());
  std::string first_line;
  ASSERT_TRUE(std::getline(stream, first_line).good() || stream.eof());
  EXPECT_EQ(first_line, SessionsBinaryHeaderLine());
  EXPECT_EQ(first_line, "websra-sessions-bin 1");
}

TEST(SessionIoTest, BinaryFileRoundTripAutoDetects) {
  const std::string path = ::testing::TempDir() + "/websra_sessions_test.bin";
  ASSERT_TRUE(
      WriteSessionsFile(SampleSessions(), path, SessionFormat::kBinary).ok());
  // ReadSessionsFile sniffs the header line; no format hint needed.
  Result<std::vector<UserSession>> loaded = ReadSessionsFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, SampleSessions());
}

TEST(SessionIoTest, BinaryAppendBuildsAJournal) {
  // The journal pattern used by websra_sessionize checkpointing: header
  // once, then AppendSessionBinary per session, possibly across stream
  // reopens.
  std::stringstream stream;
  stream << SessionsBinaryHeaderLine() << '\n';
  for (const UserSession& entry : SampleSessions()) {
    ASSERT_TRUE(AppendSessionBinary(entry, &stream).ok());
  }
  Result<std::vector<UserSession>> loaded = ReadSessionsBinary(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, SampleSessions());
}

TEST(SessionIoTest, BinaryAppendRejectsEmptyUserKey) {
  std::stringstream stream;
  EXPECT_TRUE(AppendSessionBinary(UserSession{"", MakeSession({1}, {2})},
                                  &stream)
                  .IsInvalidArgument());
}

TEST(SessionIoTest, BinaryRejectsCorruption) {
  std::stringstream clean;
  ASSERT_TRUE(WriteSessionsBinary(SampleSessions(), &clean).ok());
  const std::string bytes = clean.str();
  {
    // Truncation mid-frame.
    std::stringstream stream(bytes.substr(0, bytes.size() - 3));
    EXPECT_TRUE(ReadSessionsBinary(&stream).status().IsParseError());
  }
  {
    // A flipped payload bit fails the frame checksum.
    std::string corrupt = bytes;
    corrupt[corrupt.size() - 2] =
        static_cast<char>(corrupt[corrupt.size() - 2] ^ 0x04);
    std::stringstream stream(corrupt);
    EXPECT_TRUE(ReadSessionsBinary(&stream).status().IsParseError());
  }
  {
    // Unsupported future version.
    std::stringstream stream("websra-sessions-bin 2\n");
    EXPECT_TRUE(ReadSessionsBinary(&stream).status().IsParseError());
  }
  {
    std::stringstream stream("");
    EXPECT_TRUE(ReadSessionsBinary(&stream).status().IsParseError());
  }
}

TEST(SessionIoTest, WrongBinaryVersionFailsPreciselyThroughAutoDetect) {
  // The auto-detecting file reader routes "websra-sessions-bin"-prefixed
  // files to the binary parser, so a future version yields its precise
  // version error rather than a text-parse error.
  const std::string path =
      ::testing::TempDir() + "/websra_sessions_future.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "websra-sessions-bin 2\n";
  }
  Status status = ReadSessionsFile(path).status();
  EXPECT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("websra-sessions-bin"), std::string::npos);
}

}  // namespace
}  // namespace wum
