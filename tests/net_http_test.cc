// The observability HTTP surface: request parsing and response
// rendering units, the standalone MetricsHttpServer over a real socket,
// and the LogServer's in-poll-loop scrape port — including the hostile
// cases (partial request completing later, oversized head answered 413,
// slow loris reaped 408 by the timer wheel) and the /healthz 503 paths
// (dead-letter saturation, stale checkpoint).

#include "wum/net/http.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "wum/clf/clf_writer.h"
#include "wum/net/server.h"
#include "wum/net/socket.h"
#include "wum/obs/exposition.h"
#include "wum/obs/metrics.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum::net {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// ParseHttpRequest units.

TEST(ParseHttpRequestTest, FullRequestParses) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest(
                "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n", &request),
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
}

TEST(ParseHttpRequestTest, BareLfRequestParses) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET /healthz HTTP/1.0\n\n", &request),
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.target, "/healthz");
}

TEST(ParseHttpRequestTest, PartialRequestNeedsMore) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("", &request), HttpParseOutcome::kNeedMore);
  EXPECT_EQ(ParseHttpRequest("GET /met", &request),
            HttpParseOutcome::kNeedMore);
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n", &request),
            HttpParseOutcome::kNeedMore);
}

TEST(ParseHttpRequestTest, OversizedHeadRejected) {
  HttpRequest request;
  // No terminator and already over the cap.
  EXPECT_EQ(ParseHttpRequest(std::string(kMaxHttpRequestBytes + 1, 'A'),
                             &request),
            HttpParseOutcome::kTooLarge);
  // Terminated, but the head itself exceeds the cap.
  std::string padded = "GET / HTTP/1.1\r\nX-Pad: " +
                       std::string(kMaxHttpRequestBytes, 'A') + "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(padded, &request), HttpParseOutcome::kTooLarge);
}

TEST(ParseHttpRequestTest, MalformedRequestLinesRejected) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("NOSPACES\r\n\r\n", &request),
            HttpParseOutcome::kBad);
  EXPECT_EQ(ParseHttpRequest(" GET / HTTP/1.1\r\n\r\n", &request),
            HttpParseOutcome::kBad);
  EXPECT_EQ(ParseHttpRequest("GET  HTTP/1.1\r\n\r\n", &request),
            HttpParseOutcome::kBad);
  EXPECT_EQ(ParseHttpRequest("GET / FTP/1.1\r\n\r\n", &request),
            HttpParseOutcome::kBad);
}

TEST(RenderHttpResponseTest, RendersStatusLengthAndClose) {
  const std::string response =
      RenderHttpResponse(200, "text/plain", "hello\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 6), "hello\n");
  EXPECT_EQ(RenderHttpResponse(503, "text/plain", "").rfind(
                "HTTP/1.1 503 Service Unavailable\r\n", 0),
            0u);
}

// ---------------------------------------------------------------------
// Socket helpers.

std::string ReadToEof(const Fd& socket) {
  std::string out;
  char buffer[4096];
  while (true) {
    Result<ReadResult> read = ReadSome(socket, buffer, sizeof(buffer));
    if (!read.ok()) break;
    out.append(buffer, read->bytes);
    if (read->eof) break;
  }
  return out;
}

/// Raw request against an HTTP port; returns the full response bytes.
std::string RawRequest(std::uint16_t port, const std::string& bytes) {
  Result<Fd> socket = ConnectTcp("127.0.0.1", port);
  if (!socket.ok()) return "";
  if (!WriteAll(*socket, bytes).ok()) return "";
  return ReadToEof(*socket);
}

// ---------------------------------------------------------------------
// MetricsHttpServer (the standalone scrape endpoint).

TEST(MetricsHttpServerTest, ServesMetricsHealthzStatuszAndNotFound) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  obs::MetricRegistry registry;
  registry.GetCounter("test.requests").Increment(5);
  Result<std::unique_ptr<MetricsHttpServer>> server =
      MetricsHttpServer::Start("127.0.0.1", 0, &registry);
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_NE((*server)->port(), 0);

  Result<HttpResponse> metrics =
      HttpFetch("127.0.0.1", (*server)->port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().message();
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("wum_test_requests 5\n"), std::string::npos)
      << metrics->body;
  EXPECT_TRUE(obs::LintExposition(metrics->body).ok());

  Result<HttpResponse> healthz =
      HttpFetch("127.0.0.1", (*server)->port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  Result<HttpResponse> statusz =
      HttpFetch("127.0.0.1", (*server)->port(), "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status_code, 200);
  EXPECT_EQ(statusz->body.front(), '{') << statusz->body;

  Result<HttpResponse> missing =
      HttpFetch("127.0.0.1", (*server)->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);

  // HttpGet insists on 200: a 404 is an error, a 200 is the body.
  EXPECT_FALSE(HttpGet("127.0.0.1", (*server)->port(), "/nope").ok());
  Result<std::string> body =
      HttpGet("127.0.0.1", (*server)->port(), "/healthz");
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, "ok\n");
}

TEST(MetricsHttpServerTest, NonGetAndMalformedAnswered400) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  obs::MetricRegistry registry;
  Result<std::unique_ptr<MetricsHttpServer>> server =
      MetricsHttpServer::Start("127.0.0.1", 0, &registry);
  ASSERT_TRUE(server.ok());
  EXPECT_NE(RawRequest((*server)->port(), "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(RawRequest((*server)->port(), "NOSPACES\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(MetricsHttpServerTest, NullRegistryRefused) {
  EXPECT_TRUE(MetricsHttpServer::Start("127.0.0.1", 0, nullptr)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------
// LogServer HTTP port.

Result<std::string> ReadLine(const Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const ReadResult read, ReadSome(socket, &byte, 1));
    if (read.eof) {
      return Status::IoError("connection closed mid-line: " + line);
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
  }
}

Result<std::string> AdminCommand(std::uint16_t admin_port,
                                 const std::string& command) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", admin_port));
  WUM_RETURN_NOT_OK(WriteAll(socket, command + "\n"));
  return ReadLine(socket);
}

/// Engine + server + serve thread; `registry` may be null (then the
/// server runs with metrics disabled, the /metrics 503 path).
struct Harness {
  explicit Harness(obs::MetricRegistry* registry) : registry_(registry) {}

  Status Start(EngineOptions engine_options, SessionSink* sink,
               DeadLetterQueue* dead_letters, ServerOptions server_options) {
    WUM_ASSIGN_OR_RETURN(engine,
                         StreamEngine::Create(std::move(engine_options), sink));
    server_options.metrics = registry_;
    if (!server_options.http_port.has_value()) server_options.http_port = 0;
    WUM_ASSIGN_OR_RETURN(server,
                         LogServer::Start(std::move(server_options),
                                          engine.get(), dead_letters));
    thread = std::thread([this] { serve_status = server->Serve(); });
    return Status::OK();
  }

  Status Quiesce() {
    WUM_ASSIGN_OR_RETURN(const std::string reply,
                         AdminCommand(server->admin_port(), "QUIESCE"));
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("quiesce replied: " + reply);
    }
    return Status::OK();
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }

  ~Harness() {
    if (thread.joinable() && server != nullptr) server->RequestStop();
    Join();
  }

  obs::MetricRegistry* registry_;
  std::unique_ptr<StreamEngine> engine;
  std::unique_ptr<LogServer> server;
  std::thread thread;
  Status serve_status;
};

TEST(LogServerHttpTest, ServesAllThreeEndpointsFromThePollLoop) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions()
                             .set_num_shards(2)
                             .use_smart_sra(&graph)
                             .set_metrics(&registry),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  const std::uint16_t http = harness.server->http_port();
  ASSERT_NE(http, 0);

  Result<HttpResponse> metrics = HttpFetch("127.0.0.1", http, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().message();
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_TRUE(obs::LintExposition(metrics->body).ok());
  EXPECT_NE(metrics->body.find("wum_engine_shard0_records_in"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("wum_net_http_requests"), std::string::npos);

  Result<HttpResponse> healthz = HttpFetch("127.0.0.1", http, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  Result<HttpResponse> statusz = HttpFetch("127.0.0.1", http, "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status_code, 200);
  EXPECT_EQ(statusz->body.rfind("{\"healthy\":true,", 0), 0u)
      << statusz->body;
  EXPECT_NE(statusz->body.find("\"shards\":[{\"index\":0,"),
            std::string::npos);

  Result<HttpResponse> missing = HttpFetch("127.0.0.1", http, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);

  // STATS JSON over the admin port is byte-identical to the /statusz
  // body (one line, fixed key order).
  Result<std::string> stats_json =
      AdminCommand(harness.server->admin_port(), "STATS JSON");
  ASSERT_TRUE(stats_json.ok());
  std::string statusz_body = statusz->body;
  while (!statusz_body.empty() && statusz_body.back() == '\n') {
    statusz_body.pop_back();
  }
  // Uptime/age counters advance between the two fetches; compare only
  // the schema prefix before the first time-dependent field.
  const std::size_t uptime = statusz_body.find("\"uptime_ms\":");
  ASSERT_NE(uptime, std::string::npos);
  EXPECT_EQ(stats_json->substr(0, uptime), statusz_body.substr(0, uptime));

  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_GE(harness.server->stats().connections_accepted, 4u);
}

TEST(LogServerHttpTest, MetricsDisabledAnswers503) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(nullptr);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  Result<HttpResponse> metrics =
      HttpFetch("127.0.0.1", harness.server->http_port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status_code, 503);
  EXPECT_EQ(metrics->body, "metrics disabled\n");
  // /healthz and /statusz still work without a registry.
  Result<HttpResponse> healthz =
      HttpFetch("127.0.0.1", harness.server->http_port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(LogServerHttpTest, PartialRequestCompletesAcrossReads) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  Result<Fd> socket =
      ConnectTcp("127.0.0.1", harness.server->http_port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(WriteAll(*socket, "GET /hea").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(WriteAll(*socket, "lthz HTTP/1.1\r\n\r\n").ok());
  const std::string response = ReadToEof(*socket);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("ok\n"), std::string::npos) << response;
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(LogServerHttpTest, OversizedHeadAnswered413) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  const std::string response =
      RawRequest(harness.server->http_port(),
                 std::string(kMaxHttpRequestBytes + 64, 'A'));
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(LogServerHttpTest, SlowLorisReaped408ByTimerWheel) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.http_read_timeout_ms = 150;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  Result<Fd> socket =
      ConnectTcp("127.0.0.1", harness.server->http_port());
  ASSERT_TRUE(socket.ok());
  // Start a request, then go silent: the wheel must cut us off.
  ASSERT_TRUE(WriteAll(*socket, "GET /metr").ok());
  const std::string response = ReadToEof(*socket);
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
  EXPECT_EQ(harness.server->stats().connections_expired, 1u);
}

TEST(LogServerHttpTest, HealthzDegradesOnDeadLetterSaturation) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters(/*capacity=*/1);
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  // Two malformed lines against a capacity-1 queue: the second one is
  // overflow-dropped, which /healthz must report as saturation.
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(WriteAll(*socket, "garbage one\ngarbage two\n").ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (dead_letters.overflow_dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(dead_letters.overflow_dropped(), 0u);
  Result<HttpResponse> healthz =
      HttpFetch("127.0.0.1", harness.server->http_port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 503);
  EXPECT_NE(healthz->body.find("dead-letter queue saturated"),
            std::string::npos)
      << healthz->body;
  // /statusz mirrors the verdict.
  Result<HttpResponse> statusz =
      HttpFetch("127.0.0.1", harness.server->http_port(), "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->body.rfind("{\"healthy\":false,", 0), 0u)
      << statusz->body;
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(LogServerHttpTest, HealthzDegradesOnStaleCheckpoint) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const fs::path dir = fs::path(testing::TempDir()) / "http_stale_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  ServerOptions options;
  options.ingest.checkpoint_dir = dir.string();
  options.ingest.checkpoint_every_records = 1000000;  // admin-driven only
  options.healthz_max_checkpoint_age_ms = 1;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, std::move(options))
                  .ok());
  // A daemon that never checkpoints ages out against its own start.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Result<HttpResponse> healthz =
      HttpFetch("127.0.0.1", harness.server->http_port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 503);
  EXPECT_NE(healthz->body.find("checkpoint stale"), std::string::npos)
      << healthz->body;
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wum::net
