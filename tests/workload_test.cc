#include "wum/simulator/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions options;
  options.num_agents = 40;
  return options;
}

TEST(WorkloadOptionsTest, Validation) {
  EXPECT_TRUE(ValidateWorkloadOptions(WorkloadOptions()).ok());
  WorkloadOptions options;
  options.num_agents = 0;
  EXPECT_TRUE(ValidateWorkloadOptions(options).IsInvalidArgument());
  options = WorkloadOptions();
  options.start_window = 0;
  EXPECT_TRUE(ValidateWorkloadOptions(options).IsInvalidArgument());
  options = WorkloadOptions();
  options.agents_per_proxy = 0;
  EXPECT_TRUE(ValidateWorkloadOptions(options).IsInvalidArgument());
}

TEST(WorkloadTest, SimulatesRequestedPopulation) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng(1);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->agents.size(), 40u);
  EXPECT_GT(workload->TotalRealSessions(), 40u / 2);
  EXPECT_GT(workload->TotalServerRequests(), 0u);
  for (std::size_t i = 0; i < workload->agents.size(); ++i) {
    EXPECT_EQ(workload->agents[i].agent_id, i);
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng_a(123);
  Rng rng_b(123);
  Result<Workload> a =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng_a);
  Result<Workload> b =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->agents.size(), b->agents.size());
  for (std::size_t i = 0; i < a->agents.size(); ++i) {
    EXPECT_EQ(a->agents[i].trace.server_requests,
              b->agents[i].trace.server_requests);
    EXPECT_EQ(a->agents[i].trace.real_sessions,
              b->agents[i].trace.real_sessions);
  }
}

TEST(WorkloadTest, DistinctIpsWithoutProxy) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng(2);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  std::set<std::string> ips;
  for (const AgentRun& agent : workload->agents) ips.insert(agent.client_ip);
  EXPECT_EQ(ips.size(), workload->agents.size());
}

TEST(WorkloadTest, ProxyGroupsShareIps) {
  WebGraph graph = MakeFigure1Topology();
  WorkloadOptions options = SmallOptions();
  options.agents_per_proxy = 4;
  Rng rng(3);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), options, &rng);
  ASSERT_TRUE(workload.ok());
  std::set<std::string> ips;
  for (const AgentRun& agent : workload->agents) ips.insert(agent.client_ip);
  EXPECT_EQ(ips.size(), 10u);  // 40 agents / 4 per proxy
  EXPECT_EQ(workload->agents[0].client_ip, workload->agents[3].client_ip);
  EXPECT_NE(workload->agents[0].client_ip, workload->agents[4].client_ip);
}

TEST(WorkloadTest, StartTimesWithinWindow) {
  WebGraph graph = MakeFigure1Topology();
  WorkloadOptions options = SmallOptions();
  options.epoch = 1000000;
  options.start_window = 500;
  Rng rng(4);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), options, &rng);
  ASSERT_TRUE(workload.ok());
  for (const AgentRun& agent : workload->agents) {
    ASSERT_FALSE(agent.trace.events.empty());
    EXPECT_GE(agent.trace.events.front().timestamp, 1000000);
    EXPECT_LT(agent.trace.events.front().timestamp, 1000500);
  }
}

TEST(ServerLogCollectorTest, MergesSortedWithDeterministicTies) {
  std::vector<AgentRequests> agents;
  agents.push_back(
      AgentRequests{7, "10.0.0.8", {{1, 100}, {2, 300}}, {}, ""});
  agents.push_back(
      AgentRequests{3, "10.0.0.4", {{3, 100}, {4, 200}}, {}, ""});
  std::vector<LogRecord> log = CollectServerLog(agents);
  ASSERT_EQ(log.size(), 4u);
  // Tie at t=100 broken by agent id (3 before 7).
  EXPECT_EQ(log[0].client_ip, "10.0.0.4");
  EXPECT_EQ(log[1].client_ip, "10.0.0.8");
  EXPECT_EQ(log[2].timestamp, 200);
  EXPECT_EQ(log[3].timestamp, 300);
  EXPECT_EQ(log[0].url, PageUrl(3));
  EXPECT_EQ(log[0].status_code, 200);
  EXPECT_EQ(log[0].bytes, SimulatedPageBytes(3));
}

TEST(ServerLogCollectorTest, SimulatedBytesStableAndBounded) {
  for (PageId page : {0u, 1u, 299u}) {
    EXPECT_EQ(SimulatedPageBytes(page), SimulatedPageBytes(page));
    EXPECT_GE(SimulatedPageBytes(page), 2048);
    EXPECT_LT(SimulatedPageBytes(page), 2048 + 32768);
  }
  EXPECT_NE(SimulatedPageBytes(1), SimulatedPageBytes(2));
}

TEST(WorkloadTest, EndToEndCombinedLogRoundTripPreservesRecords) {
  // Full pipeline: simulate -> Combined Log Format text -> parse ->
  // byte-identical records (including referrer and user agent).
  WebGraph graph = MakeFigure1Topology();
  Rng rng(5);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  std::vector<LogRecord> log = CollectServerLog(workload->ToAgentRequests());

  std::stringstream text;
  ClfWriter writer(&text, /*combined=*/true);
  for (const LogRecord& record : log) writer.Write(record);

  ClfParser parser;
  std::vector<LogRecord> parsed;
  ASSERT_TRUE(parser.ParseStream(&text, &parsed).ok());
  EXPECT_EQ(parser.stats().lines_rejected, 0u);
  EXPECT_EQ(parsed, log);
}

TEST(WorkloadTest, PlainClfWriterDropsCombinedExtras) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng(5);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  std::vector<LogRecord> log = CollectServerLog(workload->ToAgentRequests());

  std::stringstream text;
  ClfWriter writer(&text);  // plain seven-attribute CLF
  for (const LogRecord& record : log) writer.Write(record);

  ClfParser parser;
  std::vector<LogRecord> parsed;
  ASSERT_TRUE(parser.ParseStream(&text, &parsed).ok());
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(parsed[i].referrer.empty());
    EXPECT_TRUE(parsed[i].user_agent.empty());
    LogRecord stripped = log[i];
    stripped.referrer.clear();
    stripped.user_agent.clear();
    EXPECT_EQ(parsed[i], stripped);
  }
}

TEST(WorkloadTest, ReferrersPointAtLinkedPages) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng(6);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  for (const AgentRun& agent : workload->agents) {
    const AgentTrace& trace = agent.trace;
    ASSERT_EQ(trace.server_requests.size(), trace.server_referrers.size());
    for (std::size_t i = 0; i < trace.server_requests.size(); ++i) {
      if (trace.server_referrers[i] != kInvalidPage) {
        EXPECT_TRUE(graph.HasLink(trace.server_referrers[i],
                                  trace.server_requests[i].page));
      }
    }
  }
}

TEST(WorkloadTest, UserAgentsComeFromThePool) {
  WebGraph graph = MakeFigure1Topology();
  Rng rng(7);
  Result<Workload> workload =
      SimulateWorkload(graph, AgentProfile(), SmallOptions(), &rng);
  ASSERT_TRUE(workload.ok());
  std::set<std::string> seen;
  for (const AgentRun& agent : workload->agents) {
    EXPECT_FALSE(agent.user_agent.empty());
    seen.insert(agent.user_agent);
  }
  EXPECT_GT(seen.size(), 1u);
  EXPECT_LE(seen.size(), 6u);
}

}  // namespace
}  // namespace wum
