#include "wum/clf/log_filter.h"

#include <gtest/gtest.h>

namespace wum {
namespace {

LogRecord RecordFor(const std::string& url, int status = 200,
                    HttpMethod method = HttpMethod::kGet,
                    const std::string& ip = "10.0.0.1") {
  LogRecord record;
  record.client_ip = ip;
  record.url = url;
  record.status_code = status;
  record.method = method;
  return record;
}

TEST(ExtensionFilterTest, DropsDefaultResourceExtensions) {
  ExtensionFilter filter;
  EXPECT_FALSE(filter.Keep(RecordFor("/img/logo.gif")));
  EXPECT_FALSE(filter.Keep(RecordFor("/style.css")));
  EXPECT_FALSE(filter.Keep(RecordFor("/app.js")));
  EXPECT_TRUE(filter.Keep(RecordFor("/pages/p1.html")));
  EXPECT_TRUE(filter.Keep(RecordFor("/")));
}

TEST(ExtensionFilterTest, CaseInsensitive) {
  ExtensionFilter filter;
  EXPECT_FALSE(filter.Keep(RecordFor("/LOGO.GIF")));
  EXPECT_FALSE(filter.Keep(RecordFor("/photo.JpEg")));
}

TEST(ExtensionFilterTest, IgnoresQueryString) {
  ExtensionFilter filter;
  EXPECT_FALSE(filter.Keep(RecordFor("/logo.png?v=2")));
  EXPECT_TRUE(filter.Keep(RecordFor("/page.html?img=x.png")));
}

TEST(ExtensionFilterTest, CustomExtensionList) {
  ExtensionFilter filter({".pdf"});
  EXPECT_FALSE(filter.Keep(RecordFor("/doc.pdf")));
  EXPECT_TRUE(filter.Keep(RecordFor("/logo.gif")));
}

TEST(StatusFilterTest, KeepsSuccessAnd304) {
  StatusFilter filter;
  EXPECT_TRUE(filter.Keep(RecordFor("/x", 200)));
  EXPECT_TRUE(filter.Keep(RecordFor("/x", 204)));
  EXPECT_TRUE(filter.Keep(RecordFor("/x", 304)));
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 301)));
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 404)));
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 500)));
}

TEST(MethodFilterTest, KeepsOnlyGet) {
  MethodFilter filter;
  EXPECT_TRUE(filter.Keep(RecordFor("/x", 200, HttpMethod::kGet)));
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 200, HttpMethod::kPost)));
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 200, HttpMethod::kHead)));
}

TEST(RobotFilterTest, DropsRobotsTxtItself) {
  RobotFilter filter;
  EXPECT_FALSE(filter.Keep(RecordFor("/robots.txt")));
}

TEST(RobotFilterTest, DropsClientsThatFetchedRobotsTxt) {
  std::vector<LogRecord> history = {
      RecordFor("/robots.txt", 200, HttpMethod::kGet, "6.6.6.6"),
      RecordFor("/pages/p1.html", 200, HttpMethod::kGet, "10.0.0.1"),
  };
  RobotFilter filter;
  filter.ObserveForRobots(history);
  EXPECT_FALSE(filter.Keep(RecordFor("/pages/p1.html", 200, HttpMethod::kGet,
                                     "6.6.6.6")));
  EXPECT_TRUE(filter.Keep(RecordFor("/pages/p1.html", 200, HttpMethod::kGet,
                                    "10.0.0.1")));
}

TEST(RobotFilterTest, ObserveIsIdempotent) {
  std::vector<LogRecord> history = {
      RecordFor("/robots.txt", 200, HttpMethod::kGet, "6.6.6.6")};
  RobotFilter filter;
  filter.ObserveForRobots(history);
  filter.ObserveForRobots(history);
  EXPECT_FALSE(filter.Keep(RecordFor("/x", 200, HttpMethod::kGet, "6.6.6.6")));
}

TEST(FilterChainTest, AppliesConjunction) {
  FilterChain chain = FilterChain::Standard();
  std::vector<LogRecord> records = {
      RecordFor("/pages/p1.html"),                          // kept
      RecordFor("/logo.gif"),                               // extension
      RecordFor("/pages/p2.html", 404),                     // status
      RecordFor("/pages/p3.html", 200, HttpMethod::kPost),  // method
  };
  std::vector<LogRecord> kept = chain.Apply(records);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].url, "/pages/p1.html");
}

TEST(FilterChainTest, StatsCountDropsPerFilter) {
  FilterChain chain = FilterChain::Standard();  // method, status, extension
  std::vector<LogRecord> records = {
      RecordFor("/a.html", 200, HttpMethod::kPost),
      RecordFor("/b.html", 500),
      RecordFor("/c.gif"),
      RecordFor("/d.gif"),
      RecordFor("/e.html"),
  };
  chain.Apply(records);
  ASSERT_EQ(chain.stats().size(), 3u);
  EXPECT_EQ(chain.stats()[0].name, "method");
  EXPECT_EQ(chain.stats()[0].dropped, 1u);
  EXPECT_EQ(chain.stats()[1].name, "status");
  EXPECT_EQ(chain.stats()[1].dropped, 1u);
  EXPECT_EQ(chain.stats()[2].name, "extension");
  EXPECT_EQ(chain.stats()[2].dropped, 2u);
}

TEST(FilterChainTest, EmptyChainKeepsEverything) {
  FilterChain chain;
  std::vector<LogRecord> records = {RecordFor("/x.gif", 500)};
  EXPECT_EQ(chain.Apply(records).size(), 1u);
}

TEST(FilterChainTest, OrderPreserved) {
  FilterChain chain = FilterChain::Standard();
  std::vector<LogRecord> records = {
      RecordFor("/pages/p2.html"),
      RecordFor("/pages/p1.html"),
  };
  std::vector<LogRecord> kept = chain.Apply(records);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].url, "/pages/p2.html");
  EXPECT_EQ(kept[1].url, "/pages/p1.html");
}

}  // namespace
}  // namespace wum
