#include "wum/common/histogram.h"

#include <gtest/gtest.h>

#include "wum/common/random.h"

namespace wum {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, WelfordMatchesNaive) {
  Rng rng(3);
  RunningStats stats;
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextNormal(3.0, 1.5);
    stats.Add(v);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double naive_var = (sum_sq - kDraws * mean * mean) / (kDraws - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), naive_var, 1e-6);
}

TEST(HistogramTest, BucketsCountCorrectly) {
  Histogram histogram(0.0, 10.0, 10);
  for (double v : {0.5, 1.5, 1.6, 9.9}) histogram.Add(v);
  EXPECT_EQ(histogram.bucket_count(0), 1u);
  EXPECT_EQ(histogram.bucket_count(1), 2u);
  EXPECT_EQ(histogram.bucket_count(9), 1u);
  EXPECT_EQ(histogram.total_count(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.Add(-1.0);
  histogram.Add(10.0);  // hi is exclusive
  histogram.Add(100.0);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 2u);
}

TEST(HistogramTest, StatsIncludeOutOfRange) {
  Histogram histogram(0.0, 1.0, 2);
  histogram.Add(-5.0);
  histogram.Add(5.0);
  EXPECT_EQ(histogram.stats().count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.stats().mean(), 0.0);
}

TEST(HistogramTest, QuantileUniformData) {
  Histogram histogram(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) histogram.Add(i + 0.5);
  EXPECT_NEAR(histogram.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(histogram.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(histogram.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram histogram(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(HistogramTest, AsciiRenderingMentionsCounts) {
  Histogram histogram(0.0, 2.0, 2);
  histogram.Add(0.5);
  histogram.Add(1.5);
  histogram.Add(1.6);
  const std::string art = histogram.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("2"), std::string::npos);
}

}  // namespace
}  // namespace wum
