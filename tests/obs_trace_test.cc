// wum::obs tracing: disabled-handle semantics (no clock reads, no
// allocation), ring-buffer wraparound with drop-oldest accounting,
// concurrent lock-free recording, Chrome trace-event export, and
// pipeline-stage coverage through a real StreamEngine run.

#include "wum/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "wum/stream/engine.h"
#include "wum/stream/pipeline.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace obs {
namespace {

std::atomic<std::uint64_t> g_clock_calls{0};
std::atomic<std::uint64_t> g_clock_us{0};

double CountingClock() {
  g_clock_calls.fetch_add(1, std::memory_order_relaxed);
  return static_cast<double>(g_clock_us.load(std::memory_order_relaxed));
}

/// Installs the counting fake clock for a test and restores the real
/// one on scope exit.
struct ClockGuard {
  ClockGuard() {
    g_clock_calls.store(0);
    g_clock_us.store(0);
    internal::SetClockForTesting(&CountingClock);
  }
  ~ClockGuard() { internal::SetClockForTesting(nullptr); }
};

TEST(TracerTest, DisabledHandleNeverReadsClockOrRecords) {
  ClockGuard clock;
  Tracer disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(TracerIn(nullptr).enabled());
  {
    ScopedSpan span(disabled, "never", 3, 9);
    disabled.Instant("never", 1, 2);
    disabled.RecordComplete("never", 0.0, 1.0, 0, 0);
  }
  // The whole point of the nullable-handle design: tracing compiled
  // into the hot path costs one branch, not a clock read.
  EXPECT_EQ(g_clock_calls.load(), 0u);
}

TEST(TracerTest, ScopedSpanRecordsRebasedTimesAndIds) {
  ClockGuard clock;
  g_clock_us.store(1000);
  TraceRecorder recorder;  // epoch = 1000us
  Tracer tracer = TracerIn(&recorder);
  EXPECT_TRUE(tracer.enabled());
  g_clock_us.store(1100);
  {
    ScopedSpan span(tracer, "work", /*shard=*/2, /*seq=*/7);
    g_clock_us.store(1350);
  }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 100.0);   // rebased to the epoch
  EXPECT_DOUBLE_EQ(events[0].dur_us, 250.0);
  EXPECT_FALSE(events[0].instant);
  EXPECT_EQ(events[0].shard, 2u);
  EXPECT_EQ(events[0].seq, 7u);
  EXPECT_EQ(events[0].tid, 1u);
  EXPECT_EQ(recorder.events_recorded(), 1u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  EXPECT_EQ(recorder.threads_registered(), 1u);
}

TEST(TracerTest, InstantEventsAreZeroDuration) {
  ClockGuard clock;
  TraceRecorder recorder;
  Tracer tracer = TracerIn(&recorder);
  g_clock_us.store(40);
  tracer.Instant("mark", 1, 5);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.0);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 40.0);
}

TEST(TraceRecorderTest, WraparoundDropsOldestAndCountsDrops) {
  MetricRegistry registry;
  TraceRecorder::Options options;
  options.events_per_thread = 4;
  options.metrics = &registry;
  TraceRecorder recorder(options);
  Tracer tracer = TracerIn(&recorder);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.RecordComplete("e", static_cast<double>(i), 1.0, 0, i);
  }
  EXPECT_EQ(recorder.events_recorded(), 10u);
  EXPECT_EQ(recorder.events_dropped(), 6u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: the four newest survive, in order.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
  }
  // The drop count is itself a metric, so a truncated trace is never
  // silently mistaken for a complete one.
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOrZero("obs.trace.dropped_events"), 6u);
  EXPECT_EQ(snapshot.CounterOrZero("obs.trace.events_recorded"), 10u);
}

// N threads pushing concurrently into their private rings: no event
// lost, one buffer per thread, and (under TSan) no data race between
// the owner stores and a concurrent Snapshot.
TEST(TraceRecorderTest, ConcurrentWritersAreExactAndRaceFree) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEventsPerThread = 5000;
  TraceRecorder::Options options;
  options.events_per_thread = 256;  // force wraparound under concurrency
  TraceRecorder recorder(options);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &go] {
      Tracer tracer = TracerIn(&recorder);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        ScopedSpan span(tracer, "spin", 0, i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent export while writers are live: values may tear by design
  // (documented), but the access pattern must be TSan-clean.
  (void)recorder.Snapshot();
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.events_recorded(), kThreads * kEventsPerThread);
  EXPECT_EQ(recorder.events_dropped(),
            kThreads * (kEventsPerThread - 256));
  EXPECT_EQ(recorder.threads_registered(),
            static_cast<std::size_t>(kThreads));
  EXPECT_EQ(recorder.Snapshot().size(), static_cast<std::size_t>(kThreads) * 256);
}

TEST(TraceRecorderTest, ChromeTraceJsonShapeAndFileExport) {
  ClockGuard clock;
  TraceRecorder recorder;
  Tracer tracer = TracerIn(&recorder);
  g_clock_us.store(10);
  { ScopedSpan span(tracer, "stage \"a\"", 1, 2); }
  tracer.Instant("mark", 3, 4);
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"thread_name\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"shard\":1,\"seq\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"shard\":3,\"seq\":4}"), std::string::npos);
  EXPECT_NE(json.find("stage \\\"a\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  const std::string path = testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::stringstream content;
  content << std::ifstream(path).rdbuf();
  EXPECT_EQ(content.str(), json);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, EmptyRecorderExportsValidEmptyTrace) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.ChromeTraceJson(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

// The acceptance shape of the tentpole: a sharded engine run with a
// recorder attached leaves spans for every lifecycle stage it hit, each
// tagged with shard and sequence IDs.
TEST(TraceEngineIntegrationTest, EngineRunCoversPipelineStages) {
  WebGraph graph = MakeFigure1Topology();
  CollectingSessionSink sink;
  TraceRecorder recorder;
  EngineOptions options;
  options.set_num_shards(2)
      .set_trace(&recorder)
      .use_smart_sra(&graph);
  Result<std::unique_ptr<StreamEngine>> engine =
      StreamEngine::Create(std::move(options), &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (int user = 0; user < 6; ++user) {
    for (std::uint32_t page = 1; page <= 3; ++page) {
      LogRecord record;
      record.client_ip = "10.0.0." + std::to_string(user);
      record.url = PageUrl(page);
      record.timestamp = static_cast<TimeSeconds>(page);
      ASSERT_TRUE((*engine)->Offer(record).ok());
    }
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "obs_trace_engine_ckpt")
          .string();
  ASSERT_TRUE((*engine)->Checkpoint(dir).ok());
  ASSERT_TRUE((*engine)->Finish().ok());
  std::filesystem::remove_all(dir);

  std::set<std::string> stages;
  std::set<std::uint64_t> shards;
  for (const TraceEvent& event : recorder.Snapshot()) {
    stages.insert(event.name);
    shards.insert(event.shard);
  }
  for (const char* stage :
       {"partition", "enqueue", "drain", "sessionize", "emit", "checkpoint"}) {
    EXPECT_TRUE(stages.contains(stage)) << "missing stage " << stage;
  }
  EXPECT_GE(shards.size(), 2u);  // both shards show up in the args
}

}  // namespace
}  // namespace obs
}  // namespace wum
