#include "wum/topology/graph_algorithms.h"

#include <gtest/gtest.h>

#include "wum/topology/site_generator.h"

namespace wum {
namespace {

WebGraph MakeChain(std::size_t n) {
  WebGraph graph(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph.AddLink(static_cast<PageId>(i), static_cast<PageId>(i + 1));
  }
  return graph;
}

TEST(ReachablePagesTest, ChainFromHead) {
  WebGraph graph = MakeChain(5);
  std::vector<bool> reachable = ReachablePages(graph, {0});
  for (bool r : reachable) EXPECT_TRUE(r);
}

TEST(ReachablePagesTest, ChainFromMiddle) {
  WebGraph graph = MakeChain(5);
  std::vector<bool> reachable = ReachablePages(graph, {3});
  EXPECT_FALSE(reachable[0]);
  EXPECT_FALSE(reachable[2]);
  EXPECT_TRUE(reachable[3]);
  EXPECT_TRUE(reachable[4]);
}

TEST(ReachablePagesTest, MultipleSources) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(2, 3);
  std::vector<bool> reachable = ReachablePages(graph, {0, 2});
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_TRUE(reachable[2]);
  EXPECT_TRUE(reachable[3]);
}

TEST(ReachablePagesTest, InvalidSourcesIgnored) {
  WebGraph graph = MakeChain(3);
  std::vector<bool> reachable = ReachablePages(graph, {kInvalidPage});
  for (bool r : reachable) EXPECT_FALSE(r);
}

TEST(ReachablePagesTest, HandlesCycles) {
  WebGraph graph(3);
  graph.AddLink(0, 1);
  graph.AddLink(1, 2);
  graph.AddLink(2, 0);
  std::vector<bool> reachable = ReachablePages(graph, {1});
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_TRUE(reachable[2]);
}

TEST(InducedSubgraphTest, KeepsEdgesAmongRetained) {
  WebGraph graph = MakeFigure1Topology();
  // Keep P1(0), P13(1), P34(4): edges P1->P13, P13->P34 survive.
  InducedSubgraphResult result = InducedSubgraph(graph, {0, 1, 4});
  EXPECT_EQ(result.subgraph.num_pages(), 3u);
  EXPECT_EQ(result.subgraph.num_edges(), 2u);
  EXPECT_EQ(result.to_original, (std::vector<PageId>{0, 1, 4}));
  const PageId p1 = result.to_subgraph[0];
  const PageId p13 = result.to_subgraph[1];
  const PageId p34 = result.to_subgraph[4];
  EXPECT_TRUE(result.subgraph.HasLink(p1, p13));
  EXPECT_TRUE(result.subgraph.HasLink(p13, p34));
  EXPECT_FALSE(result.subgraph.HasLink(p1, p34));
  EXPECT_EQ(result.to_subgraph[3], kInvalidPage);  // P23 dropped
}

TEST(InducedSubgraphTest, PreservesStartPages) {
  WebGraph graph = MakeFigure1Topology();
  InducedSubgraphResult result = InducedSubgraph(graph, {0, 5});
  EXPECT_TRUE(result.subgraph.IsStartPage(result.to_subgraph[0]));
  EXPECT_TRUE(result.subgraph.IsStartPage(result.to_subgraph[5]));
}

TEST(InducedSubgraphTest, DuplicatesAndInvalidIgnored) {
  WebGraph graph = MakeChain(4);
  InducedSubgraphResult result =
      InducedSubgraph(graph, {1, 1, 2, kInvalidPage});
  EXPECT_EQ(result.subgraph.num_pages(), 2u);
  EXPECT_EQ(result.subgraph.num_edges(), 1u);
}

TEST(InducedSubgraphTest, EmptySelection) {
  WebGraph graph = MakeChain(4);
  InducedSubgraphResult result = InducedSubgraph(graph, {});
  EXPECT_EQ(result.subgraph.num_pages(), 0u);
}

TEST(DeadEndPagesTest, FindsSinks) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(2, 1);
  EXPECT_EQ(DeadEndPages(graph), (std::vector<PageId>{1, 3}));
}

TEST(BfsDistancesTest, ChainDistances) {
  WebGraph graph = MakeChain(4);
  std::vector<std::int64_t> distance = BfsDistances(graph, 0);
  EXPECT_EQ(distance, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(BfsDistancesTest, UnreachableIsMinusOne) {
  WebGraph graph(3);
  graph.AddLink(0, 1);
  std::vector<std::int64_t> distance = BfsDistances(graph, 0);
  EXPECT_EQ(distance[2], -1);
}

TEST(BfsDistancesTest, ShortestPathChosen) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(1, 3);
  graph.AddLink(0, 3);  // direct shortcut
  std::vector<std::int64_t> distance = BfsDistances(graph, 0);
  EXPECT_EQ(distance[3], 1);
}

TEST(DegreeStatsTest, CountsDegreesAndSpecials) {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(1, 2);
  DegreeStats stats = ComputeDegreeStats(graph);
  EXPECT_DOUBLE_EQ(stats.out_degree.mean(), 0.75);
  EXPECT_DOUBLE_EQ(stats.in_degree.mean(), 0.75);
  EXPECT_EQ(stats.dead_ends, 2u);      // pages 2, 3
  EXPECT_EQ(stats.unreferenced, 2u);   // pages 0, 3
}

}  // namespace
}  // namespace wum
