#include "wum/session/session.h"

#include <gtest/gtest.h>

#include "wum/topology/site_generator.h"

namespace wum {
namespace {

TEST(SessionTest, EmptySession) {
  Session session;
  EXPECT_TRUE(session.empty());
  EXPECT_EQ(session.size(), 0u);
  EXPECT_EQ(session.Duration(), 0);
  EXPECT_TRUE(session.PageSequence().empty());
}

TEST(SessionTest, DurationAndSequence) {
  Session session = MakeSession({3, 7, 3}, {10, 40, 100});
  EXPECT_EQ(session.size(), 3u);
  EXPECT_EQ(session.Duration(), 90);
  EXPECT_EQ(session.PageSequence(), (std::vector<PageId>{3, 7, 3}));
}

TEST(SessionTest, ToStringFormat) {
  Session session = MakeSession({1, 2}, {0, 5});
  EXPECT_EQ(SessionToString(session), "[P1 @0, P2 @5]");
  EXPECT_EQ(SessionToString(Session{}), "[]");
}

TEST(ValidateRequestStreamTest, AcceptsSortedValidStream) {
  Session s = MakeSession({0, 1, 1}, {0, 10, 10});
  EXPECT_TRUE(ValidateRequestStream(s.requests, 5).ok());
}

TEST(ValidateRequestStreamTest, RejectsUnsorted) {
  Session s = MakeSession({0, 1}, {10, 5});
  EXPECT_TRUE(ValidateRequestStream(s.requests, 5).IsInvalidArgument());
}

TEST(ValidateRequestStreamTest, RejectsOutOfRangePage) {
  Session s = MakeSession({9}, {0});
  EXPECT_TRUE(ValidateRequestStream(s.requests, 5).IsInvalidArgument());
}

TEST(ValidateRequestStreamTest, EmptyStreamOk) {
  EXPECT_TRUE(ValidateRequestStream({}, 5).ok());
}

TEST(TimestampRuleTest, GapBoundEnforced) {
  EXPECT_TRUE(SatisfiesTimestampRule(MakeSession({0, 1}, {0, 600}), 600));
  EXPECT_FALSE(SatisfiesTimestampRule(MakeSession({0, 1}, {0, 601}), 600));
  EXPECT_TRUE(SatisfiesTimestampRule(MakeSession({0, 1}, {5, 5}), 600));
  EXPECT_FALSE(SatisfiesTimestampRule(MakeSession({0, 1}, {5, 4}), 600));
  EXPECT_TRUE(SatisfiesTimestampRule(Session{}, 600));
  EXPECT_TRUE(SatisfiesTimestampRule(MakeSession({0}, {0}), 600));
}

TEST(TopologyRuleTest, ConsecutiveLinksRequired) {
  WebGraph graph = MakeFigure1Topology();
  // [P1, P13, P34, P23] is a path in Figure 1 (ids 0, 1, 4, 3).
  EXPECT_TRUE(
      SatisfiesTopologyRule(MakeSession({0, 1, 4, 3}, {0, 1, 2, 3}), graph));
  // [P1, P20, P13]: P20 has no link to P13.
  EXPECT_FALSE(
      SatisfiesTopologyRule(MakeSession({0, 2, 1}, {0, 1, 2}), graph));
  EXPECT_TRUE(SatisfiesTopologyRule(MakeSession({3}, {0}), graph));
  EXPECT_TRUE(SatisfiesTopologyRule(Session{}, graph));
}

TEST(NavigationRuleTest, AnyEarlierReferrerSuffices) {
  WebGraph graph = MakeFigure1Topology();
  // [P1, P13, P49]: P49's referrer P13 is earlier -- OK even though the
  // session also holds pages without direct links between them.
  EXPECT_TRUE(
      SatisfiesNavigationRule(MakeSession({0, 1, 5}, {0, 1, 2}), graph));
  // [P1, P20, P34]: nothing earlier links to P34 (only P13 does).
  EXPECT_FALSE(
      SatisfiesNavigationRule(MakeSession({0, 2, 4}, {0, 1, 2}), graph));
  // [P1, P20, P13]: P13's referrer P1 is earlier but not adjacent -- the
  // navigation rule allows it (the topology rule would not).
  EXPECT_TRUE(
      SatisfiesNavigationRule(MakeSession({0, 2, 1}, {0, 1, 2}), graph));
}

TEST(SubstringTest, PaperExamples) {
  // §5.1: R = [P1, P3, P5].
  const std::vector<PageId> real = {1, 3, 5};
  // H = [P9, P1, P3, P5, P8]: captured.
  EXPECT_TRUE(ContainsAsSubstring({9, 1, 3, 5, 8}, real));
  // H = [P1, P9, P3, P5, P8]: "P9 interrupts R" -- not captured.
  EXPECT_FALSE(ContainsAsSubstring({1, 9, 3, 5, 8}, real));
}

TEST(SubstringTest, EdgeCases) {
  EXPECT_TRUE(ContainsAsSubstring({1, 2}, {}));
  EXPECT_TRUE(ContainsAsSubstring({}, {}));
  EXPECT_FALSE(ContainsAsSubstring({}, {1}));
  EXPECT_TRUE(ContainsAsSubstring({1}, {1}));
  EXPECT_FALSE(ContainsAsSubstring({1}, {1, 1}));
  EXPECT_TRUE(ContainsAsSubstring({2, 1, 1, 3}, {1, 1}));
}

TEST(SubstringTest, SuffixAndPrefix) {
  EXPECT_TRUE(ContainsAsSubstring({1, 2, 3}, {1, 2}));
  EXPECT_TRUE(ContainsAsSubstring({1, 2, 3}, {2, 3}));
  EXPECT_TRUE(ContainsAsSubstring({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ContainsAsSubstring({1, 2, 3}, {3, 2}));
}

TEST(SubsequenceTest, GapsAllowed) {
  EXPECT_TRUE(ContainsAsSubsequence({1, 9, 3, 5, 8}, {1, 3, 5}));
  EXPECT_FALSE(ContainsAsSubsequence({1, 9, 5, 3, 8}, {1, 3, 5}));
  EXPECT_TRUE(ContainsAsSubsequence({1, 2, 3}, {}));
  EXPECT_FALSE(ContainsAsSubsequence({}, {1}));
  EXPECT_TRUE(ContainsAsSubsequence({1, 2, 1, 2}, {1, 1, 2}));
}

TEST(SubsequenceTest, SubstringImpliesSubsequence) {
  const std::vector<PageId> haystack = {4, 2, 7, 2, 9};
  for (std::size_t start = 0; start < haystack.size(); ++start) {
    for (std::size_t len = 1; start + len <= haystack.size(); ++len) {
      std::vector<PageId> needle(
          haystack.begin() + static_cast<std::ptrdiff_t>(start),
          haystack.begin() + static_cast<std::ptrdiff_t>(start + len));
      EXPECT_TRUE(ContainsAsSubstring(haystack, needle));
      EXPECT_TRUE(ContainsAsSubsequence(haystack, needle));
    }
  }
}

TEST(PageRequestTest, OrderingIsLexicographic) {
  EXPECT_LT((PageRequest{1, 100}), (PageRequest{2, 0}));
  EXPECT_LT((PageRequest{1, 100}), (PageRequest{1, 101}));
  EXPECT_EQ((PageRequest{1, 100}), (PageRequest{1, 100}));
}

}  // namespace
}  // namespace wum
