#include "wum/session/referrer_heuristic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "wum/eval/accuracy.h"
#include "wum/session/smart_sra.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

// Figure 1 ids: 0=P1, 1=P13, 2=P20, 3=P23, 4=P34, 5=P49.

std::vector<std::vector<PageId>> PageSequences(
    const std::vector<Session>& sessions) {
  std::vector<std::vector<PageId>> sequences;
  for (const Session& session : sessions) {
    sequences.push_back(session.PageSequence());
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

TEST(ReferrerHeuristicTest, ChainsAlongReferrers) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  std::vector<ReferredRequest> requests = {
      {0, kInvalidPage, 0},  // typed P1
      {1, 0, 60},            // P13 from P1
      {4, 1, 120},           // P34 from P13
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 1, 4}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, ResolvesTheBehaviour3MotifExactly) {
  // Log [P1, P13, P34, P20] where P20's referrer is P1 (the cached
  // backtrack target): the oracle recovers [P1,P13,P34] and [P1,P20].
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  std::vector<ReferredRequest> requests = {
      {0, kInvalidPage, 0},
      {1, 0, 120},
      {4, 1, 240},
      {2, 0, 420},  // P1 is no longer any session's last page
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 1, 4}, {0, 2}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, TypedEntryOpensNewSession) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  std::vector<ReferredRequest> requests = {
      {0, kInvalidPage, 0},
      {2, 0, 60},
      {5, kInvalidPage, 120},  // typed P49
      {3, 5, 180},
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 2}, {5, 3}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, DisambiguatesSharedReferrerByRecency) {
  // Two sessions both end in pages linking to P23; the request's
  // referrer picks the right one even though time alone cannot.
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  std::vector<ReferredRequest> requests = {
      {0, kInvalidPage, 0},    // session A: P1
      {2, 0, 60},              //            P1 -> P20
      {5, kInvalidPage, 90},   // session B: typed P49
      {3, 5, 150},             // P23 from P49 -- joins session B
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 2}, {5, 3}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, UnknownReferrerFallsBackToSingleton) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  // P23's referrer P34 was never seen by this user and heads no session.
  std::vector<ReferredRequest> requests = {{3, 4, 0}};
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{3}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, UnlinkedReferrerIgnored) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  // Claimed referrer P20 has no link to P13: treated as typed.
  std::vector<ReferredRequest> requests = {
      {2, kInvalidPage, 0},
      {1, 2, 60},
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{1}, {2}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, PageStayBoundStillCuts) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  std::vector<ReferredRequest> requests = {
      {0, kInvalidPage, 0},
      {1, 0, Minutes(11)},  // referrer matches but the gap exceeds rho
  };
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0}, {0, 1}};
  // The open session [P1] expires; P13's referrer P1 was *seen*, so a
  // backtrack-style session [P1, P13] opens.
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(ReferrerHeuristicTest, RejectsInvalidInput) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  EXPECT_TRUE(heuristic.Reconstruct({{99, kInvalidPage, 0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(heuristic.Reconstruct({{0, 99, 0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(heuristic
                  .Reconstruct({{0, kInvalidPage, 100},
                                {1, kInvalidPage, 50}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ReferrerHeuristicTest, EmptyInput) {
  WebGraph graph = MakeFigure1Topology();
  ReferrerSessionizer heuristic(&graph);
  EXPECT_TRUE(heuristic.Reconstruct({})->empty());
}

class ReferrerOracleSeedTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReferrerOracleSeedTest, OutputIsValidAndBeatsSmartSra) {
  Rng site_rng(31);
  SiteGeneratorOptions site;
  site.num_pages = 80;
  site.mean_out_degree = 6.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);

  WorkloadOptions population;
  population.num_agents = 150;
  Rng rng(GetParam());
  Workload workload =
      *SimulateWorkload(graph, AgentProfile(), population, &rng);

  ReferrerSessionizer oracle(&graph);
  std::map<std::string, std::vector<Session>> reconstructions;
  for (const auto& [ip, stream] : BuildIpReferredStreams(workload)) {
    Result<std::vector<Session>> sessions = oracle.Reconstruct(stream);
    ASSERT_TRUE(sessions.ok());
    for (const Session& session : *sessions) {
      EXPECT_TRUE(SatisfiesTopologyRule(session, graph))
          << SessionToString(session);
      EXPECT_TRUE(SatisfiesTimestampRule(session, Minutes(10)))
          << SessionToString(session);
    }
    reconstructions[ip] = std::move(sessions).ValueOrDie();
  }
  AccuracyEvaluator evaluator(&graph, TimeThresholds());
  AccuracyResult oracle_result =
      evaluator.ScoreReconstructions(workload, reconstructions);

  SmartSra smart_sra(&graph);
  Result<AccuracyResult> sra_result = evaluator.Evaluate(workload, smart_sra);
  ASSERT_TRUE(sra_result.ok());

  // Richer data cannot hurt recall: the oracle recovers at least as many
  // real sessions. (It is not perfect: sessions interrupted by
  // cache-served *forward* revisits are unrecoverable from any server
  // log.)
  EXPECT_GE(oracle_result.capture_rate(), sra_result->capture_rate());
  EXPECT_GT(oracle_result.capture_rate(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferrerOracleSeedTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wum
