#include "wum/mine/path_miner.h"

#include <gtest/gtest.h>

#include <vector>

#include "wum/mine/options.h"
#include "wum/session/session.h"
#include "wum/stream/pipeline.h"
#include "wum/topology/site_generator.h"
#include "wum/topology/web_graph.h"

namespace wum::mine {
namespace {

MinerOptions Options(std::size_t top_k, std::size_t min_length,
                     std::size_t max_length, std::size_t capacity) {
  MinerOptions options;
  options.top_k = top_k;
  options.min_length = min_length;
  options.max_length = max_length;
  options.capacity = capacity;
  return options;
}

TEST(ValidateMinerOptionsTest, RejectsBadConfigurations) {
  EXPECT_TRUE(ValidateMinerOptions(MinerOptions{}).ok());
  EXPECT_FALSE(ValidateMinerOptions(Options(0, 2, 3, 16)).ok());
  EXPECT_FALSE(ValidateMinerOptions(Options(4, 0, 3, 16)).ok());
  EXPECT_FALSE(ValidateMinerOptions(Options(4, 3, 2, 16)).ok());
  EXPECT_FALSE(ValidateMinerOptions(Options(8, 2, 3, 4)).ok());
  MinerOptions small_window = Options(4, 2, 3, 16);
  small_window.window_paths = 8;  // smaller than capacity
  EXPECT_FALSE(ValidateMinerOptions(small_window).ok());
  MinerOptions no_batch = Options(4, 2, 3, 16);
  no_batch.batch_sessions = 0;
  EXPECT_FALSE(ValidateMinerOptions(no_batch).ok());
}

TEST(PathMinerTest, CountsNgramsPerConfiguredLength) {
  PathMiner miner(Options(10, 2, 3, 64), nullptr, nullptr);
  miner.AddSession({1, 2, 3});  // pairs [1,2] [2,3]; triple [1,2,3]
  miner.AddSession({1, 2});     // pair [1,2]; too short for a triple
  miner.AddSession({4});        // too short for anything
  EXPECT_EQ(miner.sessions_seen(), 3u);
  EXPECT_EQ(miner.paths_processed(), 4u);

  auto pairs = miner.TopK(10, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].path, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(pairs[0].count, 2u);
  EXPECT_EQ(pairs[1].path, (std::vector<PageId>{2, 3}));

  auto triples = miner.TopK(10, 3);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].path, (std::vector<PageId>{1, 2, 3}));

  // length 0 merges both summaries under the global order.
  auto merged = miner.TopK(10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].path, (std::vector<PageId>{1, 2}));
}

TEST(PathMinerTest, TopologyInvalidPathsAreRejected) {
  // Figure 1 site: 0->1, 0->2, 1->4, 1->5, 2->3, 4->3, 5->3.
  const WebGraph graph = MakeFigure1Topology();
  PathMiner miner(Options(10, 2, 3, 64), &graph, nullptr);
  // 0->1 and 1->4 are links; 4->0 is not: the pair [4,0] and every
  // triple containing that hop must be discarded, the rest counted.
  miner.AddSession({0, 1, 4, 0});
  auto pairs = miner.TopK(10, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].path, (std::vector<PageId>{0, 1}));
  EXPECT_EQ(pairs[1].path, (std::vector<PageId>{1, 4}));
  auto triples = miner.TopK(10, 3);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].path, (std::vector<PageId>{0, 1, 4}));
}

TEST(PathMinerTest, PatternsJsonShapeIsDeterministic) {
  PathMiner miner(Options(2, 2, 2, 16), nullptr, nullptr);
  miner.AddSession({1, 2, 3});
  miner.AddSession({1, 2});
  EXPECT_EQ(miner.PatternsJson(),
            "{\"k\":2,\"length\":0,\"sessions\":2,\"paths\":3,"
            "\"capacity\":16,\"patterns\":["
            "{\"path\":[1,2],\"count\":2,\"error\":0},"
            "{\"path\":[2,3],\"count\":1,\"error\":0}]}");
}

TEST(PathMinerTest, SerializeRestoreRoundTrip) {
  const MinerOptions options = Options(4, 2, 3, 16);
  PathMiner original(options, nullptr, nullptr);
  for (int i = 0; i < 10; ++i) {
    original.AddSession({1, 2, 3, 4});
    original.AddSession({2, 3});
  }
  std::vector<std::string> frames;
  ASSERT_TRUE(original.SerializeState(&frames).ok());

  PathMiner restored(options, nullptr, nullptr);
  ASSERT_TRUE(restored.RestoreState(frames).ok());
  EXPECT_EQ(restored.sessions_seen(), original.sessions_seen());
  EXPECT_EQ(restored.paths_processed(), original.paths_processed());
  EXPECT_EQ(restored.PatternsJson(), original.PatternsJson());

  // Diverging configuration must be refused.
  PathMiner wrong_config(Options(4, 2, 2, 16), nullptr, nullptr);
  EXPECT_FALSE(wrong_config.RestoreState(frames).ok());
}

TEST(MiningSinkTest, ForwardsDownstreamAndCounts) {
  CollectingSessionSink downstream;
  MinerOptions options = Options(10, 2, 3, 64);
  options.batch_sessions = 2;
  MiningSink sink(&downstream, options, nullptr, nullptr);
  ASSERT_TRUE(sink.Accept("ip", MakeSession({1, 2, 3}, {0, 1, 2})).ok());
  ASSERT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {5, 6})).ok());
  EXPECT_EQ(downstream.entries().size(), 2u);
  EXPECT_EQ(sink.sessions_seen(), 2u);
  auto pairs = sink.TopK(10, 2);
  ASSERT_GE(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].path, (std::vector<PageId>{1, 2}));
  EXPECT_EQ(pairs[0].count, 2u);
}

TEST(MiningSinkTest, QueriesFlushThePendingBatch) {
  // batch_sessions larger than the session count: without the implicit
  // flush a query would see nothing.
  MinerOptions options = Options(10, 2, 2, 64);
  options.batch_sessions = 100;
  MiningSink sink(nullptr, options, nullptr, nullptr);
  ASSERT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {0, 1})).ok());
  EXPECT_EQ(sink.sessions_seen(), 1u);
  EXPECT_EQ(sink.TopK(1, 2).size(), 1u);
}

TEST(MiningSinkTest, FailingDownstreamSkipsMining) {
  // A sink that refuses the session: the failure must propagate and the
  // session must not be counted, so a retrying caller cannot inflate
  // the estimates by re-offering.
  class RefusingSink : public SessionSink {
   public:
    Status Accept(const std::string&, Session) override {
      return Status::IoError("downstream refused");
    }
  };
  RefusingSink downstream;
  MiningSink sink(&downstream, Options(10, 2, 2, 64), nullptr, nullptr);
  EXPECT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {0, 1})).IsIoError());
  EXPECT_EQ(sink.sessions_seen(), 0u);
  EXPECT_TRUE(sink.TopK(10, 2).empty());
}

TEST(MiningSinkTest, NullDownstreamIsFine) {
  MiningSink sink(nullptr, Options(10, 2, 2, 64), nullptr, nullptr);
  EXPECT_TRUE(sink.Accept("ip", MakeSession({1, 2}, {0, 1})).ok());
  EXPECT_EQ(sink.sessions_seen(), 1u);
}

TEST(MiningSinkTest, StateRoundTripsThroughSerializeRestore) {
  const MinerOptions options = Options(4, 2, 2, 16);
  MiningSink original(nullptr, options, nullptr, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(original.Accept("ip", MakeSession({1, 2, 3}, {0, 1, 2})).ok());
  }
  std::vector<std::string> frames;
  ASSERT_TRUE(original.SerializeState(&frames).ok());
  MiningSink restored(nullptr, options, nullptr, nullptr);
  ASSERT_TRUE(restored.RestoreState(frames).ok());
  EXPECT_EQ(restored.PatternsJson(), original.PatternsJson());
}

}  // namespace
}  // namespace wum::mine
