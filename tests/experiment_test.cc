#include "wum/eval/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "wum/eval/report.h"

namespace wum {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config = PaperDefaults();
  config.site.num_pages = 60;
  config.site.mean_out_degree = 6.0;
  config.workload.num_agents = 150;
  config.seed = 7;
  return config;
}

TEST(ExperimentTest, PaperDefaultsMatchTable5) {
  ExperimentConfig config = PaperDefaults();
  EXPECT_EQ(config.site.num_pages, 300u);
  EXPECT_DOUBLE_EQ(config.site.mean_out_degree, 15.0);
  EXPECT_DOUBLE_EQ(config.profile.stp, 0.05);
  EXPECT_DOUBLE_EQ(config.profile.lpp, 0.30);
  EXPECT_DOUBLE_EQ(config.profile.nip, 0.30);
  EXPECT_DOUBLE_EQ(config.profile.page_stay_mean_minutes, 2.2);
  EXPECT_DOUBLE_EQ(config.profile.page_stay_stddev_minutes, 0.5);
  EXPECT_EQ(config.workload.num_agents, 10000u);
  EXPECT_EQ(config.thresholds.max_session_duration, Minutes(30));
  EXPECT_EQ(config.thresholds.max_page_stay, Minutes(10));
}

TEST(ExperimentTest, HeuristicRosterMatchesPaperOrder) {
  WebGraph graph(1);
  auto heuristics = MakePaperHeuristics(&graph, TimeThresholds());
  ASSERT_EQ(heuristics.size(), 4u);
  EXPECT_EQ(heuristics[0]->name(), "heur1-duration");
  EXPECT_EQ(heuristics[1]->name(), "heur2-pagestay");
  EXPECT_EQ(heuristics[2]->name(), "heur3-navigation");
  EXPECT_EQ(heuristics[3]->name(), "heur4-smart-sra");
}

TEST(ExperimentTest, SweepGridsMatchFigures) {
  EXPECT_EQ(Figure8StpValues().size(), 20u);
  EXPECT_DOUBLE_EQ(Figure8StpValues().front(), 0.01);
  EXPECT_DOUBLE_EQ(Figure8StpValues().back(), 0.20);
  EXPECT_EQ(Figure9LppValues().size(), 10u);
  EXPECT_DOUBLE_EQ(Figure9LppValues().front(), 0.0);
  EXPECT_DOUBLE_EQ(Figure9LppValues().back(), 0.90);
  EXPECT_EQ(Figure10NipValues(), Figure9LppValues());
}

TEST(ExperimentTest, SinglePointProducesAllScores) {
  Result<SweepPoint> point =
      RunExperimentPoint(SmallConfig(), SweepParameter::kStp, 0.05, 0);
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_DOUBLE_EQ(point->parameter_value, 0.05);
  EXPECT_GT(point->real_sessions, 0u);
  ASSERT_EQ(point->scores.size(), 4u);
  for (const HeuristicScore& score : point->scores) {
    EXPECT_GT(score.result.real_sessions, 0u);
    EXPECT_GE(score.result.accuracy(), 0.0);
    EXPECT_LE(score.result.accuracy(), 1.0);
    // Ground truth is identical across heuristics at a point.
    EXPECT_EQ(score.result.real_sessions, point->real_sessions);
  }
}

TEST(ExperimentTest, SmartSraWinsAtPaperDefaults) {
  Result<SweepPoint> point =
      RunExperimentPoint(SmallConfig(), SweepParameter::kStp, 0.05, 0);
  ASSERT_TRUE(point.ok());
  const double smart_sra = point->scores[3].result.accuracy();
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(smart_sra, point->scores[i].result.accuracy())
        << "beaten by " << point->scores[i].heuristic;
  }
}

TEST(ExperimentTest, SweepIsDeterministicAcrossThreadCounts) {
  ExperimentConfig config = SmallConfig();
  config.workload.num_agents = 60;
  std::vector<double> values = {0.05, 0.10, 0.15};

  config.num_threads = 1;
  Result<std::vector<SweepPoint>> serial =
      RunSweep(config, SweepParameter::kStp, values);
  ASSERT_TRUE(serial.ok());

  config.num_threads = 3;
  Result<std::vector<SweepPoint>> parallel =
      RunSweep(config, SweepParameter::kStp, values);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].real_sessions, (*parallel)[i].real_sessions);
    for (std::size_t h = 0; h < 4; ++h) {
      EXPECT_DOUBLE_EQ((*serial)[i].scores[h].result.accuracy(),
                       (*parallel)[i].scores[h].result.accuracy());
    }
  }
}

TEST(ExperimentTest, InvalidSweepValueFailsCleanly) {
  ExperimentConfig config = SmallConfig();
  Result<std::vector<SweepPoint>> result =
      RunSweep(config, SweepParameter::kStp, {0.0});  // stp must be > 0
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_TRUE(RunSweep(config, SweepParameter::kLpp, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ExperimentTest, GenerateSiteDispatchesAllModels) {
  SiteGeneratorOptions options;
  options.num_pages = 40;
  options.mean_out_degree = 4.0;
  for (TopologyModel model :
       {TopologyModel::kUniform, TopologyModel::kPowerLaw,
        TopologyModel::kHierarchical}) {
    Rng rng(9);
    Result<WebGraph> graph = GenerateSite(model, options, &rng);
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph->num_pages(), 40u);
    EXPECT_GT(graph->num_edges(), 0u);
  }
}

TEST(ExperimentTest, PaperDefaultsUseFewEntryPages) {
  // Figure 10's shape requires entry-page exhaustion; the paper config
  // pins 1% (3 of 300). The library-wide generator default remains 5%.
  EXPECT_DOUBLE_EQ(PaperDefaults().site.start_page_fraction, 0.01);
  EXPECT_DOUBLE_EQ(SiteGeneratorOptions().start_page_fraction, 0.05);
}

TEST(ExperimentTest, SweepParameterNames) {
  EXPECT_EQ(SweepParameterToString(SweepParameter::kStp), "STP");
  EXPECT_EQ(SweepParameterToString(SweepParameter::kLpp), "LPP");
  EXPECT_EQ(SweepParameterToString(SweepParameter::kNip), "NIP");
}

TEST(ReportTest, TableAndCsvRenderAllSeries) {
  ExperimentConfig config = SmallConfig();
  config.workload.num_agents = 50;
  Result<std::vector<SweepPoint>> points =
      RunSweep(config, SweepParameter::kLpp, {0.0, 0.3});
  ASSERT_TRUE(points.ok());

  std::ostringstream table;
  RenderSweepTable(*points, SweepParameter::kLpp, &table);
  EXPECT_NE(table.str().find("heur4-smart-sra"), std::string::npos);
  EXPECT_NE(table.str().find("LPP %"), std::string::npos);

  std::ostringstream csv;
  RenderSweepCsv(*points, SweepParameter::kLpp, &csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("LPP,heur1-duration"), std::string::npos);
  // Header + 2 data rows.
  EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 3);
}

TEST(ReportTest, RelativeMarginAndShapeSummary) {
  SweepPoint point;
  point.parameter_value = 0.05;
  auto score = [](const std::string& name, std::size_t correct) {
    HeuristicScore s;
    s.heuristic = name;
    s.result.real_sessions = 100;
    s.result.correct_reconstructions = correct;
    s.result.captured_sessions = correct;
    return s;
  };
  point.scores = {score("h1", 20), score("h2", 30), score("h3", 25),
                  score("h4", 45)};
  EXPECT_NEAR(SmartSraRelativeMargin(point), 0.5, 1e-12);
  std::string summary = SummarizeSweepShape({point});
  EXPECT_NE(summary.find("1/1"), std::string::npos);
}

TEST(ReportTest, MarginZeroWhenBaselinesAllZero) {
  SweepPoint point;
  HeuristicScore zero;
  zero.heuristic = "h";
  zero.result.real_sessions = 10;
  point.scores = {zero, zero, zero, zero};
  EXPECT_DOUBLE_EQ(SmartSraRelativeMargin(point), 0.0);
}

}  // namespace
}  // namespace wum
