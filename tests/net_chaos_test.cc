// Deterministic chaos harness for the net layer: ChaosByteSource units
// prove each fault class (trickle, stall, corrupt, injected reset) is
// seeded, replayable, and honors the ByteSource chunk contract; the
// integration matrix drives a live LogServer with ChaosSocket clients
// misbehaving on the wire and asserts the server's invariants hold
// under every mix — lossless fault classes converge byte-for-byte to
// the direct-file-ingest baseline, corruption stays conserved (every
// line is either an accepted record or an attributed dead letter), and
// mid-stream RSTs never cost more than the cut line. The final test
// composes chaos with checkpoint/resume: a crash modeled after a
// checkpoint plus chaotic replay still converges to the uninterrupted
// run's sessions.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/ingest/byte_source.h"
#include "wum/ingest/driver.h"
#include "wum/net/chaos.h"
#include "wum/net/server.h"
#include "wum/net/socket.h"
#include "wum/obs/metrics.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum::net {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Workload helpers (same shapes as net_server_test.cc).

std::string ClfLine(const std::string& ip, std::uint32_t page,
                    TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return FormatClfLine(record) + "\n";
}

std::string MakeLog(const std::vector<std::string>& users, int rounds,
                    std::uint32_t num_pages, TimeSeconds base) {
  std::string log;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      log += ClfLine(users[u],
                     static_cast<std::uint32_t>((u + r) % num_pages),
                     base + r * 600 + static_cast<TimeSeconds>(u));
    }
  }
  return log;
}

using Canonical = std::vector<std::pair<std::string, std::vector<PageId>>>;

Canonical Canonicalize(const std::vector<CollectingSessionSink::Entry>& in) {
  Canonical out;
  for (const auto& entry : in) {
    out.emplace_back(entry.client_ip, entry.session.PageSequence());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Canonical IngestDirect(const WebGraph& graph, const std::string& merged_log,
                       std::size_t shards) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(shards).use_smart_sra(&graph), &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  if (!engine.ok()) return {};
  Result<ingest::IngestDriver> driver =
      ingest::IngestDriver::Create(engine->get(), ingest::IngestOptions{});
  EXPECT_TRUE(driver.ok());
  ClfParser parser;
  std::vector<LogRecordRef> refs;
  EXPECT_TRUE(parser.ParseChunk(merged_log, &refs).ok());
  EXPECT_TRUE(driver->OfferRefs(refs).ok());
  EXPECT_TRUE((*engine)->Finish().ok());
  return Canonicalize(sink.entries());
}

Result<std::string> ReadLine(const Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const ReadResult read, ReadSome(socket, &byte, 1));
    if (read.eof) {
      return Status::IoError("connection closed mid-line: " + line);
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
  }
}

Result<std::string> AdminCommand(std::uint16_t admin_port,
                                 const std::string& command) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", admin_port));
  WUM_RETURN_NOT_OK(WriteAll(socket, command + "\n"));
  return ReadLine(socket);
}

bool WaitForCounter(obs::MetricRegistry* registry, const std::string& counter,
                    std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const obs::MetricsSnapshot snapshot = registry->Snapshot();
    for (const auto& entry : snapshot.counters) {
      if (entry.name == counter && entry.value >= target) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

struct Harness {
  explicit Harness(obs::MetricRegistry* registry) : registry_(registry) {}

  Status Start(EngineOptions engine_options, SessionSink* sink,
               DeadLetterQueue* dead_letters, ServerOptions server_options,
               ClientOffsets offsets = {}) {
    WUM_ASSIGN_OR_RETURN(engine,
                         StreamEngine::Create(std::move(engine_options), sink));
    server_options.metrics = registry_;
    WUM_ASSIGN_OR_RETURN(
        server, LogServer::Start(std::move(server_options), engine.get(),
                                 dead_letters, std::move(offsets)));
    thread = std::thread([this] { serve_status = server->Serve(); });
    return Status::OK();
  }

  Status Quiesce() {
    WUM_ASSIGN_OR_RETURN(const std::string reply,
                         AdminCommand(server->admin_port(), "QUIESCE"));
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("quiesce replied: " + reply);
    }
    return Status::OK();
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }

  ~Harness() {
    if (thread.joinable() && server != nullptr) server->RequestStop();
    Join();
  }

  obs::MetricRegistry* registry_;
  std::unique_ptr<StreamEngine> engine;
  std::unique_ptr<LogServer> server;
  std::thread thread;
  Status serve_status;
};

/// Streams `data` through a ChaosSocket. An injected reset ends the
/// stream early and reports `reset = true` (that is the fault working,
/// not an error); any other failure propagates.
struct ChaosClientOutcome {
  ChaosStats stats;
  bool reset = false;
};

Result<ChaosClientOutcome> StreamWithChaos(std::uint16_t port,
                                           const std::string& data,
                                           const std::string& client_id,
                                           const ChaosOptions& options,
                                           std::size_t chunk = 64) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", port));
  ChaosSocket chaos(std::move(socket), options);
  ChaosClientOutcome outcome;
  if (!client_id.empty()) {
    // The handshake rides through the same fault schedule (fragmented
    // or stalled HELLOs must still parse server-side).
    const Status hello = chaos.Send("HELLO " + client_id + "\n");
    if (!hello.ok()) {
      if (chaos.stats().resets > 0 && hello.IsConnectionReset()) {
        outcome.reset = true;
        outcome.stats = chaos.stats();
        return outcome;
      }
      return hello;
    }
    WUM_ASSIGN_OR_RETURN(const std::string reply, ReadLine(chaos.fd()));
    if (reply.rfind("OK", 0) != 0) {
      return Status::FailedPrecondition("handshake refused: " + reply);
    }
  }
  for (std::size_t at = 0; at < data.size(); at += chunk) {
    const Status write =
        chaos.Send(std::string_view(data).substr(at, chunk));
    if (!write.ok()) {
      if (chaos.stats().resets > 0 && write.IsConnectionReset()) {
        outcome.reset = true;
        break;
      }
      return write;
    }
  }
  outcome.stats = chaos.stats();
  return outcome;
}

// ---------------------------------------------------------------------
// ChaosByteSource units.

/// A ByteSource over pre-cut chunks, each (except possibly the last)
/// ending on a line boundary — the contract FileSource and LineBuffer
/// uphold.
class ScriptedSource final : public ingest::ByteSource {
 public:
  explicit ScriptedSource(std::vector<std::string> chunks)
      : chunks_(std::move(chunks)) {}

  Result<std::optional<std::string_view>> Next() override {
    if (at_ >= chunks_.size()) return std::optional<std::string_view>();
    serving_ = chunks_[at_++];
    return std::optional<std::string_view>(serving_);
  }
  bool exhausted() const override { return at_ >= chunks_.size(); }

 private:
  std::vector<std::string> chunks_;
  std::size_t at_ = 0;
  std::string serving_;
};

/// Pumps a chaos source dry, collecting every served chunk. Stalls
/// surface as "no chunk yet"; a bounded iteration count turns a
/// livelocked schedule into a test failure instead of a hang.
std::vector<std::string> PumpDry(ChaosByteSource* source) {
  std::vector<std::string> served;
  for (int spins = 0; spins < 100000 && !source->exhausted(); ++spins) {
    Result<std::optional<std::string_view>> chunk = source->Next();
    EXPECT_TRUE(chunk.ok());
    if (!chunk.ok()) return served;
    if (chunk->has_value()) served.emplace_back(**chunk);
  }
  EXPECT_TRUE(source->exhausted()) << "chaos source never drained";
  return served;
}

std::string Concat(const std::vector<std::string>& chunks) {
  std::string out;
  for (const std::string& chunk : chunks) out += chunk;
  return out;
}

TEST(ChaosByteSourceTest, TrickleServesLineAtATimeLosslessly) {
  const std::string stream = "alpha\nbeta\ngamma\ndelta\nepsilon\n";
  ScriptedSource inner({"alpha\nbeta\n", "gamma\n", "delta\nepsilon\n"});
  ChaosOptions options;
  options.seed = 7;
  options.trickle = true;
  ChaosByteSource chaos(&inner, options);
  const std::vector<std::string> served = PumpDry(&chaos);
  // Maximally fragmented arrival: one line per chunk, nothing lost.
  EXPECT_GT(served.size(), 3u);
  for (const std::string& chunk : served) {
    EXPECT_EQ(std::count(chunk.begin(), chunk.end(), '\n'), 1) << chunk;
    EXPECT_EQ(chunk.back(), '\n');
  }
  EXPECT_EQ(Concat(served), stream);
}

TEST(ChaosByteSourceTest, StallsDelayButLoseNothing) {
  std::vector<std::string> chunks;
  std::string stream;
  for (int i = 0; i < 50; ++i) {
    chunks.push_back("line-" + std::to_string(i) + "\n");
    stream += chunks.back();
  }
  ScriptedSource inner(chunks);
  ChaosOptions options;
  options.seed = 11;
  options.stall_probability = 0.5;
  ChaosByteSource chaos(&inner, options);
  const std::vector<std::string> served = PumpDry(&chaos);
  EXPECT_EQ(Concat(served), stream);
  // With 50+ draws at p=0.5 the seeded schedule certainly stalled; the
  // exact count is pinned by the seed, replayable forever.
  EXPECT_GT(chaos.stats().stalls, 0u);
}

TEST(ChaosByteSourceTest, InjectedResetCutsMidStreamAndExhausts) {
  const std::string stream = "one\ntwo\nthree\nfour\n";
  ScriptedSource inner({"one\ntwo\n", "three\nfour\n"});
  ChaosOptions options;
  options.seed = 3;
  options.reset_probability = 1.0;
  ChaosByteSource chaos(&inner, options);
  const std::vector<std::string> served = PumpDry(&chaos);
  EXPECT_TRUE(chaos.reset_injected());
  EXPECT_TRUE(chaos.exhausted());
  EXPECT_EQ(chaos.stats().resets, 1u);
  // Whatever arrived is a strict prefix of the stream — a reset drops
  // the tail, it never reorders or invents bytes.
  const std::string got = Concat(served);
  EXPECT_LT(got.size(), stream.size());
  EXPECT_EQ(stream.compare(0, got.size(), got), 0);
}

TEST(ChaosByteSourceTest, CorruptionFlipsBytesButNeverFraming) {
  std::string stream;
  std::vector<std::string> chunks;
  for (int i = 0; i < 20; ++i) {
    chunks.push_back("payload-" + std::to_string(i) + "-data\n");
    stream += chunks.back();
  }
  ScriptedSource inner(chunks);
  ChaosOptions options;
  options.seed = 5;
  options.corrupt_probability = 1.0;
  ChaosByteSource chaos(&inner, options);
  const std::string got = Concat(PumpDry(&chaos));
  ASSERT_EQ(got.size(), stream.size());
  std::uint64_t flipped = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Newlines are sacred: corruption damages exactly the line it hits
    // and nothing downstream.
    ASSERT_EQ(stream[i] == '\n', got[i] == '\n') << "at byte " << i;
    if (stream[i] != got[i]) ++flipped;
  }
  EXPECT_GT(flipped, 0u);
  EXPECT_EQ(chaos.stats().corruptions, flipped);
}

TEST(ChaosByteSourceTest, SameSeedReplaysTheExactFaultSequence) {
  const std::vector<std::string> chunks = {"aa\nbb\n", "cc\ndd\n", "ee\nff\n"};
  ChaosOptions options;
  options.seed = 42;
  options.stall_probability = 0.3;
  options.corrupt_probability = 0.3;
  options.trickle = true;
  std::vector<std::string> first;
  std::vector<std::string> second;
  ChaosStats stats_first;
  ChaosStats stats_second;
  {
    ScriptedSource inner(chunks);
    ChaosByteSource chaos(&inner, options);
    first = PumpDry(&chaos);
    stats_first = chaos.stats();
  }
  {
    ScriptedSource inner(chunks);
    ChaosByteSource chaos(&inner, options);
    second = PumpDry(&chaos);
    stats_second = chaos.stats();
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(stats_first.stalls, stats_second.stalls);
  EXPECT_EQ(stats_first.corruptions, stats_second.corruptions);
  EXPECT_EQ(stats_first.writes, stats_second.writes);
}

// ---------------------------------------------------------------------
// Live-server chaos matrix.

TEST(NetChaosTest, LosslessFaultMixConvergesToBaselineAcrossSeeds) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  const std::string log_a =
      MakeLog({"10.20.0.1", "10.20.0.2"}, /*rounds=*/12, num_pages,
              1000000000);
  const std::string log_b =
      MakeLog({"10.20.1.1"}, /*rounds=*/12, num_pages, 1000000000);
  const Canonical expected = IngestDirect(graph, log_a + log_b, 2);
  // Trickle, stalls and short writes reorder nothing and drop nothing:
  // whatever the seed, the server must absorb the mangled arrival
  // pattern into exactly the baseline sessions.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    obs::MetricRegistry registry;
    CollectingSessionSink sink;
    DeadLetterQueue dead_letters;
    Harness harness(&registry);
    ASSERT_TRUE(harness
                    .Start(EngineOptions().set_num_shards(2).use_smart_sra(
                               &graph),
                           &sink, &dead_letters, ServerOptions{})
                    .ok());
    ChaosOptions trickle;
    trickle.seed = seed;
    trickle.trickle = true;
    ChaosOptions jitter;
    jitter.seed = seed + 100;
    jitter.stall_probability = 0.3;
    jitter.stall_ms = 1;
    jitter.short_write_probability = 0.5;
    Result<ChaosClientOutcome> client_a = StreamWithChaos(
        harness.server->port(), log_a, "chaos-a-" + std::to_string(seed),
        trickle, /*chunk=*/48);
    ASSERT_TRUE(client_a.ok()) << client_a.status().message();
    EXPECT_FALSE(client_a->reset);
    // The admin plane answers while the data plane is being abused.
    Result<std::string> ping =
        AdminCommand(harness.server->admin_port(), "PING");
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(*ping, "OK");
    Result<ChaosClientOutcome> client_b = StreamWithChaos(
        harness.server->port(), log_b, "chaos-b-" + std::to_string(seed),
        jitter, /*chunk=*/48);
    ASSERT_TRUE(client_b.ok()) << client_b.status().message();
    EXPECT_FALSE(client_b->reset);
    ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read",
                               log_a.size() + log_b.size()));
    ASSERT_TRUE(harness.Quiesce().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(Canonicalize(sink.entries()), expected) << "seed " << seed;
    EXPECT_EQ(dead_letters.total_offered(), 0u) << "seed " << seed;
  }
}

TEST(NetChaosTest, CorruptingClientStaysConservedAndAttributed) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  const int rounds = 30;
  const std::string log =
      MakeLog({"10.21.0.1"}, rounds, num_pages, 1000000000);
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  ChaosOptions corrupting;
  corrupting.seed = 9;
  corrupting.corrupt_probability = 1.0;
  // Anonymous and one line per Send: every line arrives with exactly
  // one flipped byte and must land as either an accepted (if still
  // parseable) record or a dead letter naming the producer — never
  // vanish, never crash the server.
  std::vector<std::string> lines;
  for (std::size_t at = 0; at < log.size();) {
    const std::size_t end = log.find('\n', at) + 1;
    lines.push_back(log.substr(at, end - at));
    at = end;
  }
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(rounds));
  {
    Result<Fd> socket = ConnectTcp("127.0.0.1", harness.server->port());
    ASSERT_TRUE(socket.ok());
    ChaosSocket chaos(std::move(*socket), corrupting);
    for (const std::string& line : lines) {
      ASSERT_TRUE(chaos.Send(line).ok());
    }
    EXPECT_EQ(chaos.stats().corruptions, static_cast<std::uint64_t>(rounds));
  }
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", log.size()));
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  // Conservation: accepted + quarantined == sent.
  std::uint64_t rejected_lines = 0;
  for (const DeadLetter& letter : dead_letters.Drain()) {
    EXPECT_EQ(letter.stage, DeadLetter::Stage::kParse);
    EXPECT_NE(letter.detail.find("anonymous"), std::string::npos);
    rejected_lines += letter.records_covered;
  }
  EXPECT_EQ(harness.engine->records_seen() + rejected_lines,
            static_cast<std::uint64_t>(rounds));
}

TEST(NetChaosTest, InjectedResetsCostAtMostTheCutLine) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(2).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  // A squadron of producers whose schedules RST mid-payload. After each
  // casualty the server must still answer PING, and at the end the only
  // acceptable damage is partial lines (records_covered == 0 letters) —
  // every complete line that arrived before the RST may count, but
  // Linux discards undelivered bytes on reset, so byte-exact totals are
  // not assertable; the invariants are survival and attribution.
  std::uint64_t resets_fired = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string log = MakeLog({"10.22." + std::to_string(i) + ".1"},
                                    /*rounds=*/10, num_pages, 1000000000);
    ChaosOptions resetting;
    resetting.seed = static_cast<std::uint64_t>(100 + i);
    resetting.reset_probability = 0.4;
    Result<ChaosClientOutcome> outcome =
        StreamWithChaos(harness.server->port(), log,
                        "rst-" + std::to_string(i), resetting, /*chunk=*/32);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    resets_fired += outcome->stats.resets;
    Result<std::string> ping =
        AdminCommand(harness.server->admin_port(), "PING");
    ASSERT_TRUE(ping.ok()) << ping.status().message();
    EXPECT_EQ(*ping, "OK");
  }
  // p=0.4 per write over 6 clients x ~20 writes: the seeded schedules
  // certainly fired at least once (deterministic per seed).
  EXPECT_GT(resets_fired, 0u);
  ASSERT_TRUE(harness.Quiesce().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  for (const DeadLetter& letter : dead_letters.Drain()) {
    EXPECT_EQ(letter.records_covered, 0u) << letter.detail;
    // A reset that lands mid-HELLO cuts the handshake before the id
    // registers, so that connection's partial is attributed to
    // "anonymous" — still a named producer slot, never silent.
    const bool attributed =
        letter.detail.find("rst-") != std::string::npos ||
        letter.detail.find("anonymous") != std::string::npos;
    EXPECT_TRUE(attributed) << letter.detail;
    EXPECT_NE(letter.detail.find("partial line carried at close"),
              std::string::npos)
        << letter.detail;
  }
}

// ---------------------------------------------------------------------
// Chaos + checkpoint/resume convergence.

TEST(NetChaosTest, ChaoticReplayAfterCrashConvergesToBaseline) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  const std::string log_a =
      MakeLog({"10.23.0.1", "10.23.0.2"}, /*rounds=*/16, num_pages,
              1000000000);
  const std::string log_b =
      MakeLog({"10.23.1.1"}, /*rounds=*/16, num_pages, 1000000000);
  const Canonical expected = IngestDirect(graph, log_a + log_b, 2);
  const fs::path dir =
      fs::path(testing::TempDir()) / "net_chaos_resume_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto SplitAt = [](const std::string& log, double fraction) {
    const std::size_t boundary =
        log.find('\n', static_cast<std::size_t>(log.size() * fraction));
    return boundary + 1;
  };
  const std::size_t split_a = SplitAt(log_a, 0.5);
  const std::size_t split_b = SplitAt(log_b, 0.3);

  std::vector<CollectingSessionSink::Entry> journal;
  std::mutex journal_mutex;
  CallbackSessionSink sink([&](const std::string& user_key, Session session) {
    std::lock_guard<std::mutex> lock(journal_mutex);
    journal.push_back({user_key, std::move(session)});
    return Status::OK();
  });
  const StreamEngine::SinkStateFn journal_state = [&]() -> Result<std::string> {
    std::lock_guard<std::mutex> lock(journal_mutex);
    return std::to_string(journal.size());
  };

  const auto ChaosFor = [](std::uint64_t seed) {
    ChaosOptions options;
    options.seed = seed;
    options.trickle = seed % 2 == 0;
    options.stall_probability = 0.25;
    options.stall_ms = 1;
    options.short_write_probability = 0.4;
    return options;
  };

  // --- Phase 1: chaotic prefixes, CHECKPOINT, then "crash".
  {
    obs::MetricRegistry registry;
    DeadLetterQueue dead_letters;
    ServerOptions server_options;
    server_options.ingest.checkpoint_dir = dir.string();
    server_options.ingest.checkpoint_every_records = 1000000;
    server_options.journal_state = journal_state;
    Harness harness(&registry);
    ASSERT_TRUE(harness
                    .Start(EngineOptions().set_num_shards(2).use_smart_sra(
                               &graph),
                           &sink, &dead_letters, std::move(server_options))
                    .ok());
    Result<ChaosClientOutcome> a =
        StreamWithChaos(harness.server->port(), log_a.substr(0, split_a),
                        "alice", ChaosFor(21), /*chunk=*/40);
    ASSERT_TRUE(a.ok()) << a.status().message();
    Result<ChaosClientOutcome> b =
        StreamWithChaos(harness.server->port(), log_b.substr(0, split_b),
                        "bob", ChaosFor(22), /*chunk=*/40);
    ASSERT_TRUE(b.ok()) << b.status().message();
    ASSERT_TRUE(
        WaitForCounter(&registry, "net.bytes_read", split_a + split_b));
    Result<std::string> checkpointed =
        AdminCommand(harness.server->admin_port(), "CHECKPOINT");
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().message();
    EXPECT_EQ(checkpointed->rfind("OK records_seen=", 0), 0u) << *checkpointed;
    ASSERT_TRUE(harness.Quiesce().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(dead_letters.total_offered(), 0u);
  }

  // --- Phase 2: resume; both clients replay their whole log from byte
  // zero through fresh chaos schedules; the server discards what the
  // checkpoint covers.
  {
    EngineOptions options;
    options.set_num_shards(2).use_smart_sra(&graph);
    options.resume_from(dir.string()).resume_with_external_replay();
    Result<std::unique_ptr<StreamEngine>> resumed =
        StreamEngine::Create(options, &sink);
    ASSERT_TRUE(resumed.ok()) << resumed.status().message();
    ASSERT_TRUE((*resumed)->resumed());

    std::string committed_state;
    ClientOffsets offsets;
    ASSERT_TRUE(DecodeServeSinkState((*resumed)->resumed_sink_state(),
                                     &committed_state, &offsets)
                    .ok());
    // Chaos never moved a checkpoint off a line boundary: the committed
    // offsets are exactly the complete-line prefixes that were sent.
    std::sort(offsets.begin(), offsets.end());
    ASSERT_EQ(offsets.size(), 2u);
    EXPECT_EQ(offsets[0],
              (std::pair<std::string, std::uint64_t>("alice", split_a)));
    EXPECT_EQ(offsets[1],
              (std::pair<std::string, std::uint64_t>("bob", split_b)));
    std::uint64_t committed = 0;
    for (char digit : committed_state) {
      committed = committed * 10 + static_cast<std::uint64_t>(digit - '0');
    }
    {
      std::lock_guard<std::mutex> lock(journal_mutex);
      ASSERT_LE(committed, journal.size());
      journal.resize(committed);
    }

    obs::MetricRegistry registry;
    DeadLetterQueue dead_letters;
    ServerOptions server_options;
    server_options.ingest.checkpoint_dir = dir.string();
    server_options.ingest.checkpoint_every_records = 1000000;
    server_options.journal_state = journal_state;
    server_options.metrics = &registry;
    Result<std::unique_ptr<LogServer>> server = LogServer::Start(
        std::move(server_options), resumed->get(), &dead_letters, offsets);
    ASSERT_TRUE(server.ok()) << server.status().message();
    Status serve_status;
    std::thread serve_thread([&] { serve_status = (*server)->Serve(); });
    Result<ChaosClientOutcome> a = StreamWithChaos(
        (*server)->port(), log_a, "alice", ChaosFor(31), /*chunk=*/56);
    ASSERT_TRUE(a.ok()) << a.status().message();
    Result<ChaosClientOutcome> b = StreamWithChaos(
        (*server)->port(), log_b, "bob", ChaosFor(32), /*chunk=*/56);
    ASSERT_TRUE(b.ok()) << b.status().message();
    Result<std::string> reply =
        AdminCommand((*server)->admin_port(), "QUIESCE");
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    serve_thread.join();
    ASSERT_TRUE(serve_status.ok()) << serve_status.message();
    EXPECT_EQ(dead_letters.total_offered(), 0u);
  }
  EXPECT_EQ(Canonicalize(journal), expected);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wum::net
