// EngineOptions::Validate contract tests: every misconfiguration that
// used to be silently clamped, asserted on, or discovered deep inside
// shard bring-up is now a precise InvalidArgument/NotFound from Create,
// with a message that names the fix. A valid configuration still
// creates an engine.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

/// Runs Create with the given options against a throwaway sink and
/// expects a failure whose message contains `expected`.
void ExpectCreateFails(EngineOptions options, const std::string& expected) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine =
      StreamEngine::Create(std::move(options), &sink);
  ASSERT_FALSE(engine.ok()) << "expected failure mentioning: " << expected;
  EXPECT_NE(engine.status().message().find(expected), std::string::npos)
      << "actual message: " << engine.status().message();
}

TEST(EngineValidateTest, ZeroShardsRejected) {
  ExpectCreateFails(EngineOptions().set_num_shards(0).use_duration()
                        .set_num_pages(4),
                    "num_shards must be >= 1");
}

TEST(EngineValidateTest, ZeroQueueCapacityRejected) {
  ExpectCreateFails(EngineOptions().set_queue_capacity(0).use_duration()
                        .set_num_pages(4),
                    "queue_capacity must be >= 1");
}

TEST(EngineValidateTest, UnsetHeuristicRejectedWithGuidance) {
  ExpectCreateFails(EngineOptions().set_num_pages(4), "choose a heuristic");
}

TEST(EngineValidateTest, UnknownHeuristicListsTheRegistry) {
  EngineOptions options;
  options.set_num_pages(4).use_heuristic("does-not-exist");
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine =
      StreamEngine::Create(std::move(options), &sink);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsNotFound());
  // The error names the registry's actual contents, so it cannot drift.
  EXPECT_NE(engine.status().message().find("duration"), std::string::npos)
      << engine.status().message();
}

TEST(EngineValidateTest, GraphHeuristicWithoutGraphRejected) {
  ExpectCreateFails(EngineOptions().set_num_pages(4).use_heuristic("smart-sra"),
                    "needs a web graph");
}

TEST(EngineValidateTest, UnderivableNumPagesRejected) {
  ExpectCreateFails(EngineOptions().use_duration(),
                    "set_num_pages is required");
}

TEST(EngineValidateTest, ZeroRetryAttemptsRejected) {
  RetryOptions retry;
  retry.max_attempts = 0;
  ExpectCreateFails(
      EngineOptions().set_num_pages(4).use_duration().set_retry(retry),
      "max_attempts must be >= 1");
}

TEST(EngineValidateTest, ShedWithoutDeadLetterBudgetRejected) {
  ExpectCreateFails(EngineOptions()
                        .set_num_pages(4)
                        .use_duration()
                        .set_offer_policy(OfferPolicy::kShed),
                    "requires a dead-letter budget");
}

TEST(EngineValidateTest, ExternalReplayWithoutResumeDirRejected) {
  ExpectCreateFails(EngineOptions()
                        .set_num_pages(4)
                        .use_duration()
                        .resume_with_external_replay(),
                    "requires resume_from");
}

TEST(EngineValidateTest, ValidConfigurationStillCreates) {
  WebGraph graph = MakeFigure1Topology();
  DeadLetterQueue dead_letters;
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(2)
          .set_offer_policy(OfferPolicy::kShed)
          .set_dead_letters(&dead_letters)
          .use_smart_sra(&graph),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EXPECT_TRUE((*engine)->Finish().ok());
}

}  // namespace
}  // namespace wum
