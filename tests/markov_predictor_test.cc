#include "wum/mining/markov_predictor.h"

#include <gtest/gtest.h>

#include "wum/common/random.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

TEST(MarkovPredictorTest, EmptyModelPredictsNothing) {
  MarkovPredictor model(10);
  EXPECT_TRUE(model.PredictNext(3, 5).empty());
  EXPECT_DOUBLE_EQ(model.TransitionProbability(3, 4), 0.0);
  EXPECT_EQ(model.transitions_observed(), 0u);
  EXPECT_EQ(model.states_observed(), 0u);
}

TEST(MarkovPredictorTest, CountsTransitions) {
  MarkovPredictor model(10);
  ASSERT_TRUE(model.Train({1, 2, 3, 2, 3}).ok());
  EXPECT_EQ(model.transitions_observed(), 4u);
  EXPECT_EQ(model.states_observed(), 3u);  // 1, 2, 3
  EXPECT_DOUBLE_EQ(model.TransitionProbability(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(2, 1), 0.0);
}

TEST(MarkovPredictorTest, ProbabilitiesNormalize) {
  MarkovPredictor model(10);
  ASSERT_TRUE(model.TrainAll({{1, 2}, {1, 2}, {1, 3}}).ok());
  EXPECT_DOUBLE_EQ(model.TransitionProbability(1, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(model.TransitionProbability(1, 3), 1.0 / 3.0);
}

TEST(MarkovPredictorTest, TopKOrderedByCountThenId) {
  MarkovPredictor model(10);
  ASSERT_TRUE(model.TrainAll({{1, 5}, {1, 5}, {1, 2}, {1, 2}, {1, 9}}).ok());
  // Counts: 5 -> 2, 2 -> 2, 9 -> 1. Tie between 2 and 5 broken by id.
  EXPECT_EQ(model.PredictNext(1, 2), (std::vector<PageId>{2, 5}));
  EXPECT_EQ(model.PredictNext(1, 10), (std::vector<PageId>{2, 5, 9}));
  EXPECT_TRUE(model.PredictNext(1, 0).empty());
}

TEST(MarkovPredictorTest, SingletonSessionsCarryNoTransitions) {
  MarkovPredictor model(10);
  ASSERT_TRUE(model.Train({4}).ok());
  ASSERT_TRUE(model.Train({}).ok());
  EXPECT_EQ(model.transitions_observed(), 0u);
}

TEST(MarkovPredictorTest, RejectsOutOfRangePages) {
  MarkovPredictor model(3);
  EXPECT_TRUE(model.Train({1, 7}).IsInvalidArgument());
  // Rejected sessions leave the model untouched.
  EXPECT_EQ(model.transitions_observed(), 0u);
}

TEST(EvaluatePredictorTest, HitRateComputation) {
  MarkovPredictor model(10);
  ASSERT_TRUE(model.TrainAll({{1, 2}, {1, 2}, {1, 3}, {2, 4}}).ok());
  // Test transitions: 1->2 (hit@1), 1->3 (miss@1), 7->1 (skipped: unseen).
  PredictionScore score =
      EvaluatePredictor(model, {{1, 2}, {1, 3}, {7, 1}}, 1);
  EXPECT_EQ(score.predictions, 2u);
  EXPECT_EQ(score.hits, 1u);
  EXPECT_EQ(score.skipped, 1u);
  EXPECT_DOUBLE_EQ(score.hit_rate(), 0.5);
  // At k=2 both successors of 1 are predicted.
  PredictionScore score2 =
      EvaluatePredictor(model, {{1, 2}, {1, 3}}, 2);
  EXPECT_EQ(score2.hits, 2u);
}

TEST(EvaluatePredictorTest, EmptyTestSet) {
  MarkovPredictor model(4);
  PredictionScore score = EvaluatePredictor(model, {}, 3);
  EXPECT_EQ(score.predictions, 0u);
  EXPECT_DOUBLE_EQ(score.hit_rate(), 0.0);
}

TEST(MarkovPredictorTest, SmartSraTrainedModelPredictsBetterThanPageStay) {
  // End-to-end: train a model per heuristic on one workload, test on the
  // ground truth of a held-out workload from the same site.
  Rng site_rng(21);
  SiteGeneratorOptions site;
  site.num_pages = 120;
  site.mean_out_degree = 6.0;
  WebGraph graph = *GenerateUniformSite(site, &site_rng);
  WorkloadOptions population;
  population.num_agents = 400;
  Rng train_rng(1001);
  Workload train = *SimulateWorkload(graph, AgentProfile(), population,
                                     &train_rng);
  Rng test_rng(2002);
  Workload test = *SimulateWorkload(graph, AgentProfile(), population,
                                    &test_rng);
  std::vector<std::vector<PageId>> test_corpus;
  for (const AgentRun& agent : test.agents) {
    for (const Session& session : agent.trace.real_sessions) {
      test_corpus.push_back(session.PageSequence());
    }
  }

  auto hit_rate_for = [&](const Sessionizer& heuristic) {
    MarkovPredictor model(graph.num_pages());
    for (const AgentRun& agent : train.agents) {
      auto sessions = heuristic.Reconstruct(agent.trace.server_requests);
      EXPECT_TRUE(sessions.ok());
      for (const Session& session : *sessions) {
        EXPECT_TRUE(model.Train(session.PageSequence()).ok());
      }
    }
    return EvaluatePredictor(model, test_corpus, 3).hit_rate();
  };

  SmartSra smart_sra(&graph);
  PageStaySessionizer pagestay;
  const double sra_rate = hit_rate_for(smart_sra);
  const double pagestay_rate = hit_rate_for(pagestay);
  EXPECT_GT(sra_rate, 0.3);           // predicting 3 of ~6 links beats chance
  EXPECT_GE(sra_rate, pagestay_rate); // cleaner transitions train better
}

}  // namespace
}  // namespace wum
