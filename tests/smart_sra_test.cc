#include "wum/session/smart_sra.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "wum/topology/site_generator.h"

namespace wum {
namespace {

// Figure 1 ids: 0=P1, 1=P13, 2=P20, 3=P23, 4=P34, 5=P49.

std::vector<std::vector<PageId>> PageSequences(
    const std::vector<Session>& sessions) {
  std::vector<std::vector<PageId>> sequences;
  sequences.reserve(sessions.size());
  for (const Session& session : sessions) {
    sequences.push_back(session.PageSequence());
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

TEST(SmartSraTest, ReproducesPaperTables3And4) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  // Table 3: P1, P20, P13, P49, P34, P23 at minutes 0, 6, 9, 12, 14, 15.
  auto requests = MakeSession({0, 2, 1, 5, 4, 3},
                              {Minutes(0), Minutes(6), Minutes(9),
                               Minutes(12), Minutes(14), Minutes(15)})
                      .requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  // The paper's three maximal sessions:
  //   [P1, P13, P34, P23], [P1, P13, P49, P23], [P1, P20, P23].
  std::vector<std::vector<PageId>> expected = {
      {0, 1, 4, 3}, {0, 1, 5, 3}, {0, 2, 3}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(SmartSraTest, Phase1MatchesBothTimeRules) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  // Table 1 timings (0, 6, 15, 29, 32, 47 min): the page-stay rule cuts
  // at 15->29 (14 min) and 32->47 (15 min).
  auto requests = MakeSession({0, 2, 1, 5, 4, 3},
                              {Minutes(0), Minutes(6), Minutes(15),
                               Minutes(29), Minutes(32), Minutes(47)})
                      .requests;
  std::vector<Session> candidates = heuristic.Phase1(requests);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].PageSequence(), (std::vector<PageId>{0, 2, 1}));
  EXPECT_EQ(candidates[1].PageSequence(), (std::vector<PageId>{5, 4}));
  EXPECT_EQ(candidates[2].PageSequence(), (std::vector<PageId>{3}));
}

TEST(SmartSraTest, OutputSatisfiesBothRules) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 2, 1, 5, 4, 3},
                              {Minutes(0), Minutes(6), Minutes(9),
                               Minutes(12), Minutes(14), Minutes(15)})
                      .requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  for (const Session& session : *sessions) {
    EXPECT_TRUE(SatisfiesTopologyRule(session, graph))
        << SessionToString(session);
    EXPECT_TRUE(SatisfiesTimestampRule(
        session, heuristic.options().thresholds.max_page_stay))
        << SessionToString(session);
  }
}

TEST(SmartSraTest, UnrelatedPagesBecomeSingletonSessions) {
  WebGraph graph(3);  // no edges at all
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 1, 2}, {0, 60, 120}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0}, {1}, {2}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(SmartSraTest, ExtensionRejectsBackwardTime) {
  // Topology: 0 -> 1 and 2 -> 1. Stream [0@0, 1@300, 2@540].
  // Occurrence 2 is removed in iteration 1 (nothing links to it), so the
  // session [2] exists when 1 is placed; Link[2, 1] holds but extending
  // [2@540] with 1@300 would run backwards in time and must be refused.
  WebGraph graph(3);
  graph.AddLink(0, 1);
  graph.AddLink(2, 1);
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 1, 2}, {0, 300, 540}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 1}, {2}};
  EXPECT_EQ(PageSequences(*sessions), expected);
  for (const Session& session : *sessions) {
    EXPECT_TRUE(SatisfiesTimestampRule(session, Minutes(10)));
  }
}

TEST(SmartSraTest, ReferrerBeyondPageStayDoesNotCount) {
  // 0 -> 1 exists but 11 minutes apart: 1 opens its own session even
  // though the candidate (via an intermediate page) stays unbroken.
  WebGraph graph(3);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(2, 0);  // filler links; keep phase 1 in one candidate
  SmartSra heuristic(&graph);
  auto requests =
      MakeSession({0, 2, 1}, {0, Minutes(9), Minutes(11)}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  // 1's only referrer (0) is 11 min away (> rho), and 2 has no link to 1,
  // so [1] must be a separate session; [0, 2] follows the 0->2 link.
  std::vector<std::vector<PageId>> expected = {{0, 2}, {1}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(SmartSraTest, BranchingProducesAllMaximalPaths) {
  // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(1, 3);
  graph.AddLink(2, 3);
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 1, 2, 3}, {0, 60, 120, 180}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 1, 3}, {0, 2, 3}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

TEST(SmartSraTest, SessionLimitGuardsExponentialBlowup) {
  // Chain of diamonds: each layer doubles the number of maximal paths.
  constexpr int kDiamonds = 6;  // 64 paths
  WebGraph graph(3 * kDiamonds + 1);
  std::vector<PageRequest> requests;
  TimeSeconds t = 0;
  PageId junction = 0;
  requests.push_back(PageRequest{junction, t});
  for (int d = 0; d < kDiamonds; ++d) {
    PageId left = static_cast<PageId>(3 * d + 1);
    PageId right = static_cast<PageId>(3 * d + 2);
    PageId next = static_cast<PageId>(3 * d + 3);
    graph.AddLink(junction, left);
    graph.AddLink(junction, right);
    graph.AddLink(left, next);
    graph.AddLink(right, next);
    requests.push_back(PageRequest{left, t += 10});
    requests.push_back(PageRequest{right, t += 10});
    requests.push_back(PageRequest{next, t += 10});
    junction = next;
  }
  SmartSra::Options tight;
  tight.max_sessions_per_candidate = 8;
  SmartSra limited(&graph, tight);
  EXPECT_TRUE(limited.Reconstruct(requests).status().IsOutOfRange());

  SmartSra::Options roomy;
  roomy.max_sessions_per_candidate = 1 << 12;
  SmartSra unlimited(&graph, roomy);
  Result<std::vector<Session>> sessions = unlimited.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->size(), 1u << kDiamonds);
}

TEST(SmartSraTest, DeduplicationRemovesIdenticalBranches) {
  // Two occurrences of page 1 can yield identical extension sessions;
  // at minimum, dedup must leave no exact duplicates.
  WebGraph graph(3);
  graph.AddLink(0, 1);
  graph.AddLink(1, 2);
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 1, 2}, {0, 10, 20}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  auto sequences = PageSequences(*sessions);
  EXPECT_EQ(std::adjacent_find(sequences.begin(), sequences.end()),
            sequences.end());
}

TEST(SmartSraTest, EmptyAndSingleInput) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  EXPECT_TRUE(heuristic.Reconstruct({})->empty());
  auto requests = MakeSession({4}, {1000}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{4}));
}

TEST(SmartSraTest, RejectsInvalidStreams) {
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  auto unsorted = MakeSession({0, 1}, {60, 0}).requests;
  EXPECT_TRUE(heuristic.Reconstruct(unsorted).status().IsInvalidArgument());
  auto out_of_range = MakeSession({77}, {0}).requests;
  EXPECT_TRUE(
      heuristic.Reconstruct(out_of_range).status().IsInvalidArgument());
}

TEST(SmartSraTest, Name) {
  WebGraph graph = MakeFigure1Topology();
  EXPECT_EQ(SmartSra(&graph).name(), "heur4-smart-sra");
}

TEST(SmartSraTest, Phase2HandlesDuplicateOccurrences) {
  // The same page requested twice (e.g. via a shared proxy): both
  // occurrences must survive into the output.
  WebGraph graph(2);
  graph.AddLink(0, 1);
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 0, 1}, {0, 30, 60}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::size_t zero_occurrences = 0;
  for (const Session& session : *sessions) {
    for (const PageRequest& request : session.requests) {
      if (request.page == 0) ++zero_occurrences;
    }
  }
  EXPECT_GE(zero_occurrences, 2u);
}

TEST(SmartSraTest, RecoversInterleavedSessionsTheTimeHeuristicsCannot) {
  // The paper's behaviour-3 motif: user walks P1 -> P13 -> P34, backtracks
  // to P1 through the cache, then requests P20. The log is
  // [P1, P13, P34, P20]; the real sessions are [P1, P13, P34] and
  // [P1, P20]. Smart-SRA recovers both exactly.
  WebGraph graph = MakeFigure1Topology();
  SmartSra heuristic(&graph);
  auto requests = MakeSession({0, 1, 4, 2}, {0, 120, 240, 420}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  std::vector<std::vector<PageId>> expected = {{0, 1, 4}, {0, 2}};
  EXPECT_EQ(PageSequences(*sessions), expected);
}

}  // namespace
}  // namespace wum
