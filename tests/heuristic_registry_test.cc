// HeuristicRegistry: the one heuristic-name -> factory table. Checks the
// default entries, both construction forms, and the error contract.

#include "wum/stream/heuristic_registry.h"

#include <gtest/gtest.h>

#include "wum/topology/web_graph.h"

namespace wum {
namespace {

WebGraph ChainGraph() {
  WebGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(1, 2);
  graph.AddLink(2, 3);
  return graph;
}

std::vector<PageRequest> Requests() {
  return {{0, 0}, {1, 10}, {2, 20}, {3, 30}};
}

TEST(HeuristicRegistryTest, DefaultHasPaperHeuristicsInPaperOrder) {
  const HeuristicRegistry& registry = HeuristicRegistry::Default();
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"duration", "pagestay", "navigation",
                                      "smart-sra"}));
  EXPECT_EQ(registry.NamesForUsage(), "duration|pagestay|navigation|smart-sra");
  for (const std::string& name : registry.Names()) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    const HeuristicRegistry::Entry* entry = registry.Find(name);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->description.empty());
  }
  // The referrer oracle is deliberately not a registry entry (different
  // input type); tools special-case it.
  EXPECT_FALSE(registry.Contains("referrer"));
}

TEST(HeuristicRegistryTest, CreateBatchBuildsEveryHeuristic) {
  const HeuristicRegistry& registry = HeuristicRegistry::Default();
  WebGraph graph = ChainGraph();
  HeuristicContext context;
  context.graph = &graph;
  for (const std::string& name : registry.Names()) {
    Result<std::unique_ptr<Sessionizer>> sessionizer =
        registry.CreateBatch(name, context);
    ASSERT_TRUE(sessionizer.ok()) << name;
    ASSERT_NE(*sessionizer, nullptr) << name;
    // Every built heuristic must run on a simple stream.
    Result<std::vector<Session>> sessions =
        (*sessionizer)->Reconstruct(Requests());
    EXPECT_TRUE(sessions.ok()) << name;
  }
}

TEST(HeuristicRegistryTest, CreateIncrementalBuildsEveryHeuristic) {
  const HeuristicRegistry& registry = HeuristicRegistry::Default();
  WebGraph graph = ChainGraph();
  HeuristicContext context;
  context.graph = &graph;
  for (const std::string& name : registry.Names()) {
    Result<UserSessionizerFactory> factory =
        registry.CreateIncremental(name, context);
    ASSERT_TRUE(factory.ok()) << name;
    std::unique_ptr<IncrementalUserSessionizer> sessionizer = (*factory)();
    ASSERT_NE(sessionizer, nullptr) << name;
    std::vector<Session> emitted;
    auto emit = [&emitted](Session session) {
      emitted.push_back(std::move(session));
      return Status::OK();
    };
    for (const PageRequest& request : Requests()) {
      ASSERT_TRUE(sessionizer->OnRequest(request, emit).ok()) << name;
    }
    ASSERT_TRUE(sessionizer->Flush(emit).ok()) << name;
    EXPECT_FALSE(emitted.empty()) << name;
  }
}

TEST(HeuristicRegistryTest, UnknownNameIsNotFoundAndListsValidNames) {
  HeuristicContext context;
  Result<std::unique_ptr<Sessionizer>> sessionizer =
      HeuristicRegistry::Default().CreateBatch("h5", context);
  ASSERT_FALSE(sessionizer.ok());
  EXPECT_EQ(sessionizer.status().code(), StatusCode::kNotFound);
  EXPECT_NE(sessionizer.status().message().find("smart-sra"),
            std::string::npos);
}

TEST(HeuristicRegistryTest, GraphHeuristicsRequireGraph) {
  HeuristicContext context;  // graph == nullptr
  for (const std::string name : {"navigation", "smart-sra"}) {
    Result<std::unique_ptr<Sessionizer>> batch =
        HeuristicRegistry::Default().CreateBatch(name, context);
    ASSERT_FALSE(batch.ok()) << name;
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument) << name;
    Result<UserSessionizerFactory> incremental =
        HeuristicRegistry::Default().CreateIncremental(name, context);
    ASSERT_FALSE(incremental.ok()) << name;
    EXPECT_EQ(incremental.status().code(), StatusCode::kInvalidArgument)
        << name;
  }
  // Time heuristics ignore the graph.
  EXPECT_TRUE(
      HeuristicRegistry::Default().CreateBatch("duration", context).ok());
  EXPECT_TRUE(
      HeuristicRegistry::Default().CreateBatch("pagestay", context).ok());
}

TEST(HeuristicRegistryTest, ThresholdsReachTheHeuristics) {
  // delta = 15s splits the 0/10/20/30 stream after the second request;
  // the paper default (30 min) would keep it whole.
  HeuristicContext context;
  context.thresholds.max_session_duration = 15;
  Result<std::unique_ptr<Sessionizer>> sessionizer =
      HeuristicRegistry::Default().CreateBatch("duration", context);
  ASSERT_TRUE(sessionizer.ok());
  Result<std::vector<Session>> sessions =
      (*sessionizer)->Reconstruct(Requests());
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->size(), 2u);
}

}  // namespace
}  // namespace wum
