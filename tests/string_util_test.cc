#include "wum/common/string_util.h"

#include <gtest/gtest.h>

namespace wum {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, NoDelimiterYieldsWhole) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, EmptyInput) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foo", ""));
  EXPECT_FALSE(EndsWith("oo", "foo"));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC-12!"), "abc-12!");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(ParseInt64Test, ParsesValidInputs) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseInt64Test, RejectsInvalidInputs) {
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("12x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("x12").status().IsParseError());
  EXPECT_TRUE(ParseInt64("1.5").status().IsParseError());
  EXPECT_TRUE(ParseInt64(" 1").status().IsParseError());
  EXPECT_TRUE(ParseInt64("9223372036854775808").status().IsParseError());
}

TEST(ParseUint64Test, ParsesAndRejects) {
  EXPECT_EQ(*ParseUint64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_TRUE(ParseUint64("-1").status().IsParseError());
  EXPECT_TRUE(ParseUint64("18446744073709551616").status().IsParseError());
}

TEST(ParseDoubleTest, ParsesValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsInvalidInputs) {
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("abc").status().IsParseError());
  EXPECT_TRUE(ParseDouble("1.5x").status().IsParseError());
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"a"}, ","), "a");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace wum
