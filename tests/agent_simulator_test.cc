#include "wum/simulator/agent_simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "wum/topology/site_generator.h"

namespace wum {
namespace {

AgentProfile DefaultProfile() { return AgentProfile(); }

TEST(AgentProfileTest, DefaultsMatchTable5) {
  AgentProfile profile;
  EXPECT_DOUBLE_EQ(profile.stp, 0.05);
  EXPECT_DOUBLE_EQ(profile.lpp, 0.30);
  EXPECT_DOUBLE_EQ(profile.nip, 0.30);
  EXPECT_DOUBLE_EQ(profile.page_stay_mean_minutes, 2.2);
  EXPECT_DOUBLE_EQ(profile.page_stay_stddev_minutes, 0.5);
  EXPECT_TRUE(ValidateAgentProfile(profile).ok());
}

TEST(AgentProfileTest, Validation) {
  AgentProfile profile;
  profile.stp = 0.0;  // would never terminate
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.lpp = 1.0;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.nip = -0.1;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.page_stay_mean_minutes = 0.0;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.page_stay_stddev_minutes = -1.0;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.nip_gap_mean_minutes = 0.0;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
  profile = AgentProfile();
  profile.max_events = 0;
  EXPECT_TRUE(ValidateAgentProfile(profile).IsInvalidArgument());
}

TEST(AgentSimulatorTest, RequiresStartPages) {
  WebGraph graph(5);  // no start pages marked
  AgentSimulator simulator(&graph, DefaultProfile());
  Rng rng(1);
  EXPECT_TRUE(
      simulator.SimulateAgent(0, &rng).status().IsFailedPrecondition());
}

TEST(AgentSimulatorTest, DeterministicGivenSeed) {
  WebGraph graph = MakeFigure1Topology();
  AgentSimulator simulator(&graph, DefaultProfile());
  Rng rng_a(42);
  Rng rng_b(42);
  Result<AgentTrace> a = simulator.SimulateAgent(1000, &rng_a);
  Result<AgentTrace> b = simulator.SimulateAgent(1000, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->real_sessions, b->real_sessions);
  EXPECT_EQ(a->server_requests, b->server_requests);
  EXPECT_EQ(a->events.size(), b->events.size());
}

TEST(AgentSimulatorTest, FirstEventIsServerServedEntryPage) {
  WebGraph graph = MakeFigure1Topology();
  AgentSimulator simulator(&graph, DefaultProfile());
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    Result<AgentTrace> trace = simulator.SimulateAgent(500, &rng);
    ASSERT_TRUE(trace.ok());
    ASSERT_FALSE(trace->events.empty());
    const NavigationEvent& first = trace->events.front();
    EXPECT_EQ(first.kind, NavigationKind::kInitialEntry);
    EXPECT_FALSE(first.served_from_cache);
    EXPECT_TRUE(graph.IsStartPage(first.page));
    EXPECT_EQ(first.timestamp, 500);
  }
}

class SimulatorInvariantTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng site_rng(7);
    SiteGeneratorOptions options;
    options.num_pages = 60;
    options.mean_out_degree = 4.0;
    graph_ = *GenerateUniformSite(options, &site_rng);
  }
  WebGraph graph_{0};
};

TEST_P(SimulatorInvariantTest, GroundTruthSatisfiesBothRules) {
  AgentSimulator simulator(&graph_, DefaultProfile());
  Rng rng(GetParam());
  for (int agent = 0; agent < 30; ++agent) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (const Session& session : trace->real_sessions) {
      EXPECT_FALSE(session.empty());
      EXPECT_TRUE(SatisfiesTopologyRule(session, graph_))
          << SessionToString(session);
      EXPECT_TRUE(SatisfiesTimestampRule(session, Minutes(10)))
          << SessionToString(session);
    }
  }
}

TEST_P(SimulatorInvariantTest, ServerLogIsCacheFreeProjectionOfEvents) {
  AgentSimulator simulator(&graph_, DefaultProfile());
  Rng rng(GetParam() ^ 0x77);
  for (int agent = 0; agent < 30; ++agent) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    std::vector<PageRequest> expected;
    for (const NavigationEvent& event : trace->events) {
      if (!event.served_from_cache) {
        expected.push_back(PageRequest{event.page, event.timestamp});
      }
    }
    EXPECT_EQ(trace->server_requests, expected);
    // Log timestamps non-decreasing.
    for (std::size_t i = 1; i < trace->server_requests.size(); ++i) {
      EXPECT_GE(trace->server_requests[i].timestamp,
                trace->server_requests[i - 1].timestamp);
    }
  }
}

TEST_P(SimulatorInvariantTest, CacheSemantics) {
  // An event is served from cache iff its page appeared earlier in the
  // event stream (unbounded cache).
  AgentSimulator simulator(&graph_, DefaultProfile());
  Rng rng(GetParam() ^ 0x1234);
  for (int agent = 0; agent < 30; ++agent) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    std::vector<bool> seen(graph_.num_pages(), false);
    for (const NavigationEvent& event : trace->events) {
      EXPECT_EQ(event.served_from_cache, static_cast<bool>(seen[event.page]));
      seen[event.page] = true;
    }
  }
}

TEST_P(SimulatorInvariantTest, GroundTruthConcatenationEqualsEvents) {
  // Real sessions partition the client-side navigation exactly.
  AgentSimulator simulator(&graph_, DefaultProfile());
  Rng rng(GetParam() ^ 0xBEEF);
  for (int agent = 0; agent < 30; ++agent) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    std::vector<PageRequest> concatenated;
    for (const Session& session : trace->real_sessions) {
      concatenated.insert(concatenated.end(), session.requests.begin(),
                          session.requests.end());
    }
    std::vector<PageRequest> events;
    for (const NavigationEvent& event : trace->events) {
      events.push_back(PageRequest{event.page, event.timestamp});
    }
    EXPECT_EQ(concatenated, events);
  }
}

TEST_P(SimulatorInvariantTest, SessionBoundariesMatchBehaviourKinds) {
  // A new real session starts exactly at kNewStartPage or
  // kCacheBacktrack events (plus the initial entry).
  AgentSimulator simulator(&graph_, DefaultProfile());
  Rng rng(GetParam() ^ 0xF00D);
  for (int agent = 0; agent < 20; ++agent) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    std::size_t boundary_events = 0;
    for (const NavigationEvent& event : trace->events) {
      if (event.kind == NavigationKind::kInitialEntry ||
          event.kind == NavigationKind::kNewStartPage ||
          event.kind == NavigationKind::kCacheBacktrack) {
        ++boundary_events;
      }
    }
    EXPECT_EQ(trace->real_sessions.size(), boundary_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

TEST(AgentSimulatorTest, TerminationFollowsGeometricLaw) {
  // With STP = 0.5 and NIP = LPP = 0, the number of visited pages is
  // geometric with mean 2.
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.stp = 0.5;
  profile.lpp = 0.0;
  profile.nip = 0.0;
  AgentSimulator simulator(&graph, profile);
  Rng rng(99);
  double total_pages = 0;
  constexpr int kAgents = 4000;
  for (int i = 0; i < kAgents; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    total_pages += static_cast<double>(trace->events.size());
  }
  // Dead ends (P23 has no out-links) shorten some walks, so the observed
  // mean is slightly below 2.
  EXPECT_GT(total_pages / kAgents, 1.5);
  EXPECT_LT(total_pages / kAgents, 2.1);
}

TEST(AgentSimulatorTest, NipZeroNeverJumpsToNewStartPage) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.nip = 0.0;
  AgentSimulator simulator(&graph, profile);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (std::size_t e = 1; e < trace->events.size(); ++e) {
      EXPECT_NE(trace->events[e].kind, NavigationKind::kNewStartPage);
    }
  }
}

TEST(AgentSimulatorTest, LppZeroNeverBacktracks) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.lpp = 0.0;
  AgentSimulator simulator(&graph, profile);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (const NavigationEvent& event : trace->events) {
      EXPECT_NE(event.kind, NavigationKind::kCacheBacktrack);
      EXPECT_NE(event.kind, NavigationKind::kBranchAfterBack);
    }
  }
}

TEST(AgentSimulatorTest, BacktrackTargetIsCacheServedAndLinksOnward) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.lpp = 0.8;
  profile.nip = 0.0;
  profile.stp = 0.05;
  AgentSimulator simulator(&graph, profile);
  Rng rng(5);
  std::size_t backtracks = 0;
  for (int i = 0; i < 200; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (std::size_t e = 0; e < trace->events.size(); ++e) {
      if (trace->events[e].kind == NavigationKind::kCacheBacktrack) {
        ++backtracks;
        EXPECT_TRUE(trace->events[e].served_from_cache);
        ASSERT_LT(e + 1, trace->events.size());
        const NavigationEvent& branch = trace->events[e + 1];
        EXPECT_EQ(branch.kind, NavigationKind::kBranchAfterBack);
        EXPECT_FALSE(branch.served_from_cache);  // fresh page
        EXPECT_TRUE(graph.HasLink(trace->events[e].page, branch.page));
      }
    }
  }
  EXPECT_GT(backtracks, 10u);
}

TEST(AgentSimulatorTest, PageStayGapsWithinTenMinutes) {
  // Behaviours 2 and 3 keep inter-request gaps under the 10-minute
  // page-stay bound; only behaviour-1 re-entries (a fresh visit typed
  // into the address bar) may exceed it.
  WebGraph graph = MakeFigure1Topology();
  AgentSimulator simulator(&graph, DefaultProfile());
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (std::size_t e = 1; e < trace->events.size(); ++e) {
      const TimeSeconds gap =
          trace->events[e].timestamp - trace->events[e - 1].timestamp;
      EXPECT_GT(gap, 0);
      if (trace->events[e].kind != NavigationKind::kNewStartPage) {
        EXPECT_LT(gap, Minutes(10));
      }
    }
  }
}

TEST(AgentSimulatorTest, EntryGapsAreHeavyTailed) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.stp = 0.01;
  profile.nip = 0.5;
  profile.lpp = 0.0;
  profile.nip_gap_mean_minutes = 30.0;
  AgentSimulator simulator(&graph, profile);
  Rng rng(12);
  double sum = 0;
  std::size_t count = 0;
  std::size_t above_rho = 0;
  for (int i = 0; i < 200; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (std::size_t e = 1; e < trace->events.size(); ++e) {
      if (trace->events[e].kind != NavigationKind::kNewStartPage) continue;
      const TimeSeconds gap =
          trace->events[e].timestamp - trace->events[e - 1].timestamp;
      sum += static_cast<double>(gap);
      ++count;
      if (gap > Minutes(10)) ++above_rho;
    }
  }
  ASSERT_GT(count, 500u);
  // Exponential(mean 30 min): mean ~ 1800 s, P(gap > 10 min) = e^-1/3.
  EXPECT_NEAR(sum / static_cast<double>(count), 1800.0, 150.0);
  EXPECT_NEAR(static_cast<double>(above_rho) / static_cast<double>(count),
              std::exp(-1.0 / 3.0), 0.05);
}

TEST(AgentSimulatorTest, PageStayDistributionMatchesProfile) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.stp = 0.02;
  AgentSimulator simulator(&graph, profile);
  Rng rng(8);
  double sum = 0;
  std::size_t count = 0;
  for (int i = 0; i < 300; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (std::size_t e = 1; e < trace->events.size(); ++e) {
      if (trace->events[e].kind == NavigationKind::kNewStartPage) continue;
      sum += static_cast<double>(trace->events[e].timestamp -
                                 trace->events[e - 1].timestamp);
      ++count;
    }
  }
  ASSERT_GT(count, 500u);
  // Mean stay ~ 2.2 minutes = 132 seconds (within a few seconds).
  EXPECT_NEAR(sum / static_cast<double>(count), 132.0, 8.0);
}

TEST(AgentSimulatorTest, MaxEventsCapsRunawayAgents) {
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.stp = 1e-9;  // effectively immortal
  profile.max_events = 50;
  AgentSimulator simulator(&graph, profile);
  Rng rng(9);
  Result<AgentTrace> trace = simulator.SimulateAgent(0, &rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_LE(trace->events.size(), 50u);
}

TEST(AgentSimulatorTest, HighNipExhaustsEntryPagesAndReusesThem) {
  // Only 2 entry pages in Figure 1: with NIP = 0.9 and a long-lived
  // agent, entry pages run out and reused ones are cache-served.
  WebGraph graph = MakeFigure1Topology();
  AgentProfile profile;
  profile.stp = 0.01;
  profile.nip = 0.9;
  profile.lpp = 0.0;
  AgentSimulator simulator(&graph, profile);
  Rng rng(10);
  std::size_t cached_entries = 0;
  for (int i = 0; i < 100; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    for (const NavigationEvent& event : trace->events) {
      if (event.kind == NavigationKind::kNewStartPage &&
          event.served_from_cache) {
        ++cached_entries;
      }
    }
  }
  EXPECT_GT(cached_entries, 0u);
}

TEST(AgentSimulatorTest, DistributesInitialEntriesAcrossStartPages) {
  WebGraph graph = MakeFigure1Topology();
  AgentSimulator simulator(&graph, DefaultProfile());
  Rng rng(11);
  std::map<PageId, int> entries;
  for (int i = 0; i < 1000; ++i) {
    Rng agent_rng = rng.Fork();
    Result<AgentTrace> trace = simulator.SimulateAgent(0, &agent_rng);
    ASSERT_TRUE(trace.ok());
    ++entries[trace->events.front().page];
  }
  // Two start pages, roughly uniform.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NEAR(entries[0], 500, 80);
  EXPECT_NEAR(entries[5], 500, 80);
}

}  // namespace
}  // namespace wum
