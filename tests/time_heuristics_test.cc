#include "wum/session/time_heuristics.h"

#include <gtest/gtest.h>

#include "wum/common/random.h"

namespace wum {
namespace {

// Table 1 of the paper: pages P1, P20, P13, P49, P34, P23 at minutes
// 0, 6, 15, 29, 32, 47.
std::vector<PageRequest> Table1Stream() {
  return MakeSession({1, 20, 13, 49, 34, 23},
                     {Minutes(0), Minutes(6), Minutes(15), Minutes(29),
                      Minutes(32), Minutes(47)})
      .requests;
}

TEST(SessionDurationTest, ReproducesPaperTable1Split) {
  // With delta = 30 min the paper obtains [P1, P20, P13, P49] and
  // [P34, P23].
  SessionDurationSessionizer heuristic(Minutes(30));
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(Table1Stream());
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 2u);
  EXPECT_EQ((*sessions)[0].PageSequence(),
            (std::vector<PageId>{1, 20, 13, 49}));
  EXPECT_EQ((*sessions)[1].PageSequence(), (std::vector<PageId>{34, 23}));
}

TEST(PageStayTest, ReproducesPaperTable1Split) {
  // With rho = 10 min the paper obtains [P1, P20, P13], [P49, P34], [P23].
  PageStaySessionizer heuristic(Minutes(10));
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(Table1Stream());
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 3u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{1, 20, 13}));
  EXPECT_EQ((*sessions)[1].PageSequence(), (std::vector<PageId>{49, 34}));
  EXPECT_EQ((*sessions)[2].PageSequence(), (std::vector<PageId>{23}));
}

TEST(SessionDurationTest, BoundaryIsInclusive) {
  // t_i - t_0 <= delta keeps the page; the first page beyond starts anew.
  SessionDurationSessionizer heuristic(100);
  auto requests = MakeSession({0, 1, 2}, {0, 100, 101}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 2u);
  EXPECT_EQ((*sessions)[0].size(), 2u);
  EXPECT_EQ((*sessions)[1].size(), 1u);
}

TEST(PageStayTest, BoundaryIsInclusive) {
  PageStaySessionizer heuristic(100);
  auto requests = MakeSession({0, 1, 2}, {0, 100, 201}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 2u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{0, 1}));
}

TEST(TimeHeuristicsTest, EmptyInputYieldsNoSessions) {
  EXPECT_TRUE(SessionDurationSessionizer().Reconstruct({})->empty());
  EXPECT_TRUE(PageStaySessionizer().Reconstruct({})->empty());
}

TEST(TimeHeuristicsTest, SingleRequest) {
  auto requests = MakeSession({5}, {1000}).requests;
  EXPECT_EQ(SessionDurationSessionizer().Reconstruct(requests)->size(), 1u);
  EXPECT_EQ(PageStaySessionizer().Reconstruct(requests)->size(), 1u);
}

TEST(TimeHeuristicsTest, RejectUnsortedInput) {
  auto requests = MakeSession({0, 1}, {100, 50}).requests;
  EXPECT_TRUE(SessionDurationSessionizer()
                  .Reconstruct(requests)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PageStaySessionizer()
                  .Reconstruct(requests)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimeHeuristicsTest, Names) {
  EXPECT_EQ(SessionDurationSessionizer().name(), "heur1-duration");
  EXPECT_EQ(PageStaySessionizer().name(), "heur2-pagestay");
}

TEST(TimeHeuristicsTest, ZeroThresholdSplitsOnAnyGap) {
  PageStaySessionizer heuristic(0);
  auto requests = MakeSession({0, 1, 2}, {0, 0, 1}).requests;
  Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
  ASSERT_TRUE(sessions.ok());
  ASSERT_EQ(sessions->size(), 2u);
  EXPECT_EQ((*sessions)[0].PageSequence(), (std::vector<PageId>{0, 1}));
}

TEST(SplitByBothTimeRulesTest, AppliesBothBounds) {
  TimeThresholds thresholds{/*max_session_duration=*/Minutes(30),
                            /*max_page_stay=*/Minutes(10)};
  // Gaps of 9 min each: page-stay rule never fires, duration rule cuts
  // after 30 minutes (pages at 0, 9, 18, 27, 36, ...).
  std::vector<PageRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(PageRequest{static_cast<PageId>(i), Minutes(9) * i});
  }
  std::vector<Session> sessions = SplitByBothTimeRules(requests, thresholds);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 4u);  // 0, 9, 18, 27 minutes
  EXPECT_EQ(sessions[1].size(), 4u);  // 36, 45, 54, 63 minutes
}

TEST(SplitByBothTimeRulesTest, PageStayRuleCutsFirst) {
  TimeThresholds thresholds;
  auto requests =
      MakeSession({0, 1, 2}, {0, Minutes(11), Minutes(12)}).requests;
  std::vector<Session> sessions = SplitByBothTimeRules(requests, thresholds);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].PageSequence(), (std::vector<PageId>{0}));
  EXPECT_EQ(sessions[1].PageSequence(), (std::vector<PageId>{1, 2}));
}

class TimeHeuristicPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Random sorted stream with occasional large gaps.
  std::vector<PageRequest> RandomStream(Rng* rng) {
    std::vector<PageRequest> requests;
    TimeSeconds t = 0;
    const std::size_t n = 5 + rng->NextBounded(200);
    for (std::size_t i = 0; i < n; ++i) {
      t += rng->Bernoulli(0.15) ? Minutes(10) + 1 + rng->NextInRange(0, 3000)
                                : rng->NextInRange(1, 400);
      requests.push_back(
          PageRequest{static_cast<PageId>(rng->NextBounded(50)), t});
    }
    return requests;
  }
};

TEST_P(TimeHeuristicPropertyTest, DurationOutputRespectsBoundAndPartitions) {
  Rng rng(GetParam());
  SessionDurationSessionizer heuristic;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PageRequest> requests = RandomStream(&rng);
    Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
    ASSERT_TRUE(sessions.ok());
    std::vector<PageRequest> reassembled;
    for (const Session& session : *sessions) {
      EXPECT_LE(session.Duration(), heuristic.max_session_duration());
      EXPECT_FALSE(session.empty());
      reassembled.insert(reassembled.end(), session.requests.begin(),
                         session.requests.end());
    }
    EXPECT_EQ(reassembled, requests);  // exact partition, nothing lost
  }
}

TEST_P(TimeHeuristicPropertyTest, PageStayOutputRespectsBoundAndPartitions) {
  Rng rng(GetParam() ^ 0xABCDEF);
  PageStaySessionizer heuristic;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PageRequest> requests = RandomStream(&rng);
    Result<std::vector<Session>> sessions = heuristic.Reconstruct(requests);
    ASSERT_TRUE(sessions.ok());
    std::vector<PageRequest> reassembled;
    for (const Session& session : *sessions) {
      EXPECT_TRUE(SatisfiesTimestampRule(session, heuristic.max_page_stay()));
      reassembled.insert(reassembled.end(), session.requests.begin(),
                         session.requests.end());
    }
    EXPECT_EQ(reassembled, requests);
  }
}

TEST_P(TimeHeuristicPropertyTest, BothRulesSplitIsRefinementOfEach) {
  Rng rng(GetParam() ^ 0x5555);
  TimeThresholds thresholds;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PageRequest> requests = RandomStream(&rng);
    std::vector<Session> sessions =
        SplitByBothTimeRules(requests, thresholds);
    std::vector<PageRequest> reassembled;
    for (const Session& session : sessions) {
      EXPECT_LE(session.Duration(), thresholds.max_session_duration);
      EXPECT_TRUE(SatisfiesTimestampRule(session, thresholds.max_page_stay));
      reassembled.insert(reassembled.end(), session.requests.begin(),
                         session.requests.end());
    }
    EXPECT_EQ(reassembled, requests);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeHeuristicPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace wum
