// End-to-end integration: the full reactive deployment (CLF records ->
// threaded driver -> filters -> incremental Smart-SRA) must produce
// byte-identical sessions to the batch path (partition -> SmartSra), and
// the whole simulate -> log -> reconstruct -> evaluate loop must be
// reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/clf/log_filter.h"
#include "wum/clf/user_partitioner.h"
#include "wum/eval/accuracy.h"
#include "wum/eval/experiment.h"
#include "wum/obs/metrics.h"
#include "wum/session/smart_sra.h"
#include "wum/simulator/workload.h"
#include "wum/stream/engine.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/operators.h"
#include "wum/stream/threaded_driver.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

struct WorldState {
  WebGraph graph{0};
  Workload workload;
  std::vector<LogRecord> log;
};

WorldState MakeWorld(std::uint64_t seed, std::size_t agents) {
  WorldState world;
  Rng rng(seed);
  SiteGeneratorOptions site;
  site.num_pages = 80;
  site.mean_out_degree = 6.0;
  world.graph = *GenerateUniformSite(site, &rng);
  WorkloadOptions population;
  population.num_agents = agents;
  world.workload =
      *SimulateWorkload(world.graph, AgentProfile(), population, &rng);
  world.log = CollectServerLog(world.workload.ToAgentRequests());
  return world;
}

using SessionsByUser = std::map<std::string, std::vector<Session>>;

SessionsByUser SortSessions(SessionsByUser sessions) {
  for (auto& [user, list] : sessions) {
    std::sort(list.begin(), list.end(),
              [](const Session& a, const Session& b) {
                return a.requests < b.requests;
              });
  }
  return sessions;
}

TEST(EndToEndTest, ThreadedStreamingEqualsBatchReconstruction) {
  WorldState world = MakeWorld(314159, 120);

  // Batch path: partition the log records, run batch Smart-SRA.
  Result<PartitionResult> partition =
      PartitionByUser(world.log, world.graph.num_pages());
  ASSERT_TRUE(partition.ok());
  SmartSra batch(&world.graph);
  SessionsByUser batch_sessions;
  for (const UserStream& user : partition->streams) {
    Result<std::vector<Session>> sessions = batch.Reconstruct(user.requests);
    ASSERT_TRUE(sessions.ok());
    batch_sessions[user.client_ip] = std::move(sessions).ValueOrDie();
  }

  // Streaming path: records through the threaded driver and pipeline.
  SessionsByUser streamed_sessions;
  CallbackSessionSink sink(
      [&streamed_sessions](const std::string& ip, Session session) {
        streamed_sessions[ip].push_back(std::move(session));
        return Status::OK();
      });
  SessionizeSink sessionize(
      [&world]() {
        return std::make_unique<IncrementalSmartSra>(&world.graph,
                                                     SmartSra::Options());
      },
      &sink, world.graph.num_pages());
  Pipeline pipeline(&sessionize);
  pipeline.Append(std::make_unique<FilterOperator>(
      std::make_unique<MethodFilter>()));
  pipeline.Append(std::make_unique<FilterOperator>(
      std::make_unique<StatusFilter>()));
  {
    ThreadedDriver driver(&pipeline, 64);
    for (const LogRecord& record : world.log) {
      ASSERT_TRUE(driver.Offer(record).ok());
    }
    ASSERT_TRUE(driver.Finish().ok());
  }

  EXPECT_EQ(SortSessions(std::move(batch_sessions)),
            SortSessions(std::move(streamed_sessions)));
}

// The --metrics-out deployment loop at the library level: CLF text ->
// instrumented parser -> sharded engine with a registry -> snapshot file.
// The written JSON must carry the parser and per-shard engine series, and
// the engine series must agree with the legacy EngineStats totals.
TEST(EndToEndTest, MetricsSnapshotRoundTripsThroughFile) {
  WorldState world = MakeWorld(96024, 80);
  std::stringstream clf_text;
  for (const LogRecord& record : world.log) {
    clf_text << FormatClfLine(record) << '\n';
  }

  obs::MetricRegistry registry;
  ClfParser parser(&registry);
  std::vector<LogRecord> records;
  ASSERT_TRUE(parser.ParseStream(&clf_text, &records).ok());

  std::size_t sessions_seen = 0;
  CallbackSessionSink sink(
      [&sessions_seen](const std::string&, Session) {
        ++sessions_seen;
        return Status::OK();
      });
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions()
          .set_num_shards(4)
          .set_metrics(&registry)
          .use_smart_sra(&world.graph),
      &sink);
  ASSERT_TRUE(engine.ok());
  for (const LogRecord& record : records) {
    ASSERT_TRUE((*engine)->Offer(record).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const EngineStats total = (*engine)->TotalStats();
  EXPECT_EQ(snapshot.CounterOrZero("clf.records_parsed"), records.size());
  std::uint64_t records_in = 0;
  std::uint64_t sessions_emitted = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string prefix = "engine.shard" + std::to_string(i) + ".";
    records_in += snapshot.CounterOrZero(prefix + "records_in");
    sessions_emitted += snapshot.CounterOrZero(prefix + "sessions_emitted");
  }
  EXPECT_EQ(records_in, total.records_in);
  EXPECT_EQ(sessions_emitted, total.sessions_emitted);
  EXPECT_EQ(sessions_emitted, sessions_seen);

  const std::string path = testing::TempDir() + "end_to_end_metrics.json";
  ASSERT_TRUE(obs::WriteMetricsFile(snapshot, path).ok());
  std::stringstream written;
  written << std::ifstream(path).rdbuf();
  EXPECT_EQ(written.str(), snapshot.ToJson());
  EXPECT_NE(written.str().find("engine.shard0.records_in"),
            std::string::npos);
  EXPECT_NE(written.str().find("clf.lines_seen"), std::string::npos);
  EXPECT_NE(written.str().find("drain_latency_us"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EndToEndTest, EvaluationIsBitReproducible) {
  WorldState a = MakeWorld(2718, 100);
  WorldState b = MakeWorld(2718, 100);
  SmartSra sra_a(&a.graph);
  SmartSra sra_b(&b.graph);
  AccuracyEvaluator eval_a(&a.graph, TimeThresholds());
  AccuracyEvaluator eval_b(&b.graph, TimeThresholds());
  Result<AccuracyResult> result_a = eval_a.Evaluate(a.workload, sra_a);
  Result<AccuracyResult> result_b = eval_b.Evaluate(b.workload, sra_b);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_a->real_sessions, result_b->real_sessions);
  EXPECT_EQ(result_a->captured_sessions, result_b->captured_sessions);
  EXPECT_EQ(result_a->correct_reconstructions,
            result_b->correct_reconstructions);
  EXPECT_DOUBLE_EQ(result_a->accuracy(), result_b->accuracy());
}

TEST(EndToEndTest, HeuristicOrderingHoldsAcrossSeeds) {
  // The headline claim, re-checked on several independent worlds: heur4
  // is the most accurate of the four on both metric definitions.
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    WorldState world = MakeWorld(seed, 200);
    auto heuristics =
        MakePaperHeuristics(&world.graph, TimeThresholds());
    AccuracyEvaluator evaluator(&world.graph, TimeThresholds());
    std::vector<double> accuracy;
    std::vector<double> recall;
    for (const auto& heuristic : heuristics) {
      Result<AccuracyResult> result =
          evaluator.Evaluate(world.workload, *heuristic);
      ASSERT_TRUE(result.ok());
      accuracy.push_back(result->accuracy());
      recall.push_back(result->capture_rate());
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_GT(accuracy[3], accuracy[i]) << "seed " << seed;
      EXPECT_GT(recall[3], recall[i]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace wum
