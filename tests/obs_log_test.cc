// wum::obs logging: line format and value quoting, level filtering,
// per-site rate limiting with suppressed-count disclosure, and
// concurrent whole-line writes.

#include "wum/obs/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "wum/obs/metrics.h"

namespace wum {
namespace obs {
namespace {

std::atomic<std::uint64_t> g_clock_us{0};

double FakeClock() {
  return static_cast<double>(g_clock_us.load(std::memory_order_relaxed));
}

/// Rate-limit windows are keyed on the obs clock, so tests drive time.
struct ClockGuard {
  ClockGuard() {
    g_clock_us.store(0);
    internal::SetClockForTesting(&FakeClock);
  }
  ~ClockGuard() { internal::SetClockForTesting(nullptr); }
};

/// An isolated logger writing into a string, timestamps off for
/// byte-stable expectations.
struct CapturedLogger {
  CapturedLogger() {
    logger.set_stream(&out);
    logger.set_include_timestamp(false);
    logger.set_min_level(LogLevel::kDebug);
  }
  std::ostringstream out;
  Logger logger;
};

TEST(LogLevelTest, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    Result<LogLevel> parsed = ParseLogLevel(std::string(LogLevelName(level)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  Result<LogLevel> bad = ParseLogLevel("verbose");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("expected debug|info|warn|error|off"),
            std::string::npos);
}

TEST(LoggerTest, WritesStructuredKeyValueLine) {
  CapturedLogger captured;
  LogLine(&captured.logger, LogLevel::kWarn, "clf.reject")("line",
                                                           std::uint64_t{7})(
      "error", "bad field");
  EXPECT_EQ(captured.out.str(),
            "level=warn site=clf.reject line=7 error=\"bad field\"\n");
  EXPECT_EQ(captured.logger.lines_written(), 1u);
}

TEST(LoggerTest, ValueTypesRender) {
  CapturedLogger captured;
  LogLine(&captured.logger, LogLevel::kInfo, "t")("u", std::uint64_t{18446744073709551615u})(
      "i", std::int64_t{-5})("d", 1.5)("b", true)("s", std::string("x"));
  EXPECT_EQ(captured.out.str(),
            "level=info site=t u=18446744073709551615 i=-5 d=1.5 b=true "
            "s=x\n");
}

TEST(LoggerTest, QuotingAndEscaping) {
  CapturedLogger captured;
  LogLine(&captured.logger, LogLevel::kInfo, "q")("space", "a b")(
      "quote", "say \"hi\"")("equals", "k=v")("backslash", "a\\b")(
      "newline", "a\nb")("empty", "")("bare", "plain-1.2_ok");
  EXPECT_EQ(captured.out.str(),
            "level=info site=q space=\"a b\" quote=\"say \\\"hi\\\"\" "
            "equals=\"k=v\" backslash=\"a\\\\b\" newline=\"a\\nb\" "
            "empty=\"\" bare=plain-1.2_ok\n");
}

TEST(LoggerTest, LevelFiltering) {
  CapturedLogger captured;
  captured.logger.set_min_level(LogLevel::kWarn);
  EXPECT_FALSE(captured.logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(captured.logger.Enabled(LogLevel::kError));
  LogLine(&captured.logger, LogLevel::kInfo, "quiet")("k", "v");
  LogLine(&captured.logger, LogLevel::kError, "loud")("k", "v");
  EXPECT_EQ(captured.out.str(), "level=error site=loud k=v\n");

  captured.logger.set_min_level(LogLevel::kOff);
  LogLine(&captured.logger, LogLevel::kError, "silenced")("k", "v");
  EXPECT_EQ(captured.logger.lines_written(), 1u);
}

TEST(LoggerTest, RateLimitsPerSiteAndDisclosesSuppression) {
  ClockGuard clock;
  CapturedLogger captured;
  captured.logger.set_rate_limit_per_sec(2);
  for (int i = 0; i < 5; ++i) {
    LogLine(&captured.logger, LogLevel::kWarn, "noisy")("i", i);
  }
  // Same second: only the first two lines land.
  EXPECT_EQ(captured.out.str(),
            "level=warn site=noisy i=0\nlevel=warn site=noisy i=1\n");
  EXPECT_EQ(captured.logger.lines_suppressed(), 3u);

  // Next second: the first line discloses what was dropped.
  g_clock_us.store(1'000'000);
  LogLine(&captured.logger, LogLevel::kWarn, "noisy")("i", 5);
  const std::string all = captured.out.str();
  EXPECT_NE(all.find("site=noisy suppressed=3 i=5"), std::string::npos);
  EXPECT_EQ(captured.logger.lines_written(), 3u);
}

TEST(LoggerTest, RateLimitIsPerSite) {
  ClockGuard clock;
  CapturedLogger captured;
  captured.logger.set_rate_limit_per_sec(1);
  LogLine(&captured.logger, LogLevel::kWarn, "a")("i", 0);
  LogLine(&captured.logger, LogLevel::kWarn, "a")("i", 1);  // dropped
  LogLine(&captured.logger, LogLevel::kWarn, "b")("i", 2);  // own budget
  EXPECT_EQ(captured.out.str(),
            "level=warn site=a i=0\nlevel=warn site=b i=2\n");
}

TEST(LoggerTest, ZeroRateLimitMeansUnlimited) {
  ClockGuard clock;
  CapturedLogger captured;
  captured.logger.set_rate_limit_per_sec(0);
  for (int i = 0; i < 100; ++i) {
    LogLine(&captured.logger, LogLevel::kWarn, "s")("i", i);
  }
  EXPECT_EQ(captured.logger.lines_written(), 100u);
  EXPECT_EQ(captured.logger.lines_suppressed(), 0u);
}

TEST(LoggerTest, DefaultLoggerStartsAtWarn) {
  EXPECT_EQ(Logger::Default().min_level(), LogLevel::kWarn);
}

// Concurrent writers: every line arrives whole (the mutex serializes
// the write), and the count is exact. TSan-checked via the tsan label.
TEST(LoggerTest, ConcurrentWritesProduceWholeLines) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  CapturedLogger captured;
  captured.logger.set_rate_limit_per_sec(0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&captured, t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        LogLine(&captured.logger, LogLevel::kWarn, "race")("t", t)("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(captured.logger.lines_written(),
            static_cast<std::uint64_t>(kThreads) * kLinesPerThread);
  std::istringstream in(captured.out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("level=warn site=race t=", 0), 0u) << line;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kLinesPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace wum
