// wum::obs metrics: registry semantics, concurrent counting, snapshot
// determinism and the JSON/CSV export formats.

#include "wum/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace wum {
namespace obs {
namespace {

std::atomic<std::uint64_t> g_clock_calls{0};

double CountingClock() {
  g_clock_calls.fetch_add(1, std::memory_order_relaxed);
  return 123.0;
}

/// Counts clock reads for the duration of a test, restoring the real
/// steady clock on exit.
struct ClockGuard {
  ClockGuard() {
    g_clock_calls.store(0);
    internal::SetClockForTesting(&CountingClock);
  }
  ~ClockGuard() { internal::SetClockForTesting(nullptr); }
};

TEST(ObsHandlesTest, DefaultConstructedHandlesAreDisabledNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  // None of these may crash or record anything.
  counter.Increment();
  counter.Increment(42);
  gauge.Set(7);
  gauge.MaxOf(9);
  histogram.Observe(1.5);
  { ScopedTimer timer(histogram); }
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0u);
}

TEST(ObsHandlesTest, NullRegistryHelpersReturnDisabledHandles) {
  EXPECT_FALSE(CounterIn(nullptr, "a").enabled());
  EXPECT_FALSE(GaugeIn(nullptr, "b").enabled());
  EXPECT_FALSE(HistogramIn(nullptr, "c").enabled());
}

TEST(MetricRegistryTest, CounterBasics) {
  MetricRegistry registry;
  Counter counter = registry.GetCounter("x");
  EXPECT_TRUE(counter.enabled());
  counter.Increment();
  counter.Increment(9);
  EXPECT_EQ(counter.value(), 10u);
  // Same name -> same cell.
  Counter again = registry.GetCounter("x");
  again.Increment();
  EXPECT_EQ(counter.value(), 11u);
}

TEST(MetricRegistryTest, GaugeSetAndMaxOf) {
  MetricRegistry registry;
  Gauge gauge = registry.GetGauge("depth");
  gauge.Set(5);
  EXPECT_EQ(gauge.value(), 5u);
  gauge.MaxOf(3);  // smaller: no change
  EXPECT_EQ(gauge.value(), 5u);
  gauge.MaxOf(8);
  EXPECT_EQ(gauge.value(), 8u);
}

TEST(MetricRegistryTest, HistogramBucketsAndStats) {
  MetricRegistry registry;
  Histogram histogram = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(5.0);    // bucket 1 (<= 10)
  histogram.Observe(50.0);   // bucket 2 (<= 100)
  histogram.Observe(500.0);  // overflow bucket
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* value =
      snapshot.FindHistogram("lat");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 4u);
  ASSERT_EQ(value->counts.size(), 4u);
  EXPECT_EQ(value->counts[0], 1u);
  EXPECT_EQ(value->counts[1], 1u);
  EXPECT_EQ(value->counts[2], 1u);
  EXPECT_EQ(value->counts[3], 1u);
  EXPECT_DOUBLE_EQ(value->sum, 555.5);
  EXPECT_DOUBLE_EQ(value->min, 0.5);
  EXPECT_DOUBLE_EQ(value->max, 500.0);
  EXPECT_DOUBLE_EQ(value->mean(), 555.5 / 4.0);
}

TEST(MetricRegistryTest, EmptyHistogramNormalizesMinMaxToZero) {
  MetricRegistry registry;
  (void)registry.GetHistogram("empty");
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* value =
      snapshot.FindHistogram("empty");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 0u);
  EXPECT_DOUBLE_EQ(value->min, 0.0);
  EXPECT_DOUBLE_EQ(value->max, 0.0);
  EXPECT_DOUBLE_EQ(value->mean(), 0.0);
}

TEST(MetricRegistryTest, QuantilesInterpolateWithinBuckets) {
  MetricRegistry registry;
  // 10 observations 0..9, all in the single finite bucket (<= 10):
  // rank q*10 lands fraction q through [min=0, upper clamped to max=9].
  Histogram histogram = registry.GetHistogram("lat", {10.0});
  for (int i = 0; i < 10; ++i) histogram.Observe(static_cast<double>(i));
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* value =
      snapshot.FindHistogram("lat");
  ASSERT_NE(value, nullptr);
  EXPECT_DOUBLE_EQ(value->Quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(value->p50(), 4.5);
  EXPECT_DOUBLE_EQ(value->p90(), 8.1);
  EXPECT_DOUBLE_EQ(value->Quantile(0.0), 0.0);   // q <= 0 -> min
  EXPECT_DOUBLE_EQ(value->Quantile(1.0), 9.0);   // q >= 1 -> max
  // Estimates are monotone in q and clamped to the observed range.
  EXPECT_LE(value->p50(), value->p90());
  EXPECT_LE(value->p90(), value->p99());
  EXPECT_LE(value->p99(), value->max);
}

TEST(MetricRegistryTest, QuantilesSpanMultipleBuckets) {
  MetricRegistry registry;
  Histogram histogram = registry.GetHistogram("multi", {10.0, 100.0});
  // 8 low observations and 2 high ones: p50 sits in the first bucket,
  // p90 in the second, p99 clamped to the max.
  for (int i = 0; i < 8; ++i) histogram.Observe(5.0);
  histogram.Observe(50.0);
  histogram.Observe(60.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* value =
      snapshot.FindHistogram("multi");
  ASSERT_NE(value, nullptr);
  EXPECT_GT(value->p50(), 0.0);
  EXPECT_LE(value->p50(), 10.0);
  EXPECT_GT(value->p90(), 10.0);   // second bucket
  EXPECT_LE(value->p99(), 60.0);   // clamped to max
}

TEST(MetricRegistryTest, QuantilesHandleEmptyAndOverflow) {
  MetricRegistry registry;
  (void)registry.GetHistogram("empty", {1.0});
  Histogram overflow = registry.GetHistogram("over", {1.0});
  overflow.Observe(500.0);  // overflow bucket only
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* empty =
      snapshot.FindHistogram("empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_DOUBLE_EQ(empty->p50(), 0.0);
  const MetricsSnapshot::HistogramValue* over = snapshot.FindHistogram("over");
  ASSERT_NE(over, nullptr);
  // A single overflow observation: every estimate is that value (the
  // unbounded bucket's upper edge tightens to the observed max).
  EXPECT_DOUBLE_EQ(over->p50(), 500.0);
  EXPECT_DOUBLE_EQ(over->p99(), 500.0);
}

// N threads hammering one shared counter must lose no increment — the
// lock-free hot path is the whole point of the registry design.
TEST(MetricRegistryTest, ConcurrentCountingIsExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread registers by name: same cell, no coordination.
      Counter counter = registry.GetCounter("shared");
      Histogram histogram = registry.GetHistogram("shared_lat");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOrZero("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
  const MetricsSnapshot::HistogramValue* lat =
      snapshot.FindHistogram("shared_lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count,
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// N threads racing to register the same names: every GetCounter for a
// name must resolve to the same cell (no lost registrations, no
// duplicate cells), exercising the registry's registration lock.
TEST(MetricRegistryTest, ConcurrentRegistrationResolvesToOneCell) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  constexpr int kNames = 5;
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kRounds; ++i) {
        // Re-register by name every round from every thread.
        registry.GetCounter("reg." + std::to_string(i % kNames)).Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), static_cast<std::size_t>(kNames));
  std::uint64_t total = 0;
  for (const auto& counter : snapshot.counters) total += counter.value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(ScopedTimerTest, DisabledTimerNeverReadsTheClock) {
  ClockGuard clock;
  {
    ScopedTimer timer(Histogram{});  // disabled handle
  }
  EXPECT_EQ(g_clock_calls.load(), 0u);
  MetricRegistry registry;
  {
    ScopedTimer timer(registry.GetHistogram("t"));
  }
  // Enabled: exactly one read at construction, one at destruction.
  EXPECT_EQ(g_clock_calls.load(), 2u);
}

TEST(MetricsSnapshotTest, DeterministicOrderAndRendering) {
  MetricRegistry registry;
  registry.GetCounter("zeta").Increment(3);
  registry.GetCounter("alpha").Increment(1);
  registry.GetGauge("mid").Set(2);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");  // sorted by name
  EXPECT_EQ(snapshot.counters[1].name, "zeta");
  // Same registry state -> byte-identical renderings.
  EXPECT_EQ(snapshot.ToJson(), registry.Snapshot().ToJson());
  EXPECT_EQ(snapshot.ToCsv(), registry.Snapshot().ToCsv());
}

TEST(MetricsSnapshotTest, CounterSumByPrefix) {
  MetricRegistry registry;
  registry.GetCounter("engine.shard0.records_in").Increment(10);
  registry.GetCounter("engine.shard1.records_in").Increment(20);
  registry.GetCounter("clf.lines_seen").Increment(99);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterSumByPrefix("engine.shard"), 30u);
  EXPECT_EQ(snapshot.CounterSumByPrefix("clf."), 99u);
  EXPECT_EQ(snapshot.CounterSumByPrefix("nope"), 0u);
}

TEST(MetricsSnapshotTest, JsonContainsAllKinds) {
  MetricRegistry registry;
  registry.GetCounter("c").Increment(1);
  registry.GetGauge("g").Set(2);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 2"), std::string::npos);
  EXPECT_NE(json.find("+Inf"), std::string::npos);  // overflow bucket
}

TEST(MetricsSnapshotTest, JsonAndCsvIncludeQuantiles) {
  MetricRegistry registry;
  Histogram histogram = registry.GetHistogram("lat", {10.0});
  for (int i = 0; i < 10; ++i) histogram.Observe(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"p50\": 4.5"), std::string::npos);
  EXPECT_NE(json.find("\"p90\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("histogram,lat,p50,4.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p99,"), std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonLineIsOneCompactLine) {
  MetricRegistry registry;
  registry.GetCounter("c").Increment(3);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string line = snapshot.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"counters\": {\"c\": 3}"), std::string::npos);
  EXPECT_NE(line.find("\"histograms\": "), std::string::npos);
}

TEST(MetricsSnapshotTest, CsvHasKindNameFieldValueRows) {
  MetricRegistry registry;
  registry.GetCounter("c").Increment(7);
  const std::string csv = registry.Snapshot().ToCsv();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,7"), std::string::npos);
}

TEST(MetricsSnapshotTest, WriteMetricsFilePicksFormatByExtension) {
  MetricRegistry registry;
  registry.GetCounter("c").Increment(5);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string json_path = testing::TempDir() + "obs_metrics_test.json";
  const std::string csv_path = testing::TempDir() + "obs_metrics_test.csv";
  ASSERT_TRUE(WriteMetricsFile(snapshot, json_path).ok());
  ASSERT_TRUE(WriteMetricsFile(snapshot, csv_path).ok());

  std::stringstream json_content, csv_content;
  json_content << std::ifstream(json_path).rdbuf();
  csv_content << std::ifstream(csv_path).rdbuf();
  EXPECT_EQ(json_content.str(), snapshot.ToJson());
  EXPECT_EQ(csv_content.str(), snapshot.ToCsv());
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(ScopedTimerTest, RecordsElapsedMicroseconds) {
  MetricRegistry registry;
  Histogram histogram = registry.GetHistogram("t");
  {
    ScopedTimer timer(histogram);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramValue* value = snapshot.FindHistogram("t");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 1u);
  EXPECT_GE(value->sum, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace wum
