// DESIGN.md §6.6: every incremental sessionizer emits exactly the batch
// algorithm's sessions on the same per-user stream, across simulator
// workloads and all four heuristics.

#include <gtest/gtest.h>

#include <algorithm>

#include "wum/session/navigation_heuristic.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/incremental_time_sessionizers.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

std::vector<Session> DriveIncremental(IncrementalUserSessionizer* sessionizer,
                                      const std::vector<PageRequest>& stream) {
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  for (const PageRequest& request : stream) {
    EXPECT_TRUE(sessionizer->OnRequest(request, emit).ok());
  }
  EXPECT_TRUE(sessionizer->Flush(emit).ok());
  return emitted;
}

void ExpectSameSessions(const std::vector<Session>& batch,
                        std::vector<Session> streaming) {
  // Smart-SRA emits per closed candidate; order within a candidate can
  // differ from the batch dedup ordering, so compare as sorted sets.
  std::vector<Session> batch_sorted = batch;
  auto by_requests = [](const Session& a, const Session& b) {
    return a.requests < b.requests;
  };
  std::sort(batch_sorted.begin(), batch_sorted.end(), by_requests);
  std::sort(streaming.begin(), streaming.end(), by_requests);
  EXPECT_EQ(batch_sorted, streaming);
}

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng site_rng(11);
    SiteGeneratorOptions options;
    options.num_pages = 70;
    options.mean_out_degree = 5.0;
    graph_ = *GenerateUniformSite(options, &site_rng);
  }

  std::vector<std::vector<PageRequest>> SimulatedStreams() {
    AgentSimulator simulator(&graph_, AgentProfile());
    Rng rng(GetParam());
    std::vector<std::vector<PageRequest>> streams;
    for (int agent = 0; agent < 20; ++agent) {
      Rng agent_rng = rng.Fork();
      streams.push_back(
          simulator.SimulateAgent(0, &agent_rng)->server_requests);
    }
    return streams;
  }

  WebGraph graph_{0};
};

TEST_P(StreamingEquivalenceTest, SmartSra) {
  SmartSra batch(&graph_);
  for (const auto& stream : SimulatedStreams()) {
    IncrementalSmartSra incremental(&graph_, SmartSra::Options());
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, Duration) {
  SessionDurationSessionizer batch;
  for (const auto& stream : SimulatedStreams()) {
    IncrementalDurationSessionizer incremental;
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, PageStay) {
  PageStaySessionizer batch;
  for (const auto& stream : SimulatedStreams()) {
    IncrementalPageStaySessionizer incremental;
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, Navigation) {
  NavigationSessionizer batch(&graph_);
  for (const auto& stream : SimulatedStreams()) {
    IncrementalNavigationSessionizer incremental(&graph_);
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StreamingEmissionTest, SmartSraEmitsAsCandidatesClose) {
  // Sessions of a closed candidate appear before later input arrives.
  WebGraph graph = MakeFigure1Topology();
  IncrementalSmartSra sessionizer(&graph, SmartSra::Options());
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{0, 0}, emit).ok());
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{1, 60}, emit).ok());
  EXPECT_TRUE(emitted.empty());  // candidate still open
  // Gap > 10 minutes closes the candidate; its sessions emit now.
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{5, Minutes(20)}, emit).ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].PageSequence(), (std::vector<PageId>{0, 1}));
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1].PageSequence(), (std::vector<PageId>{5}));
}

TEST(StreamingEmissionTest, TimeSessionizersEmitOnCut) {
  IncrementalPageStaySessionizer sessionizer(Minutes(10));
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(sessionizer.OnRequest(PageRequest{1, 0}, emit).ok());
  EXPECT_TRUE(emitted.empty());
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{2, Minutes(11)}, emit).ok());
  ASSERT_EQ(emitted.size(), 1u);  // cut emitted immediately
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  EXPECT_EQ(emitted.size(), 2u);
}

TEST(StreamingEmissionTest, FlushIsIdempotentOnEmptyState) {
  IncrementalDurationSessionizer sessionizer;
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  EXPECT_TRUE(emitted.empty());
}

}  // namespace
}  // namespace wum
