// DESIGN.md §6.6: every incremental sessionizer emits exactly the batch
// algorithm's sessions on the same per-user stream, across simulator
// workloads and all four heuristics — and the sharded StreamEngine
// preserves that equivalence per user at 1, 2 and 8 shards.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <span>

#include "wum/session/navigation_heuristic.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/stream/engine.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/incremental_time_sessionizers.h"
#include "wum/topology/site_generator.h"

namespace wum {
namespace {

std::vector<Session> DriveIncremental(IncrementalUserSessionizer* sessionizer,
                                      std::span<const PageRequest> stream) {
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  for (const PageRequest& request : stream) {
    EXPECT_TRUE(sessionizer->OnRequest(request, emit).ok());
  }
  EXPECT_TRUE(sessionizer->Flush(emit).ok());
  return emitted;
}

void ExpectSameSessions(const std::vector<Session>& batch,
                        std::vector<Session> streaming) {
  // Smart-SRA emits per closed candidate; order within a candidate can
  // differ from the batch dedup ordering, so compare as sorted sets.
  std::vector<Session> batch_sorted = batch;
  auto by_requests = [](const Session& a, const Session& b) {
    return a.requests < b.requests;
  };
  std::sort(batch_sorted.begin(), batch_sorted.end(), by_requests);
  std::sort(streaming.begin(), streaming.end(), by_requests);
  EXPECT_EQ(batch_sorted, streaming);
}

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng site_rng(11);
    SiteGeneratorOptions options;
    options.num_pages = 70;
    options.mean_out_degree = 5.0;
    graph_ = *GenerateUniformSite(options, &site_rng);
  }

  std::vector<std::vector<PageRequest>> SimulatedStreams() {
    AgentSimulator simulator(&graph_, AgentProfile());
    Rng rng(GetParam());
    std::vector<std::vector<PageRequest>> streams;
    for (int agent = 0; agent < 20; ++agent) {
      Rng agent_rng = rng.Fork();
      streams.push_back(
          simulator.SimulateAgent(0, &agent_rng)->server_requests);
    }
    return streams;
  }

  /// One server-style log: each agent becomes a distinct client IP and
  /// all streams are interleaved globally by timestamp (stable, so each
  /// user's order is preserved — the same shape a live ingest sees).
  static std::vector<LogRecord> InterleavedLog(
      const std::vector<std::vector<PageRequest>>& streams) {
    std::vector<LogRecord> log;
    for (std::size_t agent = 0; agent < streams.size(); ++agent) {
      for (const PageRequest& request : streams[agent]) {
        LogRecord record;
        record.client_ip = AgentIp(agent);
        record.url = PageUrl(request.page);
        record.timestamp = request.timestamp;
        log.push_back(std::move(record));
      }
    }
    std::stable_sort(log.begin(), log.end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
    return log;
  }

  static std::string AgentIp(std::size_t agent) {
    return "10.0.0." + std::to_string(agent);
  }

  /// Runs the interleaved log through the engine at 1, 2 and 8 shards;
  /// each shard count must reproduce the batch heuristic's per-user
  /// session multiset exactly.
  void CheckShardedEngineMatchesBatch(
      const Sessionizer& batch,
      const std::function<void(EngineOptions&)>& choose_heuristic) {
    const std::vector<std::vector<PageRequest>> streams = SimulatedStreams();
    const std::vector<LogRecord> log = InterleavedLog(streams);
    for (const std::size_t shards : {1u, 2u, 8u}) {
      std::map<std::string, std::vector<Session>> by_user;
      CallbackSessionSink sink(
          [&by_user](const std::string& user_key, Session session) {
            by_user[user_key].push_back(std::move(session));
            return Status::OK();
          });
      EngineOptions options;
      options.set_num_shards(shards)
          .set_queue_capacity(128)
          .set_num_pages(graph_.num_pages());
      choose_heuristic(options);
      Result<std::unique_ptr<StreamEngine>> engine =
          StreamEngine::Create(std::move(options), &sink);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      for (const LogRecord& record : log) {
        ASSERT_TRUE((*engine)->Offer(record).ok());
      }
      ASSERT_TRUE((*engine)->Finish().ok());
      EXPECT_EQ((*engine)->TotalStats().records_in, log.size());
      for (std::size_t agent = 0; agent < streams.size(); ++agent) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " agent=" + std::to_string(agent));
        ExpectSameSessions(*batch.Reconstruct(streams[agent]),
                           by_user[AgentIp(agent)]);
      }
    }
  }

  WebGraph graph_{0};
};

TEST_P(StreamingEquivalenceTest, SmartSra) {
  SmartSra batch(&graph_);
  for (const auto& stream : SimulatedStreams()) {
    IncrementalSmartSra incremental(&graph_, SmartSra::Options());
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, Duration) {
  SessionDurationSessionizer batch;
  for (const auto& stream : SimulatedStreams()) {
    IncrementalDurationSessionizer incremental;
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, PageStay) {
  PageStaySessionizer batch;
  for (const auto& stream : SimulatedStreams()) {
    IncrementalPageStaySessionizer incremental;
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

TEST_P(StreamingEquivalenceTest, Navigation) {
  NavigationSessionizer batch(&graph_);
  for (const auto& stream : SimulatedStreams()) {
    IncrementalNavigationSessionizer incremental(&graph_);
    ExpectSameSessions(*batch.Reconstruct(stream),
                       DriveIncremental(&incremental, stream));
  }
}

// Sharded engine equivalence (acceptance: every heuristic at 1/2/8
// shards reproduces the batch per-user session multiset).

TEST_P(StreamingEquivalenceTest, ShardedEngineSmartSra) {
  SmartSra batch(&graph_);
  CheckShardedEngineMatchesBatch(
      batch, [this](EngineOptions& options) { options.use_smart_sra(&graph_); });
}

TEST_P(StreamingEquivalenceTest, ShardedEngineDuration) {
  SessionDurationSessionizer batch;
  CheckShardedEngineMatchesBatch(
      batch, [](EngineOptions& options) { options.use_duration(); });
}

TEST_P(StreamingEquivalenceTest, ShardedEnginePageStay) {
  PageStaySessionizer batch;
  CheckShardedEngineMatchesBatch(
      batch, [](EngineOptions& options) { options.use_page_stay(); });
}

TEST_P(StreamingEquivalenceTest, ShardedEngineNavigation) {
  NavigationSessionizer batch(&graph_);
  CheckShardedEngineMatchesBatch(batch, [this](EngineOptions& options) {
    options.use_navigation(&graph_);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StreamingEmissionTest, SmartSraEmitsAsCandidatesClose) {
  // Sessions of a closed candidate appear before later input arrives.
  WebGraph graph = MakeFigure1Topology();
  IncrementalSmartSra sessionizer(&graph, SmartSra::Options());
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{0, 0}, emit).ok());
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{1, 60}, emit).ok());
  EXPECT_TRUE(emitted.empty());  // candidate still open
  // Gap > 10 minutes closes the candidate; its sessions emit now.
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{5, Minutes(20)}, emit).ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].PageSequence(), (std::vector<PageId>{0, 1}));
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1].PageSequence(), (std::vector<PageId>{5}));
}

TEST(StreamingEmissionTest, TimeSessionizersEmitOnCut) {
  IncrementalPageStaySessionizer sessionizer(Minutes(10));
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(sessionizer.OnRequest(PageRequest{1, 0}, emit).ok());
  EXPECT_TRUE(emitted.empty());
  ASSERT_TRUE(
      sessionizer.OnRequest(PageRequest{2, Minutes(11)}, emit).ok());
  ASSERT_EQ(emitted.size(), 1u);  // cut emitted immediately
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  EXPECT_EQ(emitted.size(), 2u);
}

TEST(StreamingEmissionTest, FlushIsIdempotentOnEmptyState) {
  IncrementalDurationSessionizer sessionizer;
  std::vector<Session> emitted;
  auto emit = [&emitted](Session session) {
    emitted.push_back(std::move(session));
    return Status::OK();
  };
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  ASSERT_TRUE(sessionizer.Flush(emit).ok());
  EXPECT_TRUE(emitted.empty());
}

}  // namespace
}  // namespace wum
