// In-process integration tests for wum::net::LogServer, the TCP front
// end of websra_serve: many concurrent producers feeding one sharded
// StreamEngine must yield exactly the session multiset of ingesting the
// merged log from a file — across shard counts, with disjoint and
// overlapping user populations — and a server killed after a checkpoint
// must, after resume + client replay, converge to the uninterrupted
// run's output. Shedding and malformed lines stay accounted (emitted +
// dead-lettered == accepted) and attributed to their producer. The real
// kill -9 over processes lives in the tools_serve_smoke ctest leg; here
// the crash is modeled in-process by discarding everything emitted
// after the checkpoint barrier.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/clf/user_partitioner.h"
#include "wum/ingest/driver.h"
#include "wum/mine/options.h"
#include "wum/net/server.h"
#include "wum/net/socket.h"
#include "wum/obs/metrics.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/topology/site_generator.h"

namespace wum::net {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Workload + baseline helpers.

/// One CLF line for user `ip` visiting `page` at `timestamp`.
std::string ClfLine(const std::string& ip, std::uint32_t page,
                    TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return FormatClfLine(record) + "\n";
}

/// A log for one producer: `users` addresses, `rounds` requests each,
/// with gaps that cross session thresholds so several sessions close
/// per user.
std::string MakeLog(const std::vector<std::string>& users, int rounds,
                    std::uint32_t num_pages, TimeSeconds base) {
  std::string log;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      log += ClfLine(users[u],
                     static_cast<std::uint32_t>((u + r) % num_pages),
                     base + r * 600 + static_cast<TimeSeconds>(u));
    }
  }
  return log;
}

using Canonical = std::vector<std::pair<std::string, std::vector<PageId>>>;

Canonical Canonicalize(const std::vector<CollectingSessionSink::Entry>& in) {
  Canonical out;
  for (const auto& entry : in) {
    out.emplace_back(entry.client_ip, entry.session.PageSequence());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The baseline: parse the merged log text and drive it through a fresh
/// engine with the shared IngestDriver — the exact path
/// `websra_sessionize --streaming` takes.
Canonical IngestDirect(const WebGraph& graph, const std::string& merged_log,
                       std::size_t shards) {
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().set_num_shards(shards).use_smart_sra(&graph), &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  if (!engine.ok()) return {};
  Result<ingest::IngestDriver> driver =
      ingest::IngestDriver::Create(engine->get(), ingest::IngestOptions{});
  EXPECT_TRUE(driver.ok());
  ClfParser parser;
  std::vector<LogRecordRef> refs;
  EXPECT_TRUE(parser.ParseChunk(merged_log, &refs).ok());
  EXPECT_TRUE(driver->OfferRefs(refs).ok());
  EXPECT_TRUE((*engine)->Finish().ok());
  return Canonicalize(sink.entries());
}

// ---------------------------------------------------------------------
// Client-side helpers (what websra_logclient does, in-process).

Result<std::string> ReadLine(const Fd& socket) {
  std::string line;
  char byte = 0;
  while (true) {
    WUM_ASSIGN_OR_RETURN(const ReadResult read, ReadSome(socket, &byte, 1));
    if (read.eof) {
      return Status::IoError("connection closed mid-line: " + line);
    }
    if (read.bytes == 0) continue;
    if (byte == '\n') return line;
    line.push_back(byte);
  }
}

/// Streams `data` to the data port in `chunk`-byte writes (deliberately
/// unaligned with lines, so the server's partial-line carry is
/// exercised), optionally after a HELLO handshake whose reply lands in
/// `*handshake_reply`.
Status SendData(std::uint16_t port, const std::string& data,
                const std::string& client_id = "", std::size_t chunk = 7,
                std::string* handshake_reply = nullptr) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", port));
  if (!client_id.empty()) {
    WUM_RETURN_NOT_OK(WriteAll(socket, "HELLO " + client_id + "\n"));
    WUM_ASSIGN_OR_RETURN(const std::string reply, ReadLine(socket));
    if (handshake_reply != nullptr) *handshake_reply = reply;
    if (reply.rfind("OK", 0) != 0) {
      return Status::FailedPrecondition("handshake refused: " + reply);
    }
  }
  for (std::size_t at = 0; at < data.size(); at += chunk) {
    WUM_RETURN_NOT_OK(
        WriteAll(socket, std::string_view(data).substr(at, chunk)));
  }
  return Status::OK();  // socket closes here: clean EOF
}

Result<std::string> AdminCommand(std::uint16_t admin_port,
                                 const std::string& command) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp("127.0.0.1", admin_port));
  WUM_RETURN_NOT_OK(WriteAll(socket, command + "\n"));
  return ReadLine(socket);
}

/// Polls the registry until `counter` reaches `target` (the serve loop
/// is single-threaded, so once net.bytes_read covers a producer's bytes
/// those bytes have been offered to the engine).
bool WaitForCounter(obs::MetricRegistry* registry, const std::string& counter,
                    std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const obs::MetricsSnapshot snapshot = registry->Snapshot();
    for (const auto& entry : snapshot.counters) {
      if (entry.name == counter && entry.value >= target) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// Engine + server + serve thread, torn down by Quiesce() + Join().
struct Harness {
  explicit Harness(obs::MetricRegistry* registry) : registry_(registry) {}

  Status Start(EngineOptions engine_options, SessionSink* sink,
               DeadLetterQueue* dead_letters, ServerOptions server_options,
               ClientOffsets offsets = {}) {
    WUM_ASSIGN_OR_RETURN(engine,
                         StreamEngine::Create(std::move(engine_options), sink));
    server_options.metrics = registry_;
    WUM_ASSIGN_OR_RETURN(
        server, LogServer::Start(std::move(server_options), engine.get(),
                                 dead_letters, std::move(offsets)));
    thread = std::thread([this] { serve_status = server->Serve(); });
    return Status::OK();
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }

  ~Harness() {
    // A failed assertion may leave the serve loop running; stop it so
    // the test fails instead of hanging.
    if (thread.joinable() && server != nullptr) server->RequestStop();
    Join();
  }

  obs::MetricRegistry* registry_;
  std::unique_ptr<StreamEngine> engine;
  std::unique_ptr<LogServer> server;
  std::thread thread;
  Status serve_status;
};

// ---------------------------------------------------------------------
// Sink-state codec.

TEST(ServeSinkStateTest, RoundTripsJournalStateAndOffsets) {
  const ClientOffsets offsets = {{"alice", 12345}, {"bob", 0}, {"c/3", 7}};
  const std::string encoded = EncodeServeSinkState("8192", offsets);
  std::string journal_state;
  ClientOffsets decoded;
  ASSERT_TRUE(DecodeServeSinkState(encoded, &journal_state, &decoded).ok());
  EXPECT_EQ(journal_state, "8192");
  EXPECT_EQ(decoded, offsets);
}

TEST(ServeSinkStateTest, EmptyOffsetsRoundTrip) {
  std::string journal_state;
  ClientOffsets decoded;
  ASSERT_TRUE(DecodeServeSinkState(EncodeServeSinkState("", {}),
                                   &journal_state, &decoded)
                  .ok());
  EXPECT_TRUE(journal_state.empty());
  EXPECT_TRUE(decoded.empty());
}

TEST(ServeSinkStateTest, RejectsForeignSinkState) {
  // A websra_sessionize sink_state is a bare decimal journal length —
  // must not decode as a serve sink_state.
  std::string journal_state;
  ClientOffsets decoded;
  EXPECT_FALSE(
      DecodeServeSinkState("123456", &journal_state, &decoded).ok());
  EXPECT_FALSE(DecodeServeSinkState("", &journal_state, &decoded).ok());
}

// ---------------------------------------------------------------------
// Multi-producer equivalence.

TEST(NetServerTest, ConcurrentDisjointProducersMatchSingleFileIngest) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  // Three producers, disjoint user populations: per-user record order is
  // then independent of how the server interleaves connections, so the
  // session multiset must match single-file ingest of the merged log
  // exactly — at every shard count.
  std::vector<std::string> logs;
  std::string merged;
  for (int c = 0; c < 3; ++c) {
    std::vector<std::string> users;
    for (int u = 0; u < 5; ++u) {
      users.push_back("10.0." + std::to_string(c) + "." + std::to_string(u));
    }
    logs.push_back(MakeLog(users, /*rounds=*/20, num_pages,
                           /*base=*/1000000000 + c));
    merged += logs.back();
  }
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Canonical expected = IngestDirect(graph, merged, shards);
    ASSERT_FALSE(expected.empty());

    obs::MetricRegistry registry;
    CollectingSessionSink sink;
    DeadLetterQueue dead_letters;
    Harness harness(&registry);
    ASSERT_TRUE(harness
                    .Start(EngineOptions()
                               .set_num_shards(shards)
                               .use_smart_sra(&graph),
                           &sink, &dead_letters, ServerOptions{})
                    .ok());
    // Fully concurrent producers, chunk sizes unaligned with lines.
    std::vector<std::thread> producers;
    std::vector<Status> results(logs.size());
    const std::size_t chunks[] = {7, 13, 4096};
    for (std::size_t i = 0; i < logs.size(); ++i) {
      producers.emplace_back([&, i] {
        results[i] = SendData(harness.server->port(), logs[i],
                              "producer-" + std::to_string(i), chunks[i]);
      });
    }
    for (std::thread& producer : producers) producer.join();
    for (const Status& result : results) {
      EXPECT_TRUE(result.ok()) << result.message();
    }
    Result<std::string> reply =
        AdminCommand(harness.server->admin_port(), "QUIESCE");
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_EQ(reply->rfind("OK", 0), 0u) << *reply;
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(Canonicalize(sink.entries()), expected);
    EXPECT_EQ(dead_letters.total_offered(), 0u);
    EXPECT_EQ(harness.server->stats().handshakes, logs.size());
  }
}

TEST(NetServerTest, OverlappingUsersAcrossSequentialProducers) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  // The same users continue across two producers (a log rotated onto a
  // second uploader). Per-user FIFO requires producer A fully absorbed
  // before B starts — the test gates B on the server's byte counter,
  // which the single-threaded serve loop only advances after offering.
  const std::vector<std::string> users = {"10.1.0.1", "10.1.0.2", "10.1.0.3"};
  const std::string log_a =
      MakeLog(users, /*rounds=*/12, num_pages, /*base=*/1000000000);
  const std::string log_b =
      MakeLog(users, /*rounds=*/12, num_pages, /*base=*/1000090000);
  const Canonical expected = IngestDirect(graph, log_a + log_b, 2);
  ASSERT_FALSE(expected.empty());

  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(2).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  // Anonymous producers: every byte they send lands in net.bytes_read.
  ASSERT_TRUE(SendData(harness.server->port(), log_a, "", 13).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "net.bytes_read", log_a.size()));
  ASSERT_TRUE(SendData(harness.server->port(), log_b, "", 31).ok());
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(Canonicalize(sink.entries()), expected);
}

// ---------------------------------------------------------------------
// Kill + resume.

TEST(NetServerTest, KillAfterCheckpointThenResumeConvergesToBaseline) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const auto num_pages = static_cast<std::uint32_t>(graph.num_pages());
  const fs::path dir = fs::path(testing::TempDir()) / "net_server_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::string log_alice = MakeLog(
      {"10.2.0.1", "10.2.0.2"}, /*rounds=*/30, num_pages, 1000000000);
  const std::string log_bob = MakeLog(
      {"10.2.1.1", "10.2.1.2"}, /*rounds=*/30, num_pages, 1000000007);
  const Canonical expected = IngestDirect(graph, log_alice + log_bob, 2);
  ASSERT_FALSE(expected.empty());

  // Split each producer's log at a line boundary: phase 1 sends the
  // prefix, so after CHECKPOINT the manifest's per-client offset must be
  // exactly the prefix length.
  const auto SplitAt = [](const std::string& log, double fraction) {
    const std::size_t boundary =
        log.find('\n', static_cast<std::size_t>(log.size() * fraction));
    return boundary + 1;  // include the newline
  };
  const std::size_t alice_split = SplitAt(log_alice, 0.6);
  const std::size_t bob_split = SplitAt(log_bob, 0.4);

  // The durable "journal": sessions emitted in order, truncated to the
  // checkpoint-committed count on crash (exactly what the real journal
  // file does via its committed length in sink_state).
  std::vector<CollectingSessionSink::Entry> journal;
  std::mutex journal_mutex;
  CallbackSessionSink sink([&](const std::string& user_key, Session session) {
    std::lock_guard<std::mutex> lock(journal_mutex);
    journal.push_back({user_key, std::move(session)});
    return Status::OK();
  });
  const StreamEngine::SinkStateFn journal_state = [&]() -> Result<std::string> {
    std::lock_guard<std::mutex> lock(journal_mutex);
    return std::to_string(journal.size());
  };

  // --- Phase 1: serve the prefixes, checkpoint, then "crash".
  {
    obs::MetricRegistry registry;
    DeadLetterQueue dead_letters;
    ServerOptions server_options;
    server_options.ingest.checkpoint_dir = dir.string();
    server_options.ingest.checkpoint_every_records = 1000000;  // admin-driven
    server_options.journal_state = journal_state;
    Harness harness(&registry);
    ASSERT_TRUE(harness
                    .Start(EngineOptions().set_num_shards(2).use_smart_sra(
                               &graph),
                           &sink, &dead_letters, std::move(server_options))
                    .ok());
    std::string reply_alice;
    std::string reply_bob;
    ASSERT_TRUE(SendData(harness.server->port(),
                         log_alice.substr(0, alice_split), "alice", 17,
                         &reply_alice)
                    .ok());
    ASSERT_TRUE(SendData(harness.server->port(), log_bob.substr(0, bob_split),
                         "bob", 23, &reply_bob)
                    .ok());
    EXPECT_EQ(reply_alice, "OK 0");
    EXPECT_EQ(reply_bob, "OK 0");
    ASSERT_TRUE(
        WaitForCounter(&registry, "net.bytes_read", alice_split + bob_split));
    Result<std::string> checkpointed =
        AdminCommand(harness.server->admin_port(), "CHECKPOINT");
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().message();
    EXPECT_EQ(checkpointed->rfind("OK records_seen=", 0), 0u) << *checkpointed;
    // "kill -9": quiesce the process shell, then discard every session
    // emitted after the checkpoint barrier — a crashed process's
    // un-checkpointed output never reached durable storage.
    Result<std::string> reply =
        AdminCommand(harness.server->admin_port(), "QUIESCE");
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  }

  // --- Phase 2: resume, replay both clients from byte zero, finish.
  {
    EngineOptions options;
    options.set_num_shards(2).use_smart_sra(&graph);
    options.resume_from(dir.string()).resume_with_external_replay();
    Result<std::unique_ptr<StreamEngine>> resumed =
        StreamEngine::Create(options, &sink);
    ASSERT_TRUE(resumed.ok()) << resumed.status().message();
    ASSERT_TRUE((*resumed)->resumed());

    std::string committed_state;
    ClientOffsets offsets;
    ASSERT_TRUE(DecodeServeSinkState((*resumed)->resumed_sink_state(),
                                     &committed_state, &offsets)
                    .ok());
    // The checkpointed offsets are exactly the complete-line prefixes.
    ASSERT_EQ(offsets.size(), 2u);
    std::sort(offsets.begin(), offsets.end());
    EXPECT_EQ(offsets[0], (std::pair<std::string, std::uint64_t>(
                              "alice", alice_split)));
    EXPECT_EQ(offsets[1],
              (std::pair<std::string, std::uint64_t>("bob", bob_split)));
    // Truncate the "journal" to its committed length.
    std::uint64_t committed = 0;
    for (char digit : committed_state) {
      committed = committed * 10 + static_cast<std::uint64_t>(digit - '0');
    }
    {
      std::lock_guard<std::mutex> lock(journal_mutex);
      ASSERT_LE(committed, journal.size());
      journal.resize(committed);
    }

    obs::MetricRegistry registry;
    DeadLetterQueue dead_letters;
    ServerOptions server_options;
    server_options.ingest.checkpoint_dir = dir.string();
    server_options.ingest.checkpoint_every_records = 1000000;
    server_options.journal_state = journal_state;
    server_options.metrics = &registry;
    Result<std::unique_ptr<LogServer>> server = LogServer::Start(
        std::move(server_options), resumed->get(), &dead_letters, offsets);
    ASSERT_TRUE(server.ok()) << server.status().message();
    Status serve_status;
    std::thread serve_thread(
        [&] { serve_status = (*server)->Serve(); });
    // Both clients re-send their whole log from byte zero; the server
    // discards what the checkpoint covers (the handshake reply tells
    // each client how much that is).
    std::string reply_alice;
    std::string reply_bob;
    ASSERT_TRUE(SendData((*server)->port(), log_alice, "alice", 13,
                         &reply_alice)
                    .ok());
    ASSERT_TRUE(
        SendData((*server)->port(), log_bob, "bob", 19, &reply_bob).ok());
    EXPECT_EQ(reply_alice, "OK " + std::to_string(alice_split));
    EXPECT_EQ(reply_bob, "OK " + std::to_string(bob_split));
    Result<std::string> reply = AdminCommand((*server)->admin_port(),
                                             "QUIESCE");
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    serve_thread.join();
    ASSERT_TRUE(serve_status.ok()) << serve_status.message();
    EXPECT_EQ(dead_letters.total_offered(), 0u);
  }
  EXPECT_EQ(Canonicalize(journal), expected);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Shedding + malformed-line accounting.

/// Emits every request as a one-page session, slowly — so a flooding
/// producer overruns the shard queue and kShed actually sheds.
class SlowEmitSessionizer : public IncrementalUserSessionizer {
 public:
  Status OnRequest(const PageRequest& request, const EmitFn& emit) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    Session session;
    session.requests.push_back(request);
    return emit(std::move(session));
  }
  Status Flush(const EmitFn&) override { return Status::OK(); }
};

TEST(NetServerTest, ShedRecordsAreDeadLetteredAgainstTheirProducer) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  const std::uint32_t num_pages = 8;
  std::string flood;
  const int kRecords = 2000;
  for (int i = 0; i < kRecords; ++i) {
    flood += ClfLine("10.3.0.1",
                     static_cast<std::uint32_t>(i) % num_pages,
                     1000000000 + i);
  }
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(
      harness
          .Start(EngineOptions()
                     .set_num_shards(1)
                     .set_queue_capacity(2)
                     .set_offer_policy(OfferPolicy::kShed)
                     .set_dead_letters(&dead_letters)
                     .set_num_pages(num_pages)
                     .use_custom(
                         [] { return std::make_unique<SlowEmitSessionizer>(); }),
                 &sink, &dead_letters, ServerOptions{})
          .ok());
  ASSERT_TRUE(
      SendData(harness.server->port(), flood, "flood", 8192).ok());
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();

  // Conservation: every accepted record was either emitted or shed, and
  // every shed record is dead-lettered against the producer that sent
  // it — nothing vanishes silently.
  const std::uint64_t shed = harness.engine->TotalStats().records_shed;
  std::uint64_t emitted = 0;
  for (const auto& entry : sink.entries()) {
    emitted += entry.session.requests.size();
  }
  EXPECT_EQ(harness.engine->records_seen(),
            static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(emitted + shed, harness.engine->records_seen());
  EXPECT_EQ(harness.server->stats().records_shed, shed);
  EXPECT_EQ(dead_letters.records_covered(), shed);
  for (const DeadLetter& letter : dead_letters.Drain()) {
    ASSERT_EQ(letter.stage, DeadLetter::Stage::kRecord);
    EXPECT_EQ(letter.detail, "flood");
  }
}

TEST(NetServerTest, MalformedLinesQuarantinedWithProducerTag) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  const std::string data = ClfLine("10.4.0.1", 0, 1000000000) +
                           ClfLine("10.4.0.1", 1, 1000000030) +
                           "this is not a log line\n" +
                           ClfLine("10.4.0.1", 2, 1000000060);
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  ASSERT_TRUE(SendData(harness.server->port(), data, "tagged").ok());
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok());
  ASSERT_EQ(dead_letters.total_offered(), 1u);
  const std::vector<DeadLetter> letters = dead_letters.Drain();
  ASSERT_EQ(letters.size(), 1u);
  const DeadLetter& letter = letters.front();
  EXPECT_EQ(letter.stage, DeadLetter::Stage::kParse);
  // The detail names the producer and ITS line number (the handshake
  // line is not counted).
  EXPECT_NE(letter.detail.find("tagged line 3"), std::string::npos)
      << letter.detail;
  // The valid lines still made it through: the session multiset equals
  // ingesting just those lines from a file.
  const std::string valid = ClfLine("10.4.0.1", 0, 1000000000) +
                            ClfLine("10.4.0.1", 1, 1000000030) +
                            ClfLine("10.4.0.1", 2, 1000000060);
  EXPECT_EQ(Canonicalize(sink.entries()), IngestDirect(graph, valid, 1));
}

// ---------------------------------------------------------------------
// Protocol edges.

TEST(NetServerTest, DuplicateLiveClientIdRefused) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  Result<Fd> first = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WriteAll(*first, "HELLO dup\n").ok());
  Result<std::string> first_reply = ReadLine(*first);
  ASSERT_TRUE(first_reply.ok());
  EXPECT_EQ(*first_reply, "OK 0");

  Result<Fd> second = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(WriteAll(*second, "HELLO dup\n").ok());
  Result<std::string> second_reply = ReadLine(*second);
  ASSERT_TRUE(second_reply.ok());
  EXPECT_EQ(second_reply->rfind("ERR duplicate", 0), 0u) << *second_reply;

  first->reset();
  second->reset();
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(NetServerTest, AdminPingStatsAndUnknownCommands) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  Result<std::string> ping = AdminCommand(harness.server->admin_port(), "PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, "OK");
  Result<std::string> stats =
      AdminCommand(harness.server->admin_port(), "STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->front(), '{') << *stats;
  Result<std::string> unknown =
      AdminCommand(harness.server->admin_port(), "BOGUS");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->rfind("ERR unknown", 0), 0u) << *unknown;
  // CHECKPOINT without a checkpoint directory is a precise error, not a
  // crash.
  Result<std::string> checkpoint =
      AdminCommand(harness.server->admin_port(), "CHECKPOINT");
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint->rfind("ERR", 0), 0u) << *checkpoint;
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(NetServerTest, AdminPatternsRequiresMining) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  ASSERT_TRUE(harness
                  .Start(EngineOptions().set_num_shards(1).use_smart_sra(
                             &graph),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  Result<std::string> patterns =
      AdminCommand(harness.server->admin_port(), "PATTERNS");
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(*patterns, "ERR mining disabled (start with --mine-topk)");
  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

TEST(NetServerTest, AdminPatternsReportsMinedPaths) {
  if (!NetworkingAvailable()) GTEST_SKIP() << "no POSIX sockets";
  WebGraph graph = MakeFigure1Topology();
  obs::MetricRegistry registry;
  CollectingSessionSink sink;
  DeadLetterQueue dead_letters;
  Harness harness(&registry);
  mine::MinerOptions mining;
  mining.batch_sessions = 1;  // flush per session: no buffered tail
  ASSERT_TRUE(harness
                  .Start(EngineOptions()
                             .set_num_shards(1)
                             .use_smart_sra(&graph)
                             .set_metrics(&registry)
                             .set_mining(mining),
                         &sink, &dead_letters, ServerOptions{})
                  .ok());
  // Four users walk P1 -> P13 -> P34 -> P23 twice, 5000 s apart: the
  // second walk's arrival closes the first session, so four sessions
  // are mined while the server still runs.
  constexpr PageId kWalk[] = {0, 1, 4, 3};
  std::string log;
  for (int round = 0; round < 2; ++round) {
    for (int u = 0; u < 4; ++u) {
      for (int i = 0; i < 4; ++i) {
        log += ClfLine("10.0.1." + std::to_string(u), kWalk[i],
                       1000000000 + round * 5000 + u * 10 + i * 30);
      }
    }
  }
  ASSERT_TRUE(SendData(harness.server->port(), log).ok());
  ASSERT_TRUE(WaitForCounter(&registry, "mining.sessions", 4));

  Result<std::string> patterns =
      AdminCommand(harness.server->admin_port(), "PATTERNS");
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->front(), '{') << *patterns;
  EXPECT_NE(patterns->find("\"patterns\":["), std::string::npos) << *patterns;
  EXPECT_NE(patterns->find("\"path\":[0,1],\"count\":4,\"error\":0"),
            std::string::npos)
      << *patterns;

  // Operands: k and length select the answer; the reply echoes both.
  Result<std::string> pairs =
      AdminCommand(harness.server->admin_port(), "PATTERNS 2 2");
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->rfind("{\"k\":2,\"length\":2,", 0), 0u) << *pairs;
  EXPECT_EQ(pairs->find("\"path\":[0,1,4]"), std::string::npos) << *pairs;

  // Malformed operands are a usage error, not a dropped connection.
  for (const char* bad : {"PATTERNS x", "PATTERNS 1 2 3", "PATTERNS -1"}) {
    Result<std::string> reply =
        AdminCommand(harness.server->admin_port(), bad);
    ASSERT_TRUE(reply.ok()) << bad;
    EXPECT_EQ(*reply, "ERR usage: PATTERNS [k] [len]") << bad;
  }
  // STATS now takes one optional operand (JSON); anything else is a
  // usage error, not a dropped connection.
  Result<std::string> stats_with_args =
      AdminCommand(harness.server->admin_port(), "STATS extra");
  ASSERT_TRUE(stats_with_args.ok());
  EXPECT_EQ(*stats_with_args, "ERR usage: STATS [JSON]") << *stats_with_args;

  Result<std::string> reply =
      AdminCommand(harness.server->admin_port(), "QUIESCE");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok());
}

}  // namespace
}  // namespace wum::net
