// Prometheus text exposition: name sanitization, label escaping, the
// golden byte shape of a rendered registry (infos, counters, gauges,
// histograms with cumulative buckets and quantile gauges), the
// `+Inf == _count` invariant under snapshot skew, and the lint pass
// that CI runs over a live daemon's /metrics body.

#include "wum/obs/exposition.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "wum/obs/metrics.h"

namespace wum::obs {
namespace {

// ---------------------------------------------------------------------
// Name + label-value units.

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusName("engine.shard0.records_in"),
            "wum_engine_shard0_records_in");
  EXPECT_EQ(PrometheusName("net.conn.pause_time_ms"),
            "wum_net_conn_pause_time_ms");
  // Anything outside [a-zA-Z0-9_:] becomes an underscore.
  EXPECT_EQ(PrometheusName("a-b c/d"), "wum_a_b_c_d");
  EXPECT_EQ(PrometheusName(""), "wum_");
}

TEST(EscapeLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------
// Golden render.

TEST(ToPrometheusTextTest, GoldenRegistryRender) {
  MetricRegistry registry;
  registry.SetInfo("build.info", {{"version", "1.0"}, {"git", "a\"b\\c\nd"}});
  registry.GetCounter("net.bytes").Increment(7);
  registry.GetGauge("depth").Set(3);
  // Every observation lands in the (1, 10] bucket and min == max == 5,
  // so the interpolated quantiles are exactly 5 — the golden text is
  // fully determined.
  Histogram latency = registry.GetHistogram("lat.us", {1.0, 10.0});
  latency.Observe(5);
  latency.Observe(5);
  latency.Observe(5);

  const std::string expected =
      "# TYPE wum_build_info gauge\n"
      "wum_build_info{version=\"1.0\",git=\"a\\\"b\\\\c\\nd\"} 1\n"
      "# TYPE wum_net_bytes counter\n"
      "wum_net_bytes 7\n"
      "# TYPE wum_depth gauge\n"
      "wum_depth 3\n"
      "# TYPE wum_lat_us histogram\n"
      "wum_lat_us_bucket{le=\"1\"} 0\n"
      "wum_lat_us_bucket{le=\"10\"} 3\n"
      "wum_lat_us_bucket{le=\"+Inf\"} 3\n"
      "wum_lat_us_sum 15\n"
      "wum_lat_us_count 3\n"
      "# TYPE wum_lat_us_p50 gauge\n"
      "wum_lat_us_p50 5\n"
      "# TYPE wum_lat_us_p90 gauge\n"
      "wum_lat_us_p90 5\n"
      "# TYPE wum_lat_us_p99 gauge\n"
      "wum_lat_us_p99 5\n";
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_EQ(text, expected);
  EXPECT_TRUE(LintExposition(text).ok());
}

TEST(ToPrometheusTextTest, RenderIsDeterministicAndSorted) {
  MetricRegistry registry;
  registry.GetCounter("zzz").Increment();
  registry.GetCounter("aaa").Increment();
  registry.GetGauge("mid").Set(1);
  const std::string first = ToPrometheusText(registry.Snapshot());
  const std::string second = ToPrometheusText(registry.Snapshot());
  EXPECT_EQ(first, second);
  // Counters are sorted by name regardless of registration order.
  EXPECT_LT(first.find("wum_aaa"), first.find("wum_zzz"));
}

TEST(ToPrometheusTextTest, InfCountMatchesBucketTotalUnderSkew) {
  // Under concurrent writers a snapshot's separately-tracked count can
  // skew from the bucket totals by in-flight observations. The renderer
  // must derive _count from the cumulative buckets so +Inf == _count
  // holds exactly (Prometheus rejects the alternative).
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramValue h;
  h.name = "skewed.us";
  h.bounds = {1.0, 10.0};
  h.counts = {1, 1, 1};
  h.count = 999;  // skewed: must not leak into the rendered _count
  h.sum = 12.0;
  h.min = 0.5;
  h.max = 11.0;
  snapshot.histograms.push_back(std::move(h));
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("wum_skewed_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wum_skewed_us_count 3\n"), std::string::npos) << text;
  EXPECT_TRUE(LintExposition(text).ok());
}

TEST(ToPrometheusTextTest, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(ToPrometheusText(MetricsSnapshot{}), "");
  EXPECT_TRUE(LintExposition("").ok());
}

// ---------------------------------------------------------------------
// Lint: accepts well-formed exposition, rejects each violation class.

TEST(LintExpositionTest, AcceptsCommentsAndHelpLines) {
  EXPECT_TRUE(LintExposition("# just a comment\n"
                             "# HELP wum_x not structural\n"
                             "# TYPE wum_x counter\n"
                             "wum_x 1\n")
                  .ok());
}

TEST(LintExpositionTest, RejectsSampleBeforeTypeLine) {
  const Status status = LintExposition("wum_orphan 1\n");
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("sample before TYPE"), std::string::npos);
}

TEST(LintExpositionTest, RejectsUnknownTypeAndBadNames) {
  EXPECT_FALSE(LintExposition("# TYPE wum_x sparkline\nwum_x 1\n").ok());
  EXPECT_FALSE(LintExposition("# TYPE 9bad counter\n9bad 1\n").ok());
  EXPECT_FALSE(LintExposition("# TYPE wum_x counter\n9bad 1\n").ok());
}

TEST(LintExpositionTest, RejectsDuplicateTypeAndLateType) {
  EXPECT_FALSE(LintExposition("# TYPE wum_x counter\n"
                              "# TYPE wum_x counter\n"
                              "wum_x 1\n")
                   .ok());
  EXPECT_FALSE(LintExposition("# TYPE wum_x counter\n"
                              "wum_x 1\n"
                              "# TYPE wum_x counter\n")
                   .ok());
}

TEST(LintExpositionTest, RejectsUnparseableValue) {
  EXPECT_FALSE(LintExposition("# TYPE wum_x gauge\nwum_x banana\n").ok());
  EXPECT_FALSE(LintExposition("# TYPE wum_x gauge\nwum_x\n").ok());
}

TEST(LintExpositionTest, RejectsNonCumulativeBuckets) {
  EXPECT_FALSE(LintExposition("# TYPE wum_h histogram\n"
                              "wum_h_bucket{le=\"1\"} 5\n"
                              "wum_h_bucket{le=\"10\"} 3\n"
                              "wum_h_bucket{le=\"+Inf\"} 5\n"
                              "wum_h_sum 1\n"
                              "wum_h_count 5\n")
                   .ok());
}

TEST(LintExpositionTest, RejectsNonIncreasingLeBounds) {
  EXPECT_FALSE(LintExposition("# TYPE wum_h histogram\n"
                              "wum_h_bucket{le=\"10\"} 1\n"
                              "wum_h_bucket{le=\"1\"} 2\n"
                              "wum_h_bucket{le=\"+Inf\"} 2\n"
                              "wum_h_sum 1\n"
                              "wum_h_count 2\n")
                   .ok());
}

TEST(LintExpositionTest, RejectsHistogramMissingInfBucketOrCount) {
  const Status no_inf = LintExposition("# TYPE wum_h histogram\n"
                                       "wum_h_bucket{le=\"1\"} 1\n"
                                       "wum_h_sum 1\n"
                                       "wum_h_count 1\n");
  EXPECT_TRUE(no_inf.IsInvalidArgument());
  EXPECT_NE(no_inf.message().find("no +Inf bucket"), std::string::npos);
  const Status no_count = LintExposition("# TYPE wum_h histogram\n"
                                         "wum_h_bucket{le=\"1\"} 1\n"
                                         "wum_h_bucket{le=\"+Inf\"} 1\n"
                                         "wum_h_sum 1\n");
  EXPECT_TRUE(no_count.IsInvalidArgument());
  EXPECT_NE(no_count.message().find("no _count"), std::string::npos);
}

TEST(LintExpositionTest, RejectsInfBucketCountMismatch) {
  const Status status = LintExposition("# TYPE wum_h histogram\n"
                                       "wum_h_bucket{le=\"+Inf\"} 3\n"
                                       "wum_h_sum 1\n"
                                       "wum_h_count 4\n");
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("!= _count"), std::string::npos);
}

TEST(LintExpositionTest, RejectsBucketWithoutLeLabel) {
  EXPECT_FALSE(LintExposition("# TYPE wum_h histogram\n"
                              "wum_h_bucket 3\n"
                              "wum_h_bucket{le=\"+Inf\"} 3\n"
                              "wum_h_sum 1\n"
                              "wum_h_count 3\n")
                   .ok());
}

TEST(LintExpositionTest, GaugeNamedLikeHistogramSuffixIsItsOwnFamily) {
  // wum_queue_count is a gauge, not wum_queue's _count series — the
  // linter must fall back to the exact-name family.
  EXPECT_TRUE(LintExposition("# TYPE wum_queue_count gauge\n"
                             "wum_queue_count 7\n")
                  .ok());
}

TEST(LintExpositionTest, ReportsLineNumbers) {
  const Status status = LintExposition("# TYPE wum_x counter\n"
                                       "wum_x 1\n"
                                       "wum_y 2\n");
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace wum::obs
