#include "wum/clf/log_record.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>

namespace {
/// Heap-allocation counter backing the allocation-free contract tests:
/// this binary's global operator new counts every call.
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace wum {
namespace {

TEST(HttpMethodTest, Names) {
  EXPECT_EQ(HttpMethodToString(HttpMethod::kGet), "GET");
  EXPECT_EQ(HttpMethodToString(HttpMethod::kPost), "POST");
  EXPECT_EQ(HttpMethodToString(HttpMethod::kHead), "HEAD");
}

TEST(PageUrlTest, CanonicalForm) {
  EXPECT_EQ(PageUrl(0), "/pages/p0.html");
  EXPECT_EQ(PageUrl(42), "/pages/p42.html");
}

TEST(PageFromUrlTest, RoundTrip) {
  for (std::uint32_t page : {0u, 1u, 42u, 299u, 4294967295u}) {
    Result<std::uint32_t> back = PageFromUrl(PageUrl(page));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, page);
  }
}

TEST(PageFromUrlTest, RejectsNonCanonical) {
  EXPECT_TRUE(PageFromUrl("/index.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/p.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/p12").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("pages/p12.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/pxx.html").status().IsParseError());
  EXPECT_TRUE(PageFromUrl("").status().IsNotFound());
}

TEST(PageFromUrlTest, RejectsOverflowingId) {
  EXPECT_TRUE(PageFromUrl("/pages/p4294967296.html").status().IsOutOfRange());
}

TEST(AgentIpTest, DistinctForDistinctAgents) {
  std::set<std::string> ips;
  for (std::uint64_t agent = 0; agent < 2000; ++agent) {
    ips.insert(AgentIp(agent));
  }
  EXPECT_EQ(ips.size(), 2000u);
}

TEST(AgentIpTest, DottedQuadShape) {
  EXPECT_EQ(AgentIp(0), "10.0.0.1");
  EXPECT_EQ(AgentIp(1), "10.0.0.2");
  EXPECT_EQ(AgentIp(254), "10.0.1.1");
}

TEST(ReferrerUrlTest, RoundTripThroughPageFromReferrer) {
  for (std::uint32_t page : {0u, 42u, 299u}) {
    Result<std::uint32_t> back = PageFromReferrer(ReferrerUrl(page));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, page);
  }
}

TEST(PageFromReferrerTest, AcceptsBarePathAndHttps) {
  EXPECT_EQ(*PageFromReferrer("/pages/p7.html"), 7u);
  EXPECT_EQ(*PageFromReferrer("https://other.host/pages/p9.html"), 9u);
}

TEST(PageFromReferrerTest, RejectsExternalAndEmpty) {
  EXPECT_TRUE(PageFromReferrer("").status().IsNotFound());
  EXPECT_TRUE(PageFromReferrer("http://elsewhere.example/index.html")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(PageFromReferrer("http://hostonly.example").status().IsNotFound());
  EXPECT_TRUE(PageFromReferrer("not a url").status().IsNotFound());
}

TEST(LogRecordTest, DefaultConstructionIsAllocationFree) {
  // The protocol default ("HTTP/1.1") must fit every mainstream
  // std::string small-buffer: a default LogRecord never touches the heap
  // (the recycled-buffer hot path depends on this).
  const std::uint64_t before = g_allocations.load();
  {
    LogRecord record;
    EXPECT_EQ(record.protocol, kDefaultProtocol);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(LogRecordRefTest, ViewOfMaterializeRoundTrip) {
  LogRecord record;
  record.client_ip = "10.1.2.3";
  record.timestamp = 1136214245;
  record.method = HttpMethod::kPost;
  record.url = "/pages/p42.html";
  record.protocol = "HTTP/1.0";
  record.status_code = 304;
  record.bytes = -1;
  record.referrer = "http://www.site.example/pages/p7.html";
  record.user_agent = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
  const LogRecordRef ref = ViewOf(record);
  EXPECT_EQ(ref.client_ip, record.client_ip);
  EXPECT_EQ(ref.url, record.url);
  EXPECT_EQ(ref.Materialize(), record);
}

TEST(LogRecordRefTest, MaterializeIntoReusesCapacityWithoutAllocating) {
  LogRecord source;
  source.client_ip = "10.1.2.3";
  source.timestamp = 77;
  source.url = "/pages/p7.html";
  source.referrer = "http://www.site.example/pages/p1.html";
  source.user_agent = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
  const LogRecordRef ref = ViewOf(source);

  // Prime a recycled buffer whose string capacities already cover the
  // incoming fields (the shape the engine's batch recycling pool sees).
  LogRecord recycled;
  recycled.client_ip = std::string(64, 'x');
  recycled.url = std::string(64, 'x');
  recycled.protocol = std::string(64, 'x');
  recycled.referrer = std::string(64, 'x');
  recycled.user_agent = std::string(64, 'x');

  const std::uint64_t before = g_allocations.load();
  ref.MaterializeInto(&recycled);
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(recycled, source);
}

TEST(LogRecordTest, DefaultAndOrdering) {
  LogRecord a;
  a.client_ip = "10.0.0.1";
  a.timestamp = 100;
  LogRecord b = a;
  EXPECT_EQ(a, b);
  b.timestamp = 200;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace wum
