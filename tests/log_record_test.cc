#include "wum/clf/log_record.h"

#include <gtest/gtest.h>

#include <set>

namespace wum {
namespace {

TEST(HttpMethodTest, Names) {
  EXPECT_EQ(HttpMethodToString(HttpMethod::kGet), "GET");
  EXPECT_EQ(HttpMethodToString(HttpMethod::kPost), "POST");
  EXPECT_EQ(HttpMethodToString(HttpMethod::kHead), "HEAD");
}

TEST(PageUrlTest, CanonicalForm) {
  EXPECT_EQ(PageUrl(0), "/pages/p0.html");
  EXPECT_EQ(PageUrl(42), "/pages/p42.html");
}

TEST(PageFromUrlTest, RoundTrip) {
  for (std::uint32_t page : {0u, 1u, 42u, 299u, 4294967295u}) {
    Result<std::uint32_t> back = PageFromUrl(PageUrl(page));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, page);
  }
}

TEST(PageFromUrlTest, RejectsNonCanonical) {
  EXPECT_TRUE(PageFromUrl("/index.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/p.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/p12").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("pages/p12.html").status().IsNotFound());
  EXPECT_TRUE(PageFromUrl("/pages/pxx.html").status().IsParseError());
  EXPECT_TRUE(PageFromUrl("").status().IsNotFound());
}

TEST(PageFromUrlTest, RejectsOverflowingId) {
  EXPECT_TRUE(PageFromUrl("/pages/p4294967296.html").status().IsOutOfRange());
}

TEST(AgentIpTest, DistinctForDistinctAgents) {
  std::set<std::string> ips;
  for (std::uint64_t agent = 0; agent < 2000; ++agent) {
    ips.insert(AgentIp(agent));
  }
  EXPECT_EQ(ips.size(), 2000u);
}

TEST(AgentIpTest, DottedQuadShape) {
  EXPECT_EQ(AgentIp(0), "10.0.0.1");
  EXPECT_EQ(AgentIp(1), "10.0.0.2");
  EXPECT_EQ(AgentIp(254), "10.0.1.1");
}

TEST(ReferrerUrlTest, RoundTripThroughPageFromReferrer) {
  for (std::uint32_t page : {0u, 42u, 299u}) {
    Result<std::uint32_t> back = PageFromReferrer(ReferrerUrl(page));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, page);
  }
}

TEST(PageFromReferrerTest, AcceptsBarePathAndHttps) {
  EXPECT_EQ(*PageFromReferrer("/pages/p7.html"), 7u);
  EXPECT_EQ(*PageFromReferrer("https://other.host/pages/p9.html"), 9u);
}

TEST(PageFromReferrerTest, RejectsExternalAndEmpty) {
  EXPECT_TRUE(PageFromReferrer("").status().IsNotFound());
  EXPECT_TRUE(PageFromReferrer("http://elsewhere.example/index.html")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(PageFromReferrer("http://hostonly.example").status().IsNotFound());
  EXPECT_TRUE(PageFromReferrer("not a url").status().IsNotFound());
}

TEST(LogRecordTest, DefaultAndOrdering) {
  LogRecord a;
  a.client_ip = "10.0.0.1";
  a.timestamp = 100;
  LogRecord b = a;
  EXPECT_EQ(a, b);
  b.timestamp = 200;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace wum
