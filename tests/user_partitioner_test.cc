#include "wum/clf/user_partitioner.h"

#include <gtest/gtest.h>

namespace wum {
namespace {

LogRecord PageRecord(const std::string& ip, std::uint32_t page,
                     TimeSeconds timestamp) {
  LogRecord record;
  record.client_ip = ip;
  record.url = PageUrl(page);
  record.timestamp = timestamp;
  return record;
}

TEST(UserPartitionerTest, GroupsByIpSortedByIp) {
  std::vector<LogRecord> records = {
      PageRecord("10.0.0.2", 1, 100),
      PageRecord("10.0.0.1", 2, 50),
      PageRecord("10.0.0.2", 3, 200),
  };
  Result<PartitionResult> result = PartitionByUser(records, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->streams.size(), 2u);
  EXPECT_EQ(result->streams[0].client_ip, "10.0.0.1");
  EXPECT_EQ(result->streams[1].client_ip, "10.0.0.2");
  EXPECT_EQ(result->streams[1].requests.size(), 2u);
  EXPECT_EQ(result->streams[1].requests[0].page, 1u);
  EXPECT_EQ(result->streams[1].requests[1].page, 3u);
}

TEST(UserPartitionerTest, SortsWithinStreamByTimestamp) {
  std::vector<LogRecord> records = {
      PageRecord("ip", 1, 300),
      PageRecord("ip", 2, 100),
      PageRecord("ip", 3, 200),
  };
  Result<PartitionResult> result = PartitionByUser(records, 10);
  ASSERT_TRUE(result.ok());
  const auto& requests = result->streams[0].requests;
  EXPECT_EQ(requests[0].page, 2u);
  EXPECT_EQ(requests[1].page, 3u);
  EXPECT_EQ(requests[2].page, 1u);
}

TEST(UserPartitionerTest, StableForEqualTimestamps) {
  std::vector<LogRecord> records = {
      PageRecord("ip", 1, 100),
      PageRecord("ip", 2, 100),
      PageRecord("ip", 3, 100),
  };
  Result<PartitionResult> result = PartitionByUser(records, 10);
  ASSERT_TRUE(result.ok());
  const auto& requests = result->streams[0].requests;
  EXPECT_EQ(requests[0].page, 1u);
  EXPECT_EQ(requests[1].page, 2u);
  EXPECT_EQ(requests[2].page, 3u);
}

TEST(UserPartitionerTest, SkipsNonPageUrls) {
  std::vector<LogRecord> records = {PageRecord("ip", 1, 100)};
  LogRecord other;
  other.client_ip = "ip";
  other.url = "/favicon.ico";
  records.push_back(other);
  Result<PartitionResult> result = PartitionByUser(records, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->skipped_non_page_urls, 1u);
  EXPECT_EQ(result->streams[0].requests.size(), 1u);
}

TEST(UserPartitionerTest, RejectsOutOfTopologyPages) {
  std::vector<LogRecord> records = {PageRecord("ip", 99, 100)};
  Result<PartitionResult> result = PartitionByUser(records, 10);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(UserPartitionerTest, EmptyInput) {
  Result<PartitionResult> result = PartitionByUser({}, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->streams.empty());
  EXPECT_EQ(result->skipped_non_page_urls, 0u);
}

TEST(UserKeyForTest, IdentityModes) {
  EXPECT_EQ(UserKeyFor("1.2.3.4", "Mozilla", UserIdentity::kClientIp),
            "1.2.3.4");
  EXPECT_EQ(
      UserKeyFor("1.2.3.4", "Mozilla", UserIdentity::kClientIpAndUserAgent),
      std::string("1.2.3.4") + '\x1f' + "Mozilla");
}

TEST(UserPartitionerTest, UserAgentSeparatesProxyUsers) {
  auto with_agent = [](std::uint32_t page, TimeSeconds ts,
                       const std::string& agent) {
    LogRecord record = PageRecord("proxy", page, ts);
    record.user_agent = agent;
    return record;
  };
  std::vector<LogRecord> records = {
      with_agent(1, 100, "MSIE"),
      with_agent(2, 150, "Firefox"),
      with_agent(3, 200, "MSIE"),
  };
  Result<PartitionResult> by_ip = PartitionByUser(records, 10);
  ASSERT_TRUE(by_ip.ok());
  EXPECT_EQ(by_ip->streams.size(), 1u);

  Result<PartitionResult> by_ip_agent =
      PartitionByUser(records, 10, UserIdentity::kClientIpAndUserAgent);
  ASSERT_TRUE(by_ip_agent.ok());
  ASSERT_EQ(by_ip_agent->streams.size(), 2u);
  for (const UserStream& stream : by_ip_agent->streams) {
    EXPECT_EQ(stream.client_ip, "proxy");
    EXPECT_FALSE(stream.user_agent.empty());
    if (stream.user_agent == "MSIE") {
      EXPECT_EQ(stream.requests.size(), 2u);
    } else {
      EXPECT_EQ(stream.user_agent, "Firefox");
      EXPECT_EQ(stream.requests.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace wum
