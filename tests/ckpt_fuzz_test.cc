// Corruption fuzzing for the wum::ckpt codec and checkpoint protocol,
// in the spirit of parser_fuzz_test.cc: feed the decoders truncated,
// bit-flipped and outright random bytes and assert they always return a
// clean Status — never crash, hang or read out of bounds — while intact
// input still round-trips. All randomness is seeded, so every run
// exercises the same byte streams.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wum/ckpt/checkpoint.h"
#include "wum/ckpt/codec.h"
#include "wum/common/random.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"
#include "wum/stream/pipeline.h"

namespace wum::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kFuzzMagic = "wumckpt.fuzz";

std::string RandomBytes(Rng* rng, std::size_t max_len) {
  const std::size_t length =
      static_cast<std::size_t>(rng->NextBounded(max_len + 1));
  std::string bytes(length, '\0');
  for (char& byte : bytes) {
    byte = static_cast<char>(rng->NextBounded(256));
  }
  return bytes;
}

/// Flips `flips` random bits anywhere in `data`.
std::string FlipBits(std::string data, Rng* rng, int flips) {
  for (int i = 0; i < flips && !data.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(rng->NextBounded(data.size()));
    const auto bit = static_cast<int>(rng->NextBounded(8));
    data[pos] = static_cast<char>(data[pos] ^ (1 << bit));
  }
  return data;
}

/// A well-formed framed stream with a few variable-size payloads.
std::string ValidStream(Rng* rng, std::vector<std::string>* payloads) {
  std::ostringstream out;
  FrameWriter writer(&out);
  EXPECT_TRUE(writer.WriteHeader(kFuzzMagic, kCheckpointVersion).ok());
  const std::size_t count = 1 + static_cast<std::size_t>(rng->NextBounded(4));
  for (std::size_t i = 0; i < count; ++i) {
    payloads->push_back(RandomBytes(rng, 64));
    EXPECT_TRUE(writer.WriteFrame(payloads->back()).ok());
  }
  return out.str();
}

/// Decodes a framed stream; returns the frames or the first error.
Result<std::vector<std::string>> DecodeStream(const std::string& bytes) {
  std::istringstream in(bytes);
  FrameReader reader(&in);
  WUM_RETURN_NOT_OK(reader.ReadHeader(kFuzzMagic, kCheckpointVersion));
  std::vector<std::string> frames;
  while (true) {
    WUM_ASSIGN_OR_RETURN(std::optional<std::string> frame,
                         reader.ReadFrame());
    if (!frame.has_value()) break;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

TEST(CkptFuzzTest, EveryTruncationFailsCleanlyOrYieldsPrefix) {
  Rng rng(20060201);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::string> payloads;
    const std::string full = ValidStream(&rng, &payloads);
    ASSERT_TRUE(DecodeStream(full).ok());
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      Result<std::vector<std::string>> frames =
          DecodeStream(full.substr(0, cut));
      if (!frames.ok()) {
        EXPECT_TRUE(frames.status().IsParseError())
            << "round " << round << " cut " << cut << ": "
            << frames.status().message();
        continue;
      }
      // A cut at an exact frame boundary parses as a shorter file; the
      // recovered frames must then be a strict prefix of the originals.
      ASSERT_LT(frames->size(), payloads.size());
      for (std::size_t i = 0; i < frames->size(); ++i) {
        EXPECT_EQ((*frames)[i], payloads[i]);
      }
    }
  }
}

TEST(CkptFuzzTest, BitFlipsNeverCrashAndNeverCorruptSilently) {
  Rng rng(20060202);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> payloads;
    const std::string full = ValidStream(&rng, &payloads);
    const std::string mutated =
        FlipBits(full, &rng, 1 + static_cast<int>(rng.NextBounded(3)));
    if (mutated == full) continue;
    Result<std::vector<std::string>> frames = DecodeStream(mutated);
    // CRC-framed input either fails loudly or (when the flips landed in
    // a frame-length field that re-frames to a checksummed prefix)
    // yields frames that still match their checksums. It must never
    // silently return the original payload list as if nothing happened.
    if (frames.ok()) {
      EXPECT_NE(*frames, payloads) << "round " << round;
    } else {
      EXPECT_TRUE(frames.status().IsParseError()) << "round " << round;
    }
  }
}

TEST(CkptFuzzTest, RandomGarbageHeadersRejected) {
  Rng rng(20060203);
  for (int round = 0; round < 300; ++round) {
    std::istringstream in(RandomBytes(&rng, 256));
    FrameReader reader(&in);
    Status status = reader.ReadHeader(kFuzzMagic, kCheckpointVersion);
    if (!status.ok()) {
      EXPECT_TRUE(status.IsParseError()) << status.message();
      continue;
    }
    // Astronomically unlikely, but legal: keep reading frames and
    // require a clean Status either way.
    while (true) {
      Result<std::optional<std::string>> frame = reader.ReadFrame();
      if (!frame.ok() || !frame->has_value()) break;
    }
  }
}

TEST(CkptFuzzTest, DecoderPrimitivesSurviveRandomBytes) {
  Rng rng(20060204);
  for (int round = 0; round < 500; ++round) {
    const std::string bytes = RandomBytes(&rng, 128);
    Decoder decoder(bytes);
    // Walk the payload with a random primitive sequence until it is
    // exhausted or a getter reports truncation.
    while (decoder.remaining() > 0) {
      bool ok = true;
      switch (rng.NextBounded(6)) {
        case 0: ok = decoder.GetU8().ok(); break;
        case 1: ok = decoder.GetU32().ok(); break;
        case 2: ok = decoder.GetU64().ok(); break;
        case 3: ok = decoder.GetUvarint().ok(); break;
        case 4: ok = decoder.GetVarint().ok(); break;
        default: ok = decoder.GetString().ok(); break;
      }
      if (!ok) break;
    }
  }
}

TEST(CkptFuzzTest, SchemaDecodersSurviveRandomPayloads) {
  Rng rng(20060205);
  for (int round = 0; round < 500; ++round) {
    const std::string bytes = RandomBytes(&rng, 192);
    {
      Decoder decoder(bytes);
      CheckpointManifest manifest;
      (void)DecodeManifest(&decoder, &manifest);
    }
    {
      Decoder decoder(bytes);
      Session session;
      (void)DecodeSession(&decoder, &session);
    }
    {
      Decoder decoder(bytes);
      DeadLetter letter;
      (void)DecodeDeadLetter(&decoder, &letter);
    }
  }
}

TEST(CkptFuzzTest, SchemaRoundTripsSurviveCorruption) {
  Rng rng(20060206);
  for (int round = 0; round < 200; ++round) {
    CheckpointManifest manifest;
    manifest.epoch = rng.NextBounded(1000);
    manifest.num_shards = static_cast<std::uint32_t>(rng.NextBounded(64));
    manifest.records_seen = rng.NextBounded(1u << 30);
    manifest.heuristic = RandomBytes(&rng, 12);
    manifest.identity = "ip";
    manifest.max_session_duration =
        static_cast<TimeSeconds>(rng.NextBounded(100000));
    manifest.max_page_stay = static_cast<TimeSeconds>(rng.NextBounded(10000));
    manifest.sink_state = RandomBytes(&rng, 24);

    Encoder encoder;
    EncodeManifest(manifest, &encoder);
    // Intact payload round-trips...
    {
      Decoder decoder(encoder.buffer());
      CheckpointManifest restored;
      ASSERT_TRUE(DecodeManifest(&decoder, &restored).ok());
      ASSERT_TRUE(decoder.ExpectEnd().ok());
      EXPECT_EQ(restored.records_seen, manifest.records_seen);
      EXPECT_EQ(restored.heuristic, manifest.heuristic);
    }
    // ...every truncation fails cleanly (possibly via ExpectEnd).
    for (std::size_t cut = 0; cut < encoder.buffer().size(); ++cut) {
      Decoder decoder(std::string_view(encoder.buffer()).substr(0, cut));
      CheckpointManifest restored;
      Status status = DecodeManifest(&decoder, &restored);
      if (status.ok()) status = decoder.ExpectEnd();
      EXPECT_FALSE(status.ok()) << "cut at " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// A corrupted checkpoint directory must fail resume with a clean error,
// not crash or half-restore.

class CorruptResumeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("ckpt_fuzz_resume_" + std::string(testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  Status TryResume(std::size_t num_shards = 1) {
    CollectingSessionSink sink;
    Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        EngineOptions()
            .use_duration()
            .set_num_pages(100)
            .set_num_shards(num_shards)
            .resume_from(dir_.string()),
        &sink);
    return engine.ok() ? Status::OK() : engine.status();
  }

  fs::path dir_;
};

TEST_F(CorruptResumeTest, GarbageCurrentPointer) {
  Rng rng(20060207);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(
        WriteFileAtomic((dir_ / "CURRENT").string(), RandomBytes(&rng, 64))
            .ok());
    Status status = TryResume();
    EXPECT_FALSE(status.ok()) << "round " << round;
  }
}

TEST_F(CorruptResumeTest, CurrentPointsAtMissingEpoch) {
  ASSERT_TRUE(CommitCurrent(dir_.string(), 5).ok());
  Status status = TryResume();
  EXPECT_FALSE(status.ok());
}

TEST_F(CorruptResumeTest, GarbageManifestAndShardFiles) {
  Rng rng(20060208);
  const fs::path epoch = dir_ / EpochDirName(1);
  fs::create_directories(epoch);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(WriteFileAtomic((epoch / "MANIFEST").string(),
                                RandomBytes(&rng, 128))
                    .ok());
    ASSERT_TRUE(WriteFileAtomic((epoch / "shard-0.state").string(),
                                RandomBytes(&rng, 128))
                    .ok());
    ASSERT_TRUE(CommitCurrent(dir_.string(), 1).ok());
    Status status = TryResume();
    EXPECT_FALSE(status.ok()) << "round " << round;
  }
}

TEST_F(CorruptResumeTest, BitFlippedRealCheckpoint) {
  // Take a real checkpoint, then flip bits in each of its files and
  // require every resume attempt to fail cleanly (or, if the flip
  // landed somewhere truly harmless, succeed) without crashing.
  CollectingSessionSink sink;
  Result<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      EngineOptions().use_duration().set_num_pages(100).set_num_shards(2),
      &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  LogRecord record;
  record.client_ip = "10.0.0.1";
  record.timestamp = 1000;
  record.url = "/pages/p1.html";
  ASSERT_TRUE((*engine)->Offer(record).ok());
  ASSERT_TRUE((*engine)->Checkpoint(dir_.string()).ok());
  ASSERT_TRUE((*engine)->Finish().ok());

  Rng rng(20060209);
  const fs::path epoch = dir_ / EpochDirName(1);
  for (const char* name :
       {"MANIFEST", "shard-0.state", "shard-1.state", "dead_letters.state"}) {
    const fs::path path = epoch / name;
    ASSERT_TRUE(fs::exists(path)) << name;
    std::ifstream in(path, std::ios::binary);
    std::string original((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    for (int round = 0; round < 30; ++round) {
      ASSERT_TRUE(
          WriteFileAtomic(path.string(), FlipBits(original, &rng, 1)).ok());
      (void)TryResume(2);  // must not crash; error or success both fine
    }
    ASSERT_TRUE(WriteFileAtomic(path.string(), original).ok());
  }
  // With every file restored, resume works again.
  EXPECT_TRUE(TryResume(2).ok());
}

}  // namespace
}  // namespace wum::ckpt
