#include "wum/simulator/browser_cache.h"

#include <gtest/gtest.h>

namespace wum {
namespace {

TEST(BrowserCacheTest, FirstVisitMissesSecondHits) {
  BrowserCache cache(10);
  EXPECT_FALSE(cache.Visit(3));
  EXPECT_TRUE(cache.Visit(3));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(4));
}

TEST(BrowserCacheTest, UnboundedNeverEvicts) {
  BrowserCache cache(100, 0);
  for (PageId p = 0; p < 100; ++p) EXPECT_FALSE(cache.Visit(p));
  for (PageId p = 0; p < 100; ++p) EXPECT_TRUE(cache.Contains(p));
  EXPECT_EQ(cache.size(), 100u);
}

TEST(BrowserCacheTest, LruEvictionAtCapacity) {
  BrowserCache cache(10, 2);
  cache.Visit(0);
  cache.Visit(1);
  cache.Visit(2);  // evicts 0 (least recently used)
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(BrowserCacheTest, VisitRefreshesRecency) {
  BrowserCache cache(10, 2);
  cache.Visit(0);
  cache.Visit(1);
  cache.Visit(0);  // 0 becomes most recent
  cache.Visit(2);  // evicts 1
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(BrowserCacheTest, EvictedPageMissesAgain) {
  BrowserCache cache(10, 1);
  cache.Visit(0);
  cache.Visit(1);  // evicts 0
  EXPECT_FALSE(cache.Visit(0));  // server hit again
}

TEST(BrowserCacheTest, ContainsRejectsOutOfRange) {
  BrowserCache cache(4);
  EXPECT_FALSE(cache.Contains(99));
}

}  // namespace
}  // namespace wum
