# Empty compiler generated dependencies file for websra_evaluate.
# This may be replaced when dependencies are built.
