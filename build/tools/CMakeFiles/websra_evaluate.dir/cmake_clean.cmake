file(REMOVE_RECURSE
  "CMakeFiles/websra_evaluate.dir/websra_evaluate.cc.o"
  "CMakeFiles/websra_evaluate.dir/websra_evaluate.cc.o.d"
  "websra_evaluate"
  "websra_evaluate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websra_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
