file(REMOVE_RECURSE
  "CMakeFiles/websra_experiment.dir/websra_experiment.cc.o"
  "CMakeFiles/websra_experiment.dir/websra_experiment.cc.o.d"
  "websra_experiment"
  "websra_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websra_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
