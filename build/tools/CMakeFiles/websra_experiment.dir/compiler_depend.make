# Empty compiler generated dependencies file for websra_experiment.
# This may be replaced when dependencies are built.
