file(REMOVE_RECURSE
  "CMakeFiles/websra_sessionize.dir/websra_sessionize.cc.o"
  "CMakeFiles/websra_sessionize.dir/websra_sessionize.cc.o.d"
  "websra_sessionize"
  "websra_sessionize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websra_sessionize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
