# Empty dependencies file for websra_sessionize.
# This may be replaced when dependencies are built.
