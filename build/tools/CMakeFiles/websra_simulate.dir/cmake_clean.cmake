file(REMOVE_RECURSE
  "CMakeFiles/websra_simulate.dir/websra_simulate.cc.o"
  "CMakeFiles/websra_simulate.dir/websra_simulate.cc.o.d"
  "websra_simulate"
  "websra_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websra_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
