# Empty dependencies file for websra_simulate.
# This may be replaced when dependencies are built.
