# Empty dependencies file for websra_mine.
# This may be replaced when dependencies are built.
