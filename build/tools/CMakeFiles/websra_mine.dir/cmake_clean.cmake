file(REMOVE_RECURSE
  "CMakeFiles/websra_mine.dir/websra_mine.cc.o"
  "CMakeFiles/websra_mine.dir/websra_mine.cc.o.d"
  "websra_mine"
  "websra_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websra_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
