# Empty dependencies file for site_generator_test.
# This may be replaced when dependencies are built.
