file(REMOVE_RECURSE
  "CMakeFiles/site_generator_test.dir/site_generator_test.cc.o"
  "CMakeFiles/site_generator_test.dir/site_generator_test.cc.o.d"
  "site_generator_test"
  "site_generator_test.pdb"
  "site_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
