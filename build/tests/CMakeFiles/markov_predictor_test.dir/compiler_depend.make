# Empty compiler generated dependencies file for markov_predictor_test.
# This may be replaced when dependencies are built.
