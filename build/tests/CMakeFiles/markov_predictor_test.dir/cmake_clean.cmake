file(REMOVE_RECURSE
  "CMakeFiles/markov_predictor_test.dir/markov_predictor_test.cc.o"
  "CMakeFiles/markov_predictor_test.dir/markov_predictor_test.cc.o.d"
  "markov_predictor_test"
  "markov_predictor_test.pdb"
  "markov_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
