# Empty compiler generated dependencies file for smart_sra_property_test.
# This may be replaced when dependencies are built.
