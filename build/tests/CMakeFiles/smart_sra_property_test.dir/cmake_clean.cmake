file(REMOVE_RECURSE
  "CMakeFiles/smart_sra_property_test.dir/smart_sra_property_test.cc.o"
  "CMakeFiles/smart_sra_property_test.dir/smart_sra_property_test.cc.o.d"
  "smart_sra_property_test"
  "smart_sra_property_test.pdb"
  "smart_sra_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_sra_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
