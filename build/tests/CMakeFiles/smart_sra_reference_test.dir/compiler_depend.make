# Empty compiler generated dependencies file for smart_sra_reference_test.
# This may be replaced when dependencies are built.
