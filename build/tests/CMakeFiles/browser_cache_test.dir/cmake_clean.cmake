file(REMOVE_RECURSE
  "CMakeFiles/browser_cache_test.dir/browser_cache_test.cc.o"
  "CMakeFiles/browser_cache_test.dir/browser_cache_test.cc.o.d"
  "browser_cache_test"
  "browser_cache_test.pdb"
  "browser_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
