file(REMOVE_RECURSE
  "CMakeFiles/time_heuristics_test.dir/time_heuristics_test.cc.o"
  "CMakeFiles/time_heuristics_test.dir/time_heuristics_test.cc.o.d"
  "time_heuristics_test"
  "time_heuristics_test.pdb"
  "time_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
