# Empty compiler generated dependencies file for web_graph_test.
# This may be replaced when dependencies are built.
