file(REMOVE_RECURSE
  "CMakeFiles/clf_roundtrip_test.dir/clf_roundtrip_test.cc.o"
  "CMakeFiles/clf_roundtrip_test.dir/clf_roundtrip_test.cc.o.d"
  "clf_roundtrip_test"
  "clf_roundtrip_test.pdb"
  "clf_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clf_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
