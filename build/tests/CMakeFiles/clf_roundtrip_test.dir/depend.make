# Empty dependencies file for clf_roundtrip_test.
# This may be replaced when dependencies are built.
