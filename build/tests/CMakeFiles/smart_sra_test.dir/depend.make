# Empty dependencies file for smart_sra_test.
# This may be replaced when dependencies are built.
