file(REMOVE_RECURSE
  "CMakeFiles/smart_sra_test.dir/smart_sra_test.cc.o"
  "CMakeFiles/smart_sra_test.dir/smart_sra_test.cc.o.d"
  "smart_sra_test"
  "smart_sra_test.pdb"
  "smart_sra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_sra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
