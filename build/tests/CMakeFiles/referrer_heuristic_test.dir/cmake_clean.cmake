file(REMOVE_RECURSE
  "CMakeFiles/referrer_heuristic_test.dir/referrer_heuristic_test.cc.o"
  "CMakeFiles/referrer_heuristic_test.dir/referrer_heuristic_test.cc.o.d"
  "referrer_heuristic_test"
  "referrer_heuristic_test.pdb"
  "referrer_heuristic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/referrer_heuristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
