# Empty compiler generated dependencies file for referrer_heuristic_test.
# This may be replaced when dependencies are built.
