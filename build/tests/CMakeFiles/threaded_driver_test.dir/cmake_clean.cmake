file(REMOVE_RECURSE
  "CMakeFiles/threaded_driver_test.dir/threaded_driver_test.cc.o"
  "CMakeFiles/threaded_driver_test.dir/threaded_driver_test.cc.o.d"
  "threaded_driver_test"
  "threaded_driver_test.pdb"
  "threaded_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
