# Empty dependencies file for threaded_driver_test.
# This may be replaced when dependencies are built.
