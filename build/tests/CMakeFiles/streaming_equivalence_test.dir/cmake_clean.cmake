file(REMOVE_RECURSE
  "CMakeFiles/streaming_equivalence_test.dir/streaming_equivalence_test.cc.o"
  "CMakeFiles/streaming_equivalence_test.dir/streaming_equivalence_test.cc.o.d"
  "streaming_equivalence_test"
  "streaming_equivalence_test.pdb"
  "streaming_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
