# Empty compiler generated dependencies file for navigation_heuristic_test.
# This may be replaced when dependencies are built.
