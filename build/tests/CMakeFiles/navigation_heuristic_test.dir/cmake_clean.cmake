file(REMOVE_RECURSE
  "CMakeFiles/navigation_heuristic_test.dir/navigation_heuristic_test.cc.o"
  "CMakeFiles/navigation_heuristic_test.dir/navigation_heuristic_test.cc.o.d"
  "navigation_heuristic_test"
  "navigation_heuristic_test.pdb"
  "navigation_heuristic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation_heuristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
