# Empty dependencies file for agent_simulator_test.
# This may be replaced when dependencies are built.
