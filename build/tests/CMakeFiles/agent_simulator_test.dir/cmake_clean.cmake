file(REMOVE_RECURSE
  "CMakeFiles/agent_simulator_test.dir/agent_simulator_test.cc.o"
  "CMakeFiles/agent_simulator_test.dir/agent_simulator_test.cc.o.d"
  "agent_simulator_test"
  "agent_simulator_test.pdb"
  "agent_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
