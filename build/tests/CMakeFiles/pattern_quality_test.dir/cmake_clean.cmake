file(REMOVE_RECURSE
  "CMakeFiles/pattern_quality_test.dir/pattern_quality_test.cc.o"
  "CMakeFiles/pattern_quality_test.dir/pattern_quality_test.cc.o.d"
  "pattern_quality_test"
  "pattern_quality_test.pdb"
  "pattern_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
