file(REMOVE_RECURSE
  "CMakeFiles/session_io_test.dir/session_io_test.cc.o"
  "CMakeFiles/session_io_test.dir/session_io_test.cc.o.d"
  "session_io_test"
  "session_io_test.pdb"
  "session_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
