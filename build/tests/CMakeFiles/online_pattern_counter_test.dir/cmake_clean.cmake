file(REMOVE_RECURSE
  "CMakeFiles/online_pattern_counter_test.dir/online_pattern_counter_test.cc.o"
  "CMakeFiles/online_pattern_counter_test.dir/online_pattern_counter_test.cc.o.d"
  "online_pattern_counter_test"
  "online_pattern_counter_test.pdb"
  "online_pattern_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_pattern_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
