# Empty dependencies file for online_pattern_counter_test.
# This may be replaced when dependencies are built.
