# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for online_pattern_counter_test.
