file(REMOVE_RECURSE
  "CMakeFiles/csv_table_test.dir/csv_table_test.cc.o"
  "CMakeFiles/csv_table_test.dir/csv_table_test.cc.o.d"
  "csv_table_test"
  "csv_table_test.pdb"
  "csv_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
