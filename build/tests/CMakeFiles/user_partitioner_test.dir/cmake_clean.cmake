file(REMOVE_RECURSE
  "CMakeFiles/user_partitioner_test.dir/user_partitioner_test.cc.o"
  "CMakeFiles/user_partitioner_test.dir/user_partitioner_test.cc.o.d"
  "user_partitioner_test"
  "user_partitioner_test.pdb"
  "user_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
