# Empty dependencies file for user_partitioner_test.
# This may be replaced when dependencies are built.
