# Empty dependencies file for berendt_measures_test.
# This may be replaced when dependencies are built.
