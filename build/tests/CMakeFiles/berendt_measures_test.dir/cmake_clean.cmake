file(REMOVE_RECURSE
  "CMakeFiles/berendt_measures_test.dir/berendt_measures_test.cc.o"
  "CMakeFiles/berendt_measures_test.dir/berendt_measures_test.cc.o.d"
  "berendt_measures_test"
  "berendt_measures_test.pdb"
  "berendt_measures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/berendt_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
