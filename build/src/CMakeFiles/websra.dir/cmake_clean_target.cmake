file(REMOVE_RECURSE
  "libwebsra.a"
)
