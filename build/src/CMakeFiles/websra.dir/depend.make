# Empty dependencies file for websra.
# This may be replaced when dependencies are built.
