
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wum/clf/clf_parser.cc" "src/CMakeFiles/websra.dir/wum/clf/clf_parser.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/clf/clf_parser.cc.o.d"
  "/root/repo/src/wum/clf/clf_writer.cc" "src/CMakeFiles/websra.dir/wum/clf/clf_writer.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/clf/clf_writer.cc.o.d"
  "/root/repo/src/wum/clf/log_filter.cc" "src/CMakeFiles/websra.dir/wum/clf/log_filter.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/clf/log_filter.cc.o.d"
  "/root/repo/src/wum/clf/log_record.cc" "src/CMakeFiles/websra.dir/wum/clf/log_record.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/clf/log_record.cc.o.d"
  "/root/repo/src/wum/clf/user_partitioner.cc" "src/CMakeFiles/websra.dir/wum/clf/user_partitioner.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/clf/user_partitioner.cc.o.d"
  "/root/repo/src/wum/common/csv.cc" "src/CMakeFiles/websra.dir/wum/common/csv.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/csv.cc.o.d"
  "/root/repo/src/wum/common/histogram.cc" "src/CMakeFiles/websra.dir/wum/common/histogram.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/histogram.cc.o.d"
  "/root/repo/src/wum/common/random.cc" "src/CMakeFiles/websra.dir/wum/common/random.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/random.cc.o.d"
  "/root/repo/src/wum/common/status.cc" "src/CMakeFiles/websra.dir/wum/common/status.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/status.cc.o.d"
  "/root/repo/src/wum/common/string_util.cc" "src/CMakeFiles/websra.dir/wum/common/string_util.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/string_util.cc.o.d"
  "/root/repo/src/wum/common/table.cc" "src/CMakeFiles/websra.dir/wum/common/table.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/table.cc.o.d"
  "/root/repo/src/wum/common/time.cc" "src/CMakeFiles/websra.dir/wum/common/time.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/common/time.cc.o.d"
  "/root/repo/src/wum/eval/accuracy.cc" "src/CMakeFiles/websra.dir/wum/eval/accuracy.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/eval/accuracy.cc.o.d"
  "/root/repo/src/wum/eval/berendt_measures.cc" "src/CMakeFiles/websra.dir/wum/eval/berendt_measures.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/eval/berendt_measures.cc.o.d"
  "/root/repo/src/wum/eval/experiment.cc" "src/CMakeFiles/websra.dir/wum/eval/experiment.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/eval/experiment.cc.o.d"
  "/root/repo/src/wum/eval/pattern_quality.cc" "src/CMakeFiles/websra.dir/wum/eval/pattern_quality.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/eval/pattern_quality.cc.o.d"
  "/root/repo/src/wum/eval/report.cc" "src/CMakeFiles/websra.dir/wum/eval/report.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/eval/report.cc.o.d"
  "/root/repo/src/wum/mining/apriori_all.cc" "src/CMakeFiles/websra.dir/wum/mining/apriori_all.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/mining/apriori_all.cc.o.d"
  "/root/repo/src/wum/mining/markov_predictor.cc" "src/CMakeFiles/websra.dir/wum/mining/markov_predictor.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/mining/markov_predictor.cc.o.d"
  "/root/repo/src/wum/mining/pattern.cc" "src/CMakeFiles/websra.dir/wum/mining/pattern.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/mining/pattern.cc.o.d"
  "/root/repo/src/wum/session/navigation_heuristic.cc" "src/CMakeFiles/websra.dir/wum/session/navigation_heuristic.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/navigation_heuristic.cc.o.d"
  "/root/repo/src/wum/session/referrer_heuristic.cc" "src/CMakeFiles/websra.dir/wum/session/referrer_heuristic.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/referrer_heuristic.cc.o.d"
  "/root/repo/src/wum/session/session.cc" "src/CMakeFiles/websra.dir/wum/session/session.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/session.cc.o.d"
  "/root/repo/src/wum/session/session_io.cc" "src/CMakeFiles/websra.dir/wum/session/session_io.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/session_io.cc.o.d"
  "/root/repo/src/wum/session/smart_sra.cc" "src/CMakeFiles/websra.dir/wum/session/smart_sra.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/smart_sra.cc.o.d"
  "/root/repo/src/wum/session/time_heuristics.cc" "src/CMakeFiles/websra.dir/wum/session/time_heuristics.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/session/time_heuristics.cc.o.d"
  "/root/repo/src/wum/simulator/agent_simulator.cc" "src/CMakeFiles/websra.dir/wum/simulator/agent_simulator.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/simulator/agent_simulator.cc.o.d"
  "/root/repo/src/wum/simulator/browser_cache.cc" "src/CMakeFiles/websra.dir/wum/simulator/browser_cache.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/simulator/browser_cache.cc.o.d"
  "/root/repo/src/wum/simulator/server_log_collector.cc" "src/CMakeFiles/websra.dir/wum/simulator/server_log_collector.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/simulator/server_log_collector.cc.o.d"
  "/root/repo/src/wum/simulator/workload.cc" "src/CMakeFiles/websra.dir/wum/simulator/workload.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/simulator/workload.cc.o.d"
  "/root/repo/src/wum/stream/incremental_sessionizer.cc" "src/CMakeFiles/websra.dir/wum/stream/incremental_sessionizer.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/incremental_sessionizer.cc.o.d"
  "/root/repo/src/wum/stream/incremental_time_sessionizers.cc" "src/CMakeFiles/websra.dir/wum/stream/incremental_time_sessionizers.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/incremental_time_sessionizers.cc.o.d"
  "/root/repo/src/wum/stream/online_pattern_counter.cc" "src/CMakeFiles/websra.dir/wum/stream/online_pattern_counter.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/online_pattern_counter.cc.o.d"
  "/root/repo/src/wum/stream/operators.cc" "src/CMakeFiles/websra.dir/wum/stream/operators.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/operators.cc.o.d"
  "/root/repo/src/wum/stream/pipeline.cc" "src/CMakeFiles/websra.dir/wum/stream/pipeline.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/pipeline.cc.o.d"
  "/root/repo/src/wum/stream/threaded_driver.cc" "src/CMakeFiles/websra.dir/wum/stream/threaded_driver.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/stream/threaded_driver.cc.o.d"
  "/root/repo/src/wum/topology/graph_algorithms.cc" "src/CMakeFiles/websra.dir/wum/topology/graph_algorithms.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/topology/graph_algorithms.cc.o.d"
  "/root/repo/src/wum/topology/graph_io.cc" "src/CMakeFiles/websra.dir/wum/topology/graph_io.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/topology/graph_io.cc.o.d"
  "/root/repo/src/wum/topology/site_generator.cc" "src/CMakeFiles/websra.dir/wum/topology/site_generator.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/topology/site_generator.cc.o.d"
  "/root/repo/src/wum/topology/web_graph.cc" "src/CMakeFiles/websra.dir/wum/topology/web_graph.cc.o" "gcc" "src/CMakeFiles/websra.dir/wum/topology/web_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
