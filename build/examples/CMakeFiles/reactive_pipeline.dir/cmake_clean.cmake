file(REMOVE_RECURSE
  "CMakeFiles/reactive_pipeline.dir/reactive_pipeline.cpp.o"
  "CMakeFiles/reactive_pipeline.dir/reactive_pipeline.cpp.o.d"
  "reactive_pipeline"
  "reactive_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
