# Empty compiler generated dependencies file for reactive_pipeline.
# This may be replaced when dependencies are built.
