# Empty compiler generated dependencies file for fig8_accuracy_vs_stp.
# This may be replaced when dependencies are built.
