file(REMOVE_RECURSE
  "CMakeFiles/fig8_accuracy_vs_stp.dir/fig8_accuracy_vs_stp.cc.o"
  "CMakeFiles/fig8_accuracy_vs_stp.dir/fig8_accuracy_vs_stp.cc.o.d"
  "fig8_accuracy_vs_stp"
  "fig8_accuracy_vs_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_accuracy_vs_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
