# Empty compiler generated dependencies file for fig10_accuracy_vs_nip.
# This may be replaced when dependencies are built.
