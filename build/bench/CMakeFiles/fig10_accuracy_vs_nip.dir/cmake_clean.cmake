file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_vs_nip.dir/fig10_accuracy_vs_nip.cc.o"
  "CMakeFiles/fig10_accuracy_vs_nip.dir/fig10_accuracy_vs_nip.cc.o.d"
  "fig10_accuracy_vs_nip"
  "fig10_accuracy_vs_nip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_vs_nip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
