# Empty compiler generated dependencies file for ablation_referrer.
# This may be replaced when dependencies are built.
