file(REMOVE_RECURSE
  "CMakeFiles/ablation_referrer.dir/ablation_referrer.cc.o"
  "CMakeFiles/ablation_referrer.dir/ablation_referrer.cc.o.d"
  "ablation_referrer"
  "ablation_referrer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_referrer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
