# Empty compiler generated dependencies file for session_lengths.
# This may be replaced when dependencies are built.
