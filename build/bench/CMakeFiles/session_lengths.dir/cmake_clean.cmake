file(REMOVE_RECURSE
  "CMakeFiles/session_lengths.dir/session_lengths.cc.o"
  "CMakeFiles/session_lengths.dir/session_lengths.cc.o.d"
  "session_lengths"
  "session_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
