# Empty dependencies file for ablation_pattern_quality.
# This may be replaced when dependencies are built.
