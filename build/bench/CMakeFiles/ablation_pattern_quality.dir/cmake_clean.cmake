file(REMOVE_RECURSE
  "CMakeFiles/ablation_pattern_quality.dir/ablation_pattern_quality.cc.o"
  "CMakeFiles/ablation_pattern_quality.dir/ablation_pattern_quality.cc.o.d"
  "ablation_pattern_quality"
  "ablation_pattern_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pattern_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
