file(REMOVE_RECURSE
  "CMakeFiles/table_examples.dir/table_examples.cc.o"
  "CMakeFiles/table_examples.dir/table_examples.cc.o.d"
  "table_examples"
  "table_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
