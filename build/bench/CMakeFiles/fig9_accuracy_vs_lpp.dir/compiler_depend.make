# Empty compiler generated dependencies file for fig9_accuracy_vs_lpp.
# This may be replaced when dependencies are built.
