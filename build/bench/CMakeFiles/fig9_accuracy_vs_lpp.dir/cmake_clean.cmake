file(REMOVE_RECURSE
  "CMakeFiles/fig9_accuracy_vs_lpp.dir/fig9_accuracy_vs_lpp.cc.o"
  "CMakeFiles/fig9_accuracy_vs_lpp.dir/fig9_accuracy_vs_lpp.cc.o.d"
  "fig9_accuracy_vs_lpp"
  "fig9_accuracy_vs_lpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accuracy_vs_lpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
