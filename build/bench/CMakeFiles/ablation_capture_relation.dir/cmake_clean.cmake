file(REMOVE_RECURSE
  "CMakeFiles/ablation_capture_relation.dir/ablation_capture_relation.cc.o"
  "CMakeFiles/ablation_capture_relation.dir/ablation_capture_relation.cc.o.d"
  "ablation_capture_relation"
  "ablation_capture_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capture_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
