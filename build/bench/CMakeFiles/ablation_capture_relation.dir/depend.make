# Empty dependencies file for ablation_capture_relation.
# This may be replaced when dependencies are built.
