# Empty compiler generated dependencies file for ablation_proxy.
# This may be replaced when dependencies are built.
