// Compares the four reactive heuristics of the paper on one simulated
// population and prints a compact scorecard — a laptop-scale version of
// the Figure 8-10 experiments (see bench/ for the full sweeps).

#include <iostream>

#include "wum/common/table.h"
#include "wum/eval/experiment.h"
#include "wum/eval/report.h"

int main() {
  wum::ExperimentConfig config = wum::PaperDefaults();
  config.workload.num_agents = 1000;  // laptop-scale
  config.seed = 8;

  std::cout << "comparing heur1..heur4 on " << config.workload.num_agents
            << " simulated users (Table 5 behaviour: STP=5%, LPP=30%, "
               "NIP=30%)\n\n";

  wum::Result<wum::SweepPoint> point = wum::RunExperimentPoint(
      config, wum::SweepParameter::kStp, config.profile.stp, 0);
  if (!point.ok()) {
    std::cerr << point.status().ToString() << "\n";
    return 1;
  }

  wum::Table table({"heuristic", "accuracy %", "recall %", "correct/built",
                    "valid", "mean length"});
  for (const wum::HeuristicScore& score : point->scores) {
    const wum::AccuracyResult& r = score.result;
    table.AddRow({score.heuristic,
                  wum::FormatDouble(r.accuracy() * 100.0, 2),
                  wum::FormatDouble(r.capture_rate() * 100.0, 2),
                  std::to_string(r.correct_reconstructions) + "/" +
                      std::to_string(r.reconstructed_sessions),
                  std::to_string(r.valid_reconstructed_sessions),
                  wum::FormatDouble(r.reconstructed_length.mean(), 2)});
  }
  table.Render(&std::cout);
  std::cout << "\nSmart-SRA margin over the best baseline: "
            << wum::FormatRelativeMargin(wum::SmartSraRelativeMargin(*point))
            << "\n"
            << "(run bench/fig8_accuracy_vs_stp etc. for the full paper "
               "sweeps)\n";
  return 0;
}
