// Reactive (streaming) processing: the web server's log records flow
// into a sharded StreamEngine — records are hash-partitioned by user
// across worker shards, each running its own filter chain and per-user
// incremental Smart-SRA — and completed sessions are reported the moment
// they close, no offline batch pass. This is the deployment shape the
// paper's title refers to: the server never waits on mining, and the
// engine scales sessionization across cores.

#include <iostream>

#include "wum/clf/log_filter.h"
#include "wum/mine/path_miner.h"
#include "wum/simulator/workload.h"
#include "wum/stream/engine.h"
#include "wum/stream/operators.h"
#include "wum/topology/site_generator.h"

int main() {
  wum::Rng rng(77);
  wum::SiteGeneratorOptions site;
  site.num_pages = 40;
  site.mean_out_degree = 5.0;
  wum::Result<wum::WebGraph> graph = wum::GenerateUniformSite(site, &rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  // Simulate a morning of traffic to replay as a live stream.
  wum::WorkloadOptions population;
  population.num_agents = 30;
  population.start_window = 3600 * 4;
  wum::Result<wum::Workload> workload =
      wum::SimulateWorkload(*graph, wum::AgentProfile(), population, &rng);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::vector<wum::LogRecord> live_feed =
      wum::CollectServerLog(workload->ToAgentRequests());
  std::cout << "replaying " << live_feed.size()
            << " log records through the sharded stream engine...\n\n";

  // Session consumer: prints each session as it closes. The engine
  // serializes emission, so no locking is needed here even with four
  // shards running.
  std::size_t emitted = 0;
  wum::CallbackSessionSink report(
      [&emitted](const std::string& user_key, wum::Session session) {
        if (++emitted <= 12) {
          std::cout << "  [closed] " << user_key << "  "
                    << wum::SessionToString(session) << "\n";
        }
        return wum::Status::OK();
      });

  // Online analytics: the wum::mine tap maintains bounded-memory top-k
  // frequent navigation paths (SpaceSaving) as sessions close.
  wum::mine::MinerOptions mining;
  mining.top_k = 5;

  // The engine owns the whole chain: per-shard cleaning filters, order
  // guard, per-user incremental Smart-SRA, and the mining tap on the
  // emit hub.
  wum::Result<std::unique_ptr<wum::StreamEngine>> engine =
      wum::StreamEngine::Create(
          wum::EngineOptions()
              .set_num_shards(4)
              .set_queue_capacity(256)
              .use_smart_sra(&graph.ValueOrDie())
              .set_mining(mining)
              .add_filter([] { return std::make_unique<wum::MethodFilter>(); })
              .add_filter([] { return std::make_unique<wum::StatusFilter>(); })
              .add_operator([] {
                return std::make_unique<wum::OrderGuardOperator>(
                    wum::Minutes(5));
              }),
          &report);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }

  // The ingest thread (this one) only hashes and enqueues; all
  // sessionization happens on the shard workers.
  for (const wum::LogRecord& record : live_feed) {
    wum::Status offered = (*engine)->Offer(record);
    if (!offered.ok()) {
      std::cerr << "ingest failed: " << offered.ToString() << "\n";
      return 1;
    }
  }
  wum::Status finished = (*engine)->Finish();
  if (!finished.ok()) {
    std::cerr << "engine failed: " << finished.ToString() << "\n";
    return 1;
  }

  if (emitted > 12) {
    std::cout << "  ... and " << (emitted - 12) << " more\n";
  }

  const wum::EngineStats totals = (*engine)->TotalStats();
  std::cout << "\nengine totals: " << wum::EngineStatsToString(totals) << "\n";
  const std::vector<wum::EngineStats> shards = (*engine)->ShardStats();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::cout << "  shard " << i << ": " << wum::EngineStatsToString(shards[i])
              << "\n";
  }
  std::cout << "ground truth had " << workload->TotalRealSessions()
            << " real sessions\n";

  std::cout << "\nlive top navigation pairs (SpaceSaving estimate, +-error):"
            << "\n";
  for (const auto& entry : (*engine)->mining()->TopK(5, 2)) {
    std::cout << "  P" << entry.path[0] << " -> P" << entry.path[1] << "  ~"
              << entry.count << " (+-" << entry.error << ")\n";
  }
  return 0;
}
