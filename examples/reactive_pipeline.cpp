// Reactive (streaming) processing: the web server's log records flow
// through a bounded queue into a filter + sessionizer pipeline on a
// worker thread, and completed sessions are reported the moment they
// close — no offline batch pass. This is the deployment shape the
// paper's title refers to: the server never waits on mining.

#include <iostream>

#include "wum/clf/log_filter.h"
#include "wum/simulator/workload.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/online_pattern_counter.h"
#include "wum/stream/operators.h"
#include "wum/stream/threaded_driver.h"
#include "wum/topology/site_generator.h"

int main() {
  wum::Rng rng(77);
  wum::SiteGeneratorOptions site;
  site.num_pages = 40;
  site.mean_out_degree = 5.0;
  wum::Result<wum::WebGraph> graph = wum::GenerateUniformSite(site, &rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  // Simulate a morning of traffic to replay as a live stream.
  wum::WorkloadOptions population;
  population.num_agents = 30;
  population.start_window = 3600 * 4;
  wum::Result<wum::Workload> workload =
      wum::SimulateWorkload(*graph, wum::AgentProfile(), population, &rng);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::vector<wum::LogRecord> live_feed =
      wum::CollectServerLog(workload->ToAgentRequests());
  std::cout << "replaying " << live_feed.size()
            << " log records through the reactive pipeline...\n\n";

  // Session consumer: prints each session as it closes.
  std::size_t emitted = 0;
  wum::CallbackSessionSink report(
      [&emitted](const std::string& client_ip, wum::Session session) {
        if (++emitted <= 12) {
          std::cout << "  [closed] " << client_ip << "  "
                    << wum::SessionToString(session) << "\n";
        }
        return wum::Status::OK();
      });

  // Online analytics: bounded-memory top-k frequent navigation pairs,
  // maintained as sessions close (SpaceSaving).
  wum::PatternCountingSink analytics(&report);
  const std::size_t pair_counter = analytics.AddCounter(64, 2);

  // Terminal stage: per-user incremental Smart-SRA.
  wum::SessionizeSink sessionize(
      [&graph]() {
        return std::make_unique<wum::IncrementalSmartSra>(
            &graph.ValueOrDie(), wum::SmartSra::Options());
      },
      &analytics, graph->num_pages());

  // Record operators: drop non-GET / failed requests, guard ordering.
  wum::Pipeline pipeline(&sessionize);
  pipeline.Append(std::make_unique<wum::FilterOperator>(
      std::make_unique<wum::MethodFilter>()));
  pipeline.Append(std::make_unique<wum::FilterOperator>(
      std::make_unique<wum::StatusFilter>()));
  pipeline.Append(
      std::make_unique<wum::OrderGuardOperator>(wum::Minutes(5)));
  auto* watermark_stage = new wum::WatermarkOperator();
  pipeline.Append(std::unique_ptr<wum::WatermarkOperator>(watermark_stage));

  // The ingest thread (this one) only enqueues; the pipeline runs on the
  // driver's worker thread.
  wum::ThreadedDriver driver(&pipeline, /*queue_capacity=*/256);
  for (const wum::LogRecord& record : live_feed) {
    wum::Status offered = driver.Offer(record);
    if (!offered.ok()) {
      std::cerr << "ingest failed: " << offered.ToString() << "\n";
      return 1;
    }
  }
  wum::Status finished = driver.Finish();
  if (!finished.ok()) {
    std::cerr << "pipeline failed: " << finished.ToString() << "\n";
    return 1;
  }

  if (emitted > 12) {
    std::cout << "  ... and " << (emitted - 12) << " more\n";
  }
  std::cout << "\nprocessed " << pipeline.records_in() << " records ("
            << watermark_stage->count() << " past the filters), emitted "
            << sessionize.sessions_emitted() << " sessions for "
            << sessionize.active_users() << " users\n"
            << "ground truth had " << workload->TotalRealSessions()
            << " real sessions\n";

  std::cout << "\nlive top navigation pairs (SpaceSaving estimate, +-error):"
            << "\n";
  for (const auto& entry : analytics.counter(pair_counter).TopK(5)) {
    std::cout << "  P" << entry.path[0] << " -> P" << entry.path[1] << "  ~"
              << entry.count << " (+-" << entry.error << ")\n";
  }
  return 0;
}
