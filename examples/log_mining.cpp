// Batch web usage mining over a real Common Log Format file — the
// paper's full data-processing pipeline:
//
//   CLF access log -> parse -> clean (filters) -> identify users ->
//   reconstruct sessions (Smart-SRA) -> mine navigation patterns.
//
// The log file is produced here by the agent simulator (plus injected
// noise records so the cleaning stage has something to do), but the same
// code consumes any CLF log whose URLs follow the /pages/p<id>.html
// convention.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/clf/log_filter.h"
#include "wum/clf/user_partitioner.h"
#include "wum/mining/apriori_all.h"
#include "wum/session/smart_sra.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"

namespace {

// Writes the simulated access log, sprinkling in the traffic a real
// server sees: embedded resources, robots, failed requests.
wum::Status WriteNoisyLog(const wum::WebGraph& graph,
                          const std::string& path, wum::Rng* rng,
                          std::size_t* agents_written) {
  wum::WorkloadOptions population;
  population.num_agents = 200;
  WUM_ASSIGN_OR_RETURN(
      wum::Workload workload,
      wum::SimulateWorkload(graph, wum::AgentProfile(), population, rng));
  *agents_written = workload.agents.size();
  std::vector<wum::LogRecord> log =
      wum::CollectServerLog(workload.ToAgentRequests());

  std::ofstream file(path);
  if (!file) return wum::Status::IoError("cannot open " + path);
  wum::ClfWriter writer(&file);
  std::uint64_t noise = 0;
  for (const wum::LogRecord& record : log) {
    writer.Write(record);
    if (rng->Bernoulli(0.25)) {  // embedded image fetched with the page
      wum::LogRecord image = record;
      image.url = "/img/banner" + std::to_string(noise++ % 7) + ".gif";
      image.bytes = 412;
      writer.Write(image);
    }
    if (rng->Bernoulli(0.02)) {  // broken link
      wum::LogRecord missing = record;
      missing.url = "/pages/deleted.html";
      missing.status_code = 404;
      missing.bytes = -1;
      writer.Write(missing);
    }
  }
  // A crawler announces itself and then sweeps a few pages.
  wum::LogRecord crawler;
  crawler.client_ip = "203.0.113.99";
  crawler.timestamp = log.empty() ? 0 : log.front().timestamp;
  crawler.url = "/robots.txt";
  crawler.bytes = 68;
  writer.Write(crawler);
  for (int i = 0; i < 25; ++i) {
    crawler.url = wum::PageUrl(static_cast<std::uint32_t>(i));
    crawler.timestamp += 1;
    writer.Write(crawler);
  }
  std::cout << "wrote " << writer.records_written() << " CLF records to "
            << path << "\n";
  return wum::Status::OK();
}

}  // namespace

int main() {
  const std::string log_path = "/tmp/websra_example_access.log";
  wum::Rng rng(424242);
  wum::SiteGeneratorOptions site;  // Table 5 site
  wum::Result<wum::WebGraph> graph = wum::GenerateUniformSite(site, &rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::size_t agents_written = 0;
  wum::Status wrote =
      WriteNoisyLog(*graph, log_path, &rng, &agents_written);
  if (!wrote.ok()) {
    std::cerr << wrote.ToString() << "\n";
    return 1;
  }

  // --- Parse ---------------------------------------------------------
  std::ifstream file(log_path);
  wum::ClfParser parser;
  std::vector<wum::LogRecord> records;
  wum::Status parsed = parser.ParseStream(&file, &records);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 1;
  }
  std::cout << "parsed " << parser.stats().records_parsed << " records ("
            << parser.stats().lines_rejected << " malformed lines)\n";

  // --- Clean ---------------------------------------------------------
  wum::FilterChain chain = wum::FilterChain::Standard();
  auto robot_filter = std::make_unique<wum::RobotFilter>();
  robot_filter->ObserveForRobots(records);
  chain.Add(std::move(robot_filter));
  std::vector<wum::LogRecord> cleaned = chain.Apply(records);
  std::cout << "cleaning kept " << cleaned.size() << " page views:";
  for (const auto& stat : chain.stats()) {
    std::cout << " " << stat.name << "-dropped=" << stat.dropped;
  }
  std::cout << "\n";

  // --- Identify users and reconstruct sessions ------------------------
  wum::Result<wum::PartitionResult> partition =
      wum::PartitionByUser(cleaned, graph->num_pages());
  if (!partition.ok()) {
    std::cerr << partition.status().ToString() << "\n";
    return 1;
  }
  std::cout << "identified " << partition->streams.size()
            << " users by IP (simulated " << agents_written << ")\n";

  wum::SmartSra smart_sra(&graph.ValueOrDie());
  std::vector<std::vector<wum::PageId>> session_sequences;
  for (const wum::UserStream& user : partition->streams) {
    wum::Result<std::vector<wum::Session>> sessions =
        smart_sra.Reconstruct(user.requests);
    if (!sessions.ok()) {
      std::cerr << sessions.status().ToString() << "\n";
      return 1;
    }
    for (const wum::Session& session : *sessions) {
      session_sequences.push_back(session.PageSequence());
    }
  }
  std::cout << "Smart-SRA reconstructed " << session_sequences.size()
            << " sessions\n";

  // --- Mine navigation patterns ---------------------------------------
  wum::AprioriOptions mining;
  mining.min_support =
      std::max<std::size_t>(3, session_sequences.size() / 400);
  mining.mode = wum::MatchMode::kContiguous;
  wum::AprioriAllMiner miner(mining);
  wum::Result<std::vector<wum::SequentialPattern>> patterns =
      miner.Mine(session_sequences);
  if (!patterns.ok()) {
    std::cerr << patterns.status().ToString() << "\n";
    return 1;
  }
  std::vector<wum::SequentialPattern> maximal = wum::FilterMaximalPatterns(
      *patterns, wum::MatchMode::kContiguous);
  std::cout << "\nfrequent navigation paths (support >= "
            << mining.min_support << "): " << patterns->size() << " total, "
            << maximal.size() << " maximal; longest maximal paths:\n";
  std::sort(maximal.begin(), maximal.end(),
            [](const wum::SequentialPattern& a,
               const wum::SequentialPattern& b) {
              if (a.pages.size() != b.pages.size()) {
                return a.pages.size() > b.pages.size();
              }
              return a.support > b.support;
            });
  for (std::size_t i = 0; i < maximal.size() && i < 8; ++i) {
    std::cout << "  " << wum::PatternToString(maximal[i]) << "\n";
  }
  return 0;
}
