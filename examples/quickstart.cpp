// Quickstart: generate a site, simulate users, reconstruct their
// sessions with Smart-SRA, and score the reconstruction against the
// simulator's ground truth — the whole library in ~60 lines.

#include <iostream>

#include "wum/eval/accuracy.h"
#include "wum/session/smart_sra.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"

int main() {
  // 1. A random web site: 50 pages, ~6 links per page, a few entry pages.
  wum::Rng rng(2006);
  wum::SiteGeneratorOptions site;
  site.num_pages = 50;
  site.mean_out_degree = 6.0;
  wum::Result<wum::WebGraph> graph = wum::GenerateUniformSite(site, &rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::cout << "site: " << graph->num_pages() << " pages, "
            << graph->num_edges() << " links, "
            << graph->start_pages().size() << " entry pages\n";

  // 2. Simulate 100 users browsing it (paper Table 5 behaviour).
  wum::WorkloadOptions population;
  population.num_agents = 100;
  wum::Result<wum::Workload> workload =
      wum::SimulateWorkload(*graph, wum::AgentProfile(), population, &rng);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::cout << "simulated " << workload->agents.size() << " users, "
            << workload->TotalRealSessions() << " real sessions, "
            << workload->TotalServerRequests()
            << " server-visible requests\n";

  // 3. Reconstruct sessions from the server's view with Smart-SRA.
  wum::SmartSra smart_sra(&graph.ValueOrDie());
  const wum::AgentRun& first_user = workload->agents.front();
  wum::Result<std::vector<wum::Session>> sessions =
      smart_sra.Reconstruct(first_user.trace.server_requests);
  if (!sessions.ok()) {
    std::cerr << sessions.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nuser " << first_user.client_ip << " -- real sessions:\n";
  for (const wum::Session& session : first_user.trace.real_sessions) {
    std::cout << "  " << wum::SessionToString(session) << "\n";
  }
  std::cout << "Smart-SRA reconstruction from the access log:\n";
  for (const wum::Session& session : *sessions) {
    std::cout << "  " << wum::SessionToString(session) << "\n";
  }

  // 4. Score the whole population with the paper's accuracy metric.
  wum::AccuracyEvaluator evaluator(&graph.ValueOrDie(),
                                   wum::TimeThresholds());
  wum::Result<wum::AccuracyResult> accuracy =
      evaluator.Evaluate(*workload, smart_sra);
  if (!accuracy.ok()) {
    std::cerr << accuracy.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nSmart-SRA real accuracy (paper metric): "
            << 100.0 * accuracy->accuracy() << "% ("
            << accuracy->correct_reconstructions << " correct sessions / "
            << accuracy->real_sessions << " real)\n"
            << "recall: " << 100.0 * accuracy->capture_rate() << "% ("
            << accuracy->captured_sessions << "/" << accuracy->real_sessions
            << " real sessions captured)\n";
  return 0;
}
