// Turns simulated agents' server-visible requests into a merged Common
// Log Format access log — the exact artifact a reactive strategy gets to
// work with.

#ifndef WUM_SIMULATOR_SERVER_LOG_COLLECTOR_H_
#define WUM_SIMULATOR_SERVER_LOG_COLLECTOR_H_

#include <string>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/session/session.h"

namespace wum {

/// One agent's server-side requests plus the identity the server sees.
struct AgentRequests {
  std::uint64_t agent_id = 0;
  /// Client IP as logged; distinct agents share it when simulated behind
  /// one proxy.
  std::string client_ip;
  std::vector<PageRequest> requests;
  /// Referer page per request (parallel to `requests`; may be empty when
  /// the producer has no referrer information).
  std::vector<PageId> referrers;
  /// Browser identification, logged in Combined Log Format.
  std::string user_agent;
};

/// A small pool of era-appropriate browser identifications; index is
/// taken modulo the pool size.
std::string UserAgentFromPool(std::size_t index);

/// Deterministic response size for a page: stable across runs so byte
/// counts round-trip through CLF.
std::int64_t SimulatedPageBytes(PageId page);

/// Merges per-agent request streams into one timestamp-sorted log.
/// Ties are broken by agent id then request order, so output is fully
/// deterministic.
std::vector<LogRecord> CollectServerLog(
    const std::vector<AgentRequests>& agents);

}  // namespace wum

#endif  // WUM_SIMULATOR_SERVER_LOG_COLLECTOR_H_
