// Multi-agent workload driver: simulates a population of agents on one
// topology (Table 5: 10000 agents) and assembles the per-user streams,
// ground truth and merged server log that the evaluation consumes.

#ifndef WUM_SIMULATOR_WORKLOAD_H_
#define WUM_SIMULATOR_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "wum/common/random.h"
#include "wum/common/result.h"
#include "wum/obs/metrics.h"
#include "wum/simulator/agent_simulator.h"
#include "wum/simulator/server_log_collector.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Population-level simulation parameters.
struct WorkloadOptions {
  /// Number of simulated agents (paper default: 10000).
  std::size_t num_agents = 10000;
  /// Agent start instants are uniform in [epoch, epoch + start_window).
  TimeSeconds epoch = 1136214240;  // 2006-01-02 15:04 UTC, era-appropriate
  TimeSeconds start_window = 7 * 24 * 3600;
  /// Agents per shared proxy IP: 1 = every agent has its own address;
  /// k > 1 groups consecutive agents behind one IP (the §1 proxy
  /// problem, exercised by the proxy ablation).
  std::size_t agents_per_proxy = 1;
};

Status ValidateWorkloadOptions(const WorkloadOptions& options);

/// One agent's full outcome.
struct AgentRun {
  std::uint64_t agent_id = 0;
  std::string client_ip;
  /// Browser identification; agents behind one proxy can still differ
  /// here, which the ip+agent user-identification mode exploits.
  std::string user_agent;
  AgentTrace trace;
};

/// The simulated population.
struct Workload {
  std::vector<AgentRun> agents;

  /// Total ground-truth sessions across agents.
  std::size_t TotalRealSessions() const;
  /// Total server-visible requests across agents.
  std::size_t TotalServerRequests() const;
  /// Per-agent request streams in CollectServerLog's input form.
  std::vector<AgentRequests> ToAgentRequests() const;
};

/// Simulates the whole population. Each agent consumes an independent
/// child of `rng`, so results are reproducible and agent-order
/// independent of evaluation order.
///
/// With a non-null `metrics` registry the driver reports generation
/// throughput as it runs: the counters "simulator.agents_simulated",
/// "simulator.requests_generated" and "simulator.sessions_generated",
/// and the per-agent wall-time histogram "simulator.agent_latency_us".
Result<Workload> SimulateWorkload(const WebGraph& graph,
                                  const AgentProfile& profile,
                                  const WorkloadOptions& options, Rng* rng,
                                  obs::MetricRegistry* metrics = nullptr);

}  // namespace wum

#endif  // WUM_SIMULATOR_WORKLOAD_H_
