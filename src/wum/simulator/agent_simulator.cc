#include "wum/simulator/agent_simulator.h"

#include <algorithm>
#include <cmath>

#include "wum/simulator/browser_cache.h"

namespace wum {

Status ValidateAgentProfile(const AgentProfile& profile) {
  if (profile.stp <= 0.0 || profile.stp > 1.0) {
    return Status::InvalidArgument(
        "stp must be in (0, 1]; a non-positive stp never terminates");
  }
  if (profile.lpp < 0.0 || profile.lpp >= 1.0) {
    return Status::InvalidArgument("lpp must be in [0, 1)");
  }
  if (profile.nip < 0.0 || profile.nip >= 1.0) {
    return Status::InvalidArgument("nip must be in [0, 1)");
  }
  if (profile.page_stay_mean_minutes <= 0.0) {
    return Status::InvalidArgument("page_stay_mean_minutes must be positive");
  }
  if (profile.page_stay_stddev_minutes < 0.0) {
    return Status::InvalidArgument(
        "page_stay_stddev_minutes must be non-negative");
  }
  if (profile.nip_gap_mean_minutes <= 0.0) {
    return Status::InvalidArgument("nip_gap_mean_minutes must be positive");
  }
  if (profile.max_events == 0) {
    return Status::InvalidArgument("max_events must be positive");
  }
  return Status::OK();
}

AgentSimulator::AgentSimulator(const WebGraph* graph, AgentProfile profile)
    : graph_(graph), profile_(profile) {}

TimeSeconds AgentSimulator::DrawStay(Rng* rng) const {
  const double seconds = rng->NextTruncatedNormal(
      profile_.page_stay_mean_minutes * 60.0,
      profile_.page_stay_stddev_minutes * 60.0, /*lower_bound=*/0.0);
  // The paper states inter-request differences in behaviours 2 and 3 are
  // smaller than 10 minutes; enforce it for arbitrary profiles so the
  // ground truth always satisfies the page-stay rule.
  return std::clamp<TimeSeconds>(static_cast<TimeSeconds>(seconds) + 1, 1,
                                 Minutes(10) - 1);
}

TimeSeconds AgentSimulator::DrawEntryGap(Rng* rng) const {
  // Exponential think time before typing a new entry URL; unbounded
  // above so a fraction of session boundaries are visible to the time
  // heuristics and the rest stay ambiguous.
  const double mean_seconds = profile_.nip_gap_mean_minutes * 60.0;
  const double gap = -mean_seconds * std::log(1.0 - rng->NextUnit());
  return std::max<TimeSeconds>(1, static_cast<TimeSeconds>(gap));
}

Result<AgentTrace> AgentSimulator::SimulateAgent(TimeSeconds start_time,
                                                 Rng* rng) const {
  WUM_RETURN_NOT_OK(ValidateAgentProfile(profile_));
  const std::vector<PageId>& entry_pages = graph_->start_pages();
  if (entry_pages.empty()) {
    return Status::FailedPrecondition(
        "topology has no start pages; agents cannot enter the site");
  }

  AgentTrace trace;
  BrowserCache cache(graph_->num_pages());
  Session current;
  TimeSeconds now = start_time;

  auto visit = [&](PageId page, NavigationKind kind, PageId referrer) {
    const bool from_cache = cache.Visit(page);
    trace.events.push_back(
        NavigationEvent{page, now, from_cache, kind, referrer});
    if (!from_cache) {
      trace.server_requests.push_back(PageRequest{page, now});
      trace.server_referrers.push_back(referrer);
    }
    current.requests.push_back(PageRequest{page, now});
  };
  auto close_session = [&]() {
    if (!current.empty()) {
      trace.real_sessions.push_back(std::move(current));
      current = Session{};
    }
  };

  PageId page =
      entry_pages[static_cast<std::size_t>(rng->NextBounded(entry_pages.size()))];
  visit(page, NavigationKind::kInitialEntry, kInvalidPage);

  while (trace.events.size() < profile_.max_events) {
    if (rng->Bernoulli(profile_.stp)) break;  // behaviour 4: terminate

    if (rng->Bernoulli(profile_.nip)) {  // behaviour 1: new entry page
      std::vector<PageId> fresh_entries;
      for (PageId entry : entry_pages) {
        if (!cache.Contains(entry)) fresh_entries.push_back(entry);
      }
      const std::vector<PageId>& pool =
          fresh_entries.empty() ? entry_pages : fresh_entries;
      PageId entry =
          pool[static_cast<std::size_t>(rng->NextBounded(pool.size()))];
      close_session();
      now += DrawEntryGap(rng);
      visit(entry, NavigationKind::kNewStartPage, kInvalidPage);
      page = entry;
      continue;
    }

    if (rng->Bernoulli(profile_.lpp)) {  // behaviour 3: backtrack + branch
      // Candidate targets: distinct pages of the current session except
      // the most recently accessed one, offering >= 1 un-accessed link.
      std::vector<PageId> candidates;
      if (current.size() >= 2) {
        for (std::size_t i = 0; i + 1 < current.requests.size(); ++i) {
          PageId candidate = current.requests[i].page;
          if (std::find(candidates.begin(), candidates.end(), candidate) !=
              candidates.end()) {
            continue;
          }
          for (PageId neighbor : graph_->OutLinks(candidate)) {
            if (!cache.Contains(neighbor)) {
              candidates.push_back(candidate);
              break;
            }
          }
        }
      }
      if (!candidates.empty()) {
        PageId target = candidates[static_cast<std::size_t>(
            rng->NextBounded(candidates.size()))];
        std::vector<PageId> fresh;
        for (PageId neighbor : graph_->OutLinks(target)) {
          if (!cache.Contains(neighbor)) fresh.push_back(neighbor);
        }
        PageId next =
            fresh[static_cast<std::size_t>(rng->NextBounded(fresh.size()))];
        close_session();
        now += DrawStay(rng);
        visit(target, NavigationKind::kCacheBacktrack, kInvalidPage);
        now += DrawStay(rng);
        visit(next, NavigationKind::kBranchAfterBack, target);
        page = next;
        continue;
      }
      // No viable backtrack target: fall through to behaviour 2.
    }

    // Behaviour 2: follow a hyperlink from the current page.
    const std::vector<PageId>& out = graph_->OutLinks(page);
    if (out.empty()) break;  // dead end: nowhere to go
    PageId next = out[static_cast<std::size_t>(rng->NextBounded(out.size()))];
    now += DrawStay(rng);
    visit(next, NavigationKind::kFollowLink, page);
    page = next;
  }
  close_session();
  return trace;
}

}  // namespace wum
