#include "wum/simulator/workload.h"

#include "wum/clf/log_record.h"

namespace wum {

Status ValidateWorkloadOptions(const WorkloadOptions& options) {
  if (options.num_agents == 0) {
    return Status::InvalidArgument("num_agents must be positive");
  }
  if (options.start_window <= 0) {
    return Status::InvalidArgument("start_window must be positive");
  }
  if (options.agents_per_proxy == 0) {
    return Status::InvalidArgument("agents_per_proxy must be positive");
  }
  return Status::OK();
}

std::size_t Workload::TotalRealSessions() const {
  std::size_t total = 0;
  for (const AgentRun& agent : agents) {
    total += agent.trace.real_sessions.size();
  }
  return total;
}

std::size_t Workload::TotalServerRequests() const {
  std::size_t total = 0;
  for (const AgentRun& agent : agents) {
    total += agent.trace.server_requests.size();
  }
  return total;
}

std::vector<AgentRequests> Workload::ToAgentRequests() const {
  std::vector<AgentRequests> result;
  result.reserve(agents.size());
  for (const AgentRun& agent : agents) {
    result.push_back(AgentRequests{agent.agent_id, agent.client_ip,
                                   agent.trace.server_requests,
                                   agent.trace.server_referrers,
                                   agent.user_agent});
  }
  return result;
}

Result<Workload> SimulateWorkload(const WebGraph& graph,
                                  const AgentProfile& profile,
                                  const WorkloadOptions& options, Rng* rng,
                                  obs::MetricRegistry* metrics) {
  WUM_RETURN_NOT_OK(ValidateWorkloadOptions(options));
  obs::Counter agents_simulated =
      obs::CounterIn(metrics, "simulator.agents_simulated");
  obs::Counter requests_generated =
      obs::CounterIn(metrics, "simulator.requests_generated");
  obs::Counter sessions_generated =
      obs::CounterIn(metrics, "simulator.sessions_generated");
  obs::Histogram agent_latency =
      obs::HistogramIn(metrics, "simulator.agent_latency_us");
  AgentSimulator simulator(&graph, profile);
  Workload workload;
  workload.agents.reserve(options.num_agents);
  for (std::size_t i = 0; i < options.num_agents; ++i) {
    Rng agent_rng = rng->Fork();
    const TimeSeconds start =
        options.epoch +
        static_cast<TimeSeconds>(agent_rng.NextBounded(
            static_cast<std::uint64_t>(options.start_window)));
    AgentTrace trace;
    {
      obs::ScopedTimer timer(agent_latency);
      WUM_ASSIGN_OR_RETURN(trace, simulator.SimulateAgent(start, &agent_rng));
    }
    agents_simulated.Increment();
    requests_generated.Increment(trace.server_requests.size());
    sessions_generated.Increment(trace.real_sessions.size());
    AgentRun run;
    run.agent_id = i;
    run.client_ip = AgentIp(i / options.agents_per_proxy);
    run.user_agent = UserAgentFromPool(
        static_cast<std::size_t>(agent_rng.NextBounded(6)));
    run.trace = std::move(trace);
    workload.agents.push_back(std::move(run));
  }
  return workload;
}

}  // namespace wum
