#include "wum/simulator/server_log_collector.h"

#include <algorithm>

namespace wum {

std::string UserAgentFromPool(std::size_t index) {
  static constexpr const char* kPool[] = {
      "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
      "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.7.12) "
      "Gecko/20050915 Firefox/1.0.7",
      "Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en) AppleWebKit/412 "
      "(KHTML, like Gecko) Safari/412",
      "Opera/8.51 (Windows NT 5.1; U; en)",
      "Mozilla/4.0 (compatible; MSIE 5.5; Windows 98)",
      "Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.8) Gecko/20050511",
  };
  constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  return kPool[index % kPoolSize];
}

std::int64_t SimulatedPageBytes(PageId page) {
  // Arbitrary but stable: spreads sizes over [2 KiB, ~34 KiB].
  std::uint64_t z = static_cast<std::uint64_t>(page) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return 2048 + static_cast<std::int64_t>(z % 32768);
}

std::vector<LogRecord> CollectServerLog(
    const std::vector<AgentRequests>& agents) {
  struct Tagged {
    LogRecord record;
    std::uint64_t agent_id;
    std::size_t sequence;
  };
  std::vector<Tagged> tagged;
  std::size_t total = 0;
  for (const AgentRequests& agent : agents) total += agent.requests.size();
  tagged.reserve(total);
  for (const AgentRequests& agent : agents) {
    for (std::size_t i = 0; i < agent.requests.size(); ++i) {
      const PageRequest& request = agent.requests[i];
      LogRecord record;
      record.client_ip = agent.client_ip;
      record.timestamp = request.timestamp;
      record.method = HttpMethod::kGet;
      record.url = PageUrl(request.page);
      record.protocol = "HTTP/1.1";
      record.status_code = 200;
      record.bytes = SimulatedPageBytes(request.page);
      if (i < agent.referrers.size() && agent.referrers[i] != kInvalidPage) {
        record.referrer = ReferrerUrl(agent.referrers[i]);
      }
      record.user_agent = agent.user_agent;
      tagged.push_back(Tagged{std::move(record), agent.agent_id, i});
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.record.timestamp != b.record.timestamp) {
      return a.record.timestamp < b.record.timestamp;
    }
    if (a.agent_id != b.agent_id) return a.agent_id < b.agent_id;
    return a.sequence < b.sequence;
  });
  std::vector<LogRecord> log;
  log.reserve(tagged.size());
  for (Tagged& t : tagged) log.push_back(std::move(t.record));
  return log;
}

}  // namespace wum
