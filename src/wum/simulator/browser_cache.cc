#include "wum/simulator/browser_cache.h"

#include <cassert>
#include <limits>

namespace wum {

BrowserCache::BrowserCache(std::size_t num_pages, std::size_t capacity)
    : capacity_(capacity),
      resident_(num_pages, false),
      last_use_(num_pages, 0) {}

bool BrowserCache::Visit(PageId page) {
  assert(page < resident_.size());
  const bool hit = resident_[page];
  if (!hit) {
    resident_[page] = true;
    ++resident_count_;
    Touch(page);
    EvictIfNeeded();
  } else {
    Touch(page);
  }
  return hit;
}

bool BrowserCache::Contains(PageId page) const {
  return page < resident_.size() && resident_[page];
}

void BrowserCache::Touch(PageId page) { last_use_[page] = ++clock_; }

void BrowserCache::EvictIfNeeded() {
  if (capacity_ == 0 || resident_count_ <= capacity_) return;
  // Linear LRU scan; cache sizes in ablations are small.
  PageId victim = kInvalidPage;
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t p = 0; p < resident_.size(); ++p) {
    if (resident_[p] && last_use_[p] < oldest) {
      oldest = last_use_[p];
      victim = static_cast<PageId>(p);
    }
  }
  if (victim != kInvalidPage) {
    resident_[victim] = false;
    --resident_count_;
  }
}

}  // namespace wum
