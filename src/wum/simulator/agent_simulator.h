// The paper's agent simulator (§4): generates a web user's navigation on
// a site topology, producing both the ground-truth sessions and the
// server-visible request stream (cache-served navigation removed).
//
// The four behaviour types of §4 are implemented:
//   1. start a new session at a site entry page (probability NIP),
//   2. follow a hyperlink from the current page (default),
//   3. navigate back through the browser cache to an earlier page of the
//      session and branch to a fresh page from there (probability LPP),
//   4. terminate (probability STP per request; termination by the n-th
//      request therefore follows 1 - (1-STP)^n as in the paper).
//
// Points the paper leaves open, resolved as follows (see DESIGN.md §2):
//   * Behaviour 2 picks uniformly among ALL out-links (the paper's
//     SelectPage has no freshness constraint); revisits are served from
//     the cache and stay inside the current ground-truth session.
//   * Behaviour 3 ends the current session and opens a new one that
//     begins with the (cache-served) backtrack target, exactly as the
//     paper's [P1,P13,P34] / [P1,P20] example shows.
//   * Behaviour 1 prefers an un-accessed entry page ("Select a new,
//     un-accessed initial page"); when every entry page has been visited
//     it reuses one uniformly (served from cache).
//   * Page-stay times are truncated-normal for every advance.
//   * A page with no out-links ends the agent (nowhere to navigate).

#ifndef WUM_SIMULATOR_AGENT_SIMULATOR_H_
#define WUM_SIMULATOR_AGENT_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "wum/common/random.h"
#include "wum/common/result.h"
#include "wum/common/time.h"
#include "wum/session/session.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Behaviour probabilities and timing of one simulated user (Table 5
/// defaults).
struct AgentProfile {
  /// Session Termination Probability: chance each visited page is the
  /// agent's last.
  double stp = 0.05;
  /// Link-from-Previous-pages Probability: chance of a behaviour-3
  /// backtrack-and-branch.
  double lpp = 0.30;
  /// New-Initial-page Probability: chance of jumping to an entry page.
  double nip = 0.30;
  /// Page-stay time distribution, minutes (paper: 2.2 +- 0.5, normal).
  double page_stay_mean_minutes = 2.2;
  double page_stay_stddev_minutes = 0.5;
  /// Think time before a behaviour-1 jump to an entry page, exponential
  /// mean in minutes. The paper restricts the normal stay distribution
  /// to behaviours 2 and 3, leaving behaviour-1 timing open; a new visit
  /// entered via the address bar plausibly follows a long break, and a
  /// heavy-tailed gap is what lets time-oriented heuristics cut at some
  /// session boundaries at all.
  double nip_gap_mean_minutes = 30.0;
  /// Hard cap on client-side navigation events, guarding stp ~ 0.
  std::size_t max_events = 100000;
};

/// Validates probability ranges and timing parameters.
Status ValidateAgentProfile(const AgentProfile& profile);

/// Why the agent moved to a page; kept for diagnostics and tests.
enum class NavigationKind {
  kInitialEntry = 0,   // first page of the agent's first session
  kFollowLink = 1,     // behaviour 2
  kCacheBacktrack = 2, // behaviour 3: the revisited target page
  kBranchAfterBack = 3,// behaviour 3: the fresh page requested from target
  kNewStartPage = 4,   // behaviour 1
};

/// One client-side navigation step.
struct NavigationEvent {
  PageId page = kInvalidPage;
  TimeSeconds timestamp = 0;
  bool served_from_cache = false;
  NavigationKind kind = NavigationKind::kFollowLink;
  /// The page whose hyperlink was followed (what a browser would send as
  /// the Referer header); kInvalidPage for typed entries.
  PageId referrer = kInvalidPage;
};

/// Everything one simulated agent produced.
struct AgentTrace {
  /// Ground truth: the real sessions, in order, satisfying the topology
  /// rule and the page-stay bound by construction.
  std::vector<Session> real_sessions;
  /// Complete client-side navigation, including cache-served views.
  std::vector<NavigationEvent> events;
  /// The server's view: events with served_from_cache == false.
  std::vector<PageRequest> server_requests;
  /// Referer header of each server request (parallel to
  /// server_requests); kInvalidPage when the URL was typed.
  std::vector<PageId> server_referrers;
};

/// Simulates agents on a fixed topology. Thread-compatible: const methods
/// may run concurrently with distinct Rng instances.
class AgentSimulator {
 public:
  /// `graph` must outlive the simulator and have at least one start page.
  AgentSimulator(const WebGraph* graph, AgentProfile profile);

  /// Runs one agent starting at `start_time`. Fails if the profile is
  /// invalid or the topology has no start pages.
  Result<AgentTrace> SimulateAgent(TimeSeconds start_time, Rng* rng) const;

  const AgentProfile& profile() const { return profile_; }

 private:
  TimeSeconds DrawStay(Rng* rng) const;
  TimeSeconds DrawEntryGap(Rng* rng) const;

  const WebGraph* graph_;
  AgentProfile profile_;
};

}  // namespace wum

#endif  // WUM_SIMULATOR_AGENT_SIMULATOR_H_
