// Client-side browser cache model. In the 2006 setting the paper targets,
// a page once fetched is served locally on every revisit, so the server
// log only witnesses first visits — the root cause of the session
// reconstruction problem.

#ifndef WUM_SIMULATOR_BROWSER_CACHE_H_
#define WUM_SIMULATOR_BROWSER_CACHE_H_

#include <vector>

#include "wum/topology/web_graph.h"

namespace wum {

/// Tracks which pages an agent's browser holds. Infinite capacity by
/// default (the paper's model); a finite LRU capacity is available for
/// ablations — evicted pages hit the server again on revisit.
class BrowserCache {
 public:
  /// `capacity` == 0 means unbounded.
  explicit BrowserCache(std::size_t num_pages, std::size_t capacity = 0);

  /// Records that `page` was fetched or re-viewed. Returns true when the
  /// view was served from the cache, false when the server was contacted
  /// (first visit or post-eviction visit).
  bool Visit(PageId page);

  /// True iff a visit to `page` now would be a cache hit.
  bool Contains(PageId page) const;

  std::size_t size() const { return resident_count_; }

 private:
  void Touch(PageId page);
  void EvictIfNeeded();

  std::size_t capacity_;  // 0 = unbounded
  std::vector<bool> resident_;
  std::vector<std::uint64_t> last_use_;
  std::uint64_t clock_ = 0;
  std::size_t resident_count_ = 0;
};

}  // namespace wum

#endif  // WUM_SIMULATOR_BROWSER_CACHE_H_
