// Incremental (streaming) session reconstruction: sessions are emitted
// the moment they close instead of after an offline batch pass. Output
// is identical to the batch sessionizers on the same input (a tested
// equivalence property).

#ifndef WUM_STREAM_INCREMENTAL_SESSIONIZER_H_
#define WUM_STREAM_INCREMENTAL_SESSIONIZER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "wum/clf/user_partitioner.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/session/smart_sra.h"
#include "wum/stream/pipeline.h"
#include "wum/stream/string_interner.h"

namespace wum {

namespace ckpt {
class Encoder;
class Decoder;
}  // namespace ckpt

/// Optional observability handles for one SessionizeSink (one engine
/// shard). Default-constructed handles are disabled no-ops.
struct SessionizeMetrics {
  /// Mirrors sessions_emitted() into a registry counter.
  obs::Counter sessions_emitted;
  /// Mirrors skipped_non_page_urls() into a registry counter.
  obs::Counter skipped_non_page_urls;
  /// Wall time one record spends inside the per-user incremental
  /// sessionizer (OnRequest plus any emissions), in microseconds.
  obs::Histogram sessionize_latency_us;
  /// Optional span tracer: each absorbed record becomes a "sessionize"
  /// span tagged shard=trace_shard, seq=<records absorbed before it>.
  obs::Tracer tracer;
  std::uint64_t trace_shard = 0;
};

/// Per-user streaming sessionizer state machine. Implementations receive
/// one user's requests in timestamp order and emit sessions through the
/// callback as soon as they can no longer grow.
class IncrementalUserSessionizer {
 public:
  using EmitFn = std::function<Status(Session)>;

  virtual ~IncrementalUserSessionizer() = default;

  /// Feeds the next request. `request.timestamp` must be >= the previous
  /// one for this user.
  virtual Status OnRequest(const PageRequest& request, const EmitFn& emit) = 0;

  /// End of stream: emits whatever is still open.
  virtual Status Flush(const EmitFn& emit) = 0;

  /// Checkpoint hook: appends this state machine's open-session state to
  /// `encoder` so it round-trips exactly through RestoreState. The
  /// default refuses with Unimplemented — an engine running a custom
  /// sessionizer without these overrides cannot be checkpointed (the
  /// failure is precise, not silent state loss).
  virtual Status SerializeState(ckpt::Encoder* encoder) const;

  /// Inverse of SerializeState, called on a freshly constructed instance
  /// before it sees any request. Corrupt input yields ParseError, never
  /// UB.
  virtual Status RestoreState(ckpt::Decoder* decoder);
};

/// Creates per-user state machines; one per client IP.
using UserSessionizerFactory =
    std::function<std::unique_ptr<IncrementalUserSessionizer>()>;

/// Streaming Smart-SRA. Phase 1 runs online (the candidate closes once
/// the page-stay or session-duration bound is exceeded); phase 2 runs on
/// each closed candidate, so emission latency is one candidate, exactly
/// the information horizon the batch algorithm needs.
class IncrementalSmartSra : public IncrementalUserSessionizer {
 public:
  /// `graph` must outlive this object.
  IncrementalSmartSra(const WebGraph* graph, SmartSra::Options options);

  Status OnRequest(const PageRequest& request, const EmitFn& emit) override;
  Status Flush(const EmitFn& emit) override;
  Status SerializeState(ckpt::Encoder* encoder) const override;
  Status RestoreState(ckpt::Decoder* decoder) override;

 private:
  Status CloseCandidate(const EmitFn& emit);

  SmartSra algorithm_;
  Session candidate_;
};

/// Terminal pipeline stage: partitions records by user identity (client
/// IP, or IP+User-Agent per UserIdentity), converts canonical page URLs
/// to PageRequests (other URLs are counted and skipped), drives one
/// per-user sessionizer per identity key, and forwards closed sessions —
/// attributed to their user key — to a SessionSink.
class SessionizeSink : public RecordSink {
 public:
  /// `session_sink` must outlive this object. `metrics` handles are
  /// copied; their registry must outlive this sink.
  SessionizeSink(UserSessionizerFactory factory, SessionSink* session_sink,
                 std::size_t num_pages,
                 UserIdentity identity = UserIdentity::kClientIp,
                 SessionizeMetrics metrics = {});

  Status Accept(const LogRecord& record) override;
  Status Finish() override;

  /// Checkpoint hook: appends this sink's state as codec frames — one
  /// counters frame, then one frame per user (key, ordering watermark,
  /// and the user's sessionizer state via SerializeState). User frames
  /// are written in interner-id order (first-seen order, deterministic
  /// for a given input), which doubles as the interner snapshot: restore
  /// re-interns the keys in frame order and reproduces identical ids, so
  /// a resumed shard keeps every id stable. Must only run while no
  /// record is in flight (the engine's checkpoint barrier guarantees
  /// this).
  Status SerializeState(std::vector<std::string>* frames) const;

  /// Inverse of SerializeState on a fresh sink: consumes exactly the
  /// frames its counterpart wrote (ParseError on any mismatch), creating
  /// each user's sessionizer through the factory, restoring its state,
  /// and rebuilding the interner table in id order. Must run before the
  /// shard worker starts.
  Status RestoreState(std::span<const std::string> frames);

  /// Counter accessors are safe to call from any thread (the sharded
  /// engine snapshots them while workers run); everything else is
  /// single-threaded.
  std::uint64_t sessions_emitted() const {
    return sessions_emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t skipped_non_page_urls() const {
    return skipped_non_page_urls_.load(std::memory_order_relaxed);
  }
  /// Page records absorbed into per-user sessionizer state (OnRequest
  /// returned OK). Every absorbed record eventually reappears in an
  /// emitted session or is still in open state — the conservation the
  /// engine's dead-letter accounting builds on.
  std::uint64_t records_absorbed() const {
    return records_absorbed_.load(std::memory_order_relaxed);
  }
  /// Event-time watermark: the largest CLF timestamp (UNIX seconds)
  /// this shard has seen, including records skipped as non-page URLs —
  /// every record advances event time. 0 before the first record.
  /// Rides the checkpoint so a resumed shard's lag gauges stay sane.
  std::uint64_t watermark_seconds() const {
    return watermark_seconds_.load(std::memory_order_relaxed);
  }
  std::size_t active_users() const { return users_.size(); }

 private:
  struct UserState {
    std::unique_ptr<IncrementalUserSessionizer> sessionizer;
    TimeSeconds last_timestamp = 0;
    bool has_seen_request = false;
  };

  UserSessionizerFactory factory_;
  SessionSink* session_sink_;
  std::size_t num_pages_;
  UserIdentity identity_;
  SessionizeMetrics metrics_;
  /// User identity keys → dense ids; open-session state lives in the
  /// id-indexed flat vector below instead of a string-keyed map, so the
  /// per-record lookup is one string_view hash with no allocation.
  StringInterner interner_;
  std::vector<UserState> users_;
  /// Scratch for composite ip+agent keys (see UserKeyView); reused so
  /// steady-state Accept never allocates for the key.
  std::string key_buffer_;
  /// One emit closure for the whole sink: it reads current_user_id_ at
  /// call time, so no per-record std::function is materialized. Set
  /// before every OnRequest/Flush; emission is synchronous within them.
  IncrementalUserSessionizer::EmitFn emit_fn_;
  std::uint32_t current_user_id_ = 0;
  std::atomic<std::uint64_t> sessions_emitted_{0};
  std::atomic<std::uint64_t> skipped_non_page_urls_{0};
  std::atomic<std::uint64_t> records_absorbed_{0};
  // Single writer (the shard worker); read cross-thread by scrape
  // probes, so plain load/store max is exact.
  std::atomic<std::uint64_t> watermark_seconds_{0};
};

}  // namespace wum

#endif  // WUM_STREAM_INCREMENTAL_SESSIONIZER_H_
