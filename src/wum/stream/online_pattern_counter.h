// Online frequent-path tracking for the reactive pipeline: a
// SpaceSaving (Metwally et al.) top-k counter over fixed-length
// navigation paths, fed by sessions as they close. This is the streaming
// counterpart of the batch AprioriAll miner — bounded memory, any-time
// answers, with SpaceSaving's usual guarantees (estimates never
// undercount; estimate - error <= true count; any path with true count
// above N/capacity is retained).

#ifndef WUM_STREAM_ONLINE_PATTERN_COUNTER_H_
#define WUM_STREAM_ONLINE_PATTERN_COUNTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wum/stream/pipeline.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// SpaceSaving counter over contiguous page paths of one fixed length.
class TopKPathCounter {
 public:
  /// `capacity` bounds the number of tracked paths (the error bound is
  /// paths_processed / capacity). `path_length` >= 1.
  TopKPathCounter(std::size_t capacity, std::size_t path_length);

  /// Counts every contiguous `path_length`-gram of the session.
  void AddSession(const std::vector<PageId>& pages);

  struct Entry {
    std::vector<PageId> path;
    /// Estimated count (never below the true count).
    std::uint64_t count = 0;
    /// Maximum overestimation (count - error <= true count).
    std::uint64_t error = 0;
  };

  /// The current top-k entries, highest estimate first (ties by path).
  std::vector<Entry> TopK(std::size_t k) const;

  /// Total path occurrences fed so far (the N of the error bound).
  std::uint64_t paths_processed() const { return paths_processed_; }
  std::size_t tracked() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t path_length() const { return path_length_; }

 private:
  void Add(const std::vector<PageId>& path);

  std::size_t capacity_;
  std::size_t path_length_;
  std::map<std::vector<PageId>, Entry> entries_;
  std::uint64_t paths_processed_ = 0;
};

/// SessionSink adapter: feeds every closed session into one or more
/// counters (e.g. path lengths 2 and 3) and forwards to an optional
/// downstream sink.
class PatternCountingSink : public SessionSink {
 public:
  /// `downstream` may be nullptr (sessions are only counted).
  explicit PatternCountingSink(SessionSink* downstream = nullptr)
      : downstream_(downstream) {}

  /// Registers a counter; returns its index for later retrieval.
  /// Counters must be added before the first session arrives.
  std::size_t AddCounter(std::size_t capacity, std::size_t path_length);

  Status Accept(const std::string& client_ip, Session session) override;

  const TopKPathCounter& counter(std::size_t index) const {
    return counters_[index];
  }
  std::uint64_t sessions_seen() const { return sessions_seen_; }

 private:
  SessionSink* downstream_;
  std::vector<TopKPathCounter> counters_;
  std::uint64_t sessions_seen_ = 0;
};

}  // namespace wum

#endif  // WUM_STREAM_ONLINE_PATTERN_COUNTER_H_
