#include "wum/stream/dead_letter.h"

#include <utility>

#include "wum/obs/log.h"

namespace wum {

std::string_view DeadLetterStageName(DeadLetter::Stage stage) {
  switch (stage) {
    case DeadLetter::Stage::kParse:
      return "kParse";
    case DeadLetter::Stage::kRecord:
      return "kRecord";
    case DeadLetter::Stage::kEmit:
      return "kEmit";
    case DeadLetter::Stage::kShardDead:
      return "kShardDead";
  }
  return "unknown";
}

DeadLetterQueue::DeadLetterQueue(std::size_t capacity)
    : capacity_(capacity) {}

bool DeadLetterQueue::Offer(DeadLetter letter) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_offered_;
  records_covered_ += letter.records_covered;
  if (letters_.size() >= capacity_) {
    ++overflow_dropped_;
    obs::LogWarn("dead_letter.overflow")("capacity", capacity_)(
        "dropped", overflow_dropped_)("stage",
                                      DeadLetterStageName(letter.stage));
    return false;
  }
  letters_.push_back(std::move(letter));
  return true;
}

std::vector<DeadLetter> DeadLetterQueue::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeadLetter> drained(std::make_move_iterator(letters_.begin()),
                                  std::make_move_iterator(letters_.end()));
  letters_.clear();
  return drained;
}

std::size_t DeadLetterQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return letters_.size();
}

std::uint64_t DeadLetterQueue::total_offered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_offered_;
}

std::uint64_t DeadLetterQueue::records_covered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_covered_;
}

std::uint64_t DeadLetterQueue::overflow_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflow_dropped_;
}

DeadLetterQueueSnapshot DeadLetterQueue::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DeadLetterQueueSnapshot snapshot;
  snapshot.letters.assign(letters_.begin(), letters_.end());
  snapshot.total_offered = total_offered_;
  snapshot.records_covered = records_covered_;
  snapshot.overflow_dropped = overflow_dropped_;
  return snapshot;
}

void DeadLetterQueue::Restore(DeadLetterQueueSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  letters_.assign(std::make_move_iterator(snapshot.letters.begin()),
                  std::make_move_iterator(snapshot.letters.end()));
  total_offered_ = snapshot.total_offered;
  records_covered_ = snapshot.records_covered;
  overflow_dropped_ = snapshot.overflow_dropped;
}

}  // namespace wum
