#include "wum/stream/incremental_sessionizer.h"

namespace wum {

IncrementalSmartSra::IncrementalSmartSra(const WebGraph* graph,
                                         SmartSra::Options options)
    : algorithm_(graph, options) {}

Status IncrementalSmartSra::CloseCandidate(const EmitFn& emit) {
  if (candidate_.empty()) return Status::OK();
  WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                       algorithm_.Phase2(candidate_));
  candidate_ = Session{};
  for (Session& session : sessions) {
    WUM_RETURN_NOT_OK(emit(std::move(session)));
  }
  return Status::OK();
}

Status IncrementalSmartSra::OnRequest(const PageRequest& request,
                                      const EmitFn& emit) {
  const TimeThresholds& t = algorithm_.options().thresholds;
  if (!candidate_.empty()) {
    const bool page_stay_exceeded =
        request.timestamp - candidate_.requests.back().timestamp >
        t.max_page_stay;
    const bool duration_exceeded =
        request.timestamp - candidate_.requests.front().timestamp >
        t.max_session_duration;
    if (page_stay_exceeded || duration_exceeded) {
      WUM_RETURN_NOT_OK(CloseCandidate(emit));
    }
  }
  candidate_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalSmartSra::Flush(const EmitFn& emit) {
  return CloseCandidate(emit);
}

SessionizeSink::SessionizeSink(UserSessionizerFactory factory,
                               SessionSink* session_sink,
                               std::size_t num_pages, UserIdentity identity,
                               SessionizeMetrics metrics)
    : factory_(std::move(factory)),
      session_sink_(session_sink),
      num_pages_(num_pages),
      identity_(identity),
      metrics_(std::move(metrics)) {}

IncrementalUserSessionizer::EmitFn SessionizeSink::MakeEmit(
    const std::string& user_key) {
  return [this, user_key](Session session) {
    sessions_emitted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_emitted.Increment();
    return session_sink_->Accept(user_key, std::move(session));
  };
}

Status SessionizeSink::Accept(const LogRecord& record) {
  Result<std::uint32_t> page = PageFromUrl(record.url);
  if (!page.ok()) {
    skipped_non_page_urls_.fetch_add(1, std::memory_order_relaxed);
    metrics_.skipped_non_page_urls.Increment();
    return Status::OK();
  }
  if (*page >= num_pages_) {
    return Status::InvalidArgument("record references page " +
                                   std::to_string(*page) +
                                   " outside the topology");
  }
  const std::string key =
      UserKeyFor(record.client_ip, record.user_agent, identity_);
  UserState& user = users_[key];
  if (user.sessionizer == nullptr) user.sessionizer = factory_();
  if (user.has_seen_request && record.timestamp < user.last_timestamp) {
    return Status::InvalidArgument(
        "out-of-order record for " + record.client_ip +
        "; place an OrderGuardOperator upstream or sort the log");
  }
  user.last_timestamp = record.timestamp;
  user.has_seen_request = true;
  obs::ScopedTimer timer(metrics_.sessionize_latency_us);
  WUM_RETURN_NOT_OK(user.sessionizer->OnRequest(
      PageRequest{static_cast<PageId>(*page), record.timestamp},
      MakeEmit(key)));
  records_absorbed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SessionizeSink::Finish() {
  for (auto& [key, user] : users_) {
    WUM_RETURN_NOT_OK(user.sessionizer->Flush(MakeEmit(key)));
  }
  return Status::OK();
}

}  // namespace wum
