#include "wum/stream/incremental_sessionizer.h"

#include "wum/ckpt/checkpoint.h"

namespace wum {
namespace {

// State type tag persisted ahead of each sessionizer's open session, so
// a state blob restored into the wrong implementation fails loudly
// (tags 1-3 belong to the incremental time sessionizers).
constexpr std::uint8_t kSmartSraStateTag = 4;

}  // namespace

Status IncrementalUserSessionizer::SerializeState(ckpt::Encoder*) const {
  return Status::Unimplemented(
      "this sessionizer does not support checkpointing (no SerializeState "
      "override)");
}

Status IncrementalUserSessionizer::RestoreState(ckpt::Decoder*) {
  return Status::Unimplemented(
      "this sessionizer does not support checkpointing (no RestoreState "
      "override)");
}

IncrementalSmartSra::IncrementalSmartSra(const WebGraph* graph,
                                         SmartSra::Options options)
    : algorithm_(graph, options) {}

Status IncrementalSmartSra::SerializeState(ckpt::Encoder* encoder) const {
  encoder->PutU8(kSmartSraStateTag);
  ckpt::EncodeSession(candidate_, encoder);
  return Status::OK();
}

Status IncrementalSmartSra::RestoreState(ckpt::Decoder* decoder) {
  WUM_ASSIGN_OR_RETURN(std::uint8_t tag, decoder->GetU8());
  if (tag != kSmartSraStateTag) {
    return Status::ParseError("state tag " + std::to_string(tag) +
                              " is not smart-sra state");
  }
  return ckpt::DecodeSession(decoder, &candidate_);
}

Status IncrementalSmartSra::CloseCandidate(const EmitFn& emit) {
  if (candidate_.empty()) return Status::OK();
  WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                       algorithm_.Phase2(candidate_));
  candidate_ = Session{};
  for (Session& session : sessions) {
    WUM_RETURN_NOT_OK(emit(std::move(session)));
  }
  return Status::OK();
}

Status IncrementalSmartSra::OnRequest(const PageRequest& request,
                                      const EmitFn& emit) {
  const TimeThresholds& t = algorithm_.options().thresholds;
  if (!candidate_.empty()) {
    const bool page_stay_exceeded =
        request.timestamp - candidate_.requests.back().timestamp >
        t.max_page_stay;
    const bool duration_exceeded =
        request.timestamp - candidate_.requests.front().timestamp >
        t.max_session_duration;
    if (page_stay_exceeded || duration_exceeded) {
      WUM_RETURN_NOT_OK(CloseCandidate(emit));
    }
  }
  candidate_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalSmartSra::Flush(const EmitFn& emit) {
  return CloseCandidate(emit);
}

SessionizeSink::SessionizeSink(UserSessionizerFactory factory,
                               SessionSink* session_sink,
                               std::size_t num_pages, UserIdentity identity,
                               SessionizeMetrics metrics)
    : factory_(std::move(factory)),
      session_sink_(session_sink),
      num_pages_(num_pages),
      identity_(identity),
      metrics_(std::move(metrics)) {
  // One closure for the sink's whole lifetime: sessions always belong to
  // the user whose id is current at call time, so no per-record closure
  // (and no per-record heap allocation) is needed.
  emit_fn_ = [this](Session session) {
    sessions_emitted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_emitted.Increment();
    return session_sink_->Accept(interner_.StringOf(current_user_id_),
                                 std::move(session));
  };
}

Status SessionizeSink::Accept(const LogRecord& record) {
  if (record.timestamp > 0) {
    const std::uint64_t ts = static_cast<std::uint64_t>(record.timestamp);
    if (ts > watermark_seconds_.load(std::memory_order_relaxed)) {
      watermark_seconds_.store(ts, std::memory_order_relaxed);
    }
  }
  Result<std::uint32_t> page = PageFromUrl(record.url);
  if (!page.ok()) {
    skipped_non_page_urls_.fetch_add(1, std::memory_order_relaxed);
    metrics_.skipped_non_page_urls.Increment();
    return Status::OK();
  }
  if (*page >= num_pages_) {
    return Status::InvalidArgument("record references page " +
                                   std::to_string(*page) +
                                   " outside the topology");
  }
  const std::string_view key =
      UserKeyView(record.client_ip, record.user_agent, identity_, &key_buffer_);
  const std::uint32_t user_id = interner_.Intern(key);
  if (user_id == users_.size()) users_.emplace_back();
  UserState& user = users_[user_id];
  if (user.sessionizer == nullptr) user.sessionizer = factory_();
  if (user.has_seen_request && record.timestamp < user.last_timestamp) {
    return Status::InvalidArgument(
        "out-of-order record for " + record.client_ip +
        "; place an OrderGuardOperator upstream or sort the log");
  }
  user.last_timestamp = record.timestamp;
  user.has_seen_request = true;
  obs::ScopedTimer timer(metrics_.sessionize_latency_us);
  obs::ScopedSpan span(metrics_.tracer, "sessionize", metrics_.trace_shard,
                       records_absorbed_.load(std::memory_order_relaxed));
  current_user_id_ = user_id;
  WUM_RETURN_NOT_OK(user.sessionizer->OnRequest(
      PageRequest{static_cast<PageId>(*page), record.timestamp}, emit_fn_));
  records_absorbed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SessionizeSink::Finish() {
  for (std::uint32_t id = 0; id < users_.size(); ++id) {
    current_user_id_ = id;
    WUM_RETURN_NOT_OK(users_[id].sessionizer->Flush(emit_fn_));
  }
  return Status::OK();
}

Status SessionizeSink::SerializeState(std::vector<std::string>* frames) const {
  ckpt::Encoder header;
  header.PutUvarint(sessions_emitted_.load(std::memory_order_relaxed));
  header.PutUvarint(skipped_non_page_urls_.load(std::memory_order_relaxed));
  header.PutUvarint(records_absorbed_.load(std::memory_order_relaxed));
  header.PutUvarint(watermark_seconds_.load(std::memory_order_relaxed));
  header.PutUvarint(users_.size());
  frames->push_back(header.Release());
  // Id order, not key order: frame position is the interner snapshot
  // (restore re-interns in this order and reproduces identical ids).
  for (std::uint32_t id = 0; id < users_.size(); ++id) {
    const UserState& user = users_[id];
    ckpt::Encoder encoder;
    encoder.PutString(interner_.StringOf(id));
    encoder.PutVarint(user.last_timestamp);
    encoder.PutU8(user.has_seen_request ? 1 : 0);
    WUM_RETURN_NOT_OK(user.sessionizer->SerializeState(&encoder));
    frames->push_back(encoder.Release());
  }
  return Status::OK();
}

Status SessionizeSink::RestoreState(std::span<const std::string> frames) {
  if (frames.empty()) {
    return Status::ParseError("sessionize state missing counters frame");
  }
  ckpt::Decoder header(frames[0]);
  WUM_ASSIGN_OR_RETURN(std::uint64_t emitted, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(std::uint64_t skipped, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(std::uint64_t absorbed, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(std::uint64_t watermark, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(std::uint64_t num_users, header.GetUvarint());
  WUM_RETURN_NOT_OK(header.ExpectEnd());
  if (num_users != frames.size() - 1) {
    return Status::ParseError(
        "sessionize state declares " + std::to_string(num_users) +
        " users but carries " + std::to_string(frames.size() - 1) +
        " user frames");
  }
  users_.clear();
  interner_.Clear();
  for (const std::string& frame : frames.subspan(1)) {
    ckpt::Decoder decoder(frame);
    WUM_ASSIGN_OR_RETURN(std::string key, decoder.GetString());
    if (key.empty()) return Status::ParseError("empty user key in state");
    if (interner_.Contains(key)) {
      return Status::ParseError("duplicate user key '" + key + "' in state");
    }
    UserState user;
    WUM_ASSIGN_OR_RETURN(user.last_timestamp, decoder.GetVarint());
    WUM_ASSIGN_OR_RETURN(std::uint8_t seen, decoder.GetU8());
    if (seen > 1) return Status::ParseError("invalid has_seen_request flag");
    user.has_seen_request = seen == 1;
    user.sessionizer = factory_();
    WUM_RETURN_NOT_OK(user.sessionizer->RestoreState(&decoder));
    WUM_RETURN_NOT_OK(decoder.ExpectEnd());
    // Frame order is id order: the id handed out here equals the one the
    // serializing sink used, so ids stay stable across a resume.
    const std::uint32_t id = interner_.Intern(key);
    (void)id;
    users_.push_back(std::move(user));
  }
  sessions_emitted_.store(emitted, std::memory_order_relaxed);
  skipped_non_page_urls_.store(skipped, std::memory_order_relaxed);
  records_absorbed_.store(absorbed, std::memory_order_relaxed);
  watermark_seconds_.store(watermark, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace wum
