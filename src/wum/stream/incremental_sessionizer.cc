#include "wum/stream/incremental_sessionizer.h"

namespace wum {

IncrementalSmartSra::IncrementalSmartSra(const WebGraph* graph,
                                         SmartSra::Options options)
    : algorithm_(graph, options) {}

Status IncrementalSmartSra::CloseCandidate(const EmitFn& emit) {
  if (candidate_.empty()) return Status::OK();
  WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                       algorithm_.Phase2(candidate_));
  candidate_ = Session{};
  for (Session& session : sessions) {
    WUM_RETURN_NOT_OK(emit(std::move(session)));
  }
  return Status::OK();
}

Status IncrementalSmartSra::OnRequest(const PageRequest& request,
                                      const EmitFn& emit) {
  const TimeThresholds& t = algorithm_.options().thresholds;
  if (!candidate_.empty()) {
    const bool page_stay_exceeded =
        request.timestamp - candidate_.requests.back().timestamp >
        t.max_page_stay;
    const bool duration_exceeded =
        request.timestamp - candidate_.requests.front().timestamp >
        t.max_session_duration;
    if (page_stay_exceeded || duration_exceeded) {
      WUM_RETURN_NOT_OK(CloseCandidate(emit));
    }
  }
  candidate_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalSmartSra::Flush(const EmitFn& emit) {
  return CloseCandidate(emit);
}

SessionizeSink::SessionizeSink(UserSessionizerFactory factory,
                               SessionSink* session_sink,
                               std::size_t num_pages)
    : factory_(std::move(factory)),
      session_sink_(session_sink),
      num_pages_(num_pages) {}

IncrementalUserSessionizer::EmitFn SessionizeSink::MakeEmit(
    const std::string& client_ip) {
  return [this, client_ip](Session session) {
    ++sessions_emitted_;
    return session_sink_->Accept(client_ip, std::move(session));
  };
}

Status SessionizeSink::Accept(const LogRecord& record) {
  Result<std::uint32_t> page = PageFromUrl(record.url);
  if (!page.ok()) {
    ++skipped_non_page_urls_;
    return Status::OK();
  }
  if (*page >= num_pages_) {
    return Status::InvalidArgument("record references page " +
                                   std::to_string(*page) +
                                   " outside the topology");
  }
  UserState& user = users_[record.client_ip];
  if (user.sessionizer == nullptr) user.sessionizer = factory_();
  if (user.has_seen_request && record.timestamp < user.last_timestamp) {
    return Status::InvalidArgument(
        "out-of-order record for " + record.client_ip +
        "; place an OrderGuardOperator upstream or sort the log");
  }
  user.last_timestamp = record.timestamp;
  user.has_seen_request = true;
  return user.sessionizer->OnRequest(
      PageRequest{static_cast<PageId>(*page), record.timestamp},
      MakeEmit(record.client_ip));
}

Status SessionizeSink::Finish() {
  for (auto& [ip, user] : users_) {
    WUM_RETURN_NOT_OK(user.sessionizer->Flush(MakeEmit(ip)));
  }
  return Status::OK();
}

}  // namespace wum
