// Dense string interning for per-shard hot-path state.
//
// A StringInterner maps each distinct user key (client IP, or
// IP + user-agent) to a dense uint32 id on first sight. Shard-local
// state is then held in flat id-indexed vectors instead of string-keyed
// maps, and the emit path hands sinks a stable reference to the interned
// key instead of copying it per session. Storage is a deque-backed arena:
// entries never move, so both the ids and the returned string references
// stay valid for the interner's lifetime.
//
// Checkpoint contract: ids are assigned in first-Intern order, so
// serializing per-user state in id order and re-Intern()ing the keys in
// that same order on restore reproduces identical ids across a
// kill-and-resume (see SessionizeSink::SerializeState).

#ifndef WUM_STREAM_STRING_INTERNER_H_
#define WUM_STREAM_STRING_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wum {

class StringInterner {
 public:
  /// Returns the dense id for `key`, assigning the next free id on first
  /// sight. Allocation-free for already-interned keys (the lookup hashes
  /// the view directly; no temporary std::string is built).
  std::uint32_t Intern(std::string_view key) {
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back(key);
    index_.emplace(arena_.back(), id);
    return id;
  }

  /// The interned key for `id`; the reference is stable for the
  /// interner's lifetime. `id` must have been returned by Intern().
  const std::string& StringOf(std::uint32_t id) const {
    return arena_[id];
  }

  /// True if `key` is already interned (no id is assigned either way).
  bool Contains(std::string_view key) const {
    return index_.find(key) != index_.end();
  }

  std::size_t size() const { return arena_.size(); }

  /// Drops every entry and id (checkpoint restore starts from scratch).
  void Clear() {
    index_.clear();
    arena_.clear();
  }

 private:
  /// Deque so entries never relocate; the index's string_view keys point
  /// into these entries.
  std::deque<std::string> arena_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace wum

#endif  // WUM_STREAM_STRING_INTERNER_H_
