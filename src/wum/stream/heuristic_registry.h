// HeuristicRegistry: the single heuristic-name -> factory mapping in the
// codebase. Everything that turns a CLI/config string ("duration",
// "pagestay", "navigation", "smart-sra") into a sessionizer — the
// websra_* tools, EngineOptions::use_heuristic, MakePaperHeuristics —
// resolves through this table, so adding a heuristic is a one-entry
// change and --help strings never drift from what actually dispatches.
//
// It lives in stream/ (not session/) because an entry carries *both*
// construction forms of one heuristic: the batch Sessionizer and the
// incremental per-user state machine the StreamEngine shards over.

#ifndef WUM_STREAM_HEURISTIC_REGISTRY_H_
#define WUM_STREAM_HEURISTIC_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/common/time.h"
#include "wum/session/sessionizer.h"
#include "wum/stream/incremental_sessionizer.h"

namespace wum {

class WebGraph;

/// Everything a heuristic factory may need. Graph-based heuristics fail
/// with InvalidArgument when `graph` is null; time-based ones ignore it.
struct HeuristicContext {
  /// Must outlive the created sessionizers.
  const WebGraph* graph = nullptr;
  /// delta / rho (paper defaults 30 min / 10 min).
  TimeThresholds thresholds;
};

/// Immutable name -> factory table of the session reconstruction
/// heuristics. `Default()` holds the paper's four (the referrer oracle
/// consumes a different input type — ReferredRequest streams — and is
/// deliberately not a Sessionizer, so it stays outside the registry).
class HeuristicRegistry {
 public:
  using BatchFactory = std::function<Result<std::unique_ptr<Sessionizer>>(
      const HeuristicContext&)>;
  using IncrementalFactory =
      std::function<Result<UserSessionizerFactory>(const HeuristicContext&)>;

  struct Entry {
    /// Canonical CLI name, e.g. "smart-sra".
    std::string name;
    /// One-line description for --help output.
    std::string description;
    bool needs_graph = false;
    BatchFactory make_batch;
    IncrementalFactory make_incremental;
  };

  /// The built-in table with the paper's four heuristics.
  static const HeuristicRegistry& Default();

  /// Registration order == the paper's order (heur1..heur4).
  explicit HeuristicRegistry(std::vector<Entry> entries);

  /// Canonical names in registration order (for --help and loops).
  std::vector<std::string> Names() const;

  /// "duration|pagestay|navigation|smart-sra" for usage strings.
  std::string NamesForUsage() const;

  const Entry* Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Batch sessionizer for `name`. NotFound for unknown names,
  /// InvalidArgument when a graph heuristic is missing its graph.
  Result<std::unique_ptr<Sessionizer>> CreateBatch(
      const std::string& name, const HeuristicContext& context) const;

  /// Per-user incremental factory for `name` (what StreamEngine shards
  /// drive). Same error contract as CreateBatch; the returned factory is
  /// safe to invoke concurrently from shard workers.
  Result<UserSessionizerFactory> CreateIncremental(
      const std::string& name, const HeuristicContext& context) const;

 private:
  Result<const Entry*> FindChecked(const std::string& name,
                                   const HeuristicContext& context) const;

  std::vector<Entry> entries_;
};

}  // namespace wum

#endif  // WUM_STREAM_HEURISTIC_REGISTRY_H_
