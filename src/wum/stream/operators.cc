// Operators are header-only; this translation unit anchors their vtables.
#include "wum/stream/operators.h"

namespace wum {}  // namespace wum
