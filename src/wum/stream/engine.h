// StreamEngine: the sharded, multi-worker streaming facade. It owns the
// whole reactive chain — per-shard bounded queue, operator chain and
// per-user incremental sessionizer map — and replaces the assemble-by-
// hand Pipeline + ThreadedDriver + SessionizeSink wiring (which remain
// the internal building blocks).
//
//   Offer(record) --hash(user identity)--> shard queue -> operators
//       -> per-user sessionizer -> serialized emit -> SessionSink
//
// Records are hash-partitioned by user identity (client IP, or IP+UA per
// UserIdentity), so one user's records always land on the same shard and
// per-user timestamp ordering is preserved while distinct users run in
// parallel — the per-user independence that "Link Based Session
// Reconstruction" (Bayir & Toroslu) identifies as the natural
// parallelism axis. Completed sessions funnel into the caller's single
// SessionSink through a mutex-serialized emit path.
//
// Failure handling is policy-driven: under ErrorPolicy::kFailFast (the
// default) the first error anywhere is sticky and stops the whole
// engine, while ErrorPolicy::kDegrade isolates failures to their domain
// — a rejected record or refused session is quarantined to the
// DeadLetterQueue and a failing shard dies alone while the others keep
// sessionizing. Transient sink failures can be absorbed with
// set_retry (a RetryingSink around the emit path), and backpressure can
// shed instead of blocking via OfferPolicy::kShed.
//
// See docs/streaming.md for the API guide and docs/robustness.md for
// the fault-tolerance layer.

#ifndef WUM_STREAM_ENGINE_H_
#define WUM_STREAM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "wum/clf/log_filter.h"
#include "wum/clf/user_partitioner.h"
#include "wum/common/result.h"
#include "wum/common/time.h"
#include "wum/mine/options.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/fault.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/stream/pipeline.h"

namespace wum {

class WebGraph;

namespace mine {
class MiningSink;
}  // namespace mine

/// What a failure does to the engine.
enum class ErrorPolicy {
  /// First error wins and is sticky: a sink or shard failure stops the
  /// whole engine (the historical behavior, and the default).
  kFailFast,
  /// Failures stay inside their domain. Rejected records and sessions
  /// refused after every retry are quarantined to the DeadLetterQueue
  /// (when one is attached) and counted per shard; a shard-fatal error
  /// (see IsShardFatal) kills only that shard — its pending records are
  /// dead-lettered while every other shard keeps sessionizing, and
  /// Finish returns OK. Inspect ShardHealth()/the dead-letter channel
  /// for what degraded.
  kDegrade,
};

/// What Offer does when the target shard's queue is full.
enum class OfferPolicy {
  /// Block the producer until the shard catches up (the default).
  kBlock,
  /// Drop the record on the floor and count it in records_shed — load
  /// shedding for producers that must never stall.
  kShed,
};

/// Builder-style configuration for StreamEngine. Setters return *this so
/// an engine is declared in one expression:
///
///   auto engine = StreamEngine::Create(EngineOptions()
///                                          .set_num_shards(4)
///                                          .set_thresholds(thresholds)
///                                          .use_smart_sra(&graph),
///                                      &sink);
class EngineOptions {
 public:
  /// Creates one RecordOperator instance per shard (each shard owns an
  /// independent chain, so operators need not be thread-safe).
  using OperatorFactory = std::function<std::unique_ptr<RecordOperator>()>;
  using FilterFactory = std::function<std::unique_ptr<LogFilter>()>;

  /// Worker shard count (>= 1). Each shard is one thread.
  EngineOptions& set_num_shards(std::size_t num_shards) {
    num_shards_ = num_shards;
    return *this;
  }

  /// Bounded per-shard queue capacity, in records.
  EngineOptions& set_queue_capacity(std::size_t capacity) {
    queue_capacity_ = capacity;
    return *this;
  }

  /// How records are attributed (and hashed) to users.
  EngineOptions& set_identity(UserIdentity identity) {
    identity_ = identity;
    return *this;
  }

  /// delta / rho used by the time-based heuristics and Smart-SRA.
  EngineOptions& set_thresholds(TimeThresholds thresholds) {
    thresholds_ = thresholds;
    return *this;
  }

  /// Page-id bound for topology validation. Defaults to the graph's
  /// num_pages() when a graph-based heuristic is chosen.
  EngineOptions& set_num_pages(std::size_t num_pages) {
    num_pages_ = num_pages;
    return *this;
  }

  /// Heuristic selection (exactly one; the factory runs once per user).
  /// Names resolve through HeuristicRegistry::Default() at Create time —
  /// the same table the CLI tools use — so `name` accepts exactly the
  /// strings the tools accept ("duration", "pagestay", "navigation",
  /// "smart-sra"). Graph heuristics read the graph from use_graph.
  EngineOptions& use_heuristic(std::string name) {
    heuristic_name_ = std::move(name);
    return SetSelection(Selection::kNamed);
  }
  /// `graph` must outlive the engine. Required by graph heuristics; also
  /// the default source of the page-id bound (num_pages).
  EngineOptions& use_graph(const WebGraph* graph) {
    graph_ = graph;
    return *this;
  }
  /// Name-based sugar, kept for call-site readability.
  EngineOptions& use_duration() { return use_heuristic("duration"); }
  EngineOptions& use_page_stay() { return use_heuristic("pagestay"); }
  /// `graph` must outlive the engine.
  EngineOptions& use_navigation(const WebGraph* graph) {
    return use_graph(graph).use_heuristic("navigation");
  }
  /// `graph` must outlive the engine.
  EngineOptions& use_smart_sra(const WebGraph* graph) {
    return use_graph(graph).use_heuristic("smart-sra");
  }
  /// Escape hatch: caller-provided per-user sessionizer factory.
  EngineOptions& use_custom(UserSessionizerFactory factory) {
    custom_factory_ = std::move(factory);
    return SetSelection(Selection::kCustom);
  }

  /// Failure semantics; see ErrorPolicy. Defaults to kFailFast.
  EngineOptions& set_error_policy(ErrorPolicy policy) {
    error_policy_ = policy;
    return *this;
  }

  /// Backpressure semantics; see OfferPolicy. Defaults to kBlock.
  EngineOptions& set_offer_policy(OfferPolicy policy) {
    offer_policy_ = policy;
    return *this;
  }

  /// Attaches a caller-owned dead-letter channel: quarantined inputs are
  /// offered to `queue` (which must outlive the engine) and can be
  /// drained at any time. Without one, quarantines are still counted in
  /// EngineStats::dead_letters but the inputs are discarded. Only read
  /// in kDegrade mode.
  EngineOptions& set_dead_letters(DeadLetterQueue* queue) {
    dead_letters_ = queue;
    return *this;
  }

  /// Wraps the emit path in a per-shard RetryingSink: transient sink
  /// failures are re-attempted with deterministic exponential backoff
  /// (see RetryOptions) before the error policy decides what a final
  /// failure means. Works under both error policies.
  EngineOptions& set_retry(RetryOptions options) {
    retry_ = std::move(options);
    return *this;
  }

  /// Optional observability registry (see docs/observability.md). When
  /// set, the engine registers per-shard counters, gauges and latency
  /// histograms named "engine.shard<k>.*" and updates them as it runs;
  /// `registry` must outlive the engine. When left null the handles stay
  /// disabled and the timing paths never read the clock.
  EngineOptions& set_metrics(obs::MetricRegistry* registry) {
    metrics_ = registry;
    return *this;
  }

  /// Optional span tracer (see docs/observability.md). When set, the
  /// engine records a span or instant event for every pipeline stage a
  /// record passes through — partition, enqueue, drain, sessionize,
  /// emit, retry, dead_letter, checkpoint — each tagged with its shard
  /// and a stage-specific sequence number, exportable as Chrome
  /// trace-event JSON via TraceRecorder::WriteChromeTrace. `recorder`
  /// must outlive the engine. When left null the handles stay disabled
  /// and the span paths never read the clock.
  EngineOptions& set_trace(obs::TraceRecorder* recorder) {
    trace_ = recorder;
    return *this;
  }

  /// Appends a stage to every shard's operator chain (applied in call
  /// order, before the sessionizer).
  EngineOptions& add_operator(OperatorFactory factory) {
    operator_factories_.push_back(std::move(factory));
    return *this;
  }

  /// Sugar for add_operator: wraps the filter in a FilterOperator.
  EngineOptions& add_filter(FilterFactory factory);

  /// Enables reactive top-k path mining (wum::mine): the engine wraps
  /// the caller's sink in a MiningSink so every delivered session also
  /// feeds one merged PathMiner, queryable any time through mining().
  /// Topology validation uses the graph from use_graph when one is set.
  /// Miner state rides every Checkpoint (an extra mining.state epoch
  /// file) and is restored by resume_from.
  EngineOptions& set_mining(mine::MinerOptions options) {
    mining_ = std::move(options);
    return *this;
  }

  /// Resumes from the latest committed checkpoint in `dir` (written by
  /// StreamEngine::Checkpoint). Create fails when the directory holds no
  /// checkpoint, the files are corrupt, or the checkpoint was taken
  /// under an incompatible configuration (different heuristic, identity,
  /// shard count or thresholds). After a successful Create the caller
  /// replays the original input from record zero: Offer silently skips
  /// the first records_seen records (the checkpoint already covers
  /// them), then processing continues exactly where it left off.
  EngineOptions& resume_from(std::string dir) {
    resume_dir_ = std::move(dir);
    return *this;
  }

  /// With resume_from: disables the engine's replay-by-offset skip.
  /// The default resume contract assumes one reproducible input stream
  /// replayed from record zero, with Offer skipping the first
  /// records_seen records. A front end with several independent
  /// producers (websra_serve's TCP connections) cannot reproduce the
  /// historical interleaving, so it replays *precisely* instead — each
  /// producer is resumed from its own durable byte offset (stored in the
  /// manifest's sink_state) and every record the engine now sees is new.
  /// The restored records_seen is carried forward as a base so manifest
  /// offsets stay monotonic across restarts.
  EngineOptions& resume_with_external_replay() {
    resume_external_replay_ = true;
    return *this;
  }

  /// Full options validation: every configuration Create would reject,
  /// as one precise Status instead of a scattering of asserts and
  /// clamps. Create calls this first; tools call it up front to report
  /// flag errors before any construction work. Checks shard count and
  /// queue capacity, heuristic selection (unknown names, graph
  /// heuristics without a graph), the page-id bound, retry bounds,
  /// OfferPolicy::kShed without a dead-letter budget, and
  /// resume_with_external_replay without resume_from.
  Status Validate() const;

 private:
  friend class StreamEngine;

  enum class Selection { kUnset, kNamed, kCustom };

  EngineOptions& SetSelection(Selection selection) {
    selection_ = selection;
    return *this;
  }

  std::size_t num_shards_ = 1;
  std::size_t queue_capacity_ = 1024;
  UserIdentity identity_ = UserIdentity::kClientIp;
  TimeThresholds thresholds_;
  std::size_t num_pages_ = 0;
  Selection selection_ = Selection::kUnset;
  std::string heuristic_name_;
  const WebGraph* graph_ = nullptr;
  UserSessionizerFactory custom_factory_;
  std::vector<OperatorFactory> operator_factories_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  ErrorPolicy error_policy_ = ErrorPolicy::kFailFast;
  OfferPolicy offer_policy_ = OfferPolicy::kBlock;
  DeadLetterQueue* dead_letters_ = nullptr;
  std::optional<RetryOptions> retry_;
  std::optional<mine::MinerOptions> mining_;
  std::string resume_dir_;
  bool resume_external_replay_ = false;
};

/// Throughput counters of one shard (or, aggregated, the whole engine).
/// Snapshots are safe to take from any thread while the engine runs.
struct EngineStats {
  /// Records accepted into the shard queue by Offer.
  std::uint64_t records_in = 0;
  /// Records discarded before sessionization: operator-chain drops
  /// (filters, order guards) plus non-page URLs skipped by the
  /// sessionizer stage.
  std::uint64_t records_dropped = 0;
  /// Completed sessions handed to the caller's SessionSink.
  std::uint64_t sessions_emitted = 0;
  /// Offer calls that found the shard queue full and had to block — the
  /// engine's backpressure signal.
  std::uint64_t blocked_enqueues = 0;
  /// Largest queue depth observed right after an enqueue.
  std::uint64_t queue_high_watermark = 0;
  /// Records quarantined to the dead-letter channel (kDegrade mode):
  /// operator/sessionizer rejections, records drained from or routed to
  /// a dead shard, and the records of sessions the sink refused after
  /// every retry. Counted even when no DeadLetterQueue is attached.
  std::uint64_t dead_letters = 0;
  /// Emit re-attempts performed by the RetryingSink (set_retry).
  std::uint64_t retries = 0;
  /// Records dropped by Offer under OfferPolicy::kShed because the shard
  /// queue was full.
  std::uint64_t records_shed = 0;

  /// Aggregation: counters add, the watermark takes the max.
  EngineStats& operator+=(const EngineStats& other) {
    records_in += other.records_in;
    records_dropped += other.records_dropped;
    sessions_emitted += other.sessions_emitted;
    blocked_enqueues += other.blocked_enqueues;
    if (other.queue_high_watermark > queue_high_watermark) {
      queue_high_watermark = other.queue_high_watermark;
    }
    dead_letters += other.dead_letters;
    retries += other.retries;
    records_shed += other.records_shed;
    return *this;
  }
};

/// Renders "records_in=... dropped=... sessions=..." for CLI summaries.
std::string EngineStatsToString(const EngineStats& stats);

/// Owning, sharded streaming engine. Offer/Finish must be called from a
/// single producer thread (the ingest path); stats snapshots are safe
/// from any thread. The caller's SessionSink only ever sees one call at
/// a time (serialized emit), so it needs no locking of its own.
class StreamEngine {
 public:
  /// Validates options and starts the shard workers. `sink` must outlive
  /// the engine. Fails with InvalidArgument when no heuristic is chosen,
  /// a graph heuristic is missing its graph, the shard count or queue
  /// capacity is zero, or the page-id bound cannot be derived.
  static Result<std::unique_ptr<StreamEngine>> Create(EngineOptions options,
                                                      SessionSink* sink);

  /// Joins all workers (calling Finish first if the caller forgot).
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Zero-copy batch ingest, the hot path: one partition pass over the
  /// refs, then one materialized vector-of-records queue hand-off per
  /// shard per batch (the only point the viewed bytes are copied). The
  /// refs need only stay valid for the duration of the call. Blocks when
  /// a shard's queue is full (OfferPolicy::kBlock); under kShed an
  /// entire per-shard sub-batch is shed when its queue is full — a batch
  /// of one record therefore sheds per record, exactly like the
  /// historical Offer. Returns FailedPrecondition after Finish, or the
  /// first error any shard (or the sink) reported. Resume replay skips
  /// the leading records a restored checkpoint already covers, per
  /// record, exactly as repeated Offer calls would.
  Status OfferBatch(std::span<const LogRecordRef> batch);

  /// Documented convenience wrapper: routes one record as a batch of
  /// one through OfferBatch, preserving the historical per-record
  /// semantics (blocking, shedding, replay-skip and dead-letter
  /// accounting are all defined record-by-record at batch size 1).
  Status Offer(const LogRecord& record);

  /// Signals end of stream, drains and joins every shard, flushes all
  /// open sessions, and returns the first error (sink failures
  /// included). Calling Finish twice returns FailedPrecondition.
  Status Finish();

  /// Captures caller-owned sink state at the checkpoint barrier (e.g.
  /// the committed length of a durable session journal). The returned
  /// string is stored opaquely in the manifest and handed back through
  /// resumed_sink_state() on resume; an error aborts the checkpoint.
  using SinkStateFn = std::function<Result<std::string>()>;

  /// Durable barrier-style snapshot into `dir` (see docs/
  /// checkpointing.md). Waits for every shard to drain its queue, then
  /// writes each shard's sessionizer state and counters, the dead-letter
  /// queue, a metrics snapshot and a manifest into a fresh epoch
  /// directory, committing it atomically (MANIFEST last within the
  /// epoch, then the CURRENT pointer via temp file + rename). On any
  /// failure the previous committed checkpoint is left intact. Producer
  /// thread only, like Offer; FailedPrecondition after Finish. Under
  /// kFailFast a poisoned engine refuses to checkpoint; under kDegrade a
  /// dead shard is snapshotted as-is (its quarantines are in the
  /// letters). `sink_state_fn`, when given, runs after the barrier while
  /// every shard is at rest.
  Status Checkpoint(const std::string& dir,
                    const SinkStateFn& sink_state_fn = nullptr);

  /// Input records consumed by Offer so far — accepted, shed or
  /// quarantined, including resume-skipped replays. Producer thread
  /// only.
  std::uint64_t records_seen() const { return records_seen_; }

  /// True when this engine was restored from a checkpoint.
  bool resumed() const { return resumed_; }

  /// The backpressure semantics Offer runs under — callers upstream of
  /// the engine (e.g. the log server's quota degradation) mirror the
  /// same policy for their own overload handling.
  OfferPolicy offer_policy() const { return offer_policy_; }

  /// Input records the checkpoint this engine resumed from had already
  /// covered (0 when !resumed()). Under the default resume contract
  /// this many leading replayed records are skipped; under
  /// resume_with_external_replay it is the base offset carried into
  /// subsequent manifests.
  std::uint64_t resumed_records_seen() const {
    return resume_base_ + resume_skip_;
  }

  /// The sink_state captured by the checkpoint this engine resumed from
  /// (empty when !resumed() or none was captured).
  const std::string& resumed_sink_state() const {
    return resumed_sink_state_;
  }

  std::size_t num_shards() const { return shards_.size(); }

  /// The mining tap (set_mining), or nullptr when mining is disabled.
  /// All MiningSink methods are thread-safe, so PATTERNS-style queries
  /// may run from any thread while the engine streams.
  mine::MiningSink* mining() const { return mining_.get(); }

  /// Per-shard snapshots, index == shard id.
  std::vector<EngineStats> ShardStats() const;

  /// Aggregate snapshot across all shards.
  EngineStats TotalStats() const;

  /// Per-shard failure domains, index == shard id: OK while the shard is
  /// healthy, its fatal error once it died. In kDegrade mode this (plus
  /// the dead-letter channel) is how isolated failures surface, since
  /// Finish keeps returning OK. Safe from any thread.
  std::vector<Status> ShardHealth() const;

  /// Event-time watermark of shard `shard` — the largest CLF timestamp
  /// (UNIX seconds) it has absorbed, 0 before its first record. Safe
  /// from any thread (backs the watermark gauges and /statusz).
  std::uint64_t ShardWatermarkSeconds(std::size_t shard) const;

  /// Records currently queued ahead of shard `shard`'s worker. Safe
  /// from any thread.
  std::size_t ShardQueueDepth(std::size_t shard) const;

 private:
  struct Shard;
  class EmitHub;
  class ShardEmit;

  StreamEngine(EngineOptions options, UserSessionizerFactory factory,
               SessionSink* sink);

  std::size_t ShardIndexFor(const LogRecordRef& record) const;
  EngineStats SnapshotShard(const Shard& shard) const;
  /// Counts one quarantined input against `shard` and offers it to the
  /// dead-letter channel when one is attached.
  void Quarantine(Shard& shard, DeadLetter letter);
  /// Second construction phase: creates the per-shard drivers (worker
  /// threads). Runs after RestoreFrom so state restore never races a
  /// live worker.
  void StartWorkers();
  /// Loads the committed checkpoint from `dir` into the (not yet
  /// started) shards; validates the manifest fingerprint first.
  Status RestoreFrom(const std::string& dir);
  /// Registers the scrape-time gauge probe (watermarks, queue depths,
  /// watermark lag/skew) on registry_. Runs after StartWorkers — the
  /// probe reads the drivers — and is undone by the destructor, since
  /// the registry usually outlives the engine. No-op without a registry.
  void RegisterScrapeProbe();

  UserIdentity identity_;
  ErrorPolicy error_policy_;
  OfferPolicy offer_policy_;
  DeadLetterQueue* dead_letters_;
  /// When mining is enabled the hub (and any RetryingSink) emits into
  /// this tap, which forwards to the caller's sink. Destroyed after the
  /// shards (declaration order), so workers never outlive it.
  std::unique_ptr<mine::MiningSink> mining_;
  std::unique_ptr<EmitHub> emit_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard staging buffers for OfferBatch's partition pass (indexed
  /// by shard). Producer thread only. Entries beyond staging_used_[i]
  /// are stale recycled records whose string capacities the partition
  /// pass reuses (see Shard::recycle).
  std::vector<RecordBatch> staging_;
  std::vector<std::size_t> staging_used_;
  bool finished_ = false;
  /// Probe handle from RegisterScrapeProbe (0 = none registered).
  std::size_t scrape_probe_id_ = 0;

  // Checkpoint/resume state. records_seen_ is producer-thread only.
  std::size_t queue_capacity_;
  obs::MetricRegistry* registry_;
  obs::Tracer tracer_;
  std::string heuristic_name_;  // registry name or "custom"
  TimeThresholds thresholds_;
  std::string resume_dir_;
  bool resume_external_replay_ = false;
  std::uint64_t records_seen_ = 0;
  std::uint64_t resume_skip_ = 0;
  /// Records covered by the resumed-from checkpoint when the replay is
  /// external (resume_with_external_replay): added into every manifest's
  /// records_seen so offsets stay monotonic across restarts.
  std::uint64_t resume_base_ = 0;
  std::uint64_t next_epoch_ = 1;
  std::string resumed_sink_state_;
  bool resumed_ = false;
  obs::Counter ckpt_written_;
  obs::Counter ckpt_bytes_;
  obs::Counter ckpt_resume_skipped_;
  obs::Histogram ckpt_latency_us_;
};

}  // namespace wum

#endif  // WUM_STREAM_ENGINE_H_
