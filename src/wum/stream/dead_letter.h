// Dead-letter channel for the fault-tolerant streaming layer: a bounded,
// thread-safe quarantine for the inputs a degraded engine refuses to die
// for — malformed CLF lines, records rejected by an operator or the
// sessionizer, sessions the sink refused after every retry, and records
// routed to a shard whose worker already failed.
//
// The queue keeps the *earliest* letters when it overflows (the first
// failures are the diagnostic ones) and counts what it had to drop, so
// accounting stays exact even under a quarantine storm. See
// docs/robustness.md for the schema and the accounting invariant.

#ifndef WUM_STREAM_DEAD_LETTER_H_
#define WUM_STREAM_DEAD_LETTER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/common/status.h"

namespace wum {

/// One quarantined input plus the context needed to triage or replay it.
struct DeadLetter {
  /// Which stage of the processing chain refused the input.
  enum class Stage {
    kParse,      // malformed CLF line (record absent, `detail` = raw line)
    kRecord,     // operator/sessionizer rejected the record in-shard
    kEmit,       // sink refused a completed session after every retry
    kShardDead,  // record routed to (or drained from) a failed shard
  };

  Stage stage = Stage::kRecord;
  /// Shard that quarantined the input; 0 for pre-engine (parse) letters.
  std::size_t shard = 0;
  /// The failure that caused the quarantine (never OK).
  Status reason;
  /// The offending record, for record-granularity stages.
  std::optional<LogRecord> record;
  /// Stage-specific context: the raw line (kParse), or the user key of
  /// the lost session (kEmit).
  std::string detail;
  /// How many accepted records this letter accounts for: 1 for
  /// record-granularity letters, the session length for kEmit. Summing
  /// this across letters keeps per-record accounting exact even when a
  /// whole session is lost at once.
  std::uint64_t records_covered = 1;
};

/// "kParse" / "kRecord" / "kEmit" / "kShardDead", for reports and logs.
std::string_view DeadLetterStageName(DeadLetter::Stage stage);

/// Point-in-time copy of a DeadLetterQueue, as captured by Snapshot and
/// persisted by the checkpoint layer (wum/ckpt). Restore() reinstates
/// it wholesale so resumed accounting matches the checkpointed run.
struct DeadLetterQueueSnapshot {
  std::vector<DeadLetter> letters;
  std::uint64_t total_offered = 0;
  std::uint64_t records_covered = 0;
  std::uint64_t overflow_dropped = 0;
};

/// Bounded, thread-safe FIFO of DeadLetters. Producers (shard workers,
/// the parser, the emit path) call Offer concurrently; the caller drains
/// from any thread, during or after the run. When full, the newest
/// letter is dropped (the earliest failures are kept) and counted in
/// overflow_dropped() — total_offered()/records_covered() still include
/// it, so accounting never depends on the retention capacity.
class DeadLetterQueue {
 public:
  explicit DeadLetterQueue(std::size_t capacity = 1024);

  DeadLetterQueue(const DeadLetterQueue&) = delete;
  DeadLetterQueue& operator=(const DeadLetterQueue&) = delete;

  /// Quarantines one letter. Returns false (counting the drop) when the
  /// queue is at capacity.
  bool Offer(DeadLetter letter);

  /// Removes and returns every retained letter in arrival order.
  std::vector<DeadLetter> Drain();

  /// Letters currently retained.
  std::size_t size() const;

  /// Every Offer ever made, including overflow-dropped ones.
  std::uint64_t total_offered() const;

  /// Sum of `records_covered` across every Offer ever made.
  std::uint64_t records_covered() const;

  /// Offers refused because the queue was full.
  std::uint64_t overflow_dropped() const;

  /// Copies the retained letters and every counter, without draining.
  /// Taken by StreamEngine::Checkpoint while the engine is quiescent.
  DeadLetterQueueSnapshot Snapshot() const;

  /// Replaces the queue's contents and counters with `snapshot`. The
  /// letters were accepted once already, so capacity is not re-applied.
  void Restore(DeadLetterQueueSnapshot snapshot);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<DeadLetter> letters_;
  std::uint64_t total_offered_ = 0;
  std::uint64_t records_covered_ = 0;
  std::uint64_t overflow_dropped_ = 0;
};

}  // namespace wum

#endif  // WUM_STREAM_DEAD_LETTER_H_
