#include "wum/stream/fault.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "wum/obs/log.h"

namespace wum {

bool IsShardFatal(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kFailedPrecondition:
      return true;
    default:
      return false;
  }
}

FaultSchedule FaultSchedule::Never() {
  return FaultSchedule(Kind::kNever);
}

FaultSchedule FaultSchedule::Always() {
  return FaultSchedule(Kind::kAlways);
}

FaultSchedule FaultSchedule::AtIndices(std::vector<std::uint64_t> indices) {
  FaultSchedule schedule(Kind::kIndices);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  schedule.indices_ = std::move(indices);
  return schedule;
}

FaultSchedule FaultSchedule::FirstN(std::uint64_t n) {
  FaultSchedule schedule(Kind::kFirstN);
  schedule.n_ = n;
  return schedule;
}

FaultSchedule FaultSchedule::EveryNth(std::uint64_t n) {
  FaultSchedule schedule(Kind::kEveryNth);
  schedule.n_ = n;
  return schedule;
}

FaultSchedule FaultSchedule::Seeded(std::uint64_t seed, double probability) {
  FaultSchedule schedule(Kind::kSeeded);
  schedule.probability_ = probability;
  schedule.rng_.emplace(seed);
  return schedule;
}

bool FaultSchedule::Next() {
  const std::uint64_t index = seen_++;
  bool fire = false;
  switch (kind_) {
    case Kind::kNever:
      break;
    case Kind::kAlways:
      fire = true;
      break;
    case Kind::kIndices:
      fire = std::binary_search(indices_.begin(), indices_.end(), index);
      break;
    case Kind::kFirstN:
      fire = index < n_;
      break;
    case Kind::kEveryNth:
      fire = n_ != 0 && (index + 1) % n_ == 0;
      break;
    case Kind::kSeeded:
      fire = rng_->Bernoulli(probability_);
      break;
  }
  if (fire) ++fired_;
  return fire;
}

std::chrono::microseconds RetryBackoff(const RetryOptions& options,
                                       int retry_index) {
  double delay = static_cast<double>(options.initial_backoff.count());
  for (int i = 1; i < retry_index; ++i) delay *= options.multiplier;
  const double cap = static_cast<double>(options.max_backoff.count());
  if (delay > cap) delay = cap;
  return std::chrono::microseconds(static_cast<std::int64_t>(delay));
}

RetryingSink::RetryingSink(SessionSink* sink, RetryOptions options,
                           obs::Counter retries_mirror, obs::Tracer tracer,
                           std::uint64_t trace_shard)
    : sink_(sink),
      options_(std::move(options)),
      retries_mirror_(retries_mirror),
      tracer_(tracer),
      trace_shard_(trace_shard) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

Status RetryingSink::Accept(const std::string& user_key, Session session) {
  Status status;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    // First attempts are the happy path and are covered by the "emit"
    // span; only re-attempts (backoff wait + delivery) get their own.
    obs::ScopedSpan span(attempt > 1 ? tracer_ : obs::Tracer(), "retry",
                         trace_shard_, static_cast<std::uint64_t>(attempt));
    if (attempt > 1) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_mirror_.Increment();
      const std::chrono::microseconds delay =
          RetryBackoff(options_, attempt - 1);
      obs::LogWarn("sink.retry")("shard", trace_shard_)("attempt", attempt)(
          "delay_us", static_cast<std::uint64_t>(delay.count()))(
          "error", status.ToString());
      if (options_.sleep != nullptr) {
        options_.sleep(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }
    // The final attempt hands the session over; earlier ones keep a copy
    // to retry with.
    if (attempt == options_.max_attempts) {
      status = sink_->Accept(user_key, std::move(session));
    } else {
      status = sink_->Accept(user_key, session);
    }
    if (status.ok()) return status;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  obs::LogError("sink.exhausted")("shard", trace_shard_)(
      "attempts", options_.max_attempts)("error", status.ToString());
  return status;
}

Status FaultInjectingOperator::Accept(const LogRecord& record) {
  if (schedule_.Next()) {
    switch (mode_) {
      case Mode::kDrop:
        return Status::OK();
      case Mode::kReject:
        return Status::InvalidArgument("injected record fault");
      case Mode::kShardFatal:
        return Status::Internal("injected shard fault");
    }
  }
  return Emit(record);
}

FlakySink::FlakySink(SessionSink* wrapped, FaultSchedule schedule,
                     Status failure)
    : wrapped_(wrapped),
      schedule_(std::move(schedule)),
      failure_(std::move(failure)) {}

Status FlakySink::Accept(const std::string& user_key, Session session) {
  bool fail;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fail = schedule_.Next();
  }
  if (fail) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return failure_;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return wrapped_->Accept(user_key, std::move(session));
}

}  // namespace wum
