// Reactive processing pipeline (the paper's title subject): log records
// flow through a chain of push-based operators into per-user incremental
// sessionizers that emit sessions as soon as they close, instead of
// waiting for an offline batch pass.
//
//   RecordSource -> [RecordOperator ...] -> IncrementalSessionizer
//                                               -> SessionSink
//
// All stages run on the caller's thread by default; ThreadedDriver
// (threaded_driver.h) decouples the source from the pipeline with a
// bounded queue when ingestion and processing should overlap.

#ifndef WUM_STREAM_PIPELINE_H_
#define WUM_STREAM_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// Unit of queue hand-off between a producer and a shard worker. The
/// shard queue's capacity is counted in records (batch weight), so
/// batching changes how often the queue mutex is taken — once per batch
/// instead of once per record — without changing backpressure semantics.
using RecordBatch = std::vector<LogRecord>;

/// Consumer of a record stream.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Processes one record. A non-OK status aborts the stream.
  virtual Status Accept(const LogRecord& record) = 0;

  /// Signals end-of-stream; implementations flush buffered state.
  /// Called exactly once, after the last Accept.
  virtual Status Finish() = 0;
};

/// A record-to-record stage: consumes records, forwards (a subset /
/// transformation) downstream.
class RecordOperator : public RecordSink {
 public:
  /// `downstream` must outlive the operator.
  void set_downstream(RecordSink* downstream) { downstream_ = downstream; }

  Status Finish() override {
    return downstream_ == nullptr ? Status::OK() : downstream_->Finish();
  }

 protected:
  Status Emit(const LogRecord& record) {
    return downstream_ == nullptr ? Status::OK()
                                  : downstream_->Accept(record);
  }

 private:
  RecordSink* downstream_ = nullptr;
};

/// Consumer of completed sessions, keyed by the owning user key (the
/// client IP, or the IP+User-Agent composite when the producing stage
/// identifies users that way — see UserKeyFor in clf/user_partitioner.h).
class SessionSink {
 public:
  virtual ~SessionSink() = default;
  virtual Status Accept(const std::string& client_ip, Session session) = 0;
};

/// SessionSink that appends into a vector (tests, examples).
class CollectingSessionSink : public SessionSink {
 public:
  struct Entry {
    std::string client_ip;
    Session session;
  };

  Status Accept(const std::string& client_ip, Session session) override {
    entries_.push_back(Entry{client_ip, std::move(session)});
    return Status::OK();
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// SessionSink invoking a callback (adapters for user code).
class CallbackSessionSink : public SessionSink {
 public:
  using Callback = std::function<Status(const std::string&, Session)>;

  explicit CallbackSessionSink(Callback callback)
      : callback_(std::move(callback)) {}

  Status Accept(const std::string& client_ip, Session session) override {
    return callback_(client_ip, std::move(session));
  }

 private:
  Callback callback_;
};

/// Owns a chain of operators terminating in a caller-provided sink and
/// counts throughput.
class Pipeline : public RecordSink {
 public:
  /// `terminal` must outlive the pipeline.
  explicit Pipeline(RecordSink* terminal);

  /// Inserts `op` at the end of the operator chain (before the terminal
  /// sink). Ownership transfers to the pipeline.
  void Append(std::unique_ptr<RecordOperator> op);

  Status Accept(const LogRecord& record) override;
  Status Finish() override;

  std::uint64_t records_in() const { return records_in_; }

 private:
  RecordSink* Entry();

  RecordSink* terminal_;
  std::vector<std::unique_ptr<RecordOperator>> operators_;
  std::uint64_t records_in_ = 0;
  bool finished_ = false;
};

}  // namespace wum

#endif  // WUM_STREAM_PIPELINE_H_
