#include "wum/stream/engine.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "wum/ckpt/checkpoint.h"
#include "wum/mine/path_miner.h"
#include "wum/obs/log.h"
#include "wum/stream/heuristic_registry.h"
#include "wum/stream/operators.h"
#include "wum/stream/threaded_driver.h"
#include "wum/topology/web_graph.h"

namespace wum {
// Named (not anonymous) so StreamEngine::Shard, which has external
// linkage, can hold members of this type without -Wsubobject-linkage.
namespace engine_internal {

/// Pass-through stage bumping an atomic counter (and, when enabled, a
/// registry counter mirroring it), so shard progress is observable from
/// other threads while the worker runs.
class CountingSink : public RecordSink {
 public:
  CountingSink(std::atomic<std::uint64_t>* counter, RecordSink* next,
               obs::Counter mirror = {})
      : counter_(counter), next_(next), mirror_(mirror) {}

  Status Accept(const LogRecord& record) override {
    counter_->fetch_add(1, std::memory_order_relaxed);
    mirror_.Increment();
    return next_->Accept(record);
  }

  Status Finish() override { return next_->Finish(); }

 private:
  std::atomic<std::uint64_t>* counter_;
  RecordSink* next_;
  obs::Counter mirror_;
};

}  // namespace engine_internal

EngineOptions& EngineOptions::add_filter(FilterFactory factory) {
  return add_operator([factory = std::move(factory)]() {
    return std::make_unique<FilterOperator>(factory());
  });
}

std::string EngineStatsToString(const EngineStats& stats) {
  return "records_in=" + std::to_string(stats.records_in) +
         " dropped=" + std::to_string(stats.records_dropped) +
         " sessions=" + std::to_string(stats.sessions_emitted) +
         " blocked_enqueues=" + std::to_string(stats.blocked_enqueues) +
         " queue_high_watermark=" +
         std::to_string(stats.queue_high_watermark) +
         " dead_letters=" + std::to_string(stats.dead_letters) +
         " retries=" + std::to_string(stats.retries) +
         " shed=" + std::to_string(stats.records_shed);
}

/// Funnels every shard's emissions into the caller's sink one at a time.
/// Under kFailFast the first failure is sticky and shared by every shard
/// (every later emit — and the engine's Offer — returns it); under
/// kDegrade nothing sticks here: each emission stands alone and the
/// per-shard ShardEmit decides what a final failure means. When a shard
/// has a RetryingSink the attempts (and their backoff waits) run inside
/// the hub lock — when the shared sink is down, every shard is stalled
/// on it anyway.
class StreamEngine::EmitHub {
 public:
  EmitHub(SessionSink* sink, ErrorPolicy policy)
      : sink_(sink), policy_(policy) {}

  Status Emit(const std::string& user_key, Session session,
              RetryingSink* retrying) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (policy_ == ErrorPolicy::kFailFast && !first_error_.ok()) {
      return first_error_;
    }
    SessionSink* target =
        retrying != nullptr ? static_cast<SessionSink*>(retrying) : sink_;
    Status status = target->Accept(user_key, std::move(session));
    if (policy_ == ErrorPolicy::kFailFast && !status.ok()) {
      first_error_ = status;
    }
    return status;
  }

  Status first_error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_error_;
  }

 private:
  mutable std::mutex mutex_;
  SessionSink* sink_;
  ErrorPolicy policy_;
  Status first_error_;
};

/// Per-shard emission front: forwards to the hub (through the shard's
/// RetryingSink when configured), keeps the delivery counters that back
/// EngineStats::sessions_emitted, and — under kDegrade — turns a session
/// the sink refused after every retry into a dead letter instead of an
/// error, so the record path above never sees emission failures.
class StreamEngine::ShardEmit : public SessionSink {
 public:
  ShardEmit(StreamEngine* engine, Shard* shard, obs::Counter delivered_mirror)
      : engine_(engine), shard_(shard), delivered_mirror_(delivered_mirror) {}

  Status Accept(const std::string& user_key, Session session) override;

  /// Sessions successfully delivered to the caller's sink.
  std::uint64_t delivered_sessions() const {
    return delivered_sessions_.load(std::memory_order_relaxed);
  }
  /// Records inside those delivered sessions.
  std::uint64_t delivered_records() const {
    return delivered_records_.load(std::memory_order_relaxed);
  }
  /// Records inside sessions dead-lettered at this stage (kEmit).
  std::uint64_t quarantined_records() const {
    return quarantined_records_.load(std::memory_order_relaxed);
  }

  /// Reinstates checkpointed delivery counters (resume path; runs before
  /// the shard's worker exists).
  void RestoreCounters(std::uint64_t sessions, std::uint64_t records,
                       std::uint64_t quarantined) {
    delivered_sessions_.store(sessions, std::memory_order_relaxed);
    delivered_records_.store(records, std::memory_order_relaxed);
    quarantined_records_.store(quarantined, std::memory_order_relaxed);
  }

 private:
  StreamEngine* engine_;
  Shard* shard_;
  obs::Counter delivered_mirror_;
  std::atomic<std::uint64_t> delivered_sessions_{0};
  std::atomic<std::uint64_t> delivered_records_{0};
  std::atomic<std::uint64_t> quarantined_records_{0};
};

/// One worker shard. Members are declared upstream-last so destruction
/// joins the driver before tearing down the chain it feeds.
struct StreamEngine::Shard {
  std::size_t index = 0;

  std::atomic<std::uint64_t> offered{0};    // accepted by Offer
  std::atomic<std::uint64_t> processed{0};  // entered the operator chain
  std::atomic<std::uint64_t> delivered{0};  // reached the sessionizer
  std::atomic<std::uint64_t> dead_letters{0};  // records quarantined
  std::atomic<std::uint64_t> shed{0};          // records shed by Offer

  obs::Counter records_in;  // mirrors `offered` when metrics are enabled
  obs::Counter dead_letter_mirror;
  obs::Counter shed_mirror;

  // Accept-time stamp (NowMicros) of the batch the worker is currently
  // draining; 0 between batches and during the Finish flush, so stale
  // stamps never pollute the latency histogram. Written by the driver's
  // on_batch_start/on_batch_drained hooks (worker thread), read by
  // ShardEmit::Accept — same thread while streaming, the producer
  // thread during Finish, hence the atomic.
  std::atomic<double> batch_accept_stamp_us{0.0};
  // Ingest-to-emit latency: batch accept at the engine's front door to
  // session delivery at the emit hub.
  obs::Histogram ingest_to_emit_latency_us;

  // Flush/finish failure of this shard, for ShardHealth.
  std::mutex health_mutex;
  Status finish_error;

  // Drained batches returned by the worker for reuse: their records'
  // string capacities let the producer stage the next batch without
  // per-field reallocation (see OfferBatch). Bounded; excess batches
  // are simply destroyed. Declared before `driver` so the recycling
  // hook can never outlive the pool.
  std::mutex recycle_mutex;
  std::vector<RecordBatch> recycle;
  static constexpr std::size_t kRecycleDepth = 8;

  std::unique_ptr<RetryingSink> retrying;  // wraps the caller sink; may
                                           // be null (no set_retry)
  std::unique_ptr<ShardEmit> emit;         // -> hub -> retrying/sink
  std::unique_ptr<SessionizeSink> sessionize;  // -> emit
  std::unique_ptr<engine_internal::CountingSink> tail;  // -> sessionize
  std::unique_ptr<Pipeline> pipeline;  // operators -> tail
  std::unique_ptr<engine_internal::CountingSink> head;  // -> pipeline
  std::unique_ptr<ThreadedDriver> driver;
};

Status StreamEngine::ShardEmit::Accept(const std::string& user_key,
                                       Session session) {
  const std::uint64_t covered =
      static_cast<std::uint64_t>(session.requests.size());
  Status status;
  {
    // seq = sessions delivered by this shard before this one.
    obs::ScopedSpan span(engine_->tracer_, "emit", shard_->index,
                         delivered_sessions_.load(std::memory_order_relaxed));
    status = engine_->emit_->Emit(user_key, std::move(session),
                                  shard_->retrying.get());
  }
  if (status.ok()) {
    delivered_sessions_.fetch_add(1, std::memory_order_relaxed);
    delivered_records_.fetch_add(covered, std::memory_order_relaxed);
    delivered_mirror_.Increment();
    if (shard_->ingest_to_emit_latency_us.enabled()) {
      const double stamp =
          shard_->batch_accept_stamp_us.load(std::memory_order_relaxed);
      if (stamp > 0.0) {
        shard_->ingest_to_emit_latency_us.Observe(obs::internal::NowMicros() -
                                                  stamp);
      }
    }
    return status;
  }
  if (engine_->error_policy_ == ErrorPolicy::kFailFast) return status;
  // kDegrade: the session is lost to the sink but not to accounting —
  // quarantine a letter covering its records and keep the shard alive.
  quarantined_records_.fetch_add(covered, std::memory_order_relaxed);
  DeadLetter letter;
  letter.stage = DeadLetter::Stage::kEmit;
  letter.shard = shard_->index;
  letter.reason = std::move(status);
  letter.detail = user_key;
  letter.records_covered = covered;
  engine_->Quarantine(*shard_, std::move(letter));
  return Status::OK();
}

Status EngineOptions::Validate() const {
  if (num_shards_ == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (queue_capacity_ == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (retry_.has_value() && retry_->max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  switch (selection_) {
    case Selection::kUnset:
      return Status::InvalidArgument(
          "choose a heuristic: use_heuristic(name) / use_duration / "
          "use_page_stay / use_navigation / use_smart_sra / use_custom");
    case Selection::kNamed: {
      const HeuristicRegistry::Entry* entry =
          HeuristicRegistry::Default().Find(heuristic_name_);
      if (entry == nullptr) {
        return Status::NotFound(
            "unknown heuristic '" + heuristic_name_ + "' (expected " +
            HeuristicRegistry::Default().NamesForUsage() + ")");
      }
      if (entry->needs_graph && graph_ == nullptr) {
        return Status::InvalidArgument("heuristic '" + heuristic_name_ +
                                       "' needs a web graph: call use_graph");
      }
      break;
    }
    case Selection::kCustom:
      if (custom_factory_ == nullptr) {
        return Status::InvalidArgument(
            "use_custom requires a sessionizer factory");
      }
      break;
  }
  if (num_pages_ == 0 && graph_ == nullptr) {
    return Status::InvalidArgument(
        "set_num_pages is required (no graph to derive it from)");
  }
  // Shedding without a dead-letter channel silently destroys records —
  // the conservation invariant (emitted + dead-lettered == accepted)
  // cannot hold, so refuse the configuration outright.
  if (offer_policy_ == OfferPolicy::kShed && dead_letters_ == nullptr) {
    return Status::InvalidArgument(
        "OfferPolicy::kShed requires a dead-letter budget: attach a "
        "DeadLetterQueue via set_dead_letters so shed records stay "
        "accounted for");
  }
  if (resume_external_replay_ && resume_dir_.empty()) {
    return Status::InvalidArgument(
        "resume_with_external_replay requires resume_from");
  }
  if (mining_.has_value()) {
    WUM_RETURN_NOT_OK(mine::ValidateMinerOptions(*mining_));
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    EngineOptions options, SessionSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("StreamEngine requires a SessionSink");
  }
  WUM_RETURN_NOT_OK(options.Validate());
  // Resolve the heuristic up front (the constructor cannot fail). The
  // factory is invoked concurrently from shard workers; the registry's
  // factories only read the (const) graph and copied thresholds.
  UserSessionizerFactory factory;
  switch (options.selection_) {
    case EngineOptions::Selection::kUnset:
      return Status::Internal("unreachable: Validate rejects kUnset");
    case EngineOptions::Selection::kNamed: {
      HeuristicContext context;
      context.graph = options.graph_;
      context.thresholds = options.thresholds_;
      WUM_ASSIGN_OR_RETURN(factory,
                           HeuristicRegistry::Default().CreateIncremental(
                               options.heuristic_name_, context));
      break;
    }
    case EngineOptions::Selection::kCustom:
      factory = options.custom_factory_;
      break;
  }
  if (options.num_pages_ == 0 && options.graph_ != nullptr) {
    options.num_pages_ = options.graph_->num_pages();
  }
  // The mining tap slots in front of the caller's sink: the hub (and
  // any RetryingSink) emits into it, and it forwards unchanged, so the
  // hot path gains nothing but one buffered page-sequence per delivery.
  std::unique_ptr<mine::MiningSink> mining;
  if (options.mining_.has_value()) {
    mining = std::make_unique<mine::MiningSink>(
        sink, *options.mining_, options.graph_, options.metrics_);
    sink = mining.get();
  }
  // Two-phase construction: build the shard chains without workers so a
  // checkpoint restore never races a live thread, then start them.
  std::unique_ptr<StreamEngine> engine(
      new StreamEngine(std::move(options), std::move(factory), sink));
  engine->mining_ = std::move(mining);
  if (!engine->resume_dir_.empty()) {
    WUM_RETURN_NOT_OK(engine->RestoreFrom(engine->resume_dir_));
  }
  engine->StartWorkers();
  engine->RegisterScrapeProbe();
  return engine;
}

void StreamEngine::RegisterScrapeProbe() {
  if (registry_ == nullptr) return;
  // Every handle the probe writes is acquired here, up front — the
  // probe body must never touch the registry (AddProbe contract). The
  // raw shard pointers are safe: the destructor removes the probe
  // before any member dies.
  struct ShardProbe {
    Shard* shard;
    obs::Gauge watermark;
    obs::Gauge queue_depth;
  };
  std::vector<ShardProbe> shard_probes;
  shard_probes.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::string prefix =
        "engine.shard" + std::to_string(shard->index) + ".";
    shard_probes.push_back(
        {shard.get(), registry_->GetGauge(prefix + "watermark_seconds"),
         registry_->GetGauge(prefix + "queue_depth")});
  }
  mine::MiningSink* mining = mining_.get();
  obs::Gauge mining_depth = mining != nullptr
                                ? registry_->GetGauge("mining.queue_depth")
                                : obs::Gauge();
  obs::Gauge lag = registry_->GetGauge("engine.watermark_lag_seconds");
  obs::Gauge skew = registry_->GetGauge("engine.watermark_skew_seconds");
  scrape_probe_id_ = registry_->AddProbe([shard_probes =
                                              std::move(shard_probes),
                                          mining, mining_depth, lag,
                                          skew]() mutable {
    std::uint64_t min_watermark = 0;
    std::uint64_t max_watermark = 0;
    for (ShardProbe& probe : shard_probes) {
      const std::uint64_t watermark =
          probe.shard->sessionize->watermark_seconds();
      probe.watermark.Set(watermark);
      probe.queue_depth.Set(probe.shard->driver != nullptr
                                ? probe.shard->driver->queue_depth()
                                : 0);
      if (watermark == 0) continue;  // shard has absorbed nothing yet
      if (min_watermark == 0 || watermark < min_watermark) {
        min_watermark = watermark;
      }
      if (watermark > max_watermark) max_watermark = watermark;
    }
    if (mining != nullptr) mining_depth.Set(mining->queued_batches());
    // Lag is measured against the *slowest* shard (min watermark) so it
    // never understates how far behind the pipeline is; skew is the
    // fastest-to-slowest spread. Both undefined until event time exists.
    if (min_watermark == 0) return;
    const std::uint64_t now = obs::internal::NowEpochSeconds();
    lag.Set(now > min_watermark ? now - min_watermark : 0);
    skew.Set(max_watermark - min_watermark);
  });
}

StreamEngine::StreamEngine(EngineOptions options,
                           UserSessionizerFactory factory, SessionSink* sink)
    : identity_(options.identity_),
      error_policy_(options.error_policy_),
      offer_policy_(options.offer_policy_),
      dead_letters_(options.dead_letters_),
      emit_(std::make_unique<EmitHub>(sink, options.error_policy_)),
      queue_capacity_(options.queue_capacity_),
      registry_(options.metrics_),
      tracer_(obs::TracerIn(options.trace_)),
      heuristic_name_(options.selection_ ==
                              EngineOptions::Selection::kNamed
                          ? options.heuristic_name_
                          : "custom"),
      thresholds_(options.thresholds_),
      resume_dir_(options.resume_dir_),
      resume_external_replay_(options.resume_external_replay_),
      ckpt_written_(obs::CounterIn(options.metrics_,
                                   "ckpt.checkpoints_written")),
      ckpt_bytes_(obs::CounterIn(options.metrics_, "ckpt.bytes_written")),
      ckpt_resume_skipped_(
          obs::CounterIn(options.metrics_, "ckpt.records_resume_skipped")),
      ckpt_latency_us_(
          obs::HistogramIn(options.metrics_, "ckpt.write_latency_us")) {
  // With a null registry every handle below is disabled: updates are a
  // predictable branch and the latency timers never read the clock, so
  // an uninstrumented engine does the same atomic work as before the
  // observability layer existed.
  obs::MetricRegistry* registry = options.metrics_;
  shards_.reserve(options.num_shards_);
  for (std::size_t i = 0; i < options.num_shards_; ++i) {
    const std::string prefix = "engine.shard" + std::to_string(i) + ".";
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->records_in = obs::CounterIn(registry, prefix + "records_in");
    shard->dead_letter_mirror =
        obs::CounterIn(registry, prefix + "dead_letter");
    shard->shed_mirror = obs::CounterIn(registry, prefix + "shed");
    shard->ingest_to_emit_latency_us =
        obs::HistogramIn(registry, prefix + "ingest_to_emit_latency_us");
    if (options.retry_.has_value()) {
      shard->retrying = std::make_unique<RetryingSink>(
          sink, *options.retry_, obs::CounterIn(registry, prefix + "retries"),
          tracer_, i);
    }
    shard->emit = std::make_unique<ShardEmit>(
        this, shard.get(),
        obs::CounterIn(registry, prefix + "sessions_emitted"));
    SessionizeMetrics sessionize_metrics;
    sessionize_metrics.skipped_non_page_urls =
        obs::CounterIn(registry, prefix + "skipped_non_page_urls");
    sessionize_metrics.sessionize_latency_us =
        obs::HistogramIn(registry, prefix + "sessionize_latency_us");
    sessionize_metrics.tracer = tracer_;
    sessionize_metrics.trace_shard = i;
    shard->sessionize = std::make_unique<SessionizeSink>(
        factory, shard->emit.get(), options.num_pages_, options.identity_,
        std::move(sessionize_metrics));
    shard->tail = std::make_unique<engine_internal::CountingSink>(
        &shard->delivered, shard->sessionize.get(),
        obs::CounterIn(registry, prefix + "records_delivered"));
    shard->pipeline = std::make_unique<Pipeline>(shard->tail.get());
    for (const EngineOptions::OperatorFactory& make_operator :
         options.operator_factories_) {
      shard->pipeline->Append(make_operator());
    }
    shard->head = std::make_unique<engine_internal::CountingSink>(
        &shard->processed, shard->pipeline.get(),
        obs::CounterIn(registry, prefix + "records_processed"));
    shards_.push_back(std::move(shard));
  }
}

void StreamEngine::StartWorkers() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    const std::string prefix =
        "engine.shard" + std::to_string(shard->index) + ".";
    DriverMetrics driver_metrics;
    driver_metrics.blocked_enqueues =
        obs::CounterIn(registry_, prefix + "blocked_enqueues");
    driver_metrics.queue_high_watermark =
        obs::GaugeIn(registry_, prefix + "queue_high_watermark");
    driver_metrics.drain_latency_us =
        obs::HistogramIn(registry_, prefix + "drain_latency_us");
    driver_metrics.blocked_wait_us =
        obs::CounterIn(registry_, prefix + "blocked_wait_us");
    driver_metrics.tracer = tracer_;
    driver_metrics.trace_shard = shard->index;
    DriverHooks hooks;
    Shard* recycle_shard = shard.get();
    hooks.on_batch_drained = [recycle_shard](RecordBatch&& batch) {
      // Also the end-of-batch mark for latency stamping: emissions from
      // here on (the next batch not yet started, or the Finish flush)
      // have no meaningful accept time.
      recycle_shard->batch_accept_stamp_us.store(0.0,
                                                 std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(recycle_shard->recycle_mutex);
      if (recycle_shard->recycle.size() < Shard::kRecycleDepth) {
        recycle_shard->recycle.push_back(std::move(batch));
      }
    };
    if (registry_ != nullptr) {
      // Installing the hook is what switches on producer-side accept
      // stamping in the driver, so an uninstrumented engine never reads
      // the clock per batch.
      hooks.on_batch_start = [recycle_shard](double accept_stamp_us) {
        recycle_shard->batch_accept_stamp_us.store(accept_stamp_us,
                                                   std::memory_order_relaxed);
      };
    }
    if (error_policy_ == ErrorPolicy::kDegrade) {
      // Failure-domain hooks: record-level errors quarantine only the
      // record; shard-fatal errors quarantine it too (the dying shard
      // cannot process it) and then let the sticky error kill the shard.
      Shard* shard_ptr = shard.get();
      hooks.on_record_error = [this, shard_ptr](const LogRecord& record,
                                                const Status& status) {
        DeadLetter letter;
        letter.shard = shard_ptr->index;
        letter.reason = status;
        letter.record = record;
        if (IsShardFatal(status)) {
          letter.stage = DeadLetter::Stage::kShardDead;
          Quarantine(*shard_ptr, std::move(letter));
          return false;  // the shard dies
        }
        letter.stage = DeadLetter::Stage::kRecord;
        Quarantine(*shard_ptr, std::move(letter));
        return true;  // quarantined; the shard lives on
      };
      hooks.on_discard = [this, shard_ptr](const LogRecord& record,
                                           const Status& status) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kShardDead;
        letter.shard = shard_ptr->index;
        letter.reason = status;
        letter.record = record;
        Quarantine(*shard_ptr, std::move(letter));
      };
    }
    shard->driver = std::make_unique<ThreadedDriver>(
        shard->head.get(), queue_capacity_, std::move(driver_metrics),
        std::move(hooks));
  }
}

StreamEngine::~StreamEngine() {
  // The scrape probe holds raw pointers into this engine; detach it
  // before anything it reads starts dying (the registry, caller-owned,
  // usually outlives the engine).
  if (scrape_probe_id_ != 0) registry_->RemoveProbe(scrape_probe_id_);
  if (!finished_) (void)Finish();
}

std::size_t StreamEngine::ShardIndexFor(const LogRecordRef& record) const {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(
      UserHashFor(record.client_ip, record.user_agent, identity_) %
      shards_.size());
}

void StreamEngine::Quarantine(Shard& shard, DeadLetter letter) {
  shard.dead_letters.fetch_add(letter.records_covered,
                               std::memory_order_relaxed);
  shard.dead_letter_mirror.Increment(letter.records_covered);
  // seq = records quarantined by this shard so far (the letter's own
  // records included). Rate limiting keeps a shard-death drain from
  // flooding the log with one warning per discarded record.
  tracer_.Instant("dead_letter", shard.index,
                  shard.dead_letters.load(std::memory_order_relaxed));
  obs::LogWarn("engine.quarantine")("shard", shard.index)(
      "stage", DeadLetterStageName(letter.stage))(
      "records", letter.records_covered)("error", letter.reason.ToString());
  if (dead_letters_ != nullptr) dead_letters_->Offer(std::move(letter));
}

Status StreamEngine::OfferBatch(std::span<const LogRecordRef> batch) {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  while (!batch.empty() && records_seen_ < resume_skip_) {
    // Resume replay: the checkpoint this engine restored from already
    // covers this record — count it consumed and move on. The skip is
    // per record, so a batch straddling the resume offset replays only
    // its uncovered suffix.
    ++records_seen_;
    ckpt_resume_skipped_.Increment();
    batch = batch.subspan(1);
  }
  if (batch.empty()) return Status::OK();
  if (error_policy_ == ErrorPolicy::kFailFast) {
    // A sink failure in any shard stops ingest for all of them.
    WUM_RETURN_NOT_OK(emit_->first_error());
  }
  if (staging_.size() < shards_.size()) {
    staging_.resize(shards_.size());
    staging_used_.resize(shards_.size(), 0);
  }
  // Refill empty staging slots from the worker's recycle pool: a
  // drained batch's records keep their string capacities, so the
  // partition pass below overwrites them in place instead of
  // allocating fresh strings for every field.
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    RecordBatch& staged = staging_[shard_ptr->index];
    if (!staged.empty()) continue;  // still holds a pool
    std::lock_guard<std::mutex> lock(shard_ptr->recycle_mutex);
    if (!shard_ptr->recycle.empty()) {
      staged = std::move(shard_ptr->recycle.back());
      shard_ptr->recycle.pop_back();
    }
  }
  // Partition pass: route every ref and materialize it into its shard's
  // staging batch — the one point where the viewed bytes are copied.
  // staging_used_ counts the records staged this batch; entries beyond
  // it are stale recycled records serving as capacity pool.
  // seq = 0-based input offset of each record for the routing instant;
  // the per-shard enqueue span carries the offset of the first record
  // not yet counted (== records_seen_ at hand-off, matching the
  // single-record path at batch size 1).
  std::uint64_t seq = records_seen_;
  for (const LogRecordRef& ref : batch) {
    const std::size_t index = ShardIndexFor(ref);
    tracer_.Instant("partition", shards_[index]->index, seq++);
    RecordBatch& staged = staging_[index];
    std::size_t& used = staging_used_[index];
    if (used < staged.size()) {
      ref.MaterializeInto(&staged[used]);
    } else {
      staged.push_back(ref.Materialize());
    }
    ++used;
  }
  // One queue hand-off per shard that received records this batch.
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    RecordBatch& staged = staging_[shard.index];
    std::size_t& used = staging_used_[shard.index];
    if (used == 0) continue;
    const std::uint64_t count = used;
    staged.resize(used);  // drop any stale pool tail before hand-off
    Status status;
    {
      obs::ScopedSpan span(tracer_, "enqueue", shard.index, records_seen_);
      if (offer_policy_ == OfferPolicy::kShed) {
        bool accepted = false;
        status = shard.driver->TryOfferBatch(&staged, &accepted);
        if (status.ok() && !accepted) {
          // Shedding is per hand-off: the whole sub-batch is dropped
          // when the shard queue is full (at batch size 1 this is
          // exactly the historical per-record shed). The shed records
          // stay in the staging slot as capacity pool.
          shard.shed.fetch_add(count, std::memory_order_relaxed);
          shard.shed_mirror.Increment(count);
          records_seen_ += count;
          used = 0;
          continue;
        }
      } else {
        status = shard.driver->OfferBatch(&staged);
      }
    }
    if (!status.ok()) {
      if (error_policy_ == ErrorPolicy::kFailFast) {
        // The failing sub-batch's records are not counted consumed —
        // same as the historical Offer returning before ++records_seen_.
        // Staged records of untried shards are dropped with the error.
        for (RecordBatch& pending : staging_) pending.clear();
        for (std::size_t& pending_used : staging_used_) pending_used = 0;
        return status;
      }
      // kDegrade: the records were routed to a dead shard — quarantine
      // them and keep the producer (and the other shards) going.
      for (LogRecord& record : staged) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kShardDead;
        letter.shard = shard.index;
        letter.reason = status;
        letter.record = std::move(record);
        Quarantine(shard, std::move(letter));
      }
      records_seen_ += count;
      staged.clear();
      used = 0;
      continue;
    }
    shard.offered.fetch_add(count, std::memory_order_relaxed);
    shard.records_in.Increment(count);
    records_seen_ += count;
    staged.clear();  // moved-from by the hand-off; normalize to empty
    used = 0;
  }
  return Status::OK();
}

Status StreamEngine::Offer(const LogRecord& record) {
  const LogRecordRef ref = ViewOf(record);
  return OfferBatch(std::span<const LogRecordRef>(&ref, 1));
}

Status StreamEngine::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  finished_ = true;
  Status first_shard_error;
  for (std::unique_ptr<Shard>& shard : shards_) {
    // Null drivers only exist when Create bailed out mid-restore and is
    // tearing the half-built engine down again.
    if (shard->driver == nullptr) continue;
    Status status = shard->driver->Finish();
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(shard->health_mutex);
        shard->finish_error = status;
      }
      if (first_shard_error.ok()) first_shard_error = std::move(status);
    }
  }
  if (error_policy_ == ErrorPolicy::kDegrade) {
    // A dead shard never flushed: records absorbed into its open
    // per-user session state were neither delivered nor quarantined yet.
    // Cover them with one letter per shard so the accounting invariant
    // (delivered + dead-lettered == absorbed) holds even after a kill.
    for (std::unique_ptr<Shard>& shard : shards_) {
      const std::uint64_t absorbed = shard->sessionize->records_absorbed();
      const std::uint64_t settled = shard->emit->delivered_records() +
                                    shard->emit->quarantined_records();
      if (absorbed > settled) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kShardDead;
        letter.shard = shard->index;
        letter.reason = shard->driver != nullptr && shard->driver->failed()
                            ? shard->driver->first_error()
                            : Status::Internal("open session state lost");
        letter.detail = "open session state lost";
        letter.records_covered = absorbed - settled;
        Quarantine(*shard, std::move(letter));
      }
    }
    // Degradation is reported through the dead-letter channel,
    // ShardHealth() and the stats — not as an engine-wide error.
    return Status::OK();
  }
  // Prefer the sink's error: it is the root cause when shards failed
  // because emission was already poisoned.
  WUM_RETURN_NOT_OK(emit_->first_error());
  return first_shard_error;
}

EngineStats StreamEngine::SnapshotShard(const Shard& shard) const {
  EngineStats stats;
  stats.records_in = shard.offered.load(std::memory_order_relaxed);
  const std::uint64_t processed =
      shard.processed.load(std::memory_order_relaxed);
  const std::uint64_t delivered =
      shard.delivered.load(std::memory_order_relaxed);
  stats.records_dropped =
      processed - delivered + shard.sessionize->skipped_non_page_urls();
  stats.sessions_emitted = shard.emit->delivered_sessions();
  if (shard.driver != nullptr) {
    stats.blocked_enqueues = shard.driver->blocked_enqueues();
    stats.queue_high_watermark = shard.driver->queue_high_watermark();
  }
  stats.dead_letters = shard.dead_letters.load(std::memory_order_relaxed);
  stats.retries = shard.retrying != nullptr ? shard.retrying->retries() : 0;
  stats.records_shed = shard.shed.load(std::memory_order_relaxed);
  return stats;
}

std::vector<EngineStats> StreamEngine::ShardStats() const {
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    stats.push_back(SnapshotShard(*shard));
  }
  return stats;
}

EngineStats StreamEngine::TotalStats() const {
  EngineStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += SnapshotShard(*shard);
  }
  return total;
}

namespace {

/// Manifest rendering of UserIdentity (part of the resume fingerprint).
std::string IdentityName(UserIdentity identity) {
  return identity == UserIdentity::kClientIpAndUserAgent ? "ip-ua" : "ip";
}

}  // namespace

Status StreamEngine::Checkpoint(const std::string& dir,
                                const SinkStateFn& sink_state_fn) {
  namespace fs = std::filesystem;
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  if (error_policy_ == ErrorPolicy::kFailFast) {
    // A poisoned engine has nothing consistent left to snapshot; the
    // previous committed checkpoint stays the resume point.
    WUM_RETURN_NOT_OK(emit_->first_error());
  }
  obs::ScopedTimer timer(ckpt_latency_us_);
  // seq = the epoch being committed; shard 0 stands in for "whole
  // engine" (the checkpoint spans every shard).
  obs::ScopedSpan span(tracer_, "checkpoint", 0, next_epoch_);
  // Quiescence barrier: every record ever offered must be fully settled
  // (processed, quarantined or discarded) before any state is read.
  for (std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->driver->WaitIdle();
    if (status.ok()) continue;
    if (error_policy_ == ErrorPolicy::kFailFast) return status;
    // kDegrade: the shard is dead but WaitIdle returned on the sticky
    // error — its worker may still be discarding queued records through
    // the quarantine hook. Wait for the queue to drain completely so
    // every loss is in the dead-letter accounting before the snapshot
    // below reads it; the frozen sessionizer is then captured as-is.
    shard->driver->WaitDrained();
  }
  std::string sink_state;
  if (sink_state_fn != nullptr) {
    WUM_ASSIGN_OR_RETURN(sink_state, sink_state_fn());
  }
  const std::uint64_t epoch = next_epoch_;
  const fs::path epoch_dir = fs::path(dir) / ckpt::EpochDirName(epoch);
  std::error_code ec;
  fs::remove_all(epoch_dir, ec);  // leftovers from an aborted attempt
  ec.clear();
  fs::create_directories(epoch_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + epoch_dir.string() + ": " +
                           ec.message());
  }
  std::uint64_t bytes = 0;
  const auto add_file_size = [&bytes](const std::string& path) {
    std::error_code size_ec;
    const std::uintmax_t size = fs::file_size(path, size_ec);
    if (!size_ec) bytes += static_cast<std::uint64_t>(size);
  };
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::string> frames;
    ckpt::Encoder header;
    header.PutUvarint(shard->index);
    header.PutUvarint(shard->offered.load(std::memory_order_relaxed));
    header.PutUvarint(shard->processed.load(std::memory_order_relaxed));
    header.PutUvarint(shard->delivered.load(std::memory_order_relaxed));
    header.PutUvarint(shard->dead_letters.load(std::memory_order_relaxed));
    header.PutUvarint(shard->shed.load(std::memory_order_relaxed));
    header.PutUvarint(shard->emit->delivered_sessions());
    header.PutUvarint(shard->emit->delivered_records());
    header.PutUvarint(shard->emit->quarantined_records());
    frames.push_back(header.Release());
    WUM_RETURN_NOT_OK(shard->sessionize->SerializeState(&frames));
    const std::string path =
        (epoch_dir / ("shard-" + std::to_string(shard->index) + ".state"))
            .string();
    WUM_RETURN_NOT_OK(ckpt::WriteFramedFile(path, ckpt::kShardMagic, frames));
    add_file_size(path);
  }
  DeadLetterQueueSnapshot dlq;
  if (dead_letters_ != nullptr) dlq = dead_letters_->Snapshot();
  std::vector<std::string> dlq_frames;
  ckpt::Encoder dlq_header;
  dlq_header.PutUvarint(dlq.total_offered);
  dlq_header.PutUvarint(dlq.records_covered);
  dlq_header.PutUvarint(dlq.overflow_dropped);
  dlq_header.PutUvarint(dlq.letters.size());
  dlq_frames.push_back(dlq_header.Release());
  for (const DeadLetter& letter : dlq.letters) {
    ckpt::Encoder encoder;
    ckpt::EncodeDeadLetter(letter, &encoder);
    dlq_frames.push_back(encoder.Release());
  }
  const std::string dlq_path = (epoch_dir / "dead_letters.state").string();
  WUM_RETURN_NOT_OK(
      ckpt::WriteFramedFile(dlq_path, ckpt::kDeadLetterMagic, dlq_frames));
  add_file_size(dlq_path);
  if (mining_ != nullptr) {
    // The shard barrier already ran, so every delivered session is in
    // the miner once SerializeState's implicit flush drains the pending
    // batch — the mining state is exactly as wide as the shard states.
    std::vector<std::string> mining_frames;
    WUM_RETURN_NOT_OK(mining_->SerializeState(&mining_frames));
    const std::string mining_path = (epoch_dir / "mining.state").string();
    WUM_RETURN_NOT_OK(ckpt::WriteFramedFile(mining_path, ckpt::kMiningMagic,
                                            mining_frames));
    add_file_size(mining_path);
  }
  if (registry_ != nullptr) {
    const std::string metrics_path = (epoch_dir / "metrics.json").string();
    WUM_RETURN_NOT_OK(
        obs::WriteMetricsFile(registry_->Snapshot(), metrics_path));
    add_file_size(metrics_path);
  }
  ckpt::CheckpointManifest manifest;
  manifest.epoch = epoch;
  manifest.num_shards = static_cast<std::uint32_t>(shards_.size());
  // On a resumed engine records_seen_ restarts at zero while the
  // restored state already covers resume_skip_ records; a checkpoint
  // taken mid-replay must keep the larger offset or the next resume
  // would replay already-absorbed records into the restored
  // sessionizers and emit duplicate sessions. Under external replay the
  // skip is zero and the restored coverage is carried in resume_base_
  // instead, so offsets stay monotonic across restarts either way.
  manifest.records_seen = resume_base_ + std::max(records_seen_, resume_skip_);
  manifest.heuristic = heuristic_name_;
  manifest.identity = IdentityName(identity_);
  manifest.max_session_duration = thresholds_.max_session_duration;
  manifest.max_page_stay = thresholds_.max_page_stay;
  manifest.sink_state = std::move(sink_state);
  ckpt::Encoder manifest_encoder;
  ckpt::EncodeManifest(manifest, &manifest_encoder);
  const std::string manifest_path = (epoch_dir / "MANIFEST").string();
  WUM_RETURN_NOT_OK(ckpt::WriteFramedFile(manifest_path, ckpt::kManifestMagic,
                                          {manifest_encoder.Release()}));
  add_file_size(manifest_path);
  WUM_RETURN_NOT_OK(ckpt::CommitCurrent(dir, epoch));
  next_epoch_ = epoch + 1;
  ckpt::RemoveStaleEpochs(dir, epoch);
  ckpt_written_.Increment();
  ckpt_bytes_.Increment(bytes);
  obs::LogInfo("ckpt.commit")("epoch", epoch)(
      "records_seen", manifest.records_seen)("bytes", bytes);
  return Status::OK();
}

Status StreamEngine::RestoreFrom(const std::string& dir) {
  namespace fs = std::filesystem;
  WUM_ASSIGN_OR_RETURN(const std::uint64_t epoch, ckpt::ReadCurrent(dir));
  const fs::path epoch_dir = fs::path(dir) / ckpt::EpochDirName(epoch);
  WUM_ASSIGN_OR_RETURN(
      const std::vector<std::string> manifest_frames,
      ckpt::ReadFramedFile((epoch_dir / "MANIFEST").string(),
                           ckpt::kManifestMagic));
  if (manifest_frames.size() != 1) {
    return Status::ParseError("MANIFEST holds " +
                              std::to_string(manifest_frames.size()) +
                              " frames (expected 1)");
  }
  ckpt::Decoder manifest_decoder(manifest_frames[0]);
  ckpt::CheckpointManifest manifest;
  WUM_RETURN_NOT_OK(ckpt::DecodeManifest(&manifest_decoder, &manifest));
  WUM_RETURN_NOT_OK(manifest_decoder.ExpectEnd());
  // Compatibility fingerprint: resuming under a different configuration
  // would silently produce different sessions, so refuse loudly.
  if (manifest.num_shards != shards_.size()) {
    return Status::InvalidArgument(
        "checkpoint was taken with " + std::to_string(manifest.num_shards) +
        " shards but the engine is configured with " +
        std::to_string(shards_.size()));
  }
  if (manifest.heuristic != heuristic_name_) {
    return Status::InvalidArgument("checkpoint heuristic '" +
                                   manifest.heuristic +
                                   "' does not match the engine's '" +
                                   heuristic_name_ + "'");
  }
  if (manifest.identity != IdentityName(identity_)) {
    return Status::InvalidArgument("checkpoint identity '" +
                                   manifest.identity +
                                   "' does not match the engine's '" +
                                   IdentityName(identity_) + "'");
  }
  if (manifest.max_session_duration != thresholds_.max_session_duration ||
      manifest.max_page_stay != thresholds_.max_page_stay) {
    return Status::InvalidArgument(
        "checkpoint thresholds (duration=" +
        std::to_string(manifest.max_session_duration) +
        ", stay=" + std::to_string(manifest.max_page_stay) +
        ") do not match the engine's (duration=" +
        std::to_string(thresholds_.max_session_duration) +
        ", stay=" + std::to_string(thresholds_.max_page_stay) + ")");
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    const std::string path =
        (epoch_dir / ("shard-" + std::to_string(shard->index) + ".state"))
            .string();
    WUM_ASSIGN_OR_RETURN(const std::vector<std::string> frames,
                         ckpt::ReadFramedFile(path, ckpt::kShardMagic));
    if (frames.empty()) {
      return Status::ParseError(path + ": missing shard header frame");
    }
    ckpt::Decoder header(frames[0]);
    WUM_ASSIGN_OR_RETURN(const std::uint64_t index, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t offered, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t processed, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t delivered, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t dead, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t shed, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t sessions, header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t session_records,
                         header.GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t quarantined,
                         header.GetUvarint());
    WUM_RETURN_NOT_OK(header.ExpectEnd());
    if (index != shard->index) {
      return Status::ParseError(path + ": holds state for shard " +
                                std::to_string(index));
    }
    shard->offered.store(offered, std::memory_order_relaxed);
    shard->processed.store(processed, std::memory_order_relaxed);
    shard->delivered.store(delivered, std::memory_order_relaxed);
    shard->dead_letters.store(dead, std::memory_order_relaxed);
    shard->shed.store(shed, std::memory_order_relaxed);
    shard->emit->RestoreCounters(sessions, session_records, quarantined);
    WUM_RETURN_NOT_OK(shard->sessionize->RestoreState(
        std::span<const std::string>(frames).subspan(1)));
  }
  const std::string dlq_path = (epoch_dir / "dead_letters.state").string();
  WUM_ASSIGN_OR_RETURN(const std::vector<std::string> dlq_frames,
                       ckpt::ReadFramedFile(dlq_path, ckpt::kDeadLetterMagic));
  if (dlq_frames.empty()) {
    return Status::ParseError(dlq_path + ": missing counters frame");
  }
  ckpt::Decoder dlq_header(dlq_frames[0]);
  DeadLetterQueueSnapshot dlq;
  WUM_ASSIGN_OR_RETURN(dlq.total_offered, dlq_header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(dlq.records_covered, dlq_header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(dlq.overflow_dropped, dlq_header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t retained, dlq_header.GetUvarint());
  WUM_RETURN_NOT_OK(dlq_header.ExpectEnd());
  if (retained != dlq_frames.size() - 1) {
    return Status::ParseError(
        dlq_path + ": declares " + std::to_string(retained) +
        " letters but carries " + std::to_string(dlq_frames.size() - 1));
  }
  dlq.letters.reserve(retained);
  for (std::size_t i = 1; i < dlq_frames.size(); ++i) {
    ckpt::Decoder decoder(dlq_frames[i]);
    DeadLetter letter;
    WUM_RETURN_NOT_OK(ckpt::DecodeDeadLetter(&decoder, &letter));
    WUM_RETURN_NOT_OK(decoder.ExpectEnd());
    dlq.letters.push_back(std::move(letter));
  }
  if (dead_letters_ != nullptr) dead_letters_->Restore(std::move(dlq));
  if (mining_ != nullptr) {
    const std::string mining_path = (epoch_dir / "mining.state").string();
    if (fs::exists(mining_path)) {
      WUM_ASSIGN_OR_RETURN(
          const std::vector<std::string> mining_frames,
          ckpt::ReadFramedFile(mining_path, ckpt::kMiningMagic));
      WUM_RETURN_NOT_OK(mining_->RestoreState(mining_frames));
    } else {
      // Checkpoint taken before mining was enabled: the miner starts
      // empty and converges on traffic from here on.
      obs::LogWarn("ckpt.resume")("mining_state", "absent");
    }
  }
  if (resume_external_replay_) {
    // The front end replays each producer from its own durable offset
    // (decoded out of sink_state), so every record offered from here on
    // is genuinely new: no replay skip, but the restored coverage still
    // counts toward future manifests.
    resume_base_ = manifest.records_seen;
    resume_skip_ = 0;
  } else {
    resume_skip_ = manifest.records_seen;
  }
  records_seen_ = 0;
  next_epoch_ = epoch + 1;
  resumed_sink_state_ = std::move(manifest.sink_state);
  resumed_ = true;
  obs::LogInfo("ckpt.resume")("epoch", epoch)(
      "records_seen", manifest.records_seen);
  return Status::OK();
}

std::uint64_t StreamEngine::ShardWatermarkSeconds(std::size_t shard) const {
  return shards_[shard]->sessionize->watermark_seconds();
}

std::size_t StreamEngine::ShardQueueDepth(std::size_t shard) const {
  const Shard& s = *shards_[shard];
  return s.driver != nullptr ? s.driver->queue_depth() : 0;
}

std::vector<Status> StreamEngine::ShardHealth() const {
  std::vector<Status> health;
  health.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->driver != nullptr ? shard->driver->first_error()
                                             : Status::OK();
    if (status.ok()) {
      std::lock_guard<std::mutex> lock(shard->health_mutex);
      status = shard->finish_error;
    }
    health.push_back(std::move(status));
  }
  return health;
}

}  // namespace wum
