#include "wum/stream/engine.h"

#include <mutex>
#include <string>
#include <utility>

#include "wum/stream/heuristic_registry.h"
#include "wum/stream/operators.h"
#include "wum/stream/threaded_driver.h"
#include "wum/topology/web_graph.h"

namespace wum {
// Named (not anonymous) so StreamEngine::Shard, which has external
// linkage, can hold members of this type without -Wsubobject-linkage.
namespace engine_internal {

/// Pass-through stage bumping an atomic counter (and, when enabled, a
/// registry counter mirroring it), so shard progress is observable from
/// other threads while the worker runs.
class CountingSink : public RecordSink {
 public:
  CountingSink(std::atomic<std::uint64_t>* counter, RecordSink* next,
               obs::Counter mirror = {})
      : counter_(counter), next_(next), mirror_(mirror) {}

  Status Accept(const LogRecord& record) override {
    counter_->fetch_add(1, std::memory_order_relaxed);
    mirror_.Increment();
    return next_->Accept(record);
  }

  Status Finish() override { return next_->Finish(); }

 private:
  std::atomic<std::uint64_t>* counter_;
  RecordSink* next_;
  obs::Counter mirror_;
};

}  // namespace engine_internal

EngineOptions& EngineOptions::add_filter(FilterFactory factory) {
  return add_operator([factory = std::move(factory)]() {
    return std::make_unique<FilterOperator>(factory());
  });
}

std::string EngineStatsToString(const EngineStats& stats) {
  return "records_in=" + std::to_string(stats.records_in) +
         " dropped=" + std::to_string(stats.records_dropped) +
         " sessions=" + std::to_string(stats.sessions_emitted) +
         " blocked_enqueues=" + std::to_string(stats.blocked_enqueues) +
         " queue_high_watermark=" +
         std::to_string(stats.queue_high_watermark) +
         " dead_letters=" + std::to_string(stats.dead_letters) +
         " retries=" + std::to_string(stats.retries) +
         " shed=" + std::to_string(stats.records_shed);
}

/// Funnels every shard's emissions into the caller's sink one at a time.
/// Under kFailFast the first failure is sticky and shared by every shard
/// (every later emit — and the engine's Offer — returns it); under
/// kDegrade nothing sticks here: each emission stands alone and the
/// per-shard ShardEmit decides what a final failure means. When a shard
/// has a RetryingSink the attempts (and their backoff waits) run inside
/// the hub lock — when the shared sink is down, every shard is stalled
/// on it anyway.
class StreamEngine::EmitHub {
 public:
  EmitHub(SessionSink* sink, ErrorPolicy policy)
      : sink_(sink), policy_(policy) {}

  Status Emit(const std::string& user_key, Session session,
              RetryingSink* retrying) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (policy_ == ErrorPolicy::kFailFast && !first_error_.ok()) {
      return first_error_;
    }
    SessionSink* target =
        retrying != nullptr ? static_cast<SessionSink*>(retrying) : sink_;
    Status status = target->Accept(user_key, std::move(session));
    if (policy_ == ErrorPolicy::kFailFast && !status.ok()) {
      first_error_ = status;
    }
    return status;
  }

  Status first_error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_error_;
  }

 private:
  mutable std::mutex mutex_;
  SessionSink* sink_;
  ErrorPolicy policy_;
  Status first_error_;
};

/// Per-shard emission front: forwards to the hub (through the shard's
/// RetryingSink when configured), keeps the delivery counters that back
/// EngineStats::sessions_emitted, and — under kDegrade — turns a session
/// the sink refused after every retry into a dead letter instead of an
/// error, so the record path above never sees emission failures.
class StreamEngine::ShardEmit : public SessionSink {
 public:
  ShardEmit(StreamEngine* engine, Shard* shard, obs::Counter delivered_mirror)
      : engine_(engine), shard_(shard), delivered_mirror_(delivered_mirror) {}

  Status Accept(const std::string& user_key, Session session) override;

  /// Sessions successfully delivered to the caller's sink.
  std::uint64_t delivered_sessions() const {
    return delivered_sessions_.load(std::memory_order_relaxed);
  }
  /// Records inside those delivered sessions.
  std::uint64_t delivered_records() const {
    return delivered_records_.load(std::memory_order_relaxed);
  }
  /// Records inside sessions dead-lettered at this stage (kEmit).
  std::uint64_t quarantined_records() const {
    return quarantined_records_.load(std::memory_order_relaxed);
  }

 private:
  StreamEngine* engine_;
  Shard* shard_;
  obs::Counter delivered_mirror_;
  std::atomic<std::uint64_t> delivered_sessions_{0};
  std::atomic<std::uint64_t> delivered_records_{0};
  std::atomic<std::uint64_t> quarantined_records_{0};
};

/// One worker shard. Members are declared upstream-last so destruction
/// joins the driver before tearing down the chain it feeds.
struct StreamEngine::Shard {
  std::size_t index = 0;

  std::atomic<std::uint64_t> offered{0};    // accepted by Offer
  std::atomic<std::uint64_t> processed{0};  // entered the operator chain
  std::atomic<std::uint64_t> delivered{0};  // reached the sessionizer
  std::atomic<std::uint64_t> dead_letters{0};  // records quarantined
  std::atomic<std::uint64_t> shed{0};          // records shed by Offer

  obs::Counter records_in;  // mirrors `offered` when metrics are enabled
  obs::Counter dead_letter_mirror;
  obs::Counter shed_mirror;

  // Flush/finish failure of this shard, for ShardHealth.
  std::mutex health_mutex;
  Status finish_error;

  std::unique_ptr<RetryingSink> retrying;  // wraps the caller sink; may
                                           // be null (no set_retry)
  std::unique_ptr<ShardEmit> emit;         // -> hub -> retrying/sink
  std::unique_ptr<SessionizeSink> sessionize;  // -> emit
  std::unique_ptr<engine_internal::CountingSink> tail;  // -> sessionize
  std::unique_ptr<Pipeline> pipeline;  // operators -> tail
  std::unique_ptr<engine_internal::CountingSink> head;  // -> pipeline
  std::unique_ptr<ThreadedDriver> driver;
};

Status StreamEngine::ShardEmit::Accept(const std::string& user_key,
                                       Session session) {
  const std::uint64_t covered =
      static_cast<std::uint64_t>(session.requests.size());
  Status status =
      engine_->emit_->Emit(user_key, std::move(session), shard_->retrying.get());
  if (status.ok()) {
    delivered_sessions_.fetch_add(1, std::memory_order_relaxed);
    delivered_records_.fetch_add(covered, std::memory_order_relaxed);
    delivered_mirror_.Increment();
    return status;
  }
  if (engine_->error_policy_ == ErrorPolicy::kFailFast) return status;
  // kDegrade: the session is lost to the sink but not to accounting —
  // quarantine a letter covering its records and keep the shard alive.
  quarantined_records_.fetch_add(covered, std::memory_order_relaxed);
  DeadLetter letter;
  letter.stage = DeadLetter::Stage::kEmit;
  letter.shard = shard_->index;
  letter.reason = std::move(status);
  letter.detail = user_key;
  letter.records_covered = covered;
  engine_->Quarantine(*shard_, std::move(letter));
  return Status::OK();
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    EngineOptions options, SessionSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("StreamEngine requires a SessionSink");
  }
  if (options.num_shards_ == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity_ == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.retry_.has_value() && options.retry_->max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  // Resolve the heuristic up front (the constructor cannot fail). The
  // factory is invoked concurrently from shard workers; the registry's
  // factories only read the (const) graph and copied thresholds.
  UserSessionizerFactory factory;
  switch (options.selection_) {
    case EngineOptions::Selection::kUnset:
      return Status::InvalidArgument(
          "choose a heuristic: use_heuristic(name) / use_duration / "
          "use_page_stay / use_navigation / use_smart_sra / use_custom");
    case EngineOptions::Selection::kNamed: {
      HeuristicContext context;
      context.graph = options.graph_;
      context.thresholds = options.thresholds_;
      WUM_ASSIGN_OR_RETURN(factory,
                           HeuristicRegistry::Default().CreateIncremental(
                               options.heuristic_name_, context));
      break;
    }
    case EngineOptions::Selection::kCustom:
      if (options.custom_factory_ == nullptr) {
        return Status::InvalidArgument(
            "use_custom requires a sessionizer factory");
      }
      factory = options.custom_factory_;
      break;
  }
  if (options.num_pages_ == 0 && options.graph_ != nullptr) {
    options.num_pages_ = options.graph_->num_pages();
  }
  if (options.num_pages_ == 0) {
    return Status::InvalidArgument(
        "set_num_pages is required (no graph to derive it from)");
  }
  return std::unique_ptr<StreamEngine>(
      new StreamEngine(std::move(options), std::move(factory), sink));
}

StreamEngine::StreamEngine(EngineOptions options,
                           UserSessionizerFactory factory, SessionSink* sink)
    : identity_(options.identity_),
      error_policy_(options.error_policy_),
      offer_policy_(options.offer_policy_),
      dead_letters_(options.dead_letters_),
      emit_(std::make_unique<EmitHub>(sink, options.error_policy_)) {
  // With a null registry every handle below is disabled: updates are a
  // predictable branch and the latency timers never read the clock, so
  // an uninstrumented engine does the same atomic work as before the
  // observability layer existed.
  obs::MetricRegistry* registry = options.metrics_;
  shards_.reserve(options.num_shards_);
  for (std::size_t i = 0; i < options.num_shards_; ++i) {
    const std::string prefix = "engine.shard" + std::to_string(i) + ".";
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->records_in = obs::CounterIn(registry, prefix + "records_in");
    shard->dead_letter_mirror =
        obs::CounterIn(registry, prefix + "dead_letter");
    shard->shed_mirror = obs::CounterIn(registry, prefix + "shed");
    if (options.retry_.has_value()) {
      shard->retrying = std::make_unique<RetryingSink>(
          sink, *options.retry_, obs::CounterIn(registry, prefix + "retries"));
    }
    shard->emit = std::make_unique<ShardEmit>(
        this, shard.get(),
        obs::CounterIn(registry, prefix + "sessions_emitted"));
    SessionizeMetrics sessionize_metrics;
    sessionize_metrics.skipped_non_page_urls =
        obs::CounterIn(registry, prefix + "skipped_non_page_urls");
    sessionize_metrics.sessionize_latency_us =
        obs::HistogramIn(registry, prefix + "sessionize_latency_us");
    shard->sessionize = std::make_unique<SessionizeSink>(
        factory, shard->emit.get(), options.num_pages_, options.identity_,
        std::move(sessionize_metrics));
    shard->tail = std::make_unique<engine_internal::CountingSink>(
        &shard->delivered, shard->sessionize.get(),
        obs::CounterIn(registry, prefix + "records_delivered"));
    shard->pipeline = std::make_unique<Pipeline>(shard->tail.get());
    for (const EngineOptions::OperatorFactory& make_operator :
         options.operator_factories_) {
      shard->pipeline->Append(make_operator());
    }
    shard->head = std::make_unique<engine_internal::CountingSink>(
        &shard->processed, shard->pipeline.get(),
        obs::CounterIn(registry, prefix + "records_processed"));
    DriverMetrics driver_metrics;
    driver_metrics.blocked_enqueues =
        obs::CounterIn(registry, prefix + "blocked_enqueues");
    driver_metrics.queue_high_watermark =
        obs::GaugeIn(registry, prefix + "queue_high_watermark");
    driver_metrics.drain_latency_us =
        obs::HistogramIn(registry, prefix + "drain_latency_us");
    DriverHooks hooks;
    if (error_policy_ == ErrorPolicy::kDegrade) {
      // Failure-domain hooks: record-level errors quarantine only the
      // record; shard-fatal errors quarantine it too (the dying shard
      // cannot process it) and then let the sticky error kill the shard.
      Shard* shard_ptr = shard.get();
      hooks.on_record_error = [this, shard_ptr](const LogRecord& record,
                                                const Status& status) {
        DeadLetter letter;
        letter.shard = shard_ptr->index;
        letter.reason = status;
        letter.record = record;
        if (IsShardFatal(status)) {
          letter.stage = DeadLetter::Stage::kShardDead;
          Quarantine(*shard_ptr, std::move(letter));
          return false;  // the shard dies
        }
        letter.stage = DeadLetter::Stage::kRecord;
        Quarantine(*shard_ptr, std::move(letter));
        return true;  // quarantined; the shard lives on
      };
      hooks.on_discard = [this, shard_ptr](const LogRecord& record,
                                           const Status& status) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kShardDead;
        letter.shard = shard_ptr->index;
        letter.reason = status;
        letter.record = record;
        Quarantine(*shard_ptr, std::move(letter));
      };
    }
    shard->driver = std::make_unique<ThreadedDriver>(
        shard->head.get(), options.queue_capacity_,
        std::move(driver_metrics), std::move(hooks));
    shards_.push_back(std::move(shard));
  }
}

StreamEngine::~StreamEngine() {
  if (!finished_) (void)Finish();
}

std::size_t StreamEngine::ShardIndexFor(const LogRecord& record) const {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(
      UserHashFor(record.client_ip, record.user_agent, identity_) %
      shards_.size());
}

void StreamEngine::Quarantine(Shard& shard, DeadLetter letter) {
  shard.dead_letters.fetch_add(letter.records_covered,
                               std::memory_order_relaxed);
  shard.dead_letter_mirror.Increment(letter.records_covered);
  if (dead_letters_ != nullptr) dead_letters_->Offer(std::move(letter));
}

Status StreamEngine::Offer(const LogRecord& record) {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  if (error_policy_ == ErrorPolicy::kFailFast) {
    // A sink failure in any shard stops ingest for all of them.
    WUM_RETURN_NOT_OK(emit_->first_error());
  }
  Shard& shard = *shards_[ShardIndexFor(record)];
  Status status;
  if (offer_policy_ == OfferPolicy::kShed) {
    bool accepted = false;
    status = shard.driver->TryOffer(record, &accepted);
    if (status.ok() && !accepted) {
      shard.shed.fetch_add(1, std::memory_order_relaxed);
      shard.shed_mirror.Increment();
      return Status::OK();
    }
  } else {
    status = shard.driver->Offer(record);
  }
  if (!status.ok()) {
    if (error_policy_ == ErrorPolicy::kFailFast) return status;
    // kDegrade: the record was routed to a dead shard — quarantine it
    // and keep the producer (and the other shards) going.
    DeadLetter letter;
    letter.stage = DeadLetter::Stage::kShardDead;
    letter.shard = shard.index;
    letter.reason = std::move(status);
    letter.record = record;
    Quarantine(shard, std::move(letter));
    return Status::OK();
  }
  shard.offered.fetch_add(1, std::memory_order_relaxed);
  shard.records_in.Increment();
  return Status::OK();
}

Status StreamEngine::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  finished_ = true;
  Status first_shard_error;
  for (std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->driver->Finish();
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(shard->health_mutex);
        shard->finish_error = status;
      }
      if (first_shard_error.ok()) first_shard_error = std::move(status);
    }
  }
  if (error_policy_ == ErrorPolicy::kDegrade) {
    // A dead shard never flushed: records absorbed into its open
    // per-user session state were neither delivered nor quarantined yet.
    // Cover them with one letter per shard so the accounting invariant
    // (delivered + dead-lettered == absorbed) holds even after a kill.
    for (std::unique_ptr<Shard>& shard : shards_) {
      const std::uint64_t absorbed = shard->sessionize->records_absorbed();
      const std::uint64_t settled = shard->emit->delivered_records() +
                                    shard->emit->quarantined_records();
      if (absorbed > settled) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kShardDead;
        letter.shard = shard->index;
        letter.reason = shard->driver->failed()
                            ? shard->driver->first_error()
                            : Status::Internal("open session state lost");
        letter.detail = "open session state lost";
        letter.records_covered = absorbed - settled;
        Quarantine(*shard, std::move(letter));
      }
    }
    // Degradation is reported through the dead-letter channel,
    // ShardHealth() and the stats — not as an engine-wide error.
    return Status::OK();
  }
  // Prefer the sink's error: it is the root cause when shards failed
  // because emission was already poisoned.
  WUM_RETURN_NOT_OK(emit_->first_error());
  return first_shard_error;
}

EngineStats StreamEngine::SnapshotShard(const Shard& shard) const {
  EngineStats stats;
  stats.records_in = shard.offered.load(std::memory_order_relaxed);
  const std::uint64_t processed =
      shard.processed.load(std::memory_order_relaxed);
  const std::uint64_t delivered =
      shard.delivered.load(std::memory_order_relaxed);
  stats.records_dropped =
      processed - delivered + shard.sessionize->skipped_non_page_urls();
  stats.sessions_emitted = shard.emit->delivered_sessions();
  stats.blocked_enqueues = shard.driver->blocked_enqueues();
  stats.queue_high_watermark = shard.driver->queue_high_watermark();
  stats.dead_letters = shard.dead_letters.load(std::memory_order_relaxed);
  stats.retries = shard.retrying != nullptr ? shard.retrying->retries() : 0;
  stats.records_shed = shard.shed.load(std::memory_order_relaxed);
  return stats;
}

std::vector<EngineStats> StreamEngine::ShardStats() const {
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    stats.push_back(SnapshotShard(*shard));
  }
  return stats;
}

EngineStats StreamEngine::TotalStats() const {
  EngineStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += SnapshotShard(*shard);
  }
  return total;
}

std::vector<Status> StreamEngine::ShardHealth() const {
  std::vector<Status> health;
  health.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->driver->first_error();
    if (status.ok()) {
      std::lock_guard<std::mutex> lock(shard->health_mutex);
      status = shard->finish_error;
    }
    health.push_back(std::move(status));
  }
  return health;
}

}  // namespace wum
