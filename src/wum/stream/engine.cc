#include "wum/stream/engine.h"

#include <mutex>
#include <string>
#include <utility>

#include "wum/stream/heuristic_registry.h"
#include "wum/stream/operators.h"
#include "wum/stream/threaded_driver.h"
#include "wum/topology/web_graph.h"

namespace wum {
// Named (not anonymous) so StreamEngine::Shard, which has external
// linkage, can hold members of this type without -Wsubobject-linkage.
namespace engine_internal {

/// Pass-through stage bumping an atomic counter (and, when enabled, a
/// registry counter mirroring it), so shard progress is observable from
/// other threads while the worker runs.
class CountingSink : public RecordSink {
 public:
  CountingSink(std::atomic<std::uint64_t>* counter, RecordSink* next,
               obs::Counter mirror = {})
      : counter_(counter), next_(next), mirror_(mirror) {}

  Status Accept(const LogRecord& record) override {
    counter_->fetch_add(1, std::memory_order_relaxed);
    mirror_.Increment();
    return next_->Accept(record);
  }

  Status Finish() override { return next_->Finish(); }

 private:
  std::atomic<std::uint64_t>* counter_;
  RecordSink* next_;
  obs::Counter mirror_;
};

}  // namespace engine_internal

EngineOptions& EngineOptions::add_filter(FilterFactory factory) {
  return add_operator([factory = std::move(factory)]() {
    return std::make_unique<FilterOperator>(factory());
  });
}

std::string EngineStatsToString(const EngineStats& stats) {
  return "records_in=" + std::to_string(stats.records_in) +
         " dropped=" + std::to_string(stats.records_dropped) +
         " sessions=" + std::to_string(stats.sessions_emitted) +
         " blocked_enqueues=" + std::to_string(stats.blocked_enqueues) +
         " queue_high_watermark=" +
         std::to_string(stats.queue_high_watermark);
}

/// Funnels every shard's emissions into the caller's sink one at a time,
/// with a sticky first error shared by all shards: after any sink
/// failure every later emit (and the engine's Offer) returns that error,
/// so one failure stops the whole engine.
class StreamEngine::SerializedEmit : public SessionSink {
 public:
  explicit SerializedEmit(SessionSink* sink) : sink_(sink) {}

  Status Accept(const std::string& user_key, Session session) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_.ok()) return first_error_;
    Status status = sink_->Accept(user_key, std::move(session));
    if (!status.ok()) first_error_ = status;
    return status;
  }

  Status first_error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_error_;
  }

 private:
  mutable std::mutex mutex_;
  SessionSink* sink_;
  Status first_error_;
};

/// One worker shard. Members are declared upstream-last so destruction
/// joins the driver before tearing down the chain it feeds.
struct StreamEngine::Shard {
  std::atomic<std::uint64_t> offered{0};    // accepted by Offer
  std::atomic<std::uint64_t> processed{0};  // entered the operator chain
  std::atomic<std::uint64_t> delivered{0};  // reached the sessionizer

  obs::Counter records_in;  // mirrors `offered` when metrics are enabled

  std::unique_ptr<SessionizeSink> sessionize;
  std::unique_ptr<engine_internal::CountingSink> tail;  // -> sessionize
  std::unique_ptr<Pipeline> pipeline;  // operators -> tail
  std::unique_ptr<engine_internal::CountingSink> head;  // -> pipeline
  std::unique_ptr<ThreadedDriver> driver;
};

Result<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    EngineOptions options, SessionSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("StreamEngine requires a SessionSink");
  }
  if (options.num_shards_ == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity_ == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  // Resolve the heuristic up front (the constructor cannot fail). The
  // factory is invoked concurrently from shard workers; the registry's
  // factories only read the (const) graph and copied thresholds.
  UserSessionizerFactory factory;
  switch (options.selection_) {
    case EngineOptions::Selection::kUnset:
      return Status::InvalidArgument(
          "choose a heuristic: use_heuristic(name) / use_duration / "
          "use_page_stay / use_navigation / use_smart_sra / use_custom");
    case EngineOptions::Selection::kNamed: {
      HeuristicContext context;
      context.graph = options.graph_;
      context.thresholds = options.thresholds_;
      WUM_ASSIGN_OR_RETURN(factory,
                           HeuristicRegistry::Default().CreateIncremental(
                               options.heuristic_name_, context));
      break;
    }
    case EngineOptions::Selection::kCustom:
      if (options.custom_factory_ == nullptr) {
        return Status::InvalidArgument(
            "use_custom requires a sessionizer factory");
      }
      factory = options.custom_factory_;
      break;
  }
  if (options.num_pages_ == 0 && options.graph_ != nullptr) {
    options.num_pages_ = options.graph_->num_pages();
  }
  if (options.num_pages_ == 0) {
    return Status::InvalidArgument(
        "set_num_pages is required (no graph to derive it from)");
  }
  return std::unique_ptr<StreamEngine>(
      new StreamEngine(std::move(options), std::move(factory), sink));
}

StreamEngine::StreamEngine(EngineOptions options,
                           UserSessionizerFactory factory, SessionSink* sink)
    : identity_(options.identity_),
      emit_(std::make_unique<SerializedEmit>(sink)) {
  // With a null registry every handle below is disabled: updates are a
  // predictable branch and the latency timers never read the clock, so
  // an uninstrumented engine does the same atomic work as before the
  // observability layer existed.
  obs::MetricRegistry* registry = options.metrics_;
  shards_.reserve(options.num_shards_);
  for (std::size_t i = 0; i < options.num_shards_; ++i) {
    const std::string prefix = "engine.shard" + std::to_string(i) + ".";
    auto shard = std::make_unique<Shard>();
    shard->records_in = obs::CounterIn(registry, prefix + "records_in");
    SessionizeMetrics sessionize_metrics;
    sessionize_metrics.sessions_emitted =
        obs::CounterIn(registry, prefix + "sessions_emitted");
    sessionize_metrics.skipped_non_page_urls =
        obs::CounterIn(registry, prefix + "skipped_non_page_urls");
    sessionize_metrics.sessionize_latency_us =
        obs::HistogramIn(registry, prefix + "sessionize_latency_us");
    shard->sessionize = std::make_unique<SessionizeSink>(
        factory, emit_.get(), options.num_pages_, options.identity_,
        std::move(sessionize_metrics));
    shard->tail = std::make_unique<engine_internal::CountingSink>(
        &shard->delivered, shard->sessionize.get(),
        obs::CounterIn(registry, prefix + "records_delivered"));
    shard->pipeline = std::make_unique<Pipeline>(shard->tail.get());
    for (const EngineOptions::OperatorFactory& make_operator :
         options.operator_factories_) {
      shard->pipeline->Append(make_operator());
    }
    shard->head = std::make_unique<engine_internal::CountingSink>(
        &shard->processed, shard->pipeline.get(),
        obs::CounterIn(registry, prefix + "records_processed"));
    DriverMetrics driver_metrics;
    driver_metrics.blocked_enqueues =
        obs::CounterIn(registry, prefix + "blocked_enqueues");
    driver_metrics.queue_high_watermark =
        obs::GaugeIn(registry, prefix + "queue_high_watermark");
    driver_metrics.drain_latency_us =
        obs::HistogramIn(registry, prefix + "drain_latency_us");
    shard->driver = std::make_unique<ThreadedDriver>(
        shard->head.get(), options.queue_capacity_,
        std::move(driver_metrics));
    shards_.push_back(std::move(shard));
  }
}

StreamEngine::~StreamEngine() {
  if (!finished_) (void)Finish();
}

std::size_t StreamEngine::ShardIndexFor(const LogRecord& record) const {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(
      UserHashFor(record.client_ip, record.user_agent, identity_) %
      shards_.size());
}

Status StreamEngine::Offer(const LogRecord& record) {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  // A sink failure in any shard stops ingest for all of them.
  WUM_RETURN_NOT_OK(emit_->first_error());
  Shard& shard = *shards_[ShardIndexFor(record)];
  WUM_RETURN_NOT_OK(shard.driver->Offer(record));
  shard.offered.fetch_add(1, std::memory_order_relaxed);
  shard.records_in.Increment();
  return Status::OK();
}

Status StreamEngine::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("engine already finished");
  }
  finished_ = true;
  Status first_shard_error;
  for (std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->driver->Finish();
    if (first_shard_error.ok() && !status.ok()) {
      first_shard_error = std::move(status);
    }
  }
  // Prefer the sink's error: it is the root cause when shards failed
  // because emission was already poisoned.
  WUM_RETURN_NOT_OK(emit_->first_error());
  return first_shard_error;
}

EngineStats StreamEngine::SnapshotShard(const Shard& shard) const {
  EngineStats stats;
  stats.records_in = shard.offered.load(std::memory_order_relaxed);
  const std::uint64_t processed =
      shard.processed.load(std::memory_order_relaxed);
  const std::uint64_t delivered =
      shard.delivered.load(std::memory_order_relaxed);
  stats.records_dropped =
      processed - delivered + shard.sessionize->skipped_non_page_urls();
  stats.sessions_emitted = shard.sessionize->sessions_emitted();
  stats.blocked_enqueues = shard.driver->blocked_enqueues();
  stats.queue_high_watermark = shard.driver->queue_high_watermark();
  return stats;
}

std::vector<EngineStats> StreamEngine::ShardStats() const {
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    stats.push_back(SnapshotShard(*shard));
  }
  return stats;
}

EngineStats StreamEngine::TotalStats() const {
  EngineStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += SnapshotShard(*shard);
  }
  return total;
}

}  // namespace wum
