#include "wum/stream/pipeline.h"

namespace wum {

Pipeline::Pipeline(RecordSink* terminal) : terminal_(terminal) {}

void Pipeline::Append(std::unique_ptr<RecordOperator> op) {
  if (!operators_.empty()) {
    operators_.back()->set_downstream(op.get());
  }
  op->set_downstream(terminal_);
  operators_.push_back(std::move(op));
}

RecordSink* Pipeline::Entry() {
  return operators_.empty() ? terminal_
                            : static_cast<RecordSink*>(operators_.front().get());
}

Status Pipeline::Accept(const LogRecord& record) {
  ++records_in_;
  return Entry()->Accept(record);
}

Status Pipeline::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("pipeline already finished");
  }
  finished_ = true;
  // Finishing the first operator cascades down the chain; with no
  // operators, finish the terminal directly.
  return Entry()->Finish();
}

}  // namespace wum
