// Bounded single-producer / single-consumer queue used by the threaded
// pipeline driver. Mutex + condvar implementation: simple, correct, and
// fast enough at batch granularity (the driver hands off vectors of
// records, so the mutex is taken once per batch, not once per record).

#ifndef WUM_STREAM_SPSC_QUEUE_H_
#define WUM_STREAM_SPSC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace wum {

/// Blocking bounded queue with weighted items. Capacity is counted in
/// weight units (for the driver: records, so a batch of 64 records
/// consumes 64 units and a single record consumes 1 — watermark and
/// backpressure semantics are independent of how records are batched).
///
/// Admission rule: an item is accepted as soon as the queued weight is
/// below capacity, even if the item's own weight overshoots it. A
/// weight-1 item therefore sees exactly the classic "size < capacity"
/// bound, and an oversized batch can never deadlock against a smaller
/// capacity — the queue just transiently overfills by at most one item.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : capacity_(capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Outcome of a non-blocking TryPush.
  enum class PushOutcome { kOk, kFull, kClosed };

  /// Outcome of a blocking PushUnless.
  enum class BlockingPushOutcome { kOk, kClosed, kAborted };

  /// Blocks until space is available. Returns false (dropping the item)
  /// if the queue was already closed. When `depth_after` is non-null it
  /// receives the queued weight right after insertion (watermark probes
  /// without a second lock acquisition).
  bool Push(T item, std::size_t weight = 1, std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return weight_ < capacity_ || closed_; });
    if (closed_) return false;
    weight_ += weight;
    items_.push_back(Entry{std::move(item), weight});
    if (depth_after != nullptr) *depth_after = weight_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push that a third party can interrupt: waits until space
  /// is available, the queue closes, or `aborted()` turns true (whoever
  /// flips that condition must call WakeAll to rouse the waiter). The
  /// threaded driver uses this so a producer blocked on a full queue
  /// observes the worker's sticky error instead of waiting forever.
  /// `aborted` is invoked with the queue mutex held, so it must not
  /// touch the queue; a relaxed/acquire atomic read is the intended
  /// shape. The item is only moved from on kOk, so a caller keeps it
  /// across kClosed/kAborted.
  template <typename AbortFn>
  BlockingPushOutcome PushUnless(T&& item, const AbortFn& aborted,
                                 std::size_t weight = 1,
                                 std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this, &aborted] {
      return weight_ < capacity_ || closed_ || aborted();
    });
    if (closed_) return BlockingPushOutcome::kClosed;
    if (aborted()) return BlockingPushOutcome::kAborted;
    weight_ += weight;
    items_.push_back(Entry{std::move(item), weight});
    if (depth_after != nullptr) *depth_after = weight_;
    not_empty_.notify_one();
    return BlockingPushOutcome::kOk;
  }

  /// Wakes every blocked producer and consumer so they re-evaluate their
  /// predicates (pair with the `aborted` condition of PushUnless).
  void WakeAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Non-blocking push: kFull leaves the item with the caller — it is
  /// only moved from on kOk — so callers can retry with Push to block.
  /// kClosed drops it.
  PushOutcome TryPush(T&& item, std::size_t weight = 1,
                      std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return PushOutcome::kClosed;
    if (weight_ >= capacity_) return PushOutcome::kFull;
    weight_ += weight;
    items_.push_back(Entry{std::move(item), weight});
    if (depth_after != nullptr) *depth_after = weight_;
    not_empty_.notify_one();
    return PushOutcome::kOk;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt signals end of stream. The popped item's weight is
  /// released immediately (the consumer processes it outside the lock).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    Entry entry = std::move(items_.front());
    items_.pop_front();
    weight_ -= entry.weight;
    not_full_.notify_one();
    return std::move(entry.item);
  }

  /// Producer signals end of stream (idempotent). Consumers drain the
  /// remaining items and then observe nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Number of queued items (batches, for the driver).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Total queued weight (records, for the driver).
  std::size_t weight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return weight_;
  }

 private:
  struct Entry {
    T item;
    std::size_t weight;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Entry> items_;
  std::size_t weight_ = 0;
  bool closed_ = false;
};

}  // namespace wum

#endif  // WUM_STREAM_SPSC_QUEUE_H_
