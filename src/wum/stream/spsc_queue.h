// Bounded single-producer / single-consumer queue used by the threaded
// pipeline driver. Mutex + condvar implementation: simple, correct, and
// fast enough for log-record granularity.

#ifndef WUM_STREAM_SPSC_QUEUE_H_
#define WUM_STREAM_SPSC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace wum {

/// Blocking bounded queue. Push blocks when full; Pop blocks when empty
/// until an element arrives or the producer closes the queue.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : capacity_(capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Outcome of a non-blocking TryPush.
  enum class PushOutcome { kOk, kFull, kClosed };

  /// Outcome of a blocking PushUnless.
  enum class BlockingPushOutcome { kOk, kClosed, kAborted };

  /// Blocks until space is available. Returns false (dropping the item)
  /// if the queue was already closed. When `depth_after` is non-null it
  /// receives the queue depth right after insertion (watermark probes
  /// without a second lock acquisition).
  bool Push(T item, std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth_after != nullptr) *depth_after = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push that a third party can interrupt: waits until space
  /// is available, the queue closes, or `aborted()` turns true (whoever
  /// flips that condition must call WakeAll to rouse the waiter). The
  /// threaded driver uses this so a producer blocked on a full queue
  /// observes the worker's sticky error instead of waiting forever.
  /// `aborted` is invoked with the queue mutex held, so it must not
  /// touch the queue; a relaxed/acquire atomic read is the intended
  /// shape.
  template <typename AbortFn>
  BlockingPushOutcome PushUnless(T item, const AbortFn& aborted,
                                 std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this, &aborted] {
      return items_.size() < capacity_ || closed_ || aborted();
    });
    if (closed_) return BlockingPushOutcome::kClosed;
    if (aborted()) return BlockingPushOutcome::kAborted;
    items_.push_back(std::move(item));
    if (depth_after != nullptr) *depth_after = items_.size();
    not_empty_.notify_one();
    return BlockingPushOutcome::kOk;
  }

  /// Wakes every blocked producer and consumer so they re-evaluate their
  /// predicates (pair with the `aborted` condition of PushUnless).
  void WakeAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Non-blocking push: kFull leaves the item with the caller (retry with
  /// Push to block), kClosed drops it.
  PushOutcome TryPush(const T& item, std::size_t* depth_after = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return PushOutcome::kClosed;
    if (items_.size() >= capacity_) return PushOutcome::kFull;
    items_.push_back(item);
    if (depth_after != nullptr) *depth_after = items_.size();
    not_empty_.notify_one();
    return PushOutcome::kOk;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt signals end of stream.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Producer signals end of stream (idempotent). Consumers drain the
  /// remaining items and then observe nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wum

#endif  // WUM_STREAM_SPSC_QUEUE_H_
