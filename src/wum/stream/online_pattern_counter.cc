#include "wum/stream/online_pattern_counter.h"

#include <algorithm>
#include <cassert>

namespace wum {

TopKPathCounter::TopKPathCounter(std::size_t capacity,
                                 std::size_t path_length)
    : capacity_(capacity), path_length_(path_length) {
  assert(capacity_ >= 1);
  assert(path_length_ >= 1);
}

void TopKPathCounter::Add(const std::vector<PageId>& path) {
  ++paths_processed_;
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    ++it->second.count;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(path, Entry{path, 1, 0});
    return;
  }
  // Evict the minimum-estimate entry; the newcomer inherits its estimate
  // as error bound (the SpaceSaving step). Linear scan: capacities are
  // small (hundreds) and AddSession is not on a hot path.
  auto victim = entries_.begin();
  for (auto scan = entries_.begin(); scan != entries_.end(); ++scan) {
    if (scan->second.count < victim->second.count) victim = scan;
  }
  const std::uint64_t inherited = victim->second.count;
  entries_.erase(victim);
  entries_.emplace(path, Entry{path, inherited + 1, inherited});
}

void TopKPathCounter::AddSession(const std::vector<PageId>& pages) {
  if (pages.size() < path_length_) return;
  std::vector<PageId> path(path_length_);
  for (std::size_t start = 0; start + path_length_ <= pages.size(); ++start) {
    std::copy(pages.begin() + static_cast<std::ptrdiff_t>(start),
              pages.begin() + static_cast<std::ptrdiff_t>(start + path_length_),
              path.begin());
    Add(path);
  }
}

std::vector<TopKPathCounter::Entry> TopKPathCounter::TopK(
    std::size_t k) const {
  std::vector<Entry> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) ranked.push_back(entry);
  std::sort(ranked.begin(), ranked.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.path < b.path;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::size_t PatternCountingSink::AddCounter(std::size_t capacity,
                                            std::size_t path_length) {
  counters_.emplace_back(capacity, path_length);
  return counters_.size() - 1;
}

Status PatternCountingSink::Accept(const std::string& client_ip,
                                   Session session) {
  ++sessions_seen_;
  const std::vector<PageId> pages = session.PageSequence();
  for (TopKPathCounter& counter : counters_) {
    counter.AddSession(pages);
  }
  if (downstream_ != nullptr) {
    return downstream_->Accept(client_ip, std::move(session));
  }
  return Status::OK();
}

}  // namespace wum
