#include "wum/stream/heuristic_registry.h"

#include <utility>

#include "wum/session/navigation_heuristic.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/stream/incremental_time_sessionizers.h"
#include "wum/topology/web_graph.h"

namespace wum {

HeuristicRegistry::HeuristicRegistry(std::vector<Entry> entries)
    : entries_(std::move(entries)) {}

const HeuristicRegistry& HeuristicRegistry::Default() {
  static const HeuristicRegistry* const kRegistry =
      new HeuristicRegistry(std::vector<Entry>{
          Entry{
              "duration",
              "heur1: total session duration bounded by delta",
              /*needs_graph=*/false,
              [](const HeuristicContext& context)
                  -> Result<std::unique_ptr<Sessionizer>> {
                return std::unique_ptr<Sessionizer>(
                    std::make_unique<SessionDurationSessionizer>(
                        context.thresholds.max_session_duration));
              },
              [](const HeuristicContext& context)
                  -> Result<UserSessionizerFactory> {
                return UserSessionizerFactory(
                    [limit = context.thresholds.max_session_duration]() {
                      return std::make_unique<IncrementalDurationSessionizer>(
                          limit);
                    });
              },
          },
          Entry{
              "pagestay",
              "heur2: consecutive-request gap bounded by rho",
              /*needs_graph=*/false,
              [](const HeuristicContext& context)
                  -> Result<std::unique_ptr<Sessionizer>> {
                return std::unique_ptr<Sessionizer>(
                    std::make_unique<PageStaySessionizer>(
                        context.thresholds.max_page_stay));
              },
              [](const HeuristicContext& context)
                  -> Result<UserSessionizerFactory> {
                return UserSessionizerFactory(
                    [limit = context.thresholds.max_page_stay]() {
                      return std::make_unique<IncrementalPageStaySessionizer>(
                          limit);
                    });
              },
          },
          Entry{
              "navigation",
              "heur3: topology-linked navigation with path completion",
              /*needs_graph=*/true,
              [](const HeuristicContext& context)
                  -> Result<std::unique_ptr<Sessionizer>> {
                return std::unique_ptr<Sessionizer>(
                    std::make_unique<NavigationSessionizer>(context.graph));
              },
              [](const HeuristicContext& context)
                  -> Result<UserSessionizerFactory> {
                return UserSessionizerFactory([graph = context.graph]() {
                  return std::make_unique<IncrementalNavigationSessionizer>(
                      graph);
                });
              },
          },
          Entry{
              "smart-sra",
              "heur4: Smart-SRA maximal topology+time consistent sessions",
              /*needs_graph=*/true,
              [](const HeuristicContext& context)
                  -> Result<std::unique_ptr<Sessionizer>> {
                SmartSra::Options options;
                options.thresholds = context.thresholds;
                return std::unique_ptr<Sessionizer>(
                    std::make_unique<SmartSra>(context.graph, options));
              },
              [](const HeuristicContext& context)
                  -> Result<UserSessionizerFactory> {
                SmartSra::Options options;
                options.thresholds = context.thresholds;
                return UserSessionizerFactory(
                    [graph = context.graph, options]() {
                      return std::make_unique<IncrementalSmartSra>(graph,
                                                                   options);
                    });
              },
          },
      });
  return *kRegistry;
}

std::vector<std::string> HeuristicRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::string HeuristicRegistry::NamesForUsage() const {
  std::string usage;
  for (const Entry& entry : entries_) {
    if (!usage.empty()) usage += '|';
    usage += entry.name;
  }
  return usage;
}

const HeuristicRegistry::Entry* HeuristicRegistry::Find(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool HeuristicRegistry::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

Result<const HeuristicRegistry::Entry*> HeuristicRegistry::FindChecked(
    const std::string& name, const HeuristicContext& context) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("unknown heuristic '" + name + "' (expected " +
                            NamesForUsage() + ")");
  }
  if (entry->needs_graph && context.graph == nullptr) {
    return Status::InvalidArgument("heuristic '" + name +
                                   "' requires a non-null WebGraph");
  }
  return entry;
}

Result<std::unique_ptr<Sessionizer>> HeuristicRegistry::CreateBatch(
    const std::string& name, const HeuristicContext& context) const {
  WUM_ASSIGN_OR_RETURN(const Entry* entry, FindChecked(name, context));
  return entry->make_batch(context);
}

Result<UserSessionizerFactory> HeuristicRegistry::CreateIncremental(
    const std::string& name, const HeuristicContext& context) const {
  WUM_ASSIGN_OR_RETURN(const Entry* entry, FindChecked(name, context));
  return entry->make_incremental(context);
}

}  // namespace wum
