#include "wum/stream/threaded_driver.h"

namespace wum {

ThreadedDriver::ThreadedDriver(RecordSink* sink, std::size_t queue_capacity)
    : queue_(queue_capacity), sink_(sink), worker_([this] { Run(); }) {}

ThreadedDriver::~ThreadedDriver() {
  if (!finished_) (void)Finish();
}

void ThreadedDriver::Run() {
  while (true) {
    std::optional<LogRecord> record = queue_.Pop();
    if (!record.has_value()) return;  // closed and drained
    {
      std::lock_guard<std::mutex> lock(status_mutex_);
      if (!first_error_.ok()) continue;  // drain after failure
    }
    Status status = sink_->Accept(*record);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex_);
      if (first_error_.ok()) first_error_ = std::move(status);
    }
  }
}

Status ThreadedDriver::Offer(const LogRecord& record) {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (!first_error_.ok()) return first_error_;
  }
  if (!queue_.Push(record)) {
    return Status::FailedPrecondition("queue closed");
  }
  return Status::OK();
}

Status ThreadedDriver::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  finished_ = true;
  queue_.Close();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (!first_error_.ok()) return first_error_;
  }
  return sink_->Finish();
}

}  // namespace wum
