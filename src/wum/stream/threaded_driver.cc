#include "wum/stream/threaded_driver.h"

#include <utility>

#include "wum/obs/log.h"

namespace wum {

ThreadedDriver::ThreadedDriver(RecordSink* sink, std::size_t queue_capacity,
                               DriverMetrics metrics, DriverHooks hooks)
    : queue_(queue_capacity),
      sink_(sink),
      metrics_(std::move(metrics)),
      hooks_(std::move(hooks)),
      worker_([this] { Run(); }) {}

ThreadedDriver::~ThreadedDriver() {
  if (!finished_) (void)Finish();
}

Status ThreadedDriver::first_error() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return first_error_;
}

void ThreadedDriver::NoteDrained() {
  drained_.fetch_add(1, std::memory_order_seq_cst);
  if (idle_waiting_.load(std::memory_order_seq_cst)) {
    // Take the lock so the notify cannot slip between a waiter's
    // predicate check and its sleep.
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadedDriver::Run() {
  while (true) {
    std::optional<LogRecord> record = queue_.Pop();
    if (!record.has_value()) return;  // closed and drained
    if (failed_.load(std::memory_order_relaxed)) {
      // Drain after failure: keep consuming so the producer never wedges
      // on a full queue, reporting each discarded record when asked.
      if (hooks_.on_discard != nullptr) {
        hooks_.on_discard(*record, first_error());
      }
      NoteDrained();
      continue;
    }
    Status status;
    {
      obs::ScopedTimer timer(metrics_.drain_latency_us);
      obs::ScopedSpan span(metrics_.tracer, "drain", metrics_.trace_shard,
                           drained_.load(std::memory_order_relaxed));
      status = sink_->Accept(*record);
    }
    if (status.ok()) {
      NoteDrained();
      continue;
    }
    if (hooks_.on_record_error != nullptr &&
        hooks_.on_record_error(*record, status)) {
      NoteDrained();
      continue;  // quarantined; the shard lives on
    }
    obs::LogError("driver.failed")("shard", metrics_.trace_shard)(
        "error", status.ToString());
    {
      std::lock_guard<std::mutex> lock(status_mutex_);
      if (first_error_.ok()) first_error_ = std::move(status);
    }
    failed_.store(true, std::memory_order_release);
    // Rouse a producer blocked on the full queue so it observes the
    // sticky error instead of waiting for space that may never come.
    queue_.WakeAll();
    NoteDrained();
  }
}

Status ThreadedDriver::CheckOfferable() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  return first_error();
}

void ThreadedDriver::NoteDepth(std::size_t depth) {
  // Single producer: a racy read-modify-write max is exact here.
  if (depth > queue_high_watermark_.load(std::memory_order_relaxed)) {
    queue_high_watermark_.store(depth, std::memory_order_relaxed);
    metrics_.queue_high_watermark.MaxOf(depth);
  }
}

Status ThreadedDriver::Offer(const LogRecord& record) {
  WUM_RETURN_NOT_OK(CheckOfferable());
  std::size_t depth = 0;
  switch (queue_.TryPush(record, &depth)) {
    case SpscQueue<LogRecord>::PushOutcome::kOk:
      break;
    case SpscQueue<LogRecord>::PushOutcome::kClosed:
      return Status::FailedPrecondition("queue closed");
    case SpscQueue<LogRecord>::PushOutcome::kFull: {
      blocked_enqueues_.fetch_add(1, std::memory_order_relaxed);
      metrics_.blocked_enqueues.Increment();
      switch (queue_.PushUnless(
          record,
          [this] { return failed_.load(std::memory_order_acquire); },
          &depth)) {
        case SpscQueue<LogRecord>::BlockingPushOutcome::kOk:
          break;
        case SpscQueue<LogRecord>::BlockingPushOutcome::kClosed:
          return Status::FailedPrecondition("queue closed");
        case SpscQueue<LogRecord>::BlockingPushOutcome::kAborted:
          return first_error();
      }
      break;
    }
  }
  ++pushed_;
  NoteDepth(depth);
  return Status::OK();
}

Status ThreadedDriver::TryOffer(const LogRecord& record, bool* accepted) {
  *accepted = false;
  WUM_RETURN_NOT_OK(CheckOfferable());
  std::size_t depth = 0;
  switch (queue_.TryPush(record, &depth)) {
    case SpscQueue<LogRecord>::PushOutcome::kOk:
      break;
    case SpscQueue<LogRecord>::PushOutcome::kClosed:
      return Status::FailedPrecondition("queue closed");
    case SpscQueue<LogRecord>::PushOutcome::kFull:
      return Status::OK();
  }
  *accepted = true;
  ++pushed_;
  NoteDepth(depth);
  return Status::OK();
}

Status ThreadedDriver::WaitIdle() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_waiting_.store(true, std::memory_order_seq_cst);
  idle_cv_.wait(lock, [this] {
    return failed_.load(std::memory_order_acquire) ||
           drained_.load(std::memory_order_seq_cst) >= pushed_;
  });
  idle_waiting_.store(false, std::memory_order_seq_cst);
  if (failed_.load(std::memory_order_acquire)) return first_error();
  return Status::OK();
}

void ThreadedDriver::WaitDrained() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_waiting_.store(true, std::memory_order_seq_cst);
  idle_cv_.wait(lock, [this] {
    return drained_.load(std::memory_order_seq_cst) >= pushed_;
  });
  idle_waiting_.store(false, std::memory_order_seq_cst);
}

Status ThreadedDriver::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  finished_ = true;
  queue_.Close();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (!first_error_.ok()) return first_error_;
  }
  return sink_->Finish();
}

}  // namespace wum
