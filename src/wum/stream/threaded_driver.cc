#include "wum/stream/threaded_driver.h"

#include <utility>

#include "wum/obs/log.h"

namespace wum {

ThreadedDriver::ThreadedDriver(RecordSink* sink, std::size_t queue_capacity,
                               DriverMetrics metrics, DriverHooks hooks)
    : queue_(queue_capacity),
      sink_(sink),
      metrics_(std::move(metrics)),
      hooks_(std::move(hooks)),
      worker_([this] { Run(); }) {}

ThreadedDriver::~ThreadedDriver() {
  if (!finished_) (void)Finish();
}

Status ThreadedDriver::first_error() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return first_error_;
}

void ThreadedDriver::NoteDrained(std::uint64_t count) {
  drained_.fetch_add(count, std::memory_order_seq_cst);
  if (idle_waiting_.load(std::memory_order_seq_cst)) {
    // Take the lock so the notify cannot slip between a waiter's
    // predicate check and its sleep.
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadedDriver::PushStamp() {
  if (hooks_.on_batch_start == nullptr) return;
  const double now = obs::internal::NowMicros();
  std::lock_guard<std::mutex> lock(stamp_mutex_);
  stamps_.push_back(now);
}

void ThreadedDriver::UnpushStamp() {
  if (hooks_.on_batch_start == nullptr) return;
  std::lock_guard<std::mutex> lock(stamp_mutex_);
  if (!stamps_.empty()) stamps_.pop_back();
}

double ThreadedDriver::PopStamp() {
  std::lock_guard<std::mutex> lock(stamp_mutex_);
  if (stamps_.empty()) return 0.0;
  const double stamp = stamps_.front();
  stamps_.pop_front();
  return stamp;
}

void ThreadedDriver::Run() {
  while (true) {
    std::optional<RecordBatch> batch = queue_.Pop();
    if (!batch.has_value()) return;  // closed and drained
    if (hooks_.on_batch_start != nullptr) {
      hooks_.on_batch_start(PopStamp());
    }
    // Per-record semantics inside the batch are identical to the old
    // record-at-a-time loop: a sticky error set mid-batch routes every
    // later record of that batch (and of later batches) to the discard
    // hook, never into the pipeline. Drained records are counted once
    // per batch — WaitIdle/WaitDrained only observe the total, and the
    // worker never blocks mid-batch, so the coarser publication is
    // indistinguishable to a waiter.
    const std::uint64_t drained_before =
        drained_.load(std::memory_order_relaxed);
    std::uint64_t handled = 0;
    for (const LogRecord& record : *batch) {
      ++handled;
      if (failed_.load(std::memory_order_relaxed)) {
        // Drain after failure: keep consuming so the producer never
        // wedges on a full queue, reporting each discarded record when
        // asked.
        if (hooks_.on_discard != nullptr) {
          hooks_.on_discard(record, first_error());
        }
        continue;
      }
      Status status;
      {
        obs::ScopedTimer timer(metrics_.drain_latency_us);
        obs::ScopedSpan span(metrics_.tracer, "drain", metrics_.trace_shard,
                             drained_before + handled - 1);
        status = sink_->Accept(record);
      }
      if (status.ok()) continue;
      if (hooks_.on_record_error != nullptr &&
          hooks_.on_record_error(record, status)) {
        continue;  // quarantined; the shard lives on
      }
      obs::LogError("driver.failed")("shard", metrics_.trace_shard)(
          "error", status.ToString());
      {
        std::lock_guard<std::mutex> lock(status_mutex_);
        if (first_error_.ok()) first_error_ = std::move(status);
      }
      failed_.store(true, std::memory_order_release);
      // Rouse a producer blocked on the full queue so it observes the
      // sticky error instead of waiting for space that may never come.
      queue_.WakeAll();
    }
    if (hooks_.on_batch_drained != nullptr) {
      hooks_.on_batch_drained(std::move(*batch));
    }
    NoteDrained(handled);
  }
}

Status ThreadedDriver::CheckOfferable() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  return first_error();
}

void ThreadedDriver::NoteDepth(std::size_t depth) {
  // Single producer: a racy read-modify-write max is exact here.
  if (depth > queue_high_watermark_.load(std::memory_order_relaxed)) {
    queue_high_watermark_.store(depth, std::memory_order_relaxed);
    metrics_.queue_high_watermark.MaxOf(depth);
  }
}

Status ThreadedDriver::OfferBatch(RecordBatch* batch) {
  WUM_RETURN_NOT_OK(CheckOfferable());
  if (batch->empty()) return Status::OK();
  const std::size_t weight = batch->size();
  std::size_t depth = 0;
  PushStamp();
  switch (queue_.TryPush(std::move(*batch), weight, &depth)) {
    case SpscQueue<RecordBatch>::PushOutcome::kOk:
      break;
    case SpscQueue<RecordBatch>::PushOutcome::kClosed:
      UnpushStamp();
      return Status::FailedPrecondition("queue closed");
    case SpscQueue<RecordBatch>::PushOutcome::kFull: {
      blocked_enqueues_.fetch_add(1, std::memory_order_relaxed);
      metrics_.blocked_enqueues.Increment();
      // Time the stall only on this already-blocked path; the fast
      // path above never reads the clock for it.
      const bool timed = metrics_.blocked_wait_us.enabled();
      const double wait_start = timed ? obs::internal::NowMicros() : 0.0;
      const SpscQueue<RecordBatch>::BlockingPushOutcome outcome =
          queue_.PushUnless(
              std::move(*batch),
              [this] { return failed_.load(std::memory_order_acquire); },
              weight, &depth);
      if (timed) {
        metrics_.blocked_wait_us.Increment(static_cast<std::uint64_t>(
            obs::internal::NowMicros() - wait_start));
      }
      switch (outcome) {
        case SpscQueue<RecordBatch>::BlockingPushOutcome::kOk:
          break;
        case SpscQueue<RecordBatch>::BlockingPushOutcome::kClosed:
          UnpushStamp();
          return Status::FailedPrecondition("queue closed");
        case SpscQueue<RecordBatch>::BlockingPushOutcome::kAborted:
          UnpushStamp();
          return first_error();
      }
      break;
    }
  }
  pushed_ += weight;
  NoteDepth(depth);
  return Status::OK();
}

Status ThreadedDriver::Offer(const LogRecord& record) {
  RecordBatch batch(1, record);
  return OfferBatch(&batch);
}

Status ThreadedDriver::TryOfferBatch(RecordBatch* batch, bool* accepted) {
  *accepted = false;
  WUM_RETURN_NOT_OK(CheckOfferable());
  if (batch->empty()) {
    *accepted = true;
    return Status::OK();
  }
  const std::size_t weight = batch->size();
  std::size_t depth = 0;
  PushStamp();
  switch (queue_.TryPush(std::move(*batch), weight, &depth)) {
    case SpscQueue<RecordBatch>::PushOutcome::kOk:
      break;
    case SpscQueue<RecordBatch>::PushOutcome::kClosed:
      UnpushStamp();
      return Status::FailedPrecondition("queue closed");
    case SpscQueue<RecordBatch>::PushOutcome::kFull:
      UnpushStamp();
      return Status::OK();
  }
  *accepted = true;
  pushed_ += weight;
  NoteDepth(depth);
  return Status::OK();
}

Status ThreadedDriver::TryOffer(const LogRecord& record, bool* accepted) {
  RecordBatch batch(1, record);
  return TryOfferBatch(&batch, accepted);
}

Status ThreadedDriver::WaitIdle() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_waiting_.store(true, std::memory_order_seq_cst);
  idle_cv_.wait(lock, [this] {
    return failed_.load(std::memory_order_acquire) ||
           drained_.load(std::memory_order_seq_cst) >= pushed_;
  });
  idle_waiting_.store(false, std::memory_order_seq_cst);
  if (failed_.load(std::memory_order_acquire)) return first_error();
  return Status::OK();
}

void ThreadedDriver::WaitDrained() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_waiting_.store(true, std::memory_order_seq_cst);
  idle_cv_.wait(lock, [this] {
    return drained_.load(std::memory_order_seq_cst) >= pushed_;
  });
  idle_waiting_.store(false, std::memory_order_seq_cst);
}

Status ThreadedDriver::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("driver already finished");
  }
  finished_ = true;
  queue_.Close();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (!first_error_.ok()) return first_error_;
  }
  return sink_->Finish();
}

}  // namespace wum
