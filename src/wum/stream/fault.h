// Fault-tolerance primitives for the streaming layer: the retrying sink
// decorator that rides between the engine and a flaky SessionSink, and a
// deterministic fault-injection harness (schedules, a fault-injecting
// operator and a flaky sink) for driving every failure path in tests
// without touching the wall clock.
//
// Determinism is the design constraint throughout: schedules are pure
// functions of a seed or an index list, backoff delays are computed from
// the attempt number alone, and the clock only enters through an
// injectable sleep hook — so every failure scenario replays identically.
// See docs/robustness.md for the cookbook.

#ifndef WUM_STREAM_FAULT_H_
#define WUM_STREAM_FAULT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "wum/common/random.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/pipeline.h"

namespace wum {

/// Classification used by StreamEngine under ErrorPolicy::kDegrade: an
/// infrastructure failure (Internal / IoError / FailedPrecondition) from
/// the record path kills its shard, while data errors (ParseError,
/// InvalidArgument, OutOfRange, ...) quarantine only the offending
/// record. Emission failures never reach this test — they are retried
/// and dead-lettered at the emit hub.
bool IsShardFatal(const Status& status);

/// Deterministic fire/pass decision sequence, advanced once per event.
/// A schedule is a pure function of its construction parameters: the
/// same schedule replayed over the same event stream fires at exactly
/// the same positions, which is what makes the fault tests and the
/// kill-one-shard scenarios reproducible. Stateful (call Next() once per
/// event, in order) and single-threaded unless externally serialized.
class FaultSchedule {
 public:
  /// Never fires.
  static FaultSchedule Never();
  /// Fires on every event.
  static FaultSchedule Always();
  /// Fires on the given 0-based event indices.
  static FaultSchedule AtIndices(std::vector<std::uint64_t> indices);
  /// Fires on the first `n` events, then never again.
  static FaultSchedule FirstN(std::uint64_t n);
  /// Fires on every n-th event (indices n-1, 2n-1, ...). n == 0 never
  /// fires.
  static FaultSchedule EveryNth(std::uint64_t n);
  /// Fires on each event independently with probability `p`, driven by a
  /// wum::Rng — deterministic for a given seed.
  static FaultSchedule Seeded(std::uint64_t seed, double probability);

  FaultSchedule(FaultSchedule&&) noexcept = default;
  FaultSchedule& operator=(FaultSchedule&&) noexcept = default;

  /// Should the current event fault? Advances to the next event.
  bool Next();

  /// Events examined so far.
  std::uint64_t seen() const { return seen_; }
  /// Events that faulted so far.
  std::uint64_t fired() const { return fired_; }

 private:
  enum class Kind { kNever, kAlways, kIndices, kFirstN, kEveryNth, kSeeded };

  explicit FaultSchedule(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::vector<std::uint64_t> indices_;  // sorted, kIndices
  std::uint64_t n_ = 0;                 // kFirstN / kEveryNth
  double probability_ = 0.0;            // kSeeded
  std::optional<Rng> rng_;              // kSeeded
  std::uint64_t seen_ = 0;
  std::uint64_t fired_ = 0;
};

/// Retry policy for RetryingSink (and EngineOptions::set_retry).
/// Backoff before re-attempt k (1-based) is
///   min(initial_backoff * multiplier^(k-1), max_backoff)
/// — computed from the attempt number alone, never from the clock. The
/// wait itself goes through `sleep`, injectable so tests replay retry
/// storms instantly and deterministically.
struct RetryOptions {
  /// Total attempts per session, including the first (>= 1).
  int max_attempts = 3;
  std::chrono::microseconds initial_backoff{1000};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{250000};
  /// Wait hook between attempts; null means std::this_thread::sleep_for.
  std::function<void(std::chrono::microseconds)> sleep;
};

/// The deterministic backoff ladder: delay before re-attempt
/// `retry_index` (1-based). Exposed so tests assert exact delays.
std::chrono::microseconds RetryBackoff(const RetryOptions& options,
                                       int retry_index);

/// SessionSink decorator with bounded retries and deterministic
/// exponential backoff, for sinks with transient failures (a network
/// store, a full pipe). Gives up and returns the last error once
/// max_attempts is exhausted; the caller (the engine's emit hub, in
/// kDegrade mode) decides whether that is fatal or a dead letter.
///
/// Calls must be externally serialized (the engine's emit path is); the
/// counters are atomics so stats snapshots may race with an Accept.
class RetryingSink : public SessionSink {
 public:
  /// `sink` must outlive this object. `retries_mirror`, when enabled,
  /// mirrors retries() into a registry counter. With an enabled
  /// `tracer`, every re-attempt (backoff wait + the attempt itself)
  /// becomes a "retry" span tagged shard=trace_shard, seq=<attempt>.
  RetryingSink(SessionSink* sink, RetryOptions options,
               obs::Counter retries_mirror = {}, obs::Tracer tracer = {},
               std::uint64_t trace_shard = 0);

  Status Accept(const std::string& user_key, Session session) override;

  /// Re-attempts performed (attempts beyond the first, across all calls).
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Accepts that still failed after the final attempt.
  std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  SessionSink* sink_;
  RetryOptions options_;
  obs::Counter retries_mirror_;
  obs::Tracer tracer_;
  std::uint64_t trace_shard_ = 0;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

/// Fault-injection operator: fires per its schedule and either drops the
/// record, rejects it with a record-level (quarantinable) error, or
/// returns a shard-fatal error — the harness for degraded-mode and
/// kill-one-shard tests. One instance per shard, like every operator.
class FaultInjectingOperator : public RecordOperator {
 public:
  enum class Mode {
    kDrop,        // silently swallow the record
    kReject,      // InvalidArgument: quarantined under kDegrade
    kShardFatal,  // Internal: kills the shard even under kDegrade
  };

  FaultInjectingOperator(FaultSchedule schedule, Mode mode)
      : schedule_(std::move(schedule)), mode_(mode) {}

  Status Accept(const LogRecord& record) override;

  std::uint64_t fired() const { return schedule_.fired(); }

 private:
  FaultSchedule schedule_;
  Mode mode_;
};

/// SessionSink wrapper that fails per its schedule (indexed by Accept
/// call count) instead of delivering — the transient-failure half of the
/// harness, made to be wrapped by RetryingSink. Thread-safe so direct
/// tests need no external locking.
class FlakySink : public SessionSink {
 public:
  /// `wrapped` must outlive this object. `failure` is returned verbatim
  /// on scheduled calls (must not be OK).
  FlakySink(SessionSink* wrapped, FaultSchedule schedule,
            Status failure = Status::IoError("injected sink fault"));

  Status Accept(const std::string& user_key, Session session) override;

  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  SessionSink* wrapped_;
  std::mutex mutex_;  // guards schedule_
  FaultSchedule schedule_;
  Status failure_;
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace wum

#endif  // WUM_STREAM_FAULT_H_
